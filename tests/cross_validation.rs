//! Cross-validation between the analog circuit model (`elp2im-circuit`)
//! and the functional engine (`elp2im-core`): the same control sequences
//! must produce the same logic results at both abstraction levels.

use elp2im::circuit::column::{CellPort, Column};
use elp2im::circuit::params::CircuitParams;
use elp2im::circuit::primitive::{binary_app_ap, copy_aap, not_via_dcc, BasicOp, Strategy};
use elp2im::core::bitvec::BitVec;
use elp2im::core::engine::SubarrayEngine;
use elp2im::core::primitive::{Primitive, RegulateMode, RowRef};

/// Runs the functional APP-AP in-place sequence on a 1-bit subarray.
fn functional_app_ap(op: BasicOp, a: bool, b: bool) -> bool {
    let mut e = SubarrayEngine::new(1, 4, 1);
    e.write_row(0, BitVec::from_bools(&[a])).unwrap();
    e.write_row(1, BitVec::from_bools(&[b])).unwrap();
    let mode = match op {
        BasicOp::Or => RegulateMode::Or,
        BasicOp::And => RegulateMode::And,
    };
    e.run(&[Primitive::App { row: RowRef::Data(0), mode }, Primitive::Ap { row: RowRef::Data(1) }])
        .unwrap();
    e.row(RowRef::Data(1)).unwrap().get(0)
}

#[test]
fn circuit_and_engine_agree_on_all_app_ap_cases() {
    for op in [BasicOp::Or, BasicOp::And] {
        for a in [false, true] {
            for b in [false, true] {
                let functional = functional_app_ap(op, a, b);
                for strategy in [Strategy::Regular, Strategy::Alternative] {
                    let mut col = Column::new(CircuitParams::long_bitline());
                    let analog = binary_app_ap(&mut col, op, a, b, strategy)
                        .unwrap_or_else(|e| panic!("{op:?}({a},{b})/{strategy:?}: {e}"));
                    assert_eq!(
                        analog.result, functional,
                        "{op:?}({a},{b}) {strategy:?}: circuit {} vs engine {}",
                        analog.result, functional
                    );
                    assert_eq!(analog.result, op.eval(a, b), "both must match software");
                }
            }
        }
    }
}

#[test]
fn circuit_and_engine_agree_on_copies_and_not() {
    for bit in [false, true] {
        // Circuit level.
        let mut col = Column::new(CircuitParams::long_bitline());
        col.write_cell(0, bit);
        let copied = copy_aap(&mut col, CellPort::Normal(0), CellPort::Normal(1));
        let inverted = not_via_dcc(&mut col, CellPort::Normal(0), CellPort::Normal(2));

        // Functional level.
        let mut e = SubarrayEngine::new(1, 4, 1);
        e.write_row(0, BitVec::from_bools(&[bit])).unwrap();
        e.run(&[
            Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(1) },
            Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) },
            Primitive::OAap { src: RowRef::DccBar(0), dst: RowRef::Data(2) },
        ])
        .unwrap();

        assert_eq!(copied, e.row(RowRef::Data(1)).unwrap().get(0));
        assert_eq!(inverted, e.row(RowRef::Data(2)).unwrap().get(0));
        assert_eq!(inverted, !bit);
    }
}

/// The circuit-level TRA and the Ambit functional engine agree on the
/// majority function for every input combination.
#[test]
fn circuit_tra_matches_ambit_engine() {
    use elp2im::baselines::ambit::{AmbitCmd, AmbitEngine, AmbitRow};

    for pattern in 0u8..8 {
        let bits = [(pattern & 1) != 0, (pattern & 2) != 0, (pattern & 4) != 0];

        // Analog TRA.
        let mut col = Column::new(CircuitParams::long_bitline());
        for (i, &b) in bits.iter().enumerate() {
            col.write_cell(i, b);
        }
        col.precharge();
        let ports = [CellPort::Normal(0), CellPort::Normal(1), CellPort::Normal(2)];
        let analog = col.activate_multi(&ports, true).bit;

        // Functional Ambit TRA.
        let mut amb = AmbitEngine::new(1, 4);
        for (i, &b) in bits.iter().enumerate() {
            amb.write_row(i, BitVec::from_bools(&[b])).unwrap();
        }
        for i in 0..3 {
            amb.execute(&AmbitCmd::Aap { src: AmbitRow::Data(i), dsts: vec![AmbitRow::T(i)] })
                .unwrap();
        }
        amb.execute(&AmbitCmd::Tra { rows: [AmbitRow::T(0), AmbitRow::T(1), AmbitRow::T(2)] })
            .unwrap();
        let functional = amb.row(AmbitRow::T(0)).unwrap().get(0);

        assert_eq!(analog, functional, "TRA of {bits:?}");
        let majority = bits.iter().filter(|&&b| b).count() >= 2;
        assert_eq!(analog, majority);
    }
}

/// §4.1 as an end-to-end story: short bitlines break the regular strategy
/// at the circuit level while the functional model (which assumes correct
/// analog behavior) still gives the logical answer — and the alternative
/// strategy closes the gap.
#[test]
fn short_bitline_divergence_is_fixed_by_alternative_strategy() {
    let functional = functional_app_ap(BasicOp::Or, true, false);
    assert!(functional, "functional model: 1 OR 0 = 1");

    let mut col = Column::new(CircuitParams::short_bitline());
    assert!(
        binary_app_ap(&mut col, BasicOp::Or, true, false, Strategy::Regular).is_err(),
        "regular strategy must fail analog validation on a short bitline"
    );

    let mut col = Column::new(CircuitParams::short_bitline());
    let fixed = binary_app_ap(&mut col, BasicOp::Or, true, false, Strategy::Alternative).unwrap();
    assert_eq!(fixed.result, functional);
}
