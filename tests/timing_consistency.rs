//! Consistency between the three timing views: the analytic program
//! model, the functional engine's accounting, and the event-driven
//! controller simulation.

use elp2im::apps::backend::PimBackend;
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::{compile, CompileMode, LogicOp, Operands};
use elp2im::core::engine::SubarrayEngine;
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::controller::Controller;
use elp2im::dram::timing::Ddr3Timing;

/// The engine's busy-time accounting equals the program's analytic
/// latency, for every op and mode.
#[test]
fn engine_accounting_matches_program_latency() {
    let t = Ddr3Timing::ddr3_1600();
    for op in LogicOp::ALL {
        for mode in [CompileMode::LowLatency, CompileMode::HighThroughput] {
            let prog = compile(op, mode, Operands::standard(), 2).unwrap();
            let mut e = SubarrayEngine::new(8, 8, 2);
            e.write_row(0, BitVec::ones(8)).unwrap();
            e.write_row(1, BitVec::zeros(8)).unwrap();
            e.write_row(2, BitVec::zeros(8)).unwrap();
            e.run(prog.primitives()).unwrap();
            let engine_ns = e.stats().busy_time.as_f64();
            let program_ns = prog.latency(&t).as_f64();
            assert!(
                (engine_ns - program_ns).abs() < 1e-6,
                "{op} {mode:?}: engine {engine_ns} vs program {program_ns}"
            );
            assert_eq!(
                e.stats().wordline_activations,
                prog.wordline_events(&t),
                "{op} {mode:?} wordline count"
            );
        }
    }
}

/// The analytic pump-constraint estimate agrees with the event-driven
/// controller for both ELP2IM and Ambit operation streams.
#[test]
fn analytic_parallelism_matches_event_driven_simulation() {
    let budget = PumpBudget::jedec_ddr3_1600();
    for (label, backend) in [
        ("elp2im-ht", PimBackend::elp2im_high_throughput()),
        ("ambit", PimBackend::ambit()),
        ("drisa", PimBackend::drisa()),
    ] {
        let profiles = backend.op_profiles(LogicOp::And);
        let analytic = budget.max_parallel_banks(&profiles, 8);

        let reps = 48;
        let streams: Vec<_> = (0..8)
            .map(|b| {
                let mut v = Vec::new();
                for _ in 0..reps {
                    v.extend(profiles.iter().cloned());
                }
                (b, v)
            })
            .collect();
        let mut ctrl = Controller::new(8, budget.clone());
        let stats = ctrl.run_streams(&streams).unwrap();
        let effective = stats.busy_time.as_f64() / stats.makespan.as_f64();
        // The analytic estimate is a fluid (rate-based) bound; the
        // event-driven controller adds discretization. For Ambit the gap
        // is larger because its TRA-AAP draw (4.44 tokens) exceeds the
        // whole 4-token window and must wait for an *empty* window —
        // pushing the simulated drop to ~83 %, which is in fact the
        // paper's number (§6.3.1).
        let has_oversized =
            profiles.iter().any(|p| budget.command_cost(p) >= budget.tokens_per_window);
        let tolerance = if has_oversized { 0.35 } else { 0.2 };
        let err = (effective - analytic).abs() / analytic;
        assert!(
            err < tolerance,
            "{label}: analytic {analytic:.2} banks vs simulated {effective:.2}"
        );
        assert!(effective <= analytic * 1.05, "{label}: simulation must not beat the fluid bound");
    }
}

/// Unconstrained controller achieves full overlap; the constrained one
/// never exceeds the analytic bound.
#[test]
fn constraint_bounds_hold_in_simulation() {
    let t = Ddr3Timing::ddr3_1600();
    let backend = PimBackend::ambit();
    let profiles = backend.op_profiles(LogicOp::Xor);
    let streams: Vec<_> = (0..8)
        .map(|b| {
            let mut v = Vec::new();
            for _ in 0..16 {
                v.extend(profiles.iter().cloned());
            }
            (b, v)
        })
        .collect();

    let mut free = Controller::new(8, PumpBudget::unconstrained());
    let sf = free.run_streams(&streams).unwrap();
    assert!(
        (sf.busy_time.as_f64() / sf.makespan.as_f64() - 8.0).abs() < 0.05,
        "unconstrained must reach 8 banks"
    );

    let mut tight = Controller::new(8, PumpBudget::jedec_ddr3_1600());
    let st = tight.run_streams(&streams).unwrap();
    let analytic = PumpBudget::jedec_ddr3_1600().max_parallel_banks(&profiles, 8);
    let simulated = st.busy_time.as_f64() / st.makespan.as_f64();
    assert!(
        simulated <= analytic * 1.05,
        "simulated {simulated:.2} exceeds analytic bound {analytic:.2}"
    );
    let _ = t;
}

/// Device-level stats equal per-op program costs times operation count.
#[test]
fn device_stats_scale_linearly() {
    use elp2im::core::device::{DeviceConfig, Elp2imDevice};
    let mut dev = Elp2imDevice::new(DeviceConfig {
        width: 32,
        data_rows: 64,
        reserved_rows: 1,
        mode: CompileMode::LowLatency,
    });
    let a = dev.store(&BitVec::ones(32)).unwrap();
    let b = dev.store(&BitVec::zeros(32)).unwrap();
    let mut handles = Vec::new();
    for _ in 0..10 {
        handles.push(dev.and(a, b).unwrap());
    }
    // 10 ANDs at 3 commands each.
    assert_eq!(dev.stats().total_commands(), 30);
    let per_op = dev.stats().busy_time.as_f64() / 10.0;
    assert!((per_op - 158.45).abs() < 1.0, "per-op busy {per_op}");
}
