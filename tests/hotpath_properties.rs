//! Property-based tests over the word-packed hot path: every word-level
//! kernel (bulk logic, `copy_bits`, conversion, formatting) is
//! bit-identical to a naive `Vec<bool>` reference, bank striping
//! round-trips through both the word-aligned and the shift-merge paths,
//! and the arena-backed engine matches software logic on the compiled
//! sequences at widths straddling word boundaries.

use elp2im::core::batch::{BatchConfig, DeviceArray};
use elp2im::core::bitvec::{copy_bits, BitVec, WORD_BITS};
use elp2im::core::compile::{compile, CompileMode, LogicOp, Operands};
use elp2im::core::engine::SubarrayEngine;
use elp2im::core::primitive::RowRef;
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::geometry::{Geometry, Topology};
use proptest::prelude::*;

/// Lengths the word kernels must get right: single bit, one-under /
/// exactly / one-over a word boundary, and a full multi-word row.
const EDGE_LENGTHS: [usize; 5] = [1, 63, 64, 65, 8191];

fn edge_length() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(EDGE_LENGTHS[0]),
        Just(EDGE_LENGTHS[1]),
        Just(EDGE_LENGTHS[2]),
        Just(EDGE_LENGTHS[3]),
        Just(EDGE_LENGTHS[4]),
    ]
}

fn bools(len: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), len)
}

fn binary_ops() -> impl Strategy<Value = LogicOp> {
    prop_oneof![
        Just(LogicOp::And),
        Just(LogicOp::Or),
        Just(LogicOp::Nand),
        Just(LogicOp::Nor),
        Just(LogicOp::Xor),
        Just(LogicOp::Xnor),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_bools` / `to_bools` / `FromIterator` / per-bit `get` /
    /// `Display` all agree with the original `Vec<bool>` at every edge
    /// length.
    #[test]
    fn conversion_roundtrip_matches_bools(len in edge_length(), data in bools(8191)) {
        let data = &data[..len];
        let v = BitVec::from_bools(data);
        prop_assert_eq!(v.len(), len);
        prop_assert_eq!(&v.to_bools(), data);
        let collected: BitVec = data.iter().copied().collect();
        prop_assert_eq!(&v, &collected);
        for (i, &bit) in data.iter().enumerate() {
            prop_assert_eq!(v.get(i), bit);
        }
        let shown: String = data.iter().map(|&b| if b { '1' } else { '0' }).collect();
        prop_assert_eq!(v.to_string(), shown);
        // The word view never exposes garbage past the tail.
        if let Some(&last) = v.words().last() {
            let tail = len % WORD_BITS;
            if tail != 0 {
                prop_assert_eq!(last >> tail, 0);
            }
        }
    }

    /// The bulk word kernels (owning and assigning forms), `merge`, and
    /// `count_ones` equal bit-at-a-time Boolean logic.
    #[test]
    fn word_kernels_match_bool_reference(
        len in edge_length(),
        a in bools(8191),
        b in bools(8191),
        m in bools(8191),
    ) {
        let (a, b, m) = (&a[..len], &b[..len], &m[..len]);
        let (va, vb, vm) = (BitVec::from_bools(a), BitVec::from_bools(b), BitVec::from_bools(m));
        let zip = |f: fn(bool, bool) -> bool| -> Vec<bool> {
            a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect()
        };

        prop_assert_eq!(va.and(&vb).to_bools(), zip(|x, y| x & y));
        prop_assert_eq!(va.or(&vb).to_bools(), zip(|x, y| x | y));
        prop_assert_eq!(va.xor(&vb).to_bools(), zip(|x, y| x ^ y));
        prop_assert_eq!(va.not().to_bools(), a.iter().map(|&x| !x).collect::<Vec<_>>());

        let mut t = va.clone();
        t.and_assign(&vb);
        prop_assert_eq!(&t, &va.and(&vb));
        let mut t = va.clone();
        t.or_assign(&vb);
        prop_assert_eq!(&t, &va.or(&vb));
        let mut t = va.clone();
        t.xor_assign(&vb);
        prop_assert_eq!(&t, &va.xor(&vb));
        let mut t = va.clone();
        t.not_assign();
        prop_assert_eq!(&t, &va.not());
        let mut t = BitVec::zeros(len);
        t.copy_from(&va);
        prop_assert_eq!(&t, &va);

        let merged: Vec<bool> =
            (0..len).map(|i| if m[i] { b[i] } else { a[i] }).collect();
        prop_assert_eq!(va.merge(&vm, &vb).to_bools(), merged.clone());
        let mut t = va.clone();
        t.merge_assign(&vm, &vb);
        prop_assert_eq!(t.to_bools(), merged);

        prop_assert_eq!(va.count_ones(), a.iter().filter(|&&x| x).count());
    }

    /// `copy_bits` splices exactly like a `Vec<bool>` splice for every
    /// combination of word alignment of source start, destination start,
    /// and length — covering both the aligned memcpy path and the
    /// shift-merge path.
    #[test]
    fn copy_bits_matches_bool_splice(
        len in edge_length(),
        src_start in 0usize..=130,
        dst_start in 0usize..=130,
        src in bools(8191 + 130),
        dst in bools(8191 + 130),
    ) {
        let src = &src[..src_start + len];
        let dst = &dst[..dst_start + len];
        let vsrc = BitVec::from_bools(src);
        let mut vdst = BitVec::from_bools(dst);

        let mut expect = dst.to_vec();
        expect[dst_start..dst_start + len].copy_from_slice(&src[src_start..src_start + len]);

        vdst.copy_bits_from(&vsrc, src_start, dst_start, len);
        prop_assert_eq!(vdst.to_bools(), expect.clone());

        // The raw word-slice form used by the striping layer agrees too.
        let mut words = BitVec::from_bools(dst);
        copy_bits(words.words_mut(), dst_start, vsrc.words(), src_start, len);
        words.mask_tail();
        prop_assert_eq!(words.to_bools(), expect);
    }

    /// Striped store/load round-trips bit-identically through both row
    /// widths: 64-bit rows (`row_bytes: 8`, the aligned fast path) and
    /// 72-bit rows (`row_bytes: 9`, forcing the unaligned shift-merge
    /// path on every stripe after the first), and `element` agrees with
    /// the full load at every index.
    #[test]
    fn striping_roundtrips_aligned_and_unaligned(
        row_bytes in prop_oneof![Just(8usize), Just(9)],
        banks in 1usize..=4,
        data in bools(600),
        len in 1usize..=600,
    ) {
        let data = &data[..len];
        let mut array = DeviceArray::new(BatchConfig {
            topology: Topology::module(Geometry { banks, subarrays_per_bank: 2, rows_per_subarray: 64, row_bytes }),
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
            budget: PumpBudget::unconstrained(),
        });
        let v = BitVec::from_bools(data);
        let h = array.store(&v).unwrap();
        let back = array.load(h).unwrap();
        prop_assert_eq!(&back, &v);
        for (i, &bit) in data.iter().enumerate() {
            prop_assert_eq!(array.element(h, i).unwrap(), bit);
        }
    }

    /// The arena-backed engine computes exactly what software Boolean
    /// logic computes at widths straddling word boundaries, in both
    /// compile modes, with the operands intact afterwards.
    #[test]
    fn arena_engine_matches_reference_at_word_boundaries(
        op in binary_ops(),
        mode_pick in 0usize..2,
        width in prop_oneof![Just(1usize), Just(63), Just(64), Just(65), Just(127)],
        a in bools(127),
        b in bools(127),
    ) {
        let mode = [CompileMode::LowLatency, CompileMode::HighThroughput][mode_pick];
        let (a, b) = (&a[..width], &b[..width]);
        let (va, vb) = (BitVec::from_bools(a), BitVec::from_bools(b));
        let prog = compile(op, mode, Operands::standard(), 2).unwrap();
        let mut e = SubarrayEngine::new(width, 8, 2);
        e.write_row(0, va.clone()).unwrap();
        e.write_row(1, vb.clone()).unwrap();
        e.write_row(2, BitVec::zeros(width)).unwrap();
        e.write_row(3, BitVec::zeros(width)).unwrap();
        e.run_verified(&prog).unwrap();
        let expect: BitVec =
            a.iter().zip(b).map(|(&x, &y)| op.eval(x, y)).collect();
        prop_assert_eq!(e.row(RowRef::Data(2)).unwrap(), expect);
        prop_assert_eq!(e.row(RowRef::Data(0)).unwrap(), va);
        prop_assert_eq!(e.row(RowRef::Data(1)).unwrap(), vb);
        prop_assert!(!e.has_pending_regulation());
    }
}

/// A deterministic (non-proptest) sweep of `copy_bits` across every
/// source/destination offset pair within a two-word window at each edge
/// length — exhaustive where randomness might miss an alignment class.
#[test]
fn copy_bits_offset_sweep() {
    for &len in &[1usize, 63, 64, 65] {
        let src: Vec<bool> = (0..len + 2 * WORD_BITS).map(|i| i % 3 == 0).collect();
        let dst: Vec<bool> = (0..len + 2 * WORD_BITS).map(|i| i % 5 == 0).collect();
        let vsrc = BitVec::from_bools(&src);
        for src_start in 0..=WORD_BITS {
            for dst_start in 0..=WORD_BITS {
                let mut vdst = BitVec::from_bools(&dst);
                vdst.copy_bits_from(&vsrc, src_start, dst_start, len);
                let mut expect = dst.clone();
                expect[dst_start..dst_start + len]
                    .copy_from_slice(&src[src_start..src_start + len]);
                assert_eq!(
                    vdst.to_bools(),
                    expect,
                    "len={len} src_start={src_start} dst_start={dst_start}"
                );
            }
        }
    }
}
