//! Golden tests pinning the exact primitive sequences the compiler emits
//! (in the paper's `prmt([dst],src)` notation) and the exact interleaved
//! bus schedules the batch layer produces from them. Any change to these
//! strings or instants is a change to the architecture's command stream
//! and must be deliberate.

use elp2im::core::batch::{BatchConfig, DeviceArray};
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::{compile, xor_sequence, CompileMode, LogicOp, Operands};
use elp2im::core::parse::parse_program;
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::geometry::{Geometry, Topology};
use elp2im::dram::units::Ps;

fn text_of(op: LogicOp, mode: CompileMode, reserved: usize) -> String {
    let prog = compile(op, mode, Operands::standard(), reserved).unwrap();
    prog.primitives().iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" ; ")
}

#[test]
fn golden_low_latency_sequences() {
    assert_eq!(text_of(LogicOp::Not, CompileMode::LowLatency, 1), "oAAP([R0],r0) ; oAAP([r2],!R0)");
    assert_eq!(
        text_of(LogicOp::And, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·and ; oAAP([r2],R0)"
    );
    assert_eq!(
        text_of(LogicOp::Or, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·or ; oAAP([r2],R0)"
    );
    assert_eq!(
        text_of(LogicOp::Nand, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·and ; AP(R0) ; oAAP([r2],!R0)"
    );
    assert_eq!(
        text_of(LogicOp::Xor, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·and ; oAAP([r2],!R0) ; oAAP([R0],r1) ; oAPP(r0)·and ; otAPP(!R0)·or ; AP(r2)"
    );
}

#[test]
fn golden_high_throughput_and() {
    assert_eq!(
        text_of(LogicOp::And, CompileMode::HighThroughput, 0),
        "AAP([r2],r0) ; APP(r1)·and ; AP(r2)"
    );
}

#[test]
fn golden_in_place() {
    let rows = Operands { a: 0, b: 2, dst: 2, scratch: None };
    let prog = compile(LogicOp::Or, CompileMode::InPlace, rows, 0).unwrap();
    let text: Vec<String> = prog.primitives().iter().map(|p| p.to_string()).collect();
    assert_eq!(text.join(" ; "), "APP(r0)·or ; AP(r2)");
}

#[test]
fn golden_xor_seq6() {
    let prog = xor_sequence(6, Operands::standard(), 2).unwrap();
    let text: Vec<String> = prog.primitives().iter().map(|p| p.to_string()).collect();
    assert_eq!(
        text.join(" ; "),
        "oAAP([R0],r0) ; oAPP([R1],r1)·and ; oAAP([r2],!R0) ; oAPP(r0)·and ; otAPP(!R1)·or ; AP(r2)"
    );
}

/// A two-bank DeviceArray with one stripe per bank, for schedule goldens.
fn two_bank_array(budget: PumpBudget) -> DeviceArray {
    DeviceArray::new(BatchConfig {
        topology: Topology::module(Geometry {
            banks: 2,
            subarrays_per_bank: 1,
            rows_per_subarray: 32,
            row_bytes: 8,
        }),
        reserved_rows: 1,
        mode: CompileMode::LowLatency,
        budget,
    })
}

/// Runs one binary op over operands spanning both banks and returns the
/// bus trace as `(bank, class, start, stall)` tuples plus the makespan.
fn traced_op(budget: PumpBudget, op: LogicOp) -> (Vec<(usize, String, Ps, Ps)>, Ps) {
    let mut array = two_bank_array(budget);
    let bits = array.row_bits() * 2;
    let a = array.store(&BitVec::ones(bits)).unwrap();
    let b = array.store(&BitVec::zeros(bits)).unwrap();
    let (_, run) = array.binary(op, a, b).unwrap();
    let trace = run
        .schedule
        .commands
        .iter()
        .map(|c| (c.bank(), c.class.to_string(), c.start, c.pump_stall))
        .collect();
    (trace, run.schedule.stats.makespan.to_ps())
}

/// Two banks each run the low-latency AND stream oAAP-oAPP-oAAP
/// (Table 1: oAAP = 52.75 ns, oAPP = 52.875 ns). Without the pump
/// constraint the banks proceed in lockstep — both issue each command at
/// the same instant — and the makespan is one bank's serial 158.375 ns.
#[test]
fn golden_two_bank_and_schedule_unconstrained() {
    let (trace, makespan) = traced_op(PumpBudget::unconstrained(), LogicOp::And);
    let z = Ps::ZERO;
    assert_eq!(
        trace,
        vec![
            (0, "oAAP".into(), Ps(0), z),
            (1, "oAAP".into(), Ps(0), z),
            (0, "oAPP".into(), Ps(52_750), z),
            (1, "oAPP".into(), Ps(52_750), z),
            (0, "oAAP".into(), Ps(105_625), z),
            (1, "oAAP".into(), Ps(105_625), z),
        ]
    );
    assert_eq!(makespan, Ps(158_375));
}

/// The same AND workload under the JEDEC four-activate window. The two
/// concurrent oAAPs at t = 0 would draw 2 × 2.22 = 4.44 tokens > 4, so
/// the scheduler inserts the stall exactly at the second command (seq 1),
/// deferring bank 1 by one full tFAW (40 ns); every later command fits in
/// the staggered window and the streams never re-align.
#[test]
fn golden_two_bank_and_schedule_jedec_stall() {
    let (trace, makespan) = traced_op(PumpBudget::jedec_ddr3_1600(), LogicOp::And);
    let z = Ps::ZERO;
    assert_eq!(
        trace,
        vec![
            (0, "oAAP".into(), Ps(0), z),
            // The stall: admitted only once the t = 0 draw leaves the
            // 40 ns window.
            (1, "oAAP".into(), Ps(40_000), Ps(40_000)),
            (0, "oAPP".into(), Ps(52_750), z),
            (1, "oAPP".into(), Ps(92_750), z),
            (0, "oAAP".into(), Ps(105_625), z),
            (1, "oAAP".into(), Ps(145_625), z),
        ]
    );
    // Bank 1 finishes at 145.625 + 52.75 = 198.375 ns.
    assert_eq!(makespan, Ps(198_375));
}

/// Two banks each run the seven-command low-latency XOR stream
/// (oAAP-oAPP-oAAP-oAAP-oAPP-otAPP-AP; otAPP = 31.875 ns, AP = 48.75 ns).
/// Unconstrained, the banks stay in lockstep for all seven commands and
/// the makespan is one bank's serial 344.625 ns.
#[test]
fn golden_two_bank_xor_schedule_unconstrained() {
    let (trace, makespan) = traced_op(PumpBudget::unconstrained(), LogicOp::Xor);
    let expected_classes = ["oAAP", "oAPP", "oAAP", "oAAP", "oAPP", "otAPP", "AP"];
    let expected_starts =
        [Ps(0), Ps(52_750), Ps(105_625), Ps(158_375), Ps(211_125), Ps(264_000), Ps(295_875)];
    let mut expected = Vec::new();
    for (cls, start) in expected_classes.iter().zip(expected_starts) {
        for bank in 0..2 {
            expected.push((bank, (*cls).to_string(), start, Ps::ZERO));
        }
    }
    assert_eq!(trace, expected);
    assert_eq!(makespan, Ps(344_625));
}

/// Every golden sequence round-trips through the §5.1 parser.
#[test]
fn golden_sequences_parse_back() {
    for op in LogicOp::ALL {
        for (mode, reserved) in
            [(CompileMode::LowLatency, 2usize), (CompileMode::HighThroughput, 1)]
        {
            let prog = compile(op, mode, Operands::standard(), reserved).unwrap();
            let text: Vec<String> = prog.primitives().iter().map(|p| p.to_string()).collect();
            let reparsed = parse_program("x", &text.join(" ; ")).unwrap();
            assert_eq!(reparsed.primitives(), prog.primitives(), "{op} {mode:?}");
        }
    }
}
