//! Golden tests pinning the exact primitive sequences the compiler emits
//! (in the paper's `prmt([dst],src)` notation). Any change to these
//! strings is a change to the architecture's command stream and must be
//! deliberate.

use elp2im::core::compile::{compile, xor_sequence, CompileMode, LogicOp, Operands};
use elp2im::core::parse::parse_program;

fn text_of(op: LogicOp, mode: CompileMode, reserved: usize) -> String {
    let prog = compile(op, mode, Operands::standard(), reserved).unwrap();
    prog.primitives().iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" ; ")
}

#[test]
fn golden_low_latency_sequences() {
    assert_eq!(text_of(LogicOp::Not, CompileMode::LowLatency, 1), "oAAP([R0],r0) ; oAAP([r2],!R0)");
    assert_eq!(
        text_of(LogicOp::And, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·and ; oAAP([r2],R0)"
    );
    assert_eq!(
        text_of(LogicOp::Or, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·or ; oAAP([r2],R0)"
    );
    assert_eq!(
        text_of(LogicOp::Nand, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·and ; AP(R0) ; oAAP([r2],!R0)"
    );
    assert_eq!(
        text_of(LogicOp::Xor, CompileMode::LowLatency, 1),
        "oAAP([R0],r0) ; oAPP(r1)·and ; oAAP([r2],!R0) ; oAAP([R0],r1) ; oAPP(r0)·and ; otAPP(!R0)·or ; AP(r2)"
    );
}

#[test]
fn golden_high_throughput_and() {
    assert_eq!(
        text_of(LogicOp::And, CompileMode::HighThroughput, 0),
        "AAP([r2],r0) ; APP(r1)·and ; AP(r2)"
    );
}

#[test]
fn golden_in_place() {
    let rows = Operands { a: 0, b: 2, dst: 2, scratch: None };
    let prog = compile(LogicOp::Or, CompileMode::InPlace, rows, 0).unwrap();
    let text: Vec<String> = prog.primitives().iter().map(|p| p.to_string()).collect();
    assert_eq!(text.join(" ; "), "APP(r0)·or ; AP(r2)");
}

#[test]
fn golden_xor_seq6() {
    let prog = xor_sequence(6, Operands::standard(), 2).unwrap();
    let text: Vec<String> = prog.primitives().iter().map(|p| p.to_string()).collect();
    assert_eq!(
        text.join(" ; "),
        "oAAP([R0],r0) ; oAPP([R1],r1)·and ; oAAP([r2],!R0) ; oAPP(r0)·and ; otAPP(!R1)·or ; AP(r2)"
    );
}

/// Every golden sequence round-trips through the §5.1 parser.
#[test]
fn golden_sequences_parse_back() {
    for op in LogicOp::ALL {
        for (mode, reserved) in [(CompileMode::LowLatency, 2usize), (CompileMode::HighThroughput, 1)] {
            let prog = compile(op, mode, Operands::standard(), reserved).unwrap();
            let text: Vec<String> = prog.primitives().iter().map(|p| p.to_string()).collect();
            let reparsed = parse_program("x", &text.join(" ; ")).unwrap();
            assert_eq!(reparsed.primitives(), prog.primitives(), "{op} {mode:?}");
        }
    }
}
