//! Cross-design functional parity: the same workload produces identical
//! results on the ELP2IM and Ambit devices, while the substrate statistics
//! expose the architectural differences the paper quantifies.

use elp2im::baselines::ambit_device::{AmbitDevice, AmbitDeviceConfig};
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::LogicOp;
use elp2im::core::device::{DeviceConfig, Elp2imDevice};

fn workload_vectors(n: usize, bits: usize) -> Vec<BitVec> {
    use elp2im::apps::workload;
    let mut rng = workload::rng(77);
    (0..n).map(|_| workload::random_bitvec(&mut rng, bits, 0.5)).collect()
}

/// The bitmap query (AND chain) agrees bit-for-bit across designs.
#[test]
fn bitmap_query_agrees_across_designs() {
    let vectors = workload_vectors(5, 128);

    let mut elp = Elp2imDevice::new(DeviceConfig {
        width: 128,
        data_rows: 32,
        reserved_rows: 1,
        ..DeviceConfig::default()
    });
    let mut ambit = AmbitDevice::new(AmbitDeviceConfig { width: 128, data_rows: 32 });

    let he: Vec<_> = vectors.iter().map(|v| elp.store(v).unwrap()).collect();
    let ha: Vec<_> = vectors.iter().map(|v| ambit.store(v).unwrap()).collect();

    let mut acc_e = he[0];
    let mut acc_a = ha[0];
    for i in 1..vectors.len() {
        acc_e = elp.and(acc_e, he[i]).unwrap();
        acc_a = ambit.and(acc_a, ha[i]).unwrap();
    }
    let result_e = elp.load(acc_e).unwrap();
    let result_a = ambit.load(acc_a).unwrap();
    assert_eq!(result_e, result_a);

    // Software reference.
    let want = vectors.iter().skip(1).fold(vectors[0].clone(), |acc, v| acc.and(v));
    assert_eq!(result_e, want);

    // §6.2's structural difference: same work, ~2x the wordline events on
    // Ambit and more commands.
    let se = elp.stats();
    let sa = ambit.stats();
    assert!(
        sa.wordline_activations as f64 >= 1.8 * se.wordline_activations as f64,
        "ambit {} vs elp2im {} wordline events",
        sa.wordline_activations,
        se.wordline_activations
    );
    assert!(sa.busy_time.as_f64() > se.busy_time.as_f64());
}

/// Every basic operation agrees across designs on random operands.
#[test]
fn all_ops_agree_across_designs() {
    let vectors = workload_vectors(2, 96);
    for op in LogicOp::ALL {
        let mut elp = Elp2imDevice::new(DeviceConfig {
            width: 96,
            data_rows: 16,
            reserved_rows: 2,
            ..DeviceConfig::default()
        });
        let mut ambit = AmbitDevice::new(AmbitDeviceConfig { width: 96, data_rows: 16 });
        let ea = elp.store(&vectors[0]).unwrap();
        let eb = elp.store(&vectors[1]).unwrap();
        let aa = ambit.store(&vectors[0]).unwrap();
        let ab = ambit.store(&vectors[1]).unwrap();
        let (re, ra) = if op.is_unary() {
            (elp.not(ea).unwrap(), ambit.not(aa).unwrap())
        } else {
            (elp.binary(op, ea, eb).unwrap(), ambit.binary(op, aa, ab).unwrap())
        };
        assert_eq!(elp.load(re).unwrap(), ambit.load(ra).unwrap(), "{op}");
    }
}

/// XOR energy: the paper's efficiency ordering holds end to end on the
/// functional devices' accounting.
#[test]
fn xor_energy_ordering() {
    let vectors = workload_vectors(2, 64);
    let mut elp = Elp2imDevice::new(DeviceConfig {
        width: 64,
        data_rows: 16,
        reserved_rows: 2,
        ..DeviceConfig::default()
    });
    let mut ambit = AmbitDevice::new(AmbitDeviceConfig { width: 64, data_rows: 16 });
    let ea = elp.store(&vectors[0]).unwrap();
    let eb = elp.store(&vectors[1]).unwrap();
    let aa = ambit.store(&vectors[0]).unwrap();
    let ab = ambit.store(&vectors[1]).unwrap();
    let _ = elp.xor(ea, eb).unwrap();
    let _ = ambit.xor(aa, ab).unwrap();
    assert!(
        elp.stats().energy.as_f64() < ambit.stats().energy.as_f64(),
        "elp2im {} vs ambit {}",
        elp.stats().energy,
        ambit.stats().energy
    );
    assert!(elp.stats().busy_time.as_f64() < ambit.stats().busy_time.as_f64());
}
