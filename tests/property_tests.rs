//! Property-based tests over the core invariants: every compiled program
//! equals software Boolean logic on arbitrary inputs, arithmetic matches
//! `u64` arithmetic, and the BitWeaving predicate matches scalar
//! comparison.

use elp2im::apps::arith::{bit_serial_add, bit_serial_popcount};
use elp2im::apps::bitweaving::{less_than_on_device, VerticalLayout};
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::{compile, xor_sequence, CompileMode, LogicOp, Operands};
use elp2im::core::device::{DeviceConfig, Elp2imDevice};
use elp2im::core::engine::SubarrayEngine;
use elp2im::core::primitive::RowRef;
use proptest::prelude::*;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|v| BitVec::from_bools(&v))
}

fn ops() -> impl Strategy<Value = LogicOp> {
    prop_oneof![
        Just(LogicOp::Not),
        Just(LogicOp::And),
        Just(LogicOp::Or),
        Just(LogicOp::Nand),
        Just(LogicOp::Nor),
        Just(LogicOp::Xor),
        Just(LogicOp::Xnor),
    ]
}

fn reference(op: LogicOp, a: &BitVec, b: &BitVec) -> BitVec {
    (0..a.len()).map(|i| op.eval(a.get(i), b.get(i))).collect()
}

/// Strategy producing arbitrary (often invalid) primitives over a small
/// subarray: 4 data rows, 2 DCC rows.
fn random_primitive() -> impl Strategy<Value = elp2im::core::primitive::Primitive> {
    use elp2im::core::primitive::{Primitive, RegulateMode};
    let row = prop_oneof![
        (0usize..4).prop_map(RowRef::Data),
        (0usize..2).prop_map(RowRef::DccTrue),
        (0usize..2).prop_map(RowRef::DccBar),
    ];
    let mode = prop_oneof![Just(RegulateMode::Or), Just(RegulateMode::And)];
    prop_oneof![
        row.clone().prop_map(|row| Primitive::Ap { row }),
        (row.clone(), row.clone()).prop_map(|(src, dst)| Primitive::Aap { src, dst }),
        (row.clone(), row.clone()).prop_map(|(src, dst)| Primitive::OAap { src, dst }),
        (row.clone(), mode.clone()).prop_map(|(row, mode)| Primitive::App { row, mode }),
        (row.clone(), mode.clone()).prop_map(|(row, mode)| Primitive::OApp { row, mode }),
        (row.clone(), mode.clone()).prop_map(|(row, mode)| Primitive::TApp { row, mode }),
        (row, mode).prop_map(|(row, mode)| Primitive::OtApp { row, mode }),
    ]
}

fn random_program(
    max_len: usize,
) -> impl Strategy<Value = Vec<elp2im::core::primitive::Primitive>> {
    proptest::collection::vec(random_primitive(), 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every op × mode × random operands: engine result == software logic,
    /// operands survive, no regulation leaks.
    #[test]
    fn compiled_programs_match_software(
        op in ops(),
        mode_pick in 0usize..2,
        a in bitvec_strategy(96),
        b in bitvec_strategy(96),
        reserved in 1usize..=2,
    ) {
        let mode = [CompileMode::LowLatency, CompileMode::HighThroughput][mode_pick];
        let rows = Operands::standard();
        let prog = compile(op, mode, rows, reserved).unwrap();
        let mut e = SubarrayEngine::new(96, 8, reserved);
        e.write_row(0, a.clone()).unwrap();
        e.write_row(1, b.clone()).unwrap();
        e.write_row(2, BitVec::zeros(96)).unwrap();
        e.write_row(3, BitVec::zeros(96)).unwrap();
        e.run(prog.primitives()).unwrap();
        prop_assert_eq!(e.row(RowRef::Data(2)).unwrap(), reference(op, &a, &b));
        prop_assert_eq!(e.row(RowRef::Data(0)).unwrap(), a);
        prop_assert_eq!(e.row(RowRef::Data(1)).unwrap(), b);
        prop_assert!(!e.has_pending_regulation());
    }

    /// All six Fig. 8 XOR sequences on random vectors.
    #[test]
    fn xor_sequences_match_software(
        n in 1u8..=6,
        a in bitvec_strategy(64),
        b in bitvec_strategy(64),
    ) {
        let prog = xor_sequence(n, Operands::standard(), 2).unwrap();
        let mut e = SubarrayEngine::new(64, 8, 2);
        e.write_row(0, a.clone()).unwrap();
        e.write_row(1, b.clone()).unwrap();
        e.write_row(2, BitVec::zeros(64)).unwrap();
        e.write_row(3, BitVec::zeros(64)).unwrap();
        e.run(prog.primitives()).unwrap();
        prop_assert_eq!(e.row(RowRef::Data(2)).unwrap(), a.xor(&b));
    }

    /// Bit-serial addition == u64 addition on every lane.
    #[test]
    fn bit_serial_add_matches_u64(
        a_vals in proptest::collection::vec(0u64..4096, 16),
        b_vals in proptest::collection::vec(0u64..4096, 16),
    ) {
        let width = 12;
        let mut dev = Elp2imDevice::new(DeviceConfig {
            width: 16, data_rows: 160, reserved_rows: 2, ..DeviceConfig::default()
        });
        let store = |dev: &mut Elp2imDevice, vals: &[u64]| -> Vec<_> {
            (0..width).map(|i| {
                let plane: BitVec = vals.iter().map(|v| (v >> i) & 1 == 1).collect();
                dev.store(&plane).unwrap()
            }).collect()
        };
        let ha = store(&mut dev, &a_vals);
        let hb = store(&mut dev, &b_vals);
        let sum = bit_serial_add(&mut dev, &ha, &hb).unwrap();
        for lane in 0..16 {
            let got: u64 = sum.iter().enumerate()
                .map(|(i, &h)| u64::from(dev.load(h).unwrap().get(lane)) << i)
                .sum();
            prop_assert_eq!(got, a_vals[lane] + b_vals[lane]);
        }
    }

    /// Bit-serial popcount == counting set planes per lane.
    #[test]
    fn bit_serial_popcount_matches_reference(
        planes_bits in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 8), 1..7),
    ) {
        let mut dev = Elp2imDevice::new(DeviceConfig {
            width: 8, data_rows: 160, reserved_rows: 2, ..DeviceConfig::default()
        });
        let handles: Vec<_> = planes_bits.iter()
            .map(|p| dev.store(&BitVec::from_bools(p)).unwrap())
            .collect();
        let count = bit_serial_popcount(&mut dev, &handles).unwrap();
        for lane in 0..8 {
            let expect = planes_bits.iter().filter(|p| p[lane]).count() as u64;
            let got: u64 = count.iter().enumerate()
                .map(|(i, &h)| u64::from(dev.load(h).unwrap().get(lane)) << i)
                .sum();
            prop_assert_eq!(got, expect, "lane {}", lane);
        }
    }

    /// The in-DRAM BitWeaving `<` predicate == scalar comparison.
    #[test]
    fn bitweaving_less_than_matches_scalar(
        values in proptest::collection::vec(0u64..256, 32),
        constant in 0u64..256,
    ) {
        let layout = VerticalLayout::from_values(&values, 8);
        let mut dev = Elp2imDevice::new(DeviceConfig {
            width: 32, data_rows: 64, reserved_rows: 1, ..DeviceConfig::default()
        });
        let planes: Vec<_> = layout.planes().iter()
            .map(|p| dev.store(p).unwrap())
            .collect();
        let lt = less_than_on_device(&mut dev, &planes, constant, 32).unwrap();
        let got = dev.load(lt).unwrap();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(got.get(i), v < constant, "value {} < {}", v, constant);
        }
    }

    /// The §4.2 optimizer passes preserve program semantics on random
    /// operation chains (while never increasing latency).
    #[test]
    fn optimizer_preserves_semantics(
        op_picks in proptest::collection::vec(0usize..3, 1..4),
        a in bitvec_strategy(48),
        b in bitvec_strategy(48),
    ) {
        use elp2im::core::optimizer::{optimize, PhysRow};
        use elp2im::core::isa::Program;
        use elp2im::dram::timing::Ddr3Timing;

        // Build a chain: r2 := op0(r0, r1); r3 := op1(r2, r1); ...
        let mut prims = Vec::new();
        let mut preserve = vec![PhysRow::Data(0), PhysRow::Data(1)];
        for (i, &pick) in op_picks.iter().enumerate() {
            let op = [LogicOp::And, LogicOp::Or, LogicOp::Xor][pick];
            let rows = Operands { a: if i == 0 { 0 } else { i + 1 }, b: 1, dst: i + 2, scratch: None };
            let prog = compile(op, CompileMode::HighThroughput, rows, 1).unwrap();
            prims.extend(prog.primitives().iter().copied());
            preserve.push(PhysRow::Data(i + 2));
        }
        let chain = Program::new("chain", prims);
        let optimized = optimize(&chain, &preserve, true);

        let t = Ddr3Timing::ddr3_1600();
        prop_assert!(optimized.latency(&t).as_f64() <= chain.latency(&t).as_f64() + 1e-9);

        let run = |prog: &Program| -> Vec<BitVec> {
            let mut e = SubarrayEngine::new(48, 10, 1);
            e.write_row(0, a.clone()).unwrap();
            e.write_row(1, b.clone()).unwrap();
            e.run(prog.primitives()).unwrap();
            (0..op_picks.len() + 2)
                .map(|r| e.row(RowRef::Data(r)).unwrap())
                .collect()
        };
        prop_assert_eq!(run(&chain), run(&optimized));
    }

    /// The static validator and the engine agree: a program the validator
    /// accepts never faults in the engine, and engine faults are always
    /// flagged by the validator.
    #[test]
    fn validator_agrees_with_engine(prims in random_program(12)) {
        use elp2im::core::isa::Program;
        use elp2im::core::optimizer::PhysRow;
        use elp2im::core::validate::{validate, SubarrayShape};

        let prog = Program::new("random", prims);
        let shape = SubarrayShape { data_rows: 4, dcc_rows: 2 };
        let live_in: Vec<PhysRow> =
            (0..4).map(PhysRow::Data).chain((0..2).map(PhysRow::Dcc)).collect();
        let violations = validate(&prog, shape, &live_in);

        let mut e = SubarrayEngine::new(8, 4, 2);
        for r in 0..4 {
            e.write_row(r, BitVec::from_words(&[r as u64 * 0x5D], 8)).unwrap();
        }
        // Pre-populate the DCC rows (declared live-in).
        e.run(&[
            elp2im::core::primitive::Primitive::Aap {
                src: RowRef::Data(0),
                dst: RowRef::DccTrue(0),
            },
            elp2im::core::primitive::Primitive::Aap {
                src: RowRef::Data(1),
                dst: RowRef::DccTrue(1),
            },
        ])
        .unwrap();
        let result = e.run(prog.primitives());

        if violations.is_empty() {
            prop_assert!(result.is_ok(), "validated program failed: {:?}", result);
        }
        if result.is_err() {
            prop_assert!(
                !violations.is_empty(),
                "engine fault not predicted: {:?}",
                result
            );
        }
    }

    /// BitVec algebraic laws: De Morgan, double negation, xor identities.
    #[test]
    fn bitvec_algebra(a in bitvec_strategy(130), b in bitvec_strategy(130)) {
        prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        prop_assert_eq!(a.not().not(), a.clone());
        prop_assert_eq!(a.xor(&a), BitVec::zeros(130));
        prop_assert_eq!(a.xor(&b).xor(&b), a.clone());
        prop_assert_eq!(a.count_ones() + a.not().count_ones(), 130);
    }
}
