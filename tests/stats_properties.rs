//! Property-based tests over `RunStats` merge semantics and their
//! agreement with the schedulers:
//!
//! * `merge_parallel` and `merge_sequential` are associative (and
//!   parallel merge is commutative), so batch layers may fold run blocks
//!   in any grouping;
//! * `merge_sequential` over per-operation scheduler runs agrees with the
//!   event-driven controller replaying the same operations back to back;
//! * `merge_parallel` over single-bank schedules agrees with one
//!   interleaved schedule of the same streams when banks don't contend;
//! * the hierarchical scheduler embeds the flat one (single-module paths
//!   produce bit-identical schedules), channels fold with
//!   `merge_parallel` under any budget (they share nothing), and each
//!   single-rank channel's stats slice agrees with the event-driven
//!   controller replaying that rank alone.

use elp2im::dram::command::{CommandClass, CommandProfile};
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::controller::Controller;
use elp2im::dram::geometry::TopoPath;
use elp2im::dram::hierarchy::HierarchicalScheduler;
use elp2im::dram::interleave::InterleavedScheduler;
use elp2im::dram::stats::RunStats;
use elp2im::dram::timing::Ddr3Timing;
use elp2im::dram::units::{Ns, Picojoules};
use proptest::prelude::*;

fn stats_strategy() -> impl Strategy<Value = RunStats> {
    let classes = prop_oneof![
        Just(CommandClass::Ap),
        Just(CommandClass::Aap),
        Just(CommandClass::App),
        Just(CommandClass::TApp),
        Just(CommandClass::TraAap),
    ];
    (
        proptest::collection::vec((classes, 1.0f64..100.0, 1u8..4, 1.0f64..500.0), 0..6),
        0.0f64..2000.0,
        0.0f64..500.0,
        0.0f64..300.0,
    )
        .prop_map(|(cmds, makespan, background, stall)| {
            let mut s = RunStats::new();
            for (class, dur, wl, pj) in cmds {
                s.record(class, Ns(dur), wl, Picojoules(pj));
            }
            s.makespan = Ns(makespan);
            s.background_energy = Picojoules(background);
            s.pump_stall = Ns(stall);
            s
        })
}

fn profile_stream() -> impl Strategy<Value = Vec<CommandProfile>> {
    let t = Ddr3Timing::ddr3_1600();
    let profiles = prop_oneof![
        Just(CommandProfile::ap(&t)),
        Just(CommandProfile::aap(&t)),
        Just(CommandProfile::app(&t)),
        Just(CommandProfile::o_app(&t)),
    ];
    proptest::collection::vec(profiles, 1..6)
}

/// Equality up to floating-point rounding introduced by different
/// summation orders.
fn assert_stats_close(a: &RunStats, b: &RunStats) {
    assert_eq!(a.commands, b.commands);
    assert_eq!(a.wordline_activations, b.wordline_activations);
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()));
    assert!(close(a.busy_time.as_f64(), b.busy_time.as_f64()), "busy {a} vs {b}");
    assert!(close(a.makespan.as_f64(), b.makespan.as_f64()), "makespan {a} vs {b}");
    assert!(close(a.energy.as_f64(), b.energy.as_f64()), "energy {a} vs {b}");
    assert!(
        close(a.background_energy.as_f64(), b.background_energy.as_f64()),
        "background {a} vs {b}"
    );
    assert!(close(a.pump_stall.as_f64(), b.pump_stall.as_f64()), "stall {a} vs {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c) for the sequential merge.
    #[test]
    fn merge_sequential_is_associative(
        a in stats_strategy(),
        b in stats_strategy(),
        c in stats_strategy(),
    ) {
        let mut left = a.clone();
        left.merge_sequential(&b);
        left.merge_sequential(&c);
        let mut bc = b.clone();
        bc.merge_sequential(&c);
        let mut right = a.clone();
        right.merge_sequential(&bc);
        assert_stats_close(&left, &right);
    }

    /// (a ∥ b) ∥ c = a ∥ (b ∥ c), and a ∥ b = b ∥ a, for the parallel
    /// merge (max-based fields are order-insensitive).
    #[test]
    fn merge_parallel_is_associative_and_commutative(
        a in stats_strategy(),
        b in stats_strategy(),
        c in stats_strategy(),
    ) {
        let mut left = a.clone();
        left.merge_parallel(&b);
        left.merge_parallel(&c);
        let mut bc = b.clone();
        bc.merge_parallel(&c);
        let mut right = a.clone();
        right.merge_parallel(&bc);
        assert_stats_close(&left, &right);

        let mut ab = a.clone();
        ab.merge_parallel(&b);
        let mut ba = b.clone();
        ba.merge_parallel(&a);
        assert_stats_close(&ab, &ba);
    }

    /// Folding per-operation scheduler runs with `merge_sequential`
    /// reproduces the event-driven controller replaying the same
    /// operations back to back on one bank.
    #[test]
    fn sequential_merge_agrees_with_serial_replay(
        ops in proptest::collection::vec(profile_stream(), 1..5),
    ) {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let mut folded = RunStats::new();
        for stream in &ops {
            let s = sched.schedule(&[(0, stream.clone())]).unwrap();
            folded.merge_sequential(&s.stats);
        }

        let mut ctrl = Controller::new(1, PumpBudget::unconstrained());
        let mut replay = RunStats::new();
        for stream in &ops {
            let s = ctrl.run_streams(&[(0, stream.clone())]).unwrap();
            replay.merge_sequential(&s);
        }
        assert_stats_close(&folded, &replay);
        // And the grand totals match the controller's cumulative state.
        prop_assert_eq!(replay.total_commands(), ctrl.stats().total_commands());
        prop_assert!(
            (replay.makespan.as_f64() - ctrl.stats().makespan.as_f64()).abs() < 1e-6
        );
    }

    /// Folding independent single-bank schedules with `merge_parallel`
    /// agrees with one interleaved schedule of the same streams when the
    /// pump budget is unconstrained (banks don't contend, so per-bank
    /// wall clocks overlap and the makespan is the max).
    #[test]
    fn parallel_merge_agrees_with_interleaved_schedule(
        streams in proptest::collection::vec(profile_stream(), 1..5),
    ) {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let banked: Vec<_> =
            streams.iter().cloned().enumerate().collect();

        let whole = sched.schedule(&banked).unwrap();

        let mut folded = RunStats::new();
        for (bank, stream) in &banked {
            let s = sched.schedule(&[(*bank, stream.clone())]).unwrap();
            folded.merge_parallel(&s.stats);
        }
        assert_stats_close(&folded, &whole.stats);
    }

    /// Single-module paths through the hierarchical scheduler reproduce
    /// the flat interleaved scheduler bit for bit — same commands, same
    /// instants, same stats — even under the constrained JEDEC budget.
    #[test]
    fn hierarchical_flat_embedding_matches_interleaved(
        streams in proptest::collection::vec(profile_stream(), 1..5),
    ) {
        let flat = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let hier = HierarchicalScheduler::new(PumpBudget::jedec_ddr3_1600());
        let banked: Vec<_> = streams.iter().cloned().enumerate().collect();
        let pathed: Vec<_> = streams
            .iter()
            .cloned()
            .enumerate()
            .map(|(b, s)| (TopoPath::flat_bank(b), s))
            .collect();
        prop_assert_eq!(flat.schedule(&banked).unwrap(), hier.schedule(&pathed).unwrap());
    }

    /// Channels share no hardware, so folding per-channel hierarchical
    /// schedules with `merge_parallel` reproduces the whole multi-channel
    /// multi-rank schedule's stats — even under the constrained JEDEC
    /// budget, where banks *within* a rank do contend.
    #[test]
    fn hierarchical_channels_fold_as_parallel_merge(
        chans in proptest::collection::vec(
            proptest::collection::vec((0usize..2, 0usize..3, profile_stream()), 1..4),
            1..4,
        ),
    ) {
        let sched = HierarchicalScheduler::new(PumpBudget::jedec_ddr3_1600());
        let mut all = Vec::new();
        let mut folded = RunStats::new();
        for (c, banks) in chans.iter().enumerate() {
            let alone: Vec<_> = banks
                .iter()
                .cloned()
                .map(|(r, b, s)| (TopoPath::new(c, r, b), s))
                .collect();
            let s = sched.schedule(&alone).unwrap();
            folded.merge_parallel(&s.stats);
            all.extend(alone);
        }
        let whole = sched.schedule(&all).unwrap();
        assert_stats_close(&folded, &whole.stats);
    }

    /// With one rank per channel, bus and pump domains coincide, so each
    /// channel's stats slice of the hierarchical schedule agrees with the
    /// event-driven controller replaying that rank's streams alone.
    #[test]
    fn per_rank_stats_agree_with_controller(
        ranks in proptest::collection::vec(
            proptest::collection::vec(profile_stream(), 1..4),
            1..4,
        ),
    ) {
        let budget = PumpBudget::jedec_ddr3_1600();
        let sched = HierarchicalScheduler::new(budget.clone());
        let streams: Vec<_> = ranks
            .iter()
            .enumerate()
            .flat_map(|(c, banks)| {
                banks
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(move |(b, s)| (TopoPath::new(c, 0, b), s))
            })
            .collect();
        let whole = sched.schedule(&streams).unwrap();
        for (c, banks) in ranks.iter().enumerate() {
            let mut ctrl = Controller::new(banks.len(), budget.clone());
            let banked: Vec<_> = banks.iter().cloned().enumerate().collect();
            let replay = ctrl.run_streams(&banked).unwrap();
            let slice = whole.rank_stats_for(c, 0).expect("every channel has work");
            prop_assert_eq!(slice.commands.clone(), replay.commands.clone());
            prop_assert!((slice.busy_time.as_f64() - replay.busy_time.as_f64()).abs() < 1e-6);
            prop_assert!((slice.makespan.as_f64() - replay.makespan.as_f64()).abs() < 1e-6);
            prop_assert!((slice.pump_stall.as_f64() - replay.pump_stall.as_f64()).abs() < 1e-6);
        }
    }
}
