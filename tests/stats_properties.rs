//! Property-based tests over `RunStats` merge semantics and their
//! agreement with the schedulers:
//!
//! * `merge_parallel` and `merge_sequential` are associative (and
//!   parallel merge is commutative), so batch layers may fold run blocks
//!   in any grouping;
//! * `merge_sequential` over per-operation scheduler runs agrees with the
//!   event-driven controller replaying the same operations back to back;
//! * `merge_parallel` over single-bank schedules agrees with one
//!   interleaved schedule of the same streams when banks don't contend.

use elp2im::dram::command::{CommandClass, CommandProfile};
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::controller::Controller;
use elp2im::dram::interleave::InterleavedScheduler;
use elp2im::dram::stats::RunStats;
use elp2im::dram::timing::Ddr3Timing;
use elp2im::dram::units::{Ns, Picojoules};
use proptest::prelude::*;

fn stats_strategy() -> impl Strategy<Value = RunStats> {
    let classes = prop_oneof![
        Just(CommandClass::Ap),
        Just(CommandClass::Aap),
        Just(CommandClass::App),
        Just(CommandClass::TApp),
        Just(CommandClass::TraAap),
    ];
    (
        proptest::collection::vec((classes, 1.0f64..100.0, 1u8..4, 1.0f64..500.0), 0..6),
        0.0f64..2000.0,
        0.0f64..500.0,
        0.0f64..300.0,
    )
        .prop_map(|(cmds, makespan, background, stall)| {
            let mut s = RunStats::new();
            for (class, dur, wl, pj) in cmds {
                s.record(class, Ns(dur), wl, Picojoules(pj));
            }
            s.makespan = Ns(makespan);
            s.background_energy = Picojoules(background);
            s.pump_stall = Ns(stall);
            s
        })
}

fn profile_stream() -> impl Strategy<Value = Vec<CommandProfile>> {
    let t = Ddr3Timing::ddr3_1600();
    let profiles = prop_oneof![
        Just(CommandProfile::ap(&t)),
        Just(CommandProfile::aap(&t)),
        Just(CommandProfile::app(&t)),
        Just(CommandProfile::o_app(&t)),
    ];
    proptest::collection::vec(profiles, 1..6)
}

/// Equality up to floating-point rounding introduced by different
/// summation orders.
fn assert_stats_close(a: &RunStats, b: &RunStats) {
    assert_eq!(a.commands, b.commands);
    assert_eq!(a.wordline_activations, b.wordline_activations);
    let close = |x: f64, y: f64| (x - y).abs() <= 1e-6 * (1.0 + x.abs().max(y.abs()));
    assert!(close(a.busy_time.as_f64(), b.busy_time.as_f64()), "busy {a} vs {b}");
    assert!(close(a.makespan.as_f64(), b.makespan.as_f64()), "makespan {a} vs {b}");
    assert!(close(a.energy.as_f64(), b.energy.as_f64()), "energy {a} vs {b}");
    assert!(
        close(a.background_energy.as_f64(), b.background_energy.as_f64()),
        "background {a} vs {b}"
    );
    assert!(close(a.pump_stall.as_f64(), b.pump_stall.as_f64()), "stall {a} vs {b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c) for the sequential merge.
    #[test]
    fn merge_sequential_is_associative(
        a in stats_strategy(),
        b in stats_strategy(),
        c in stats_strategy(),
    ) {
        let mut left = a.clone();
        left.merge_sequential(&b);
        left.merge_sequential(&c);
        let mut bc = b.clone();
        bc.merge_sequential(&c);
        let mut right = a.clone();
        right.merge_sequential(&bc);
        assert_stats_close(&left, &right);
    }

    /// (a ∥ b) ∥ c = a ∥ (b ∥ c), and a ∥ b = b ∥ a, for the parallel
    /// merge (max-based fields are order-insensitive).
    #[test]
    fn merge_parallel_is_associative_and_commutative(
        a in stats_strategy(),
        b in stats_strategy(),
        c in stats_strategy(),
    ) {
        let mut left = a.clone();
        left.merge_parallel(&b);
        left.merge_parallel(&c);
        let mut bc = b.clone();
        bc.merge_parallel(&c);
        let mut right = a.clone();
        right.merge_parallel(&bc);
        assert_stats_close(&left, &right);

        let mut ab = a.clone();
        ab.merge_parallel(&b);
        let mut ba = b.clone();
        ba.merge_parallel(&a);
        assert_stats_close(&ab, &ba);
    }

    /// Folding per-operation scheduler runs with `merge_sequential`
    /// reproduces the event-driven controller replaying the same
    /// operations back to back on one bank.
    #[test]
    fn sequential_merge_agrees_with_serial_replay(
        ops in proptest::collection::vec(profile_stream(), 1..5),
    ) {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let mut folded = RunStats::new();
        for stream in &ops {
            let s = sched.schedule(&[(0, stream.clone())]).unwrap();
            folded.merge_sequential(&s.stats);
        }

        let mut ctrl = Controller::new(1, PumpBudget::unconstrained());
        let mut replay = RunStats::new();
        for stream in &ops {
            let s = ctrl.run_streams(&[(0, stream.clone())]).unwrap();
            replay.merge_sequential(&s);
        }
        assert_stats_close(&folded, &replay);
        // And the grand totals match the controller's cumulative state.
        prop_assert_eq!(replay.total_commands(), ctrl.stats().total_commands());
        prop_assert!(
            (replay.makespan.as_f64() - ctrl.stats().makespan.as_f64()).abs() < 1e-6
        );
    }

    /// Folding independent single-bank schedules with `merge_parallel`
    /// agrees with one interleaved schedule of the same streams when the
    /// pump budget is unconstrained (banks don't contend, so per-bank
    /// wall clocks overlap and the makespan is the max).
    #[test]
    fn parallel_merge_agrees_with_interleaved_schedule(
        streams in proptest::collection::vec(profile_stream(), 1..5),
    ) {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let banked: Vec<_> =
            streams.iter().cloned().enumerate().collect();

        let whole = sched.schedule(&banked).unwrap();

        let mut folded = RunStats::new();
        for (bank, stream) in &banked {
            let s = sched.schedule(&[(*bank, stream.clone())]).unwrap();
            folded.merge_parallel(&s.stats);
        }
        assert_stats_close(&folded, &whole.stats);
    }
}
