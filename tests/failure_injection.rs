//! Failure-injection tests: sensing errors (quantified by the Fig. 11
//! Monte-Carlo) propagate silently through bitwise PIM pipelines — the
//! §6.1.2 observation that conventional ECC cannot protect in-memory
//! computation.

use elp2im::circuit::montecarlo::{Design, MonteCarlo};
use elp2im::circuit::variation::PvMode;
use elp2im::core::batch::{BatchConfig, DeviceArray};
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::{xor_sequence, CompileMode, LogicOp, Operands};
use elp2im::core::engine::SubarrayEngine;
use elp2im::core::primitive::{Primitive, RegulateMode, RowRef};
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::geometry::{Geometry, Topology};

fn engine_with(a: &BitVec, b: &BitVec) -> SubarrayEngine {
    let mut e = SubarrayEngine::new(a.len(), 8, 2);
    e.write_row(0, a.clone()).unwrap();
    e.write_row(1, b.clone()).unwrap();
    e.write_row(2, BitVec::zeros(a.len())).unwrap();
    e
}

#[test]
fn single_bit_fault_flips_exactly_one_result_column() {
    let a = BitVec::from_bools(&[true, false, true, false, true, false, true, false]);
    let b = BitVec::from_bools(&[true, true, false, false, true, true, false, false]);
    let prog = xor_sequence(5, Operands::standard(), 1).unwrap();

    let mut clean = engine_with(&a, &b);
    clean.run(prog.primitives()).unwrap();
    let clean_result = clean.row(RowRef::Data(2)).unwrap();
    assert_eq!(clean_result, a.xor(&b));

    let mut faulty = engine_with(&a, &b);
    faulty.inject_bit_error(RowRef::Data(0), 5).unwrap();
    faulty.run(prog.primitives()).unwrap();
    let faulty_result = faulty.row(RowRef::Data(2)).unwrap();

    let diff = clean_result.xor(&faulty_result);
    assert_eq!(diff.count_ones(), 1, "exactly the faulted column flips");
    assert!(diff.get(5), "the flip is at the injected column");
}

#[test]
fn fault_in_reserved_row_corrupts_dependent_ops_only() {
    let a = BitVec::from_bools(&[true, true, false, false]);
    let b = BitVec::from_bools(&[true, false, true, false]);
    let mut e = engine_with(&a, &b);
    // Stage a into the DCC, corrupt the DCC, then use it for NOT.
    e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
    e.inject_bit_error(RowRef::DccTrue(0), 0).unwrap();
    e.execute(&Primitive::OAap { src: RowRef::DccBar(0), dst: RowRef::Data(2) }).unwrap();
    let not_a = e.row(RowRef::Data(2)).unwrap();
    // Column 0 is wrong; the rest is a correct NOT.
    assert_eq!(not_a.to_bools(), vec![true, false, true, true]);
    // The original operand row is untouched.
    assert_eq!(e.row(RowRef::Data(0)).unwrap(), a);
}

#[test]
fn fault_rate_scales_with_mc_error_rate() {
    // Tie the two layers together: draw per-column error events at the
    // Monte-Carlo rate and check the corrupted-result fraction tracks it.
    let mc = MonteCarlo::paper_setup().with_trials(20_000);
    let p_err = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.12);
    assert!(p_err > 1e-3, "need a visible error rate, got {p_err}");

    let width = 4096;
    let a = BitVec::ones(width);
    let b = BitVec::zeros(width);
    let mut e = engine_with(&a, &b);
    // Deterministically corrupt every ceil(1/p)th column of the operand.
    let stride = (1.0 / p_err).ceil() as usize;
    let mut injected = 0;
    let mut col = 0;
    while col < width {
        e.inject_bit_error(RowRef::Data(0), col).unwrap();
        injected += 1;
        col += stride;
    }
    e.run(&[
        Primitive::App { row: RowRef::Data(0), mode: RegulateMode::And },
        Primitive::Ap { row: RowRef::Data(1) },
    ])
    .unwrap();
    // AND with all-zeros b: faults on a do NOT show (0 & x = 0) — masking.
    assert!(e.row(RowRef::Data(1)).unwrap().is_zero(), "AND masks the faults");

    // OR with all-zeros b exposes every fault.
    let mut e = engine_with(&a, &b);
    let mut col = 0;
    while col < width {
        e.inject_bit_error(RowRef::Data(0), col).unwrap();
        col += stride;
    }
    e.run(&[
        Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
        Primitive::Ap { row: RowRef::Data(1) },
    ])
    .unwrap();
    let wrong = width - e.row(RowRef::Data(1)).unwrap().count_ones();
    assert_eq!(wrong, injected, "every injected fault surfaces through OR");
}

/// Each bank's engine owns its word arena outright: injecting any number
/// of faults into one bank's arena leaves every sibling bank's
/// `read_row_into` output bit-exact. This is the physical-independence
/// assumption the fault-aware executor's bank ranking builds on.
#[test]
fn arena_faults_never_cross_bank_boundaries() {
    let width = 128;
    let a: BitVec = (0..width).map(|i| i % 3 == 0).collect();
    let b: BitVec = (0..width).map(|i| i % 7 != 0).collect();
    // Three sibling banks with identical contents.
    let mut banks: Vec<SubarrayEngine> = (0..3).map(|_| engine_with(&a, &b)).collect();
    // Saturate bank 1's arena with faults across rows and columns.
    for col in (0..width).step_by(5) {
        banks[1].inject_bit_error(RowRef::Data(0), col).unwrap();
        banks[1].inject_bit_error(RowRef::Data(1), (col + 3) % width).unwrap();
    }
    for (bank, engine) in banks.iter().enumerate() {
        for (row, want) in [(0usize, &a), (1usize, &b)] {
            let mut got = BitVec::zeros(width);
            engine.read_row_into(row, &mut got, 0).unwrap();
            if bank == 1 {
                continue; // the faulted bank is of course corrupted
            }
            assert_eq!(&got, want, "bank {bank} row {row} must be untouched");
        }
    }
    // And the faulted bank really is corrupted — the test discriminates.
    let mut got = BitVec::zeros(width);
    banks[1].read_row_into(0, &mut got, 0).unwrap();
    assert_ne!(got, a);
}

/// The FaultyEngine variant of the same isolation: a fault model installed
/// on one bank's engine flips that engine's computed results only; an
/// identically-programmed sibling with no model stays exact.
#[test]
fn fault_model_on_one_bank_leaves_siblings_exact() {
    use elp2im::core::faulty::{ColumnFaultModel, FaultyEngine};
    let width = 64;
    let a: BitVec = (0..width).map(|i| i % 3 == 0).collect();
    let b: BitVec = (0..width).map(|i| i % 5 != 0).collect();
    let prog = xor_sequence(6, Operands::standard(), 2).unwrap();

    let build = |model: Option<ColumnFaultModel>| -> FaultyEngine {
        let mut e = FaultyEngine::new(width, 8, 2);
        e.write_row(0, a.clone()).unwrap();
        e.write_row(1, b.clone()).unwrap();
        e.write_row(2, BitVec::zeros(width)).unwrap();
        e.set_fault_model(model);
        e
    };
    // Certain fault on column 9, bank 1 only.
    let mut probs = vec![0.0; width];
    probs[9] = 1.0;
    let mut faulted = build(Some(ColumnFaultModel::new(0xBEEF, 1, probs)));
    let mut clean = build(None);
    faulted.run(prog.primitives()).unwrap();
    clean.run(prog.primitives()).unwrap();

    let want = a.xor(&b);
    let mut clean_out = BitVec::zeros(width);
    clean.read_row_into(2, &mut clean_out, 0).unwrap();
    assert_eq!(clean_out, want, "the model-free sibling must be exact");
    assert_eq!(clean.injected_flips(), 0);

    let mut faulted_out = BitVec::zeros(width);
    faulted.read_row_into(2, &mut faulted_out, 0).unwrap();
    let diff = want.xor(&faulted_out);
    assert!(faulted.injected_flips() > 0, "the certain fault must fire");
    for i in 0..width {
        assert!(i == 9 || !diff.get(i), "only the modeled column may differ, bit {i} flipped");
    }
}

fn four_bank_array() -> DeviceArray {
    DeviceArray::new(BatchConfig {
        topology: Topology::module(Geometry {
            banks: 4,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            row_bytes: 8,
        }),
        reserved_rows: 1,
        mode: CompileMode::LowLatency,
        budget: PumpBudget::unconstrained(),
    })
}

/// Banks are physically independent: a sensing fault injected into one
/// bank's stripe of a sharded operand corrupts only that stripe of the
/// merged result — every bit served by the other banks is exact.
#[test]
fn bank_fault_corrupts_only_its_stripe_of_merged_result() {
    let mut clean = four_bank_array();
    let mut faulty = four_bank_array();
    let rb = clean.row_bits();
    let bits = rb * 8; // two stripes per bank
    let a: BitVec = (0..bits).map(|i| i % 3 == 0).collect();
    let b: BitVec = (0..bits).map(|i| i % 5 != 0).collect();

    let run = |m: &mut DeviceArray, fault: Option<usize>| -> BitVec {
        let ha = m.store(&a).unwrap();
        let hb = m.store(&b).unwrap();
        if let Some(bit) = fault {
            let stripe = m.inject_bit_error(ha, bit).unwrap();
            // Bit `rb + 7` lives in the second stripe → bank 1.
            assert_eq!(stripe.bank, 1, "fault must land in bank 1's stripe");
        }
        let (hc, _) = m.binary(LogicOp::Xor, ha, hb).unwrap();
        m.load(hc).unwrap()
    };

    let fault_bit = rb + 7;
    let clean_result = run(&mut clean, None);
    assert_eq!(clean_result, a.xor(&b));
    let faulty_result = run(&mut faulty, Some(fault_bit));

    let diff = clean_result.xor(&faulty_result);
    assert_eq!(diff.count_ones(), 1, "exactly one result bit flips");
    assert!(diff.get(fault_bit), "the flip is at the faulted bit");
    // Every bit outside bank 1's stripes is untouched — in particular the
    // whole of banks 0, 2, and 3.
    for i in 0..bits {
        let bank = (i / rb) % 4;
        if bank != 1 {
            assert_eq!(faulty_result.get(i), clean_result.get(i), "bit {i} (bank {bank})");
        }
    }
}

/// Faults in different banks are independent: injecting into two banks
/// corrupts exactly the two faulted stripes, and re-running the operation
/// with fresh operands on the same array is clean again (fault state does
/// not leak across stored vectors).
#[test]
fn bank_faults_are_independent_and_do_not_leak() {
    let mut m = four_bank_array();
    let rb = m.row_bits();
    let bits = rb * 4; // one stripe per bank
    let a = BitVec::ones(bits);
    let b = BitVec::zeros(bits);

    let ha = m.store(&a).unwrap();
    let hb = m.store(&b).unwrap();
    let s0 = m.inject_bit_error(ha, 3).unwrap(); // stripe 0 → bank 0
    let s2 = m.inject_bit_error(ha, 2 * rb + 5).unwrap(); // stripe 2 → bank 2
    assert_eq!((s0.bank, s2.bank), (0, 2));
    let (hc, _) = m.binary(LogicOp::And, ha, hb).unwrap();
    let result = m.load(hc).unwrap();
    // AND with zeros masks the faults entirely (0 & x = 0)...
    assert!(result.is_zero(), "AND with zeros masks both faults");
    // ...but OR exposes exactly the two faulted columns, one per bank.
    let (ho, _) = m.binary(LogicOp::Or, ha, hb).unwrap();
    let exposed = m.load(ho).unwrap();
    let diff = a.xor(&exposed);
    assert_eq!(diff.count_ones(), 2, "exactly the two injected faults surface");
    assert!(diff.get(3) && diff.get(2 * rb + 5));

    // Fresh operands on the same array are unaffected by the old faults.
    let hx = m.store(&a).unwrap();
    let hy = m.store(&b).unwrap();
    let (hz, _) = m.binary(LogicOp::Or, hx, hy).unwrap();
    assert_eq!(m.load(hz).unwrap(), a, "fault state must not leak to new vectors");
}
