//! Property-based tests tying the abstract interpreter to the functional
//! engine: analyzer-accepted programs never trip engine runtime errors,
//! the tracked truth tables match what the engine actually computes per
//! bitline column, and analyzer verdicts are stable under the optimizer.

use elp2im::core::analysis::{analyze, verify_transform};
use elp2im::core::bitvec::BitVec;
use elp2im::core::engine::SubarrayEngine;
use elp2im::core::isa::Program;
use elp2im::core::optimizer::{optimize, PhysRow};
use elp2im::core::primitive::{Primitive, RegulateMode, RowRef};
use elp2im::core::validate::SubarrayShape;
use proptest::prelude::*;

const SHAPE: SubarrayShape = SubarrayShape { data_rows: 4, dcc_rows: 2 };
const WIDTH: usize = 8;

fn live_in() -> Vec<PhysRow> {
    (0..SHAPE.data_rows).map(PhysRow::Data).collect()
}

/// Arbitrary (often invalid) primitives over the small 4x2 subarray.
fn random_primitive() -> impl Strategy<Value = Primitive> {
    let row = prop_oneof![
        (0usize..4).prop_map(RowRef::Data),
        (0usize..2).prop_map(RowRef::DccTrue),
        (0usize..2).prop_map(RowRef::DccBar),
    ];
    let mode = prop_oneof![Just(RegulateMode::Or), Just(RegulateMode::And)];
    prop_oneof![
        row.clone().prop_map(|row| Primitive::Ap { row }),
        (row.clone(), row.clone()).prop_map(|(src, dst)| Primitive::Aap { src, dst }),
        (row.clone(), row.clone()).prop_map(|(src, dst)| Primitive::OAap { src, dst }),
        (row.clone(), mode.clone()).prop_map(|(row, mode)| Primitive::App { row, mode }),
        (row.clone(), mode.clone()).prop_map(|(row, mode)| Primitive::OApp { row, mode }),
        (row.clone(), mode.clone()).prop_map(|(row, mode)| Primitive::TApp { row, mode }),
        (row, mode).prop_map(|(row, mode)| Primitive::OtApp { row, mode }),
    ]
}

fn random_program(max_len: usize) -> impl Strategy<Value = Vec<Primitive>> {
    proptest::collection::vec(random_primitive(), 1..max_len)
}

/// One legality-preserving step: reads only rows that stay defined,
/// consumes every regulation it opens, revives every row it destroys.
fn valid_step() -> impl Strategy<Value = Vec<Primitive>> {
    let data = || (0usize..4).prop_map(RowRef::Data);
    let mode = || prop_oneof![Just(RegulateMode::Or), Just(RegulateMode::And)];
    prop_oneof![
        // Plain copy between data rows.
        (data(), data()).prop_map(|(src, dst)| vec![Primitive::Aap { src, dst }]),
        // Copy into a DCC row and read the complement port back out.
        (data(), 0usize..2, data()).prop_map(|(src, j, back)| vec![
            Primitive::OAap { src, dst: RowRef::DccTrue(j) },
            Primitive::OAap { src: RowRef::DccBar(j), dst: back },
        ]),
        // Regulated write: open a regulation, consume it into dst.
        (data(), mode(), data(), data()).prop_map(|(a, m, b, dst)| vec![
            Primitive::App { row: a, mode: m },
            Primitive::Aap { src: b, dst },
        ]),
        // Trimmed restore: destroy a row, consume the regulation reading a
        // different row, then revive the destroyed one.
        (0usize..4, mode(), 1usize..4).prop_map(|(a, m, off)| {
            let b = RowRef::Data((a + off) % 4);
            vec![
                Primitive::TApp { row: RowRef::Data(a), mode: m },
                Primitive::Ap { row: b },
                Primitive::Aap { src: b, dst: RowRef::Data(a) },
            ]
        }),
    ]
}

/// Programs that are valid by construction (the analyzer accepts them),
/// so properties about accepted programs get full case coverage.
fn valid_program(max_steps: usize) -> impl Strategy<Value = Vec<Primitive>> {
    proptest::collection::vec(valid_step(), 1..max_steps)
        .prop_map(|steps| steps.into_iter().flatten().collect())
}

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|v| BitVec::from_bools(&v))
}

/// Runs `prog` on the engine and checks the analyzer's claims against it:
/// no engine fault, matching pending-regulation state, and every tracked
/// truth table equal, column by column, to the computed row under that
/// column's live-in assignment.
fn check_against_engine(prog: &Program, rows: &[BitVec]) -> Result<(), TestCaseError> {
    let report = analyze(prog, SHAPE, &live_in());
    prop_assert!(report.is_accepted(), "rejected: {:?}", report.to_violations());
    prop_assert!(report.tracked(), "4 live-ins fit the var budget");

    let mut e = SubarrayEngine::new(WIDTH, 4, 2);
    for (r, bits) in rows.iter().enumerate() {
        e.write_row(r, bits.clone()).unwrap();
    }
    let result = e.run(prog.primitives());
    prop_assert!(result.is_ok(), "accepted program faulted: {:?}", result);
    prop_assert_eq!(e.has_pending_regulation(), report.has_pending_regulation());

    let vars = report.variables();
    for c in 0..WIDTH {
        let mut m = 0usize;
        for (j, v) in vars.iter().enumerate() {
            let PhysRow::Data(i) = *v else { panic!("live-in vars are data rows") };
            m |= usize::from(rows[i].get(c)) << j;
        }
        for r in 0..4 {
            if let Some(tt) = report.row_value(PhysRow::Data(r)) {
                prop_assert_eq!(
                    e.row(RowRef::Data(r)).unwrap().get(c),
                    tt.eval(m),
                    "row r{} column {} disagrees with its truth table",
                    r,
                    c
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of acceptance, plus exactness of the value tracking, on
    /// programs that are valid by construction (full case coverage).
    #[test]
    fn accepted_programs_run_clean_and_match_truth_tables(
        prims in valid_program(5),
        rows in proptest::collection::vec(bitvec_strategy(WIDTH), 4),
    ) {
        check_against_engine(&Program::new("valid", prims), &rows)?;
    }

    /// The same claims hold for whichever arbitrary programs happen to be
    /// accepted — the analyzer must never bless a faulting sequence.
    #[test]
    fn arbitrary_accepted_programs_are_sound(
        prims in random_program(12),
        rows in proptest::collection::vec(bitvec_strategy(WIDTH), 4),
    ) {
        let prog = Program::new("random", prims);
        if analyze(&prog, SHAPE, &live_in()).is_accepted() {
            check_against_engine(&prog, &rows)?;
        }
    }

    /// The analyzer's verdict survives the optimizer: an accepted program
    /// stays accepted after `optimize()` (whose debug-build translation
    /// validation also runs here, doubling the coverage).
    #[test]
    fn verdicts_are_stable_under_optimize(prims in valid_program(5)) {
        let prog = Program::new("valid", prims);
        let report = analyze(&prog, SHAPE, &live_in());
        prop_assert!(report.is_accepted(), "{:?}", report.to_violations());

        let optimized = optimize(&prog, &live_in(), true);
        let after = analyze(&optimized, SHAPE, &live_in());
        prop_assert!(
            after.is_accepted(),
            "optimize() broke acceptance: {:?}",
            after.to_violations()
        );
        prop_assert_eq!(report.has_pending_regulation(), after.has_pending_regulation());
    }

    /// Swapping the operands of an AND-NOT computation is always caught by
    /// the translation validator with a concrete counterexample, whatever
    /// rows are chosen (provided the swap changes the function).
    #[test]
    fn operand_swaps_never_validate(a in 0usize..3, b in 0usize..3) {
        prop_assume!(a != b);
        let half = |x: usize, y: usize| {
            Program::new(
                "half",
                vec![
                    Primitive::App { row: RowRef::Data(y), mode: RegulateMode::And },
                    Primitive::Aap { src: RowRef::Data(x), dst: RowRef::Data(3) },
                ],
            )
        };
        let v = verify_transform(&half(a, b), &half(b, a), None);
        prop_assert!(v.is_err(), "swapped operands validated");
    }
}
