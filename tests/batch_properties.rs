//! Property-based tests over the bank-parallel batch execution layer:
//! sharded execution is bit-identical to single-bank execution (and to
//! software Boolean logic) for arbitrary widths, bank counts, and data,
//! and the scheduled wall-clock makespan never exceeds what serial
//! execution would take.

use elp2im::core::batch::{BatchConfig, DeviceArray};
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::{CompileMode, LogicOp};
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::geometry::{Geometry, Topology};
use proptest::prelude::*;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|v| BitVec::from_bools(&v))
}

fn binary_ops() -> impl Strategy<Value = LogicOp> {
    prop_oneof![
        Just(LogicOp::And),
        Just(LogicOp::Or),
        Just(LogicOp::Nand),
        Just(LogicOp::Nor),
        Just(LogicOp::Xor),
        Just(LogicOp::Xnor),
    ]
}

fn array(banks: usize, budget: PumpBudget) -> DeviceArray {
    DeviceArray::new(BatchConfig {
        // 64-bit rows keep vectors multi-stripe even at small lengths.
        topology: Topology::module(Geometry {
            banks,
            subarrays_per_bank: 2,
            rows_per_subarray: 64,
            row_bytes: 8,
        }),
        reserved_rows: 1,
        mode: CompileMode::LowLatency,
        budget,
    })
}

fn run_once(
    banks: usize,
    budget: PumpBudget,
    op: LogicOp,
    a: &BitVec,
    b: &BitVec,
) -> (BitVec, elp2im::core::batch::BatchRun) {
    let mut m = array(banks, budget);
    let ha = m.store(a).unwrap();
    let hb = m.store(b).unwrap();
    let (hc, run) = m.binary(op, ha, hb).unwrap();
    (m.load(hc).unwrap(), run)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharding across 2..=8 banks produces exactly the bits a
    /// single-bank (fully serial placement) array produces, which in turn
    /// match software Boolean logic.
    #[test]
    fn sharded_execution_is_bit_identical_to_single_bank(
        banks in 2usize..=8,
        bits in 1usize..=700,
        op in binary_ops(),
        seed in 0u64..u64::MAX,
    ) {
        let mut data = bitvec_strategy(2 * bits)
            .sample(&mut proptest::test_runner::TestRng::deterministic(&seed.to_string()));
        let b = BitVec::from_bools(&data.to_bools()[bits..]);
        data = BitVec::from_bools(&data.to_bools()[..bits]);
        let a = data;

        let (wide, _) = run_once(banks, PumpBudget::unconstrained(), op, &a, &b);
        let (narrow, _) = run_once(1, PumpBudget::unconstrained(), op, &a, &b);
        prop_assert_eq!(&wide, &narrow, "{} banks vs 1 bank", banks);

        let software: BitVec = (0..bits).map(|i| op.eval(a.get(i), b.get(i))).collect();
        prop_assert_eq!(wide, software);
    }

    /// The scheduled makespan never exceeds serial execution: without the
    /// pump constraint `makespan <= busy_time` outright, and under the
    /// JEDEC window the excess is exactly bounded by the recorded stalls.
    #[test]
    fn makespan_never_exceeds_serial_time(
        banks in 1usize..=8,
        stripes in 1usize..=12,
        op in binary_ops(),
    ) {
        let bits = 64 * stripes;
        let a = BitVec::ones(bits);
        let b: BitVec = (0..bits).map(|i| i % 3 == 0).collect();

        let (_, free) = run_once(banks, PumpBudget::unconstrained(), op, &a, &b);
        let fs = free.stats();
        prop_assert!(fs.pump_stall.as_f64() == 0.0);
        prop_assert!(
            fs.makespan.as_f64() <= fs.busy_time.as_f64() * (1.0 + 1e-9),
            "makespan {} > busy {}", fs.makespan, fs.busy_time
        );

        let (_, tight) = run_once(banks, PumpBudget::jedec_ddr3_1600(), op, &a, &b);
        let ts = tight.stats();
        prop_assert!(
            ts.makespan.as_f64()
                <= (ts.busy_time.as_f64() + ts.pump_stall.as_f64()) * (1.0 + 1e-9),
            "makespan {} > busy {} + stalls {}", ts.makespan, ts.busy_time, ts.pump_stall
        );
        // Constraining the pump can only slow the batch down.
        prop_assert!(ts.makespan.as_f64() >= fs.makespan.as_f64() * (1.0 - 1e-9));
    }

    /// Striping round-trips exactly for arbitrary lengths and bank counts.
    #[test]
    fn store_load_roundtrip(
        banks in 1usize..=8,
        bits in 1usize..=700,
        seed in 0u64..u64::MAX,
    ) {
        let v = bitvec_strategy(bits)
            .sample(&mut proptest::test_runner::TestRng::deterministic(&seed.to_string()));
        let mut m = array(banks, PumpBudget::unconstrained());
        let h = m.store(&v).unwrap();
        prop_assert_eq!(m.load(h).unwrap(), v);
    }

    /// With more stripes than banks, every bank carries work and the
    /// unconstrained makespan shrinks by the full bank count.
    #[test]
    fn makespan_scales_with_banks(
        banks in 2usize..=8,
        waves in 1usize..=4,
    ) {
        let bits = 64 * banks * waves;
        let a = BitVec::ones(bits);
        let b = BitVec::zeros(bits);
        let (_, run) = run_once(banks, PumpBudget::unconstrained(), LogicOp::And, &a, &b);
        let s = run.stats();
        prop_assert_eq!(run.banks_used, banks);
        let speedup = s.busy_time.as_f64() / s.makespan.as_f64();
        prop_assert!(
            (speedup - banks as f64).abs() < 1e-6,
            "expected {}x speedup, got {:.4}x", banks, speedup
        );
    }
}
