//! End-to-end assertions of the paper's headline claims, spanning crates.

use elp2im::apps::backend::{OpKind, PimBackend};
use elp2im::apps::bitmap::BitmapStudy;
use elp2im::apps::dracc::{table2_networks, DraccStudy};
use elp2im::apps::nid::{table3_networks, NidStudy};
use elp2im::apps::tablescan::TableScanStudy;
use elp2im::core::compile::{CompileMode, LogicOp};
use elp2im::dram::timing::Ddr3Timing;

/// Abstract: "the power efficiency of ELP2IM is more than 2× improvement
/// over the state-of-the-art DRAM based memory-centric designs in real
/// application" — interpreted as bits of bulk work per joule in the
/// power-constrained bitmap study.
#[test]
fn abstract_claim_power_efficiency() {
    let elp = PimBackend::elp2im_high_throughput();
    let ambit = PimBackend::ambit();
    // Energy per in-place AND row-op vs Ambit's AND row-op.
    let kind = OpKind::InPlace(LogicOp::And);
    let e_elp = {
        let profiles = elp.kind_profiles(kind);
        profiles.iter().map(|p| elp.power.command_energy(p).as_f64()).sum::<f64>()
    };
    let e_ambit = ambit.op_energy(LogicOp::And).as_f64();
    assert!(e_ambit / e_elp > 2.0, "energy per AND: ambit {e_ambit:.0} pJ vs elp2im {e_elp:.0} pJ");
}

/// §1: "we shorten the average latency by up to 1.23×" (basic ops, with
/// the extra buffer).
#[test]
fn intro_claim_latency_1_23x() {
    let t = Ddr3Timing::ddr3_1600();
    let elp2 = PimBackend::new(elp2im::apps::backend::DesignKind::Elp2im {
        mode: CompileMode::LowLatency,
        reserved_rows: 2,
    });
    let ambit = PimBackend::ambit();
    let mean: f64 = LogicOp::ALL
        .iter()
        .map(|&op| ambit.op_latency(op).as_f64() / elp2.op_latency(op).as_f64())
        .sum::<f64>()
        / 7.0;
    assert!((1.18..=1.28).contains(&mean), "mean speedup {mean:.3} (paper 1.23)");
    let _ = t;
}

/// §1: "we save up to 2.45× row activations, thereby expanding bank level
/// parallelism" — the in-place AND uses 5× fewer wordline events than
/// Ambit's AND, and ≥2.45× fewer in the full sequences.
#[test]
fn intro_claim_row_activation_savings() {
    let elp = PimBackend::elp2im_high_throughput();
    let ambit = PimBackend::ambit();
    let wl = |profiles: &[elp2im::dram::command::CommandProfile]| -> u64 {
        profiles.iter().map(|p| u64::from(p.total_wordline_events)).sum()
    };
    let inplace = wl(&elp.kind_profiles(OpKind::InPlace(LogicOp::And)));
    let ambit_and = wl(&ambit.op_profiles(LogicOp::And));
    assert!(ambit_and as f64 / inplace as f64 >= 2.45);
    // Fresh ops too: 3-command ELP2IM AND (5 events) vs Ambit (10).
    let fresh = wl(&elp.kind_profiles(OpKind::Fresh(LogicOp::And)));
    assert!(ambit_and as f64 / fresh as f64 >= 1.9, "fresh AND: {fresh} vs {ambit_and}");
}

/// Conclusion: "in bitmap and table scan application, ELP2IM achieves up
/// to 3.2× throughput improvement in consideration of power constraint"
/// (over the Ambit baseline).
#[test]
fn conclusion_claim_constrained_throughput() {
    let bitmap = BitmapStudy::paper_setup(4);
    let ts = TableScanStudy::paper_setup();
    let elp = PimBackend::elp2im_high_throughput();
    let ambit = PimBackend::ambit();
    let bitmap_gain =
        bitmap.device_throughput_bits_per_ns(&elp) / bitmap.device_throughput_bits_per_ns(&ambit);
    let scan_gain = ts.device_throughput(&elp, 16) / ts.device_throughput(&ambit, 16);
    let best = bitmap_gain.max(scan_gain);
    assert!(
        (2.0..=6.0).contains(&best),
        "best constrained gain {best:.2} (paper: up to 3.2x); bitmap {bitmap_gain:.2}, scan {scan_gain:.2}"
    );
}

/// Conclusion: "without the limitation of power constraint, ELP2IM still
/// achieves up to 1.26× throughput in CNN applications."
#[test]
fn conclusion_claim_cnn_throughput() {
    let nid = NidStudy::paper_setup();
    let dracc = DraccStudy::paper_setup();
    let elp = PimBackend::elp2im_accelerator();
    let ambit = PimBackend::ambit().without_power_constraint();

    let nid_best = table3_networks()
        .iter()
        .map(|n| nid.fps(n, &elp) / nid.fps(n, &ambit))
        .fold(0.0f64, f64::max);
    assert!((1.2..=1.35).contains(&nid_best), "NID best gain {nid_best:.2}");

    let dracc_mean: f64 = {
        let nets = table2_networks();
        nets.iter().map(|n| dracc.fps(n, &elp) / dracc.fps(n, &ambit)).sum::<f64>()
            / nets.len() as f64
    };
    assert!((1.05..=1.18).contains(&dracc_mean), "DrAcc mean gain {dracc_mean:.2} (paper 1.12)");
}

/// §5.2: only one reserved row, and 22 % less array overhead than Ambit.
#[test]
fn reserved_space_claims() {
    use elp2im::baselines::area::{array_overhead_rows, reserved_rows, Design};
    assert_eq!(reserved_rows(Design::Elp2im), 1);
    assert_eq!(reserved_rows(Design::Ambit), 8);
    let ratio = array_overhead_rows(Design::Elp2im) / array_overhead_rows(Design::Ambit);
    assert!((0.74..=0.82).contains(&ratio), "overhead ratio {ratio:.3}");
}

/// §6.3 power claim: "the power of ELP2IM is 17–27 % less than Ambit" in
/// the case studies — checked as energy per unit of bitmap work.
#[test]
fn case_study_power_savings() {
    let elp = PimBackend::elp2im_high_throughput();
    let ambit = PimBackend::ambit();
    // Bitmap mix: in-place ANDs.
    let mix_e = [(OpKind::InPlace(LogicOp::And), 100u64)];
    let mix_a = [(OpKind::Fresh(LogicOp::And), 100u64)];
    let e = elp.device_energy_mix(&mix_e).as_f64();
    let a = ambit.device_energy_mix(&mix_a).as_f64();
    let saving = 1.0 - e / a;
    assert!(
        saving > 0.17,
        "ELP2IM should save >17% energy on the bitmap mix, got {:.0}%",
        saving * 100.0
    );
}
