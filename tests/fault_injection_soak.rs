//! Fault-injection soak of the batch executor: a mid-grade chip profile
//! installs per-bank fault models under a 4-bank [`DeviceArray`], and a
//! long random workload must meet the target logical error rate with the
//! retry/verify policy on — and miss it with the policy off.
//!
//! `ELP2IM_SOAK_OPS` shortens the run for CI smoke (default 120 ops).

use elp2im::circuit::profile::{ChipProfile, ProfileConfig};
use elp2im::core::batch::{BatchConfig, DeviceArray};
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::{CompileMode, LogicOp};
use elp2im::core::faulty::{ColumnFaultModel, FaultPolicy};
use elp2im::dram::constraint::PumpBudget;
use elp2im::dram::geometry::{Geometry, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SOAK_SEED: u64 = 0x50AB_5007;
/// Logical error rate the fault-aware policy must stay at or under.
const TARGET: f64 = 0.05;
/// Columns above this raw probability count as factory-repaired
/// (remapped to spares), mirroring the BENCH_007 derating.
const REPAIR: f64 = 0.08;

fn soak_ops() -> usize {
    std::env::var("ELP2IM_SOAK_OPS").ok().and_then(|s| s.parse().ok()).unwrap_or(120)
}

/// 4 banks × 2 subarrays × 32 rows of 256 bits — row width matches the
/// profile's column count.
fn faulted_array() -> DeviceArray {
    let mut m = DeviceArray::new(BatchConfig {
        topology: Topology::module(Geometry {
            banks: 4,
            subarrays_per_bank: 2,
            rows_per_subarray: 32,
            row_bytes: 32,
        }),
        reserved_rows: 2,
        mode: CompileMode::LowLatency,
        budget: PumpBudget::unconstrained(),
    });
    let profile = ChipProfile::sample(ProfileConfig::mid_grade(SOAK_SEED, 4, m.row_bits()));
    let models = (0..4)
        .map(|bank| {
            let probs: Vec<f64> = profile
                .column_probabilities(bank)
                .into_iter()
                .map(|p| if p > REPAIR { 0.0 } else { p })
                .collect();
            Some(ColumnFaultModel::new(SOAK_SEED, bank, probs))
        })
        .collect();
    m.set_fault_models(models);
    m
}

fn software_op(op: LogicOp, a: &BitVec, b: &BitVec) -> BitVec {
    match op {
        LogicOp::And => a.and(b),
        LogicOp::Or => a.or(b),
        _ => a.xor(b),
    }
}

/// Runs the soak workload and returns (logical errors, ops, injected
/// flips). Every vector spans all four banks, so every bank's fault model
/// is in play on every operation.
fn run_workload(m: &mut DeviceArray, policy: &FaultPolicy, ops: usize) -> (usize, usize, u64) {
    let bits = m.row_bits() * 4;
    let mut rng = SmallRng::seed_from_u64(SOAK_SEED ^ 0x0050_AB11);
    let base_rows = 6usize;
    let mut truth = Vec::with_capacity(base_rows);
    let mut bases = Vec::with_capacity(base_rows);
    for _ in 0..base_rows {
        let v: BitVec = (0..bits).map(|_| rng.gen_bool(0.5)).collect();
        bases.push(m.store(&v).unwrap());
        truth.push(v);
    }
    let mut errors = 0usize;
    for _ in 0..ops {
        let op = match rng.gen_range(0..3u32) {
            0 => LogicOp::And,
            1 => LogicOp::Or,
            _ => LogicOp::Xor,
        };
        let ia = rng.gen_range(0..base_rows);
        let mut ib = rng.gen_range(0..base_rows);
        if ib == ia {
            ib = (ib + 1) % base_rows;
        }
        let checked = m.binary_checked(op, bases[ia], bases[ib], policy).unwrap();
        if m.load(checked.handle).unwrap() != software_op(op, &truth[ia], &truth[ib]) {
            errors += 1;
        }
        m.release(checked.handle).unwrap();
    }
    (errors, ops, m.injected_flips())
}

#[test]
fn soak_meets_target_error_rate_with_policy_on() {
    let mut m = faulted_array();
    let policy = FaultPolicy { verify: true, max_retries: 8 };
    let (errors, ops, flips) = run_workload(&mut m, &policy, soak_ops());
    let rate = errors as f64 / ops as f64;
    assert!(flips > 0, "the fault models never fired — the soak is vacuous");
    assert!(rate <= TARGET, "policy-on error rate {rate} exceeds target {TARGET} ({errors}/{ops})");
    let metrics = m.reliability_metrics();
    assert_eq!(metrics.counter("checked_ops"), ops as u64);
    assert!(metrics.counter("verify_recomputes") >= ops as u64, "every op is at risk");
    assert!(metrics.counter("retries") > 0, "faults this dense must force retries");
}

#[test]
fn soak_misses_target_error_rate_with_policy_off() {
    let mut m = faulted_array();
    let policy = FaultPolicy { verify: false, max_retries: 0 };
    let (errors, ops, flips) = run_workload(&mut m, &policy, soak_ops());
    let rate = errors as f64 / ops as f64;
    assert!(flips > 0);
    assert!(
        rate > TARGET,
        "policy-off error rate {rate} under target {TARGET} — the soak is not discriminating"
    );
    assert_eq!(m.reliability_metrics().counter("verify_recomputes"), 0);
}

#[test]
fn soak_is_deterministic_across_runs() {
    let policy = FaultPolicy { verify: true, max_retries: 8 };
    let ops = soak_ops().min(48);
    let mut a = faulted_array();
    let mut b = faulted_array();
    assert_eq!(run_workload(&mut a, &policy, ops), run_workload(&mut b, &policy, ops));
    assert_eq!(
        a.reliability_metrics().counter("retries"),
        b.reliability_metrics().counter("retries")
    );
}

#[test]
fn single_stripe_vectors_land_on_the_most_reliable_bank() {
    let mut m = faulted_array();
    let best = m.bank_ranking()[0];
    let worst = *m.bank_ranking().last().unwrap();
    let cleaner = m.fault_model(best).map(ColumnFaultModel::mean_error).unwrap_or(0.0);
    let dirtier = m.fault_model(worst).map(ColumnFaultModel::mean_error).unwrap_or(0.0);
    assert!(cleaner <= dirtier, "ranking must order banks by mean error");
    let h = m.store(&BitVec::ones(m.row_bits())).unwrap();
    let placement = m.placement(h).unwrap();
    assert_eq!(placement.len(), 1);
    assert_eq!(placement[0].bank, best, "one-stripe vector must go to the cleanest bank");
}
