//! Property tests of the chunked parallel Monte-Carlo engine:
//!
//! * parallel `error_rate_point`/`sweep` equal the serial path
//!   bit-for-bit across thread counts {1, 2, 7, 8};
//! * Wilson confidence intervals cover the analytic rate of a
//!   closed-form Bernoulli trial stream driven through the same chunk
//!   machinery;
//! * adaptive early-stop is itself thread-count invariant;
//! * every design × PV-mode combination owns a distinct RNG stream (the
//!   label-length seed-collision regression).

use elp2im::circuit::montecarlo::{
    chunk_key, run_chunked, stream_key, wilson_interval, Design, EarlyStop, MonteCarlo,
};
use elp2im::circuit::params::CircuitParams;
use elp2im::circuit::variation::{PvMode, VariationSample};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const DESIGNS: [Design; 4] = [
    Design::RegularDram,
    Design::Elp2im { alternative: false },
    Design::Elp2im { alternative: true },
    Design::AmbitTra,
];

fn mc(trials: usize) -> MonteCarlo {
    MonteCarlo::paper_setup().with_trials(trials)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The chunk grid never moves: any thread count reproduces the
    /// serial point exactly — errors, trials, rate, and interval.
    #[test]
    fn parallel_point_equals_serial_bit_for_bit(
        design_i in 0usize..4,
        mode_i in 0usize..2,
        sigma in 0.02f64..0.14,
        trials in 1usize..20_000,
    ) {
        let design = DESIGNS[design_i];
        let mode = if mode_i == 0 { PvMode::Random } else { PvMode::Systematic };
        let serial = mc(trials).with_threads(1).error_rate_point(design, mode, sigma);
        for threads in [2usize, 7, 8] {
            let par = mc(trials).with_threads(threads).error_rate_point(design, mode, sigma);
            assert_eq!(serial, par, "threads {threads} diverged for {}/{mode:?}", design.label());
        }
        assert_eq!(serial.trials, trials as u64);
    }

    /// Whole sweeps agree too (the fig11 grid is built from these).
    #[test]
    fn parallel_sweep_equals_serial(
        design_i in 0usize..4,
        trials in 1usize..10_000,
    ) {
        let design = DESIGNS[design_i];
        let sigmas = [0.04, 0.08, 0.12];
        let serial = mc(trials).with_threads(1).sweep(design, PvMode::Random, &sigmas);
        for threads in [2usize, 7, 8] {
            let par = mc(trials).with_threads(threads).sweep(design, PvMode::Random, &sigmas);
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    /// Closed-form margin case: a Bernoulli(p) trial stream through the
    /// same chunk machinery. The Wilson interval at z = 4.5 must cover
    /// the analytic rate p (miss probability ≈ 7e-6 per case, and the
    /// sampling is deterministic, so this cannot flake).
    #[test]
    fn wilson_ci_covers_closed_form_bernoulli(
        p in 0.05f64..0.95,
        key in 0u64..(1 << 48),
    ) {
        let point = run_chunked(20_000, 3, key, None, |rng| rng.gen::<f64>() < p);
        assert_eq!(point.trials, 20_000);
        let (lo, hi) = wilson_interval(point.errors, point.trials, 4.5);
        assert!(lo <= p && p <= hi, "analytic rate {p} outside [{lo}, {hi}]");
        // The reported 95 % interval always brackets the point estimate.
        assert!(point.wilson_ci.0 <= point.rate && point.rate <= point.wilson_ci.1);
    }

    /// Early-stop decisions are made on fixed wave boundaries, so the
    /// stopped trial count matches at every thread count — and the rule
    /// actually fires when the threshold is far from the true rate.
    #[test]
    fn early_stop_is_thread_count_invariant(
        threshold in 0.3f64..0.7,
        key in 0u64..(1 << 48),
    ) {
        let rule = EarlyStop::at(threshold);
        let run = |threads| {
            run_chunked(1_000_000, threads, key, Some(rule), |rng| rng.gen::<f64>() < 0.05)
        };
        let serial = run(1);
        for threads in [2usize, 7, 8] {
            assert_eq!(serial, run(threads), "threads {threads}");
        }
        assert!(serial.trials < 1_000_000, "rule never fired ({} trials)", serial.trials);
        let (lo, hi) = serial.wilson_ci;
        assert!(hi < threshold || lo > threshold, "stopped while CI still straddles threshold");
    }
}

/// Regression for the `design.label().len()` seed component: all four
/// designs (and both PV modes) must draw pairwise-distinct variation
/// streams at equal `(mode, sigma)`, so correlated Fig. 11 curves can
/// never silently reappear.
#[test]
fn designs_draw_pairwise_distinct_trial_streams() {
    let sigma = 0.08;
    let params = CircuitParams::long_bitline();
    let mut streams: Vec<(String, u64, Vec<VariationSample>)> = Vec::new();
    for mode in [PvMode::Random, PvMode::Systematic] {
        for d in DESIGNS {
            let key = stream_key(0xE1F2, d, mode, sigma);
            let mut rng = SmallRng::seed_from_u64(chunk_key(key, 0));
            let draws: Vec<VariationSample> =
                (0..8).map(|_| VariationSample::draw(&mut rng, mode, sigma, &params)).collect();
            streams.push((format!("{}/{mode:?}", d.label()), key, draws));
        }
    }
    for i in 0..streams.len() {
        for j in i + 1..streams.len() {
            assert_ne!(
                streams[i].1, streams[j].1,
                "stream keys collide: {} vs {}",
                streams[i].0, streams[j].0
            );
            assert_ne!(
                streams[i].2, streams[j].2,
                "trial streams collide: {} vs {}",
                streams[i].0, streams[j].0
            );
        }
    }
}

#[test]
#[should_panic(expected = "trial count must be positive")]
fn zero_trial_configuration_is_rejected() {
    let _ = MonteCarlo::paper_setup().with_trials(0);
}
