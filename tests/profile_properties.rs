//! Property tests of the per-chip reliability profile:
//!
//! * the offset map is a pure function of the seed — resampling
//!   reproduces it bit-for-bit;
//! * the parallel sampler is thread-count invariant across {1, 2, 8};
//! * `to_json`/`from_json` round-trips losslessly (the seed travels as a
//!   hex string, knobs as shortest-round-trip floats);
//! * temperature and sigma knobs move every column's error probability
//!   monotonically (they act analytically on fixed offsets, never
//!   resampling).

use elp2im::circuit::profile::{ChipProfile, DataPattern, ProfileConfig};
use proptest::prelude::*;

fn config(seed: u64, temperature_c: f64, sigma: f64, pattern: DataPattern) -> ProfileConfig {
    ProfileConfig { seed, banks: 3, columns: 96, temperature_c, sigma, pattern }
}

const PATTERNS: [DataPattern; 4] =
    [DataPattern::Zeros, DataPattern::Ones, DataPattern::Checkerboard, DataPattern::Random];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, same profile — resampling is bit-identical, different
    /// seeds differ somewhere.
    #[test]
    fn profile_is_a_pure_function_of_the_seed(seed in any::<u64>()) {
        let cfg = config(seed, 45.0, 0.3, DataPattern::Random);
        let a = ChipProfile::sample(cfg);
        let b = ChipProfile::sample(cfg);
        prop_assert_eq!(&a, &b);
        let other = ChipProfile::sample(config(seed ^ 1, 45.0, 0.3, DataPattern::Random));
        let differs = (0..cfg.banks)
            .any(|bank| (0..cfg.columns).any(|c| a.offset(bank, c) != other.offset(bank, c)));
        prop_assert!(differs, "seed {} and {} produced identical maps", seed, seed ^ 1);
    }

    /// The chunked parallel sampler reassembles the exact serial map for
    /// every thread count.
    #[test]
    fn sampling_is_thread_count_invariant(seed in any::<u64>()) {
        let cfg = config(seed, 45.0, 0.3, DataPattern::Random);
        let serial = ChipProfile::sample_with_threads(cfg, 1);
        for threads in [2usize, 8] {
            let parallel = ChipProfile::sample_with_threads(cfg, threads);
            prop_assert_eq!(&serial, &parallel, "thread count {} diverged", threads);
        }
    }

    /// Export → import reproduces the profile exactly: config fields,
    /// offsets, and therefore every derived probability.
    #[test]
    fn json_round_trip_is_lossless(
        seed in any::<u64>(),
        temp_i in 0usize..4,
        sigma_i in 0usize..4,
        pattern_i in 0usize..4,
    ) {
        let temperature_c = [-25.0, 20.0, 45.0, 85.0][temp_i];
        let sigma = [0.05, 0.17, 0.3, 0.55][sigma_i];
        let cfg = config(seed, temperature_c, sigma, PATTERNS[pattern_i]);
        let profile = ChipProfile::sample(cfg);
        let doc = profile.to_json();
        let text = doc.pretty();
        let parsed = elp2im::dram::json::Json::parse(&text).expect("emitted JSON parses");
        let restored = ChipProfile::from_json(&parsed).expect("round-trip imports");
        prop_assert_eq!(&profile, &restored);
    }

    /// Heating the chip (or widening process variation) never makes any
    /// column more reliable: the knobs act analytically on the fixed
    /// offset map, so monotonicity holds per column, not just on average.
    #[test]
    fn temperature_and_sigma_are_monotone_knobs(seed in any::<u64>()) {
        let cold = ChipProfile::sample(config(seed, 20.0, 0.3, DataPattern::Random));
        let hot = ChipProfile::sample(config(seed, 85.0, 0.3, DataPattern::Random));
        let tight = ChipProfile::sample(config(seed, 45.0, 0.15, DataPattern::Random));
        let loose = ChipProfile::sample(config(seed, 45.0, 0.45, DataPattern::Random));
        for bank in 0..3 {
            for col in 0..96 {
                prop_assert!(
                    hot.error_probability(bank, col) >= cold.error_probability(bank, col),
                    "heating lowered p at ({}, {})", bank, col
                );
                prop_assert!(
                    loose.error_probability(bank, col) >= tight.error_probability(bank, col),
                    "widening sigma lowered p at ({}, {})", bank, col
                );
            }
        }
    }
}

/// The stress ordering of the data-pattern knob: random > checkerboard >
/// ones > zeros, per column (deterministic spot check, no proptest).
#[test]
fn data_pattern_stress_ordering_holds_per_column() {
    let seed = 0xCAFE_F00D;
    let profiles: Vec<ChipProfile> =
        PATTERNS.iter().map(|&p| ChipProfile::sample(config(seed, 45.0, 0.3, p))).collect();
    for bank in 0..3 {
        for col in 0..96 {
            let ps: Vec<f64> = profiles.iter().map(|p| p.error_probability(bank, col)).collect();
            // PATTERNS order: Zeros, Ones, Checkerboard, Random.
            assert!(ps[0] <= ps[1] && ps[1] <= ps[2] && ps[2] <= ps[3], "({bank}, {col}): {ps:?}");
        }
    }
}
