#!/usr/bin/env bash
# Full local gate: formatting, lints, and the complete test suite.
# CI (.github/workflows/ci.yml) runs exactly these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> bench binaries (--smoke: render -> parse -> schema-validate every report)"
cargo run -q --release -p elp2im-bench --bin all_experiments -- --smoke > /dev/null

echo "==> fig11 --selftest (serial vs parallel Monte-Carlo agreement)"
cargo run -q --release -p elp2im-bench --bin fig11 -- --selftest

echo "==> fig13 --trace-json round trip"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q --release -p elp2im-bench --bin fig13 -- --trace-json "$trace_dir/trace.json" > /dev/null
grep -q '"elp2im-trace-v1"' "$trace_dir/trace.json"

echo "All checks passed."
