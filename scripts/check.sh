#!/usr/bin/env bash
# Full local gate: formatting, lints, and the complete test suite.
# CI (.github/workflows/ci.yml) runs exactly these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> bench binaries (--smoke: render -> parse -> schema-validate every report)"
cargo run -q --release -p elp2im-bench --bin all_experiments -- --smoke > /dev/null

echo "==> fig11 --selftest (serial vs parallel Monte-Carlo agreement)"
cargo run -q --release -p elp2im-bench --bin fig11 -- --selftest

echo "==> elp2im-lint over the golden corpus (no errors, no warnings)"
cargo run -q --release -p elp2im-bench --bin elp2im-lint -- --corpus --deny-warnings > /dev/null

echo "==> elp2im-lint --self-test (optimizer translation validation)"
cargo run -q --release -p elp2im-bench --bin elp2im-lint -- --self-test

echo "==> elp2im-lint rejects every seeded-invalid fixture"
for fixture in crates/bench/tests/lint_fixtures/invalid_*.prmt; do
    if cargo run -q --release -p elp2im-bench --bin elp2im-lint -- "$fixture" > /dev/null 2>&1; then
        echo "lint accepted invalid fixture $fixture" >&2
        exit 1
    fi
done

echo "==> elp2im-lint --plan over the plan corpus (no errors, no warnings)"
cargo run -q --release -p elp2im-bench --bin elp2im-lint -- --plan --corpus --deny-warnings > /dev/null

echo "==> elp2im-lint --plan rejects every seeded-invalid plan fixture"
for fixture in crates/bench/tests/lint_fixtures/plan_invalid_*.prmt; do
    if cargo run -q --release -p elp2im-bench --bin elp2im-lint -- --plan "$fixture" > /dev/null 2>&1; then
        echo "plan verifier accepted invalid plan $fixture" >&2
        exit 1
    fi
done

echo "==> fig13 --trace-json round trip"
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
cargo run -q --release -p elp2im-bench --bin fig13 -- --trace-json "$trace_dir/trace.json" > /dev/null
grep -q '"elp2im-trace-v1"' "$trace_dir/trace.json"

echo "==> perf_report smoke (emit + schema-validate BENCH_006)"
cargo run -q --release -p elp2im-bench --bin perf_report -- --smoke --out "$trace_dir/bench_006.json" > /dev/null
cargo run -q --release -p elp2im-bench --bin perf_report -- --check "$trace_dir/bench_006.json"
cargo run -q --release -p elp2im-bench --bin perf_report -- --check BENCH_006.json

echo "==> fault-injection soak smoke (emit + validate BENCH_007)"
ELP2IM_SOAK_OPS=24 cargo test -q --test fault_injection_soak > /dev/null
cargo run -q --release -p elp2im-bench --bin perf_report -- --soak --smoke --out "$trace_dir/bench_007.json" > /dev/null
cargo run -q --release -p elp2im-bench --bin perf_report -- --check "$trace_dir/bench_007.json"
cargo run -q --release -p elp2im-bench --bin perf_report -- --check BENCH_007.json

echo "==> topology scaling (emit + validate BENCH_008, deterministic)"
cargo run -q --release -p elp2im-bench --bin perf_report -- --topology --out "$trace_dir/bench_008.json" > /dev/null
cargo run -q --release -p elp2im-bench --bin perf_report -- --check "$trace_dir/bench_008.json"
cargo run -q --release -p elp2im-bench --bin perf_report -- --check BENCH_008.json

echo "==> logic synthesis (emit + validate BENCH_009, deterministic; auto-XOR <= 297 ns)"
cargo run -q --release -p elp2im-bench --bin perf_report -- --synth --out "$trace_dir/bench_009.json" > /dev/null
cargo run -q --release -p elp2im-bench --bin perf_report -- --check "$trace_dir/bench_009.json"
cargo run -q --release -p elp2im-bench --bin perf_report -- --check BENCH_009.json

echo "==> batch bench smoke (vendored criterion --smoke fast path)"
cargo bench -q -p elp2im-bench --bench batch -- --smoke > /dev/null

echo "All checks passed."
