#!/usr/bin/env bash
# Full local gate: formatting, lints, and the complete test suite.
# CI (.github/workflows/ci.yml) runs exactly these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "All checks passed."
