//! # ELP2IM — Efficient and Low Power Bitwise Operation Processing in DRAM
//!
//! A from-scratch Rust reproduction of *ELP2IM* (Xin, Zhang, Yang; HPCA
//! 2020), including every substrate its evaluation depends on.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`dram`] — DDR3-1600 timing/power substrate and power-constraint model.
//! * [`circuit`] — circuit-level DRAM column simulator (pseudo-precharge
//!   states, charge sharing, process-variation Monte Carlo).
//! * [`core`] — the ELP2IM primitives, functional engine, operation
//!   compiler, and bulk bitwise device API.
//! * [`baselines`] — Ambit, DRISA-NOR, RowClone and a CPU reference model.
//! * [`apps`] — the four case studies: bitmap indices, BitWeaving table
//!   scans, DrAcc ternary-weight CNNs and NID binary CNNs.
//!
//! # Quickstart
//!
//! ```
//! use elp2im::core::device::{Elp2imDevice, DeviceConfig};
//! use elp2im::core::bitvec::BitVec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = Elp2imDevice::new(DeviceConfig::default());
//! let a = dev.store(&BitVec::from_bools(&[true, false, true, false]))?;
//! let b = dev.store(&BitVec::from_bools(&[true, true, false, false]))?;
//! let c = dev.and(a, b)?;
//! assert_eq!(dev.load(c)?.to_bools(), vec![true, false, false, false]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use elp2im_apps as apps;
pub use elp2im_baselines as baselines;
pub use elp2im_circuit as circuit;
pub use elp2im_core as core;
pub use elp2im_dram as dram;
