//! Command-line front end for the ELP2IM reproduction.
//!
//! ```text
//! elp2im op <and|or|xor|nand|nor|xnor|not> <bits> [bits]   device op
//! elp2im run "<prmt program>" [rN=bits ...]                raw primitives
//! elp2im compile <op> [--mode lowlatency|highthroughput|inplace] [--buffers N]
//! elp2im waveform [csv-path]                               Fig. 10 trace
//! elp2im help
//! ```

use elp2im::circuit::params::CircuitParams;
use elp2im::circuit::primitive::fig10_waveform;
use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::{compile, CompileMode, LogicOp, Operands};
use elp2im::core::device::{DeviceConfig, Elp2imDevice};
use elp2im::core::engine::SubarrayEngine;
use elp2im::core::parse::parse_program;
use elp2im::core::primitive::RowRef;
use elp2im::dram::timing::Ddr3Timing;
use std::process::ExitCode;

const USAGE: &str = "usage:
  elp2im op <and|or|xor|nand|nor|xnor|not> <bits> [bits]
      run one bulk operation on the device, e.g. `elp2im op and 1100 1010`
  elp2im run \"<prmt program>\" [rN=bits ...]
      execute raw primitives, e.g.
      `elp2im run \"APP(r0)·or ; AP(r1)\" r0=1100 r1=1010`
  elp2im compile <op> [--mode lowlatency|highthroughput|inplace] [--buffers N]
      print the primitive sequence, latency, and wordline count for an op
  elp2im waveform [csv-path]
      render the Fig. 10 APP-AP waveform (optionally dump CSV)
  elp2im help";

fn parse_bits(s: &str) -> Result<BitVec, String> {
    if s.is_empty() || !s.chars().all(|c| c == '0' || c == '1') {
        return Err(format!("expected a 0/1 string, got {s:?}"));
    }
    Ok(s.chars().map(|c| c == '1').collect())
}

fn parse_op(s: &str) -> Result<LogicOp, String> {
    match s {
        "and" => Ok(LogicOp::And),
        "or" => Ok(LogicOp::Or),
        "xor" => Ok(LogicOp::Xor),
        "nand" => Ok(LogicOp::Nand),
        "nor" => Ok(LogicOp::Nor),
        "xnor" => Ok(LogicOp::Xnor),
        "not" => Ok(LogicOp::Not),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn cmd_op(args: &[String]) -> Result<(), String> {
    let [op_s, rest @ ..] = args else { return Err("op: missing operation".into()) };
    let op = parse_op(op_s)?;
    let a = parse_bits(rest.first().ok_or("op: missing first operand")?)?;
    let mut dev = Elp2imDevice::new(DeviceConfig {
        width: a.len().max(8),
        data_rows: 16,
        reserved_rows: 2,
        ..DeviceConfig::default()
    });
    let ha = dev.store(&a).map_err(|e| e.to_string())?;
    let result = if op.is_unary() {
        dev.not(ha).map_err(|e| e.to_string())?
    } else {
        let b = parse_bits(rest.get(1).ok_or("op: missing second operand")?)?;
        if b.len() != a.len() {
            return Err("operand lengths differ".into());
        }
        let hb = dev.store(&b).map_err(|e| e.to_string())?;
        dev.binary(op, ha, hb).map_err(|e| e.to_string())?
    };
    println!("{}", dev.load(result).map_err(|e| e.to_string())?);
    eprintln!("[{}]", dev.stats());
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let [text, rest @ ..] = args else { return Err("run: missing program".into()) };
    let trace = rest.iter().any(|a| a == "--trace");
    let rows: Vec<&String> = rest.iter().filter(|a| *a != "--trace").collect();
    let prog = parse_program("cli", text).map_err(|e| e.to_string())?;
    let mut width = 8;
    let mut writes: Vec<(usize, BitVec)> = Vec::new();
    for spec in rows {
        let (name, bits) = spec.split_once('=').ok_or(format!("bad row spec {spec:?}"))?;
        let idx: usize = name
            .strip_prefix('r')
            .and_then(|n| n.parse().ok())
            .ok_or(format!("bad row name {name:?}"))?;
        let v = parse_bits(bits)?;
        width = width.max(v.len());
        writes.push((idx, v));
    }
    let mut e = SubarrayEngine::new(width, 16, 2);
    if trace {
        e.enable_trace();
    }
    let mut touched = Vec::new();
    for (idx, v) in writes {
        let mut padded = BitVec::zeros(width);
        for i in 0..v.len() {
            padded.set(i, v.get(i));
        }
        e.write_row(idx, padded).map_err(|err| err.to_string())?;
        touched.push(idx);
    }
    e.run_verified(&prog).map_err(|err| err.to_string())?;
    let t = Ddr3Timing::ddr3_1600();
    println!("program: {prog}");
    println!("latency: {}", prog.latency(&t));
    for idx in 0..16 {
        if let Ok(row) = e.row(RowRef::Data(idx)) {
            println!("r{idx} = {row}");
        }
    }
    if trace {
        println!("trace:");
        for entry in e.trace() {
            println!("  #{:<3} t={:>8}  {}", entry.index, entry.start, entry.primitive);
        }
    }
    eprintln!("[{}]", e.stats());
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let [op_s, rest @ ..] = args else { return Err("compile: missing operation".into()) };
    let op = parse_op(op_s)?;
    let mut mode = CompileMode::LowLatency;
    let mut buffers = 1usize;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--mode" => {
                mode = match it.next().map(String::as_str) {
                    Some("lowlatency") => CompileMode::LowLatency,
                    Some("highthroughput") => CompileMode::HighThroughput,
                    Some("inplace") => CompileMode::InPlace,
                    other => return Err(format!("bad --mode {other:?}")),
                };
            }
            "--buffers" => {
                buffers = it.next().and_then(|n| n.parse().ok()).ok_or("bad --buffers value")?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let rows = if mode == CompileMode::InPlace {
        Operands { a: 0, b: 2, dst: 2, scratch: None }
    } else {
        Operands::standard()
    };
    let prog = compile(op, mode, rows, buffers).map_err(|e| e.to_string())?;
    let t = Ddr3Timing::ddr3_1600();
    println!("{prog}");
    println!(
        "{} commands, {}, {} wordline events",
        prog.len(),
        prog.latency(&t),
        prog.wordline_events(&t)
    );
    Ok(())
}

fn cmd_waveform(args: &[String]) -> Result<(), String> {
    let params = CircuitParams::long_bitline();
    let wave = fig10_waveform(params.clone());
    println!("{}", wave.ascii_plot(params.vdd, 100, 16));
    if let Some(path) = args.first() {
        std::fs::write(path, wave.to_csv()).map_err(|e| e.to_string())?;
        println!("trace written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("op") => cmd_op(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("waveform") => cmd_waveform(&args[1..]),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
