//! The §6.3.1 bitmap-index scenario, both functionally (on the ELP2IM
//! device) and as the Fig. 13 throughput study.
//!
//! Run with `cargo run --example bitmap_analytics`.

use elp2im::apps::backend::PimBackend;
use elp2im::apps::bitmap::{reference_queries, run_queries, BitmapStudy};
use elp2im::apps::workload;
use elp2im::core::device::{DeviceConfig, Elp2imDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Functional execution on a small population. ---
    let users = 4096;
    let weeks = 4;
    let mut rng = workload::rng(2024);
    let week_maps: Vec<_> =
        (0..weeks).map(|_| workload::random_bitvec(&mut rng, users, 0.7)).collect();
    let gender = workload::random_bitvec(&mut rng, users, 0.5);

    let mut dev = Elp2imDevice::new(DeviceConfig { width: users, ..DeviceConfig::default() });
    let handles: Vec<_> = week_maps.iter().map(|w| dev.store(w)).collect::<Result<_, _>>()?;
    let gh = dev.store(&gender)?;
    let (all, male) = run_queries(&mut dev, &handles, gh)?;

    let (ref_all, ref_male) = reference_queries(&week_maps, &gender);
    assert_eq!(dev.load(all)?, ref_all);
    assert_eq!(dev.load(male)?, ref_male);
    println!("{users} users, {weeks} weeks:");
    println!("  active every week:        {}", dev.load(all)?.count_ones());
    println!("  male & active every week: {}", dev.load(male)?.count_ones());
    println!("  device commands: {}", dev.stats().total_commands());

    // --- The Fig. 13 throughput study at paper scale (16M users). ---
    let study = BitmapStudy::paper_setup(weeks);
    println!("\nFig. 13 model (16M users, w = {weeks}):");
    for (name, backend) in [
        ("ELP2IM (constrained)", PimBackend::elp2im_high_throughput()),
        ("Ambit-10 (constrained)", PimBackend::ambit()),
        ("Ambit-4 (constrained)", PimBackend::ambit_with_reserved(4)),
    ] {
        println!(
            "  {name:<24} system improvement over CPU: {:.2}x, device time {:.1} us",
            study.system_improvement(&backend),
            study.device_time(&backend).as_f64() / 1000.0
        );
    }
    Ok(())
}
