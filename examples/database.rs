//! A miniature analytics session on the in-DRAM query layer: compound
//! predicates and aggregates with the bitwise work done by ELP2IM and only
//! the counting on the CPU.
//!
//! Run with `cargo run --example database`.

use elp2im::apps::bitweaving::Predicate;
use elp2im::apps::query::{InMemoryTable, QueryPredicate};
use elp2im::apps::workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 4096;
    let mut rng = workload::rng(2026);
    let ages = workload::random_values(&mut rng, rows, 7); // 0..128
    let scores = workload::random_values(&mut rng, rows, 6); // 0..64
    let regions = workload::random_values(&mut rng, rows, 3); // 0..8

    let mut table = InMemoryTable::new(rows)?;
    table.add_column("age", 7, &ages)?;
    table.add_column("score", 6, &scores)?;
    table.add_column("region", 3, &regions)?;

    let queries = [
        QueryPredicate::cmp("age", Predicate::Lt, 30),
        QueryPredicate::cmp("age", Predicate::Ge, 18).and(QueryPredicate::cmp(
            "score",
            Predicate::Gt,
            40,
        )),
        QueryPredicate::cmp("region", Predicate::Eq, 2)
            .or(QueryPredicate::cmp("region", Predicate::Eq, 5))
            .and(QueryPredicate::cmp("age", Predicate::Ge, 65).negate()),
    ];
    for q in &queries {
        let count = table.count_where(q)?;
        assert_eq!(count, table.count_where_scalar(q), "device must agree with scalar");
        println!("SELECT COUNT(*) WHERE {q:<60} -> {count}");
    }

    let q = QueryPredicate::cmp("region", Predicate::Eq, 3);
    let sum = table.sum_where("score", &q)?;
    assert_eq!(sum, table.sum_where_scalar("score", &q));
    println!("SELECT SUM(score) WHERE {q:<59} -> {sum}");

    let stats = table.device_stats();
    println!(
        "\nsubstrate: {} commands, {:.1} us in-DRAM, {:.1} nJ",
        stats.total_commands(),
        stats.busy_time.as_f64() / 1000.0,
        stats.energy.as_nanojoules()
    );
    Ok(())
}
