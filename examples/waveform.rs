//! Renders the Fig. 10 waveform: two APP-AP sequences (an OR computing
//! '1'+'0', then an AND computing '0'·'1') on the analog column model.
//!
//! Run with `cargo run --example waveform [csv-path]`.

use elp2im::circuit::params::CircuitParams;
use elp2im::circuit::primitive::fig10_waveform;

fn main() {
    let params = CircuitParams::long_bitline();
    let wave = fig10_waveform(params.clone());
    println!(
        "Fig. 10: bitline voltage over two APP-AP sequences ({} samples, {:.0} ns)",
        wave.len(),
        wave.samples().last().map_or(0.0, |s| s.t_ns)
    );
    println!("{}", wave.ascii_plot(params.vdd, 110, 18));
    println!("phases: precharge -> access/sense/restore -> pseudo-precharge -> half-precharge -> second activate");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, wave.to_csv()).expect("write CSV");
        println!("full trace written to {path}");
    }
}
