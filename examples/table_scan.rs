//! The §6.3.2 table-scan scenario: a BitWeaving `<` predicate evaluated
//! in-DRAM, verified against a scalar scan, plus the Fig. 14 sweep.
//!
//! Run with `cargo run --example table_scan`.

use elp2im::apps::bitweaving::{less_than_on_device, VerticalLayout};
use elp2im::apps::tablescan::{fig14_backends, TableScanStudy};
use elp2im::apps::workload;
use elp2im::core::device::{DeviceConfig, Elp2imDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Functional: SELECT COUNT(*) WHERE value < 42 over 2048 rows. ---
    let n = 2048;
    let width = 8;
    let constant = 42u64;
    let mut rng = workload::rng(7);
    let values = workload::random_values(&mut rng, n, width);
    let layout = VerticalLayout::from_values(&values, width);

    let mut dev = Elp2imDevice::new(DeviceConfig { width: n, ..DeviceConfig::default() });
    let planes: Vec<_> = layout.planes().iter().map(|p| dev.store(p)).collect::<Result<_, _>>()?;
    let lt = less_than_on_device(&mut dev, &planes, constant, n)?;
    let count = dev.load(lt)?.count_ones();

    let scalar = values.iter().filter(|&&v| v < constant).count();
    assert_eq!(count, scalar, "in-DRAM scan must agree with the scalar scan");
    println!("SELECT COUNT(*) WHERE a < {constant}: {count} of {n} rows (verified)");
    println!("device commands: {}", dev.stats().total_commands());

    // --- The Fig. 14 sweep at paper scale. ---
    let study = TableScanStudy::paper_setup();
    println!("\nFig. 14 model (16M rows, power constraint on):");
    print!("{:<12}", "design");
    for w in TableScanStudy::widths() {
        print!("  w={w:<2} improv");
    }
    println!();
    for (name, backend) in fig14_backends() {
        print!("{name:<12}");
        for w in TableScanStudy::widths() {
            print!("  {:>9.2}x", study.system_improvement(&backend, w));
        }
        println!();
    }
    Ok(())
}
