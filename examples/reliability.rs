//! Reliability analysis (§4.1 and §6.1.2): the short-bitline failure of
//! the regular strategy, its fix, and a compact Fig. 11 Monte-Carlo sweep.
//!
//! Run with `cargo run --example reliability`.

use elp2im::circuit::column::Column;
use elp2im::circuit::montecarlo::{Design, MonteCarlo};
use elp2im::circuit::params::CircuitParams;
use elp2im::circuit::primitive::{or_app_ap, Strategy};
use elp2im::circuit::variation::PvMode;

fn main() {
    // §4.1: the worst case '1'+'0' on a short bitline (Cb < Cc).
    let mut col = Column::new(CircuitParams::short_bitline());
    match or_app_ap(&mut col, true, false, Strategy::Regular) {
        Err(e) => println!("regular strategy on short bitline: {e} (expected failure)"),
        Ok(_) => println!("regular strategy unexpectedly succeeded"),
    }
    let mut col = Column::new(CircuitParams::short_bitline());
    let out = or_app_ap(&mut col, true, false, Strategy::Alternative)
        .expect("the complementary strategy is ratio-independent");
    println!(
        "alternative strategy: '1' OR '0' = {} with {:.0} mV margin\n",
        u8::from(out.result),
        out.final_margin_v * 1000.0
    );

    // Fig. 11 mini-sweep on the chunked parallel engine (bit-identical
    // at any thread count; threads default to one per core).
    let mc = MonteCarlo::paper_setup().with_trials(50_000);
    println!("error rates at 50k trials (15% coupling), 95% Wilson intervals:");
    println!("{:<11} {:>12} {:>12} {:>26}", "design", "random 8%", "random 12%", "12% interval");
    for d in [
        Design::RegularDram,
        Design::Elp2im { alternative: false },
        Design::Elp2im { alternative: true },
        Design::AmbitTra,
    ] {
        let p12 = mc.error_rate_point(d, PvMode::Random, 0.12);
        println!(
            "{:<11} {:>12.2e} {:>12.2e} {:>26}",
            d.label(),
            mc.error_rate(d, PvMode::Random, 0.08),
            p12.rate,
            format!("[{:.1e}, {:.1e}]", p12.wilson_ci.0, p12.wilson_ci.1),
        );
    }
    println!(
        "\nAmbit under systematic PV at 12%: {:.2e} (mismatch suppressed, Fig. 11(b))",
        mc.error_rate(Design::AmbitTra, PvMode::Systematic, 0.12)
    );
}
