//! The §6.3.3 CNN scenarios: a functional in-DRAM binary dot product
//! (XOR + bit-serial popcount) plus the Table 2 / Table 3 FPS models.
//!
//! Run with `cargo run --example binary_cnn`.

use elp2im::apps::arith::bit_serial_popcount;
use elp2im::apps::backend::PimBackend;
use elp2im::apps::dracc::{table2_networks, DraccStudy};
use elp2im::apps::nid::{table3_networks, NidStudy};
use elp2im::apps::workload;
use elp2im::core::bitvec::BitVec;
use elp2im::core::device::{DeviceConfig, Elp2imDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Functional binary dot product: 9 weight planes x 256 lanes. ---
    // Each lane is one output neuron; popcount(xnor(activation, weight))
    // drives its activation. We compute popcount(xor) here and verify.
    let lanes = 256;
    let fan_in = 9;
    let mut rng = workload::rng(99);
    let activations: Vec<BitVec> =
        (0..fan_in).map(|_| workload::random_bitvec(&mut rng, lanes, 0.5)).collect();
    let weights: Vec<BitVec> =
        (0..fan_in).map(|_| workload::random_bitvec(&mut rng, lanes, 0.5)).collect();

    let mut dev = Elp2imDevice::new(DeviceConfig {
        width: 256,
        data_rows: 256,
        reserved_rows: 2,
        ..DeviceConfig::default()
    });
    let mut xor_planes = Vec::new();
    for (a, w) in activations.iter().zip(&weights) {
        let ha = dev.store(a)?;
        let hw = dev.store(w)?;
        let hx = dev.xor(ha, hw)?;
        dev.release(ha)?;
        dev.release(hw)?;
        xor_planes.push(hx);
    }
    let count_planes = bit_serial_popcount(&mut dev, &xor_planes)?;

    // Verify every lane against software.
    for lane in 0..lanes {
        let expect: u64 = activations
            .iter()
            .zip(&weights)
            .map(|(a, w)| u64::from(a.get(lane) != w.get(lane)))
            .sum();
        let got: u64 = count_planes
            .iter()
            .enumerate()
            .map(|(i, &h)| u64::from(dev.load(h).unwrap().get(lane)) << i)
            .sum();
        assert_eq!(got, expect, "lane {lane}");
    }
    println!("binary dot product: {fan_in}-wide popcount verified on {lanes} lanes");
    println!("device commands: {}\n", dev.stats().total_commands());

    // --- Table 2: DrAcc ternary-weight networks. ---
    let dracc = DraccStudy::paper_setup();
    let ambit = PimBackend::ambit().without_power_constraint();
    let elp = PimBackend::elp2im_accelerator();
    println!("Table 2 model (DrAcc TWN, FPS):");
    for net in table2_networks() {
        let fa = dracc.fps(&net, &ambit);
        let fe = dracc.fps(&net, &elp);
        println!("  {:<8} Ambit {fa:>9.1}  ELP2IM {fe:>9.1}  ({:.2}x)", net.name, fe / fa);
    }

    // --- Table 3: NID binary networks. ---
    let nid = NidStudy::paper_setup();
    println!("\nTable 3 model (NID binary CNN, FPS):");
    for net in table3_networks() {
        let fa = nid.fps(&net, &ambit);
        let fe = nid.fps(&net, &elp);
        println!("  {:<9} Ambit {fa:>9.1}  ELP2IM {fe:>9.1}  ({:.2}x)", net.name, fe / fa);
    }
    Ok(())
}
