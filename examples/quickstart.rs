//! Quickstart: bulk bitwise operations on an ELP2IM device.
//!
//! Run with `cargo run --example quickstart`.

use elp2im::core::bitvec::BitVec;
use elp2im::core::device::{DeviceConfig, Elp2imDevice};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A device with the paper's base configuration: one reserved
    // dual-contact row, reduced-latency compilation.
    let mut dev = Elp2imDevice::new(DeviceConfig::default());

    // Store two 16-bit vectors.
    let a = BitVec::from_words(&[0b1100_1010_1111_0000], 16);
    let b = BitVec::from_words(&[0b1010_0110_0101_0101], 16);
    let ha = dev.store(&a)?;
    let hb = dev.store(&b)?;

    // Every basic operation of Fig. 12.
    let and = dev.and(ha, hb)?;
    let or = dev.or(ha, hb)?;
    let xor = dev.xor(ha, hb)?;
    let nand = dev.nand(ha, hb)?;
    let nor = dev.nor(ha, hb)?;
    let xnor = dev.xnor(ha, hb)?;
    let not = dev.not(ha)?;

    println!("a      = {}", dev.load(ha)?);
    println!("b      = {}", dev.load(hb)?);
    println!("a&b    = {}", dev.load(and)?);
    println!("a|b    = {}", dev.load(or)?);
    println!("a^b    = {}", dev.load(xor)?);
    println!("!(a&b) = {}", dev.load(nand)?);
    println!("!(a|b) = {}", dev.load(nor)?);
    println!("!(a^b) = {}", dev.load(xnor)?);
    println!("!a     = {}", dev.load(not)?);

    // Verify against software logic.
    assert_eq!(dev.load(and)?, a.and(&b));
    assert_eq!(dev.load(or)?, a.or(&b));
    assert_eq!(dev.load(xor)?, a.xor(&b));
    assert_eq!(dev.load(not)?, a.not());

    // The substrate accounting shows what the DRAM actually did.
    let stats = dev.stats();
    println!("\nsubstrate: {stats}");
    println!("average latency per operation: {:.1} ns", stats.busy_time.as_f64() / 7.0);
    Ok(())
}
