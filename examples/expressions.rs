//! Compiling arbitrary Boolean expressions (§4.2.3): the median example,
//! common-subexpression reuse, and evaluation across a whole module.
//!
//! Run with `cargo run --example expressions`.

use elp2im::core::bitvec::BitVec;
use elp2im::core::compile::CompileMode;
use elp2im::core::expr::{compile_expr, Expr, ExprOperands};
use elp2im::core::module::{Elp2imModule, ModuleConfig};
use elp2im::core::optimizer::PhysRow;
use elp2im::core::validate::{validate, SubarrayShape};
use elp2im::dram::timing::Ddr3Timing;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = Ddr3Timing::ddr3_1600();

    // §4.2.3's example: the Boolean median AB + AC + BC.
    let median = Expr::majority(Expr::var(0), Expr::var(1), Expr::var(2));
    let rows = ExprOperands { inputs: vec![0, 1, 2], dst: 3, temps: (4..12).collect() };
    let prog = compile_expr(&median, &rows, CompileMode::LowLatency, 1)?;
    println!("median(A,B,C) compiles to {} primitives, {}:", prog.len(), prog.latency(&t));
    println!("  {prog}");

    // The §5.1 controller would validate the buffered sequence statically.
    let shape = SubarrayShape { data_rows: 16, dcc_rows: 2 };
    let live_in = [PhysRow::Data(0), PhysRow::Data(1), PhysRow::Data(2)];
    let violations = validate(&prog, shape, &live_in);
    println!("  static validation: {} violations", violations.len());

    // Common subexpressions compile once.
    let shared = Expr::var(0) ^ Expr::var(1);
    let reused = (shared.clone() & Expr::var(2)) | (shared ^ Expr::var(2));
    let rows2 = ExprOperands { inputs: vec![0, 1, 2], dst: 3, temps: (4..12).collect() };
    let prog2 = compile_expr(&reused, &rows2, CompileMode::LowLatency, 2)?;
    println!(
        "\n(A^B)&C | (A^B)^C: {} distinct ops -> {} primitives ({})",
        reused.distinct_ops(),
        prog2.len(),
        prog2.latency(&t)
    );

    // Evaluate the median across a multi-bank module on wide vectors.
    let mut module = Elp2imModule::new(ModuleConfig::default());
    let bits = module.row_bits() * 4;
    let a: BitVec = (0..bits).map(|i| i % 2 == 0).collect();
    let b: BitVec = (0..bits).map(|i| i % 3 == 0).collect();
    let c: BitVec = (0..bits).map(|i| i % 5 == 0).collect();
    let ha = module.store(&a)?;
    let hb = module.store(&b)?;
    let hc = module.store(&c)?;
    let (result, stats) = module.eval_expr(&median, &[ha, hb, hc])?;
    let out = module.load(result)?;
    println!(
        "\nmodule-wide median over {bits} bits: {} ones, makespan {}, {} commands",
        out.count_ones(),
        stats.makespan,
        stats.total_commands()
    );

    // Spot-check against software.
    for i in (0..bits).step_by(997) {
        let want = [a.get(i), b.get(i), c.get(i)].iter().filter(|&&x| x).count() >= 2;
        assert_eq!(out.get(i), want);
    }
    println!("verified against software evaluation");
    Ok(())
}
