//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the (deterministic, seedable) subset of the
//! rand 0.8 API the workspace uses: [`SeedableRng::seed_from_u64`],
//! [`rngs::SmallRng`], and the [`Rng`] extension methods `gen`,
//! `gen_range`, and `gen_bool`. The generator is SplitMix64 — high
//! quality for simulation workloads and trivially reproducible.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (rand's `Standard`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn uniformly from (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start() + u * (self.end() - self.start())
    }
}

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8's `Rng`).
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    /// Alias used by code written against rand's default generator.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i: usize = r.gen_range(0..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
