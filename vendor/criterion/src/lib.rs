//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the criterion 0.5 API the workspace's benches
//! use: `Criterion::{bench_function, benchmark_group}`, groups with
//! `throughput`/`bench_with_input`/`bench_function`/`finish`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!`/
//! `criterion_main!` macros. Each benchmark is timed with
//! `std::time::Instant` over an adaptively chosen iteration count and the
//! median per-iteration time is printed as text (no statistics engine, no
//! HTML reports).

use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the harness was invoked with `--smoke` (e.g.
/// `cargo bench --bench batch -- --smoke`): every benchmark then runs a
/// single short sample so CI can exercise the bench targets end to end in
/// seconds instead of minutes. Timings printed in smoke mode are not
/// meaningful.
pub fn smoke_mode() -> bool {
    static SMOKE: OnceLock<bool> = OnceLock::new();
    *SMOKE.get_or_init(|| std::env::args().any(|a| a == "--smoke"))
}

/// Per-iteration workload metric, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Measured per-iteration wall-clock time.
    sample: Duration,
    iters_done: u64,
}

impl Bencher {
    /// Times `routine`, storing the median-of-samples per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration cost.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        if smoke_mode() {
            // One tiny sample: enough to prove the benchmark runs.
            let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10) as u64;
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.sample = start.elapsed() / iters as u32;
            self.iters_done = iters + 1;
            return;
        }

        // Aim for ~20 ms of measurement, capped to keep suites quick.
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.sample = samples[samples.len() / 2];
        self.iters_done = iters * 5;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, sample: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} {:>12}/iter", fmt_duration(sample));
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / sample.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>12.3} Melem/s", per_sec(n) / 1e6));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:>12.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
        }
    }
    println!("{line}");
}

fn run_one(name: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { sample: Duration::ZERO, iters_done: 0 };
    f(&mut b);
    report(name, b.sample, throughput);
}

/// The benchmark manager.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: R) -> &mut Self {
        run_one(name, None, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| f(b));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        trivial(&mut Criterion::default());
    }
}
