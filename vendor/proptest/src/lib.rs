//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`proptest!`] macro, range/`Just`/tuple/`prop_oneof!`
//! strategies, [`collection::vec`], `prop_map`, and the `prop_assert*`
//! family. Sampling is deterministic (seeded per test from the test's
//! module path), and failing cases report the case index so a failure can
//! be replayed by rerunning the test. Shrinking is not implemented: a
//! failure reports the raw counterexample values via the assertion
//! message.

pub mod test_runner {
    //! Test-case plumbing: config, error type, deterministic RNG.

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (assume violated).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }

        /// A failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Deterministic SplitMix64 generator seeded from a test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from an arbitrary label (FNV-1a).
        pub fn deterministic(label: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { strat: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let me = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| me.sample(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strat: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.strat.sample(rng))
        }
    }

    /// Uniform choice among equally weighted boxed strategies
    /// (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// Types with a canonical whole-domain strategy ([`any`]).
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy over a type's whole domain.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element`-generated values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + if span <= 1 { 0 } else { rng.below(span) as usize };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror of proptest's `prop` re-export.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@items $cfg; $($rest)*);
    };
    (@items $cfg:expr; ) => {};
    (@items $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20).max(1000),
                    "too many rejected cases (prop_assume! too strict?)"
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => executed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} (attempt {}) failed: {}", executed, attempts, msg)
                    }
                }
            }
        }
        $crate::proptest!(@items $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@items $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a condition inside a property test (fails the case, with
/// context, rather than panicking directly).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (it is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            x in prop_oneof![Just(1u64), Just(2u64), (5u64..7).prop_map(|v| v * 10)],
        ) {
            prop_assert!(x == 1 || x == 2 || x == 50 || x == 60);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let s = crate::collection::vec(0u64..1000, 1..20);
        for _ in 0..10 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
