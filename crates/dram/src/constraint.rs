//! The charge-pump / tFAW power-constraint model.
//!
//! §6.3 of the paper evaluates every memory-resident case study under a
//! *power constraint*: the power-delivery network and the wordline charge
//! pumps can only sustain a bounded rate of row activations across the whole
//! rank (cf. tFAW in JEDEC DDR3, and Shevgoor et al. [12]). Designs whose
//! commands drive more wordlines — Ambit's TRA above all — exhaust the
//! budget faster and lose bank-level parallelism.
//!
//! The model is a token budget per rolling activation window:
//!
//! * the default budget is the JEDEC four-activate window (4 tokens per
//!   tFAW = 40 ns);
//! * a command costs one token per regular wordline event,
//!   [`PumpBudget::extra_wordline_cost`] per *extra simultaneously driven*
//!   wordline (default 1.22, the paper's +22 % pump surcharge), plus
//!   [`PumpBudget::pseudo_precharge_cost`] when the SA regulates the bitline
//!   through the pseudo-precharge state (default 0.31).
//!
//! Two consumers exist: the analytic steady-state estimate
//! ([`PumpBudget::max_parallel_banks`], used by the case studies) and the
//! event-driven [`crate::controller::Controller`], which enforces the budget
//! with an exact sliding window.

use crate::command::CommandProfile;
use crate::timing::Ddr3Timing;
use crate::units::{Ns, Ps};
use std::collections::VecDeque;

/// Charge-pump token budget per rolling activation window.
///
/// ```
/// use elp2im_dram::constraint::PumpBudget;
/// use elp2im_dram::command::CommandProfile;
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let t = Ddr3Timing::ddr3_1600();
/// let b = PumpBudget::jedec_ddr3_1600();
/// // An Ambit TRA command costs far more pump budget than a regular AP.
/// assert!(b.command_cost(&CommandProfile::ambit_tra_aap(&t))
///         > 4.0 * b.command_cost(&CommandProfile::ap(&t)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PumpBudget {
    /// Tokens available per window (JEDEC DDR3: 4 activates).
    pub tokens_per_window: f64,
    /// Window length (JEDEC DDR3-1600 tFAW: 40 ns).
    pub window: Ns,
    /// Token cost of each *extra* simultaneously driven wordline.
    pub extra_wordline_cost: f64,
    /// Additional token cost of a pseudo-precharge phase.
    pub pseudo_precharge_cost: f64,
}

impl PumpBudget {
    /// The JEDEC DDR3-1600 four-activate-window budget with the paper's
    /// wordline and pseudo-precharge surcharges.
    pub fn jedec_ddr3_1600() -> Self {
        let t = Ddr3Timing::ddr3_1600();
        PumpBudget {
            tokens_per_window: 4.0,
            window: t.t_faw,
            extra_wordline_cost: 1.22,
            pseudo_precharge_cost: 0.31,
        }
    }

    /// An effectively unlimited budget (the paper's "without power
    /// constraint" configuration, §6.3.1 and §6.3.3).
    pub fn unconstrained() -> Self {
        PumpBudget { tokens_per_window: f64::INFINITY, ..PumpBudget::jedec_ddr3_1600() }
    }

    /// Whether this budget actually constrains anything.
    pub fn is_constrained(&self) -> bool {
        self.tokens_per_window.is_finite()
    }

    /// Token cost of one command.
    pub fn command_cost(&self, profile: &CommandProfile) -> f64 {
        let extra = f64::from(profile.extra_simultaneous_wordlines());
        let regular = f64::from(profile.total_wordline_events) - extra;
        let mut cost = regular + extra * self.extra_wordline_cost;
        if profile.pseudo_precharge {
            cost += self.pseudo_precharge_cost;
        }
        cost
    }

    /// Token consumption rate (tokens/ns) of a bank repeatedly issuing the
    /// given command stream back to back.
    pub fn stream_rate(&self, stream: &[CommandProfile]) -> f64 {
        let cost: f64 = stream.iter().map(|p| self.command_cost(p)).sum();
        let dur: Ns = stream.iter().map(|p| p.duration).sum();
        if dur.as_f64() <= 0.0 {
            return 0.0;
        }
        cost / dur.as_f64()
    }

    /// Sustainable token rate of the whole rank (tokens/ns).
    pub fn budget_rate(&self) -> f64 {
        self.tokens_per_window / self.window.as_f64()
    }

    /// Steady-state number of banks that can concurrently run `stream`,
    /// capped at `max_banks`.
    ///
    /// Returns a fractional bank count: values below 1.0 mean even a single
    /// bank must stall between commands.
    pub fn max_parallel_banks(&self, stream: &[CommandProfile], max_banks: usize) -> f64 {
        if !self.is_constrained() {
            return max_banks as f64;
        }
        let per_bank = self.stream_rate(stream);
        if per_bank <= 0.0 {
            return max_banks as f64;
        }
        (self.budget_rate() / per_bank).min(max_banks as f64)
    }
}

impl Default for PumpBudget {
    fn default() -> Self {
        PumpBudget::jedec_ddr3_1600()
    }
}

/// Exact sliding-window token accounting used by the event-driven
/// controller.
#[derive(Debug, Clone)]
pub struct PumpWindow {
    budget: PumpBudget,
    window: Ps,
    /// Admission log: (timestamp, cost).
    events: VecDeque<(Ps, f64)>,
    in_window: f64,
}

impl PumpWindow {
    /// Creates a sliding window for `budget`.
    pub fn new(budget: PumpBudget) -> Self {
        let window = budget.window.to_ps();
        PumpWindow { budget, window, events: VecDeque::new(), in_window: 0.0 }
    }

    /// The budget this window enforces.
    pub fn budget(&self) -> &PumpBudget {
        &self.budget
    }

    fn expire(&mut self, now: Ps) {
        // A draw at time t occupies the window [t, t + W); it stops gating
        // new admissions once t + W <= now. (Written additively — a
        // saturating `now - W` would spuriously expire early draws while
        // `now < W`.)
        while let Some(&(t, c)) = self.events.front() {
            if t + self.window <= now {
                self.events.pop_front();
                self.in_window -= c;
            } else {
                break;
            }
        }
        if self.in_window < 0.0 {
            self.in_window = 0.0;
        }
    }

    /// Tries to admit a command of token cost `cost` at time `now`.
    ///
    /// Returns `Ok(())` and records the draw, or `Err(earliest)` with the
    /// earliest time at which the command could be admitted.
    ///
    /// Callers may probe at non-monotonic times (different banks progress
    /// independently), so the event log is kept **sorted by time** — this
    /// keeps expiry exact and guarantees the returned retry time is
    /// strictly after `now`.
    ///
    /// # Errors
    ///
    /// `Err` carries the retry time; if the cost alone exceeds the whole
    /// window budget the command is admitted anyway with a saturated window
    /// (a single command can never deadlock the rank — it just drains the
    /// budget for a full window), matching how a real pump brown-out would
    /// be amortized.
    pub fn try_admit(&mut self, now: Ps, cost: f64) -> Result<(), Ps> {
        if !self.budget.is_constrained() {
            return Ok(());
        }
        self.expire(now);
        // Only draws inside the window ending at `now` gate this command;
        // sorted order makes the prefix scan below exact.
        let in_window_now: f64 =
            self.events.iter().take_while(|&&(t, _)| t <= now).map(|&(_, c)| c).sum();
        // A command whose cost alone exceeds the whole budget (an Ambit
        // TRA under a tight window) waits for an *empty* window, then
        // saturates it — spacing such commands a full window apart rather
        // than deadlocking.
        let oversized = cost >= self.budget.tokens_per_window;
        if (!oversized && in_window_now + cost <= self.budget.tokens_per_window)
            || (oversized && in_window_now <= 1e-12)
        {
            // Sorted insert (admissions are near-monotonic, so this is
            // almost always a push_back).
            let pos = self.events.partition_point(|&(t, _)| t <= now);
            self.events.insert(pos, (now, cost));
            self.in_window += cost;
            return Ok(());
        }
        // Earliest admission: when enough of the oldest draws expire (an
        // oversized command needs the whole in-window prefix gone).
        let needed = if oversized {
            in_window_now
        } else {
            in_window_now + cost - self.budget.tokens_per_window
        };
        let mut freed = 0.0;
        for &(t, c) in &self.events {
            if t > now {
                break;
            }
            freed += c;
            if freed >= needed - 1e-12 {
                // t is unexpired at `now` (t + window > now), so this is
                // strictly after `now`: the retry loop always advances.
                return Err(t + self.window);
            }
        }
        // Unreachable: freed over the full in-window prefix equals
        // `in_window_now` ≥ `needed` whenever cost < budget.
        Err(now + self.window)
    }

    /// Tokens currently drawn within the window ending at `now` (draws
    /// admitted at times after `now` do not count).
    pub fn drawn(&mut self, now: Ps) -> f64 {
        self.expire(now);
        self.events.iter().take_while(|&&(t, _)| t <= now).map(|&(_, c)| c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandProfile;

    fn timing() -> Ddr3Timing {
        Ddr3Timing::ddr3_1600()
    }

    #[test]
    fn command_costs() {
        let b = PumpBudget::jedec_ddr3_1600();
        let t = timing();
        assert!((b.command_cost(&CommandProfile::ap(&t)) - 1.0).abs() < 1e-12);
        assert!((b.command_cost(&CommandProfile::aap(&t)) - 2.0).abs() < 1e-12);
        assert!((b.command_cost(&CommandProfile::o_aap(&t)) - 2.22).abs() < 1e-12);
        assert!((b.command_cost(&CommandProfile::app(&t)) - 1.31).abs() < 1e-12);
        // TRA-AAP: 2 regular + 2 extra-simultaneous wordlines.
        assert!(
            (b.command_cost(&CommandProfile::ambit_tra_aap(&t)) - (2.0 + 2.0 * 1.22)).abs() < 1e-12
        );
    }

    /// The paper's headline parallelism result: under the power constraint
    /// ELP2IM (high-throughput mode AAP-APP-AP) sustains ~4 of 8 banks,
    /// while an Ambit AND stream sustains ~2.
    #[test]
    fn parallel_banks_elp2im_vs_ambit() {
        let b = PumpBudget::jedec_ddr3_1600();
        let t = timing();
        let elp2im = vec![CommandProfile::aap(&t), CommandProfile::app(&t), CommandProfile::ap(&t)];
        let ambit = vec![
            CommandProfile::o_aap(&t),
            CommandProfile::o_aap(&t),
            CommandProfile::o_aap(&t),
            CommandProfile::ambit_tra_aap(&t),
        ];
        let be = b.max_parallel_banks(&elp2im, 8);
        let ba = b.max_parallel_banks(&ambit, 8);
        assert!((4.0..=5.2).contains(&be), "ELP2IM banks = {be}");
        assert!((1.5..=2.5).contains(&ba), "Ambit banks = {ba}");
        assert!(be > 2.0 * ba * 0.9, "ELP2IM should keep ~2x+ more banks");
    }

    #[test]
    fn unconstrained_budget_allows_all_banks() {
        let b = PumpBudget::unconstrained();
        let t = timing();
        let stream = vec![CommandProfile::ambit_tra_aap(&t)];
        assert_eq!(b.max_parallel_banks(&stream, 8), 8.0);
        assert!(!b.is_constrained());
    }

    #[test]
    fn window_admits_up_to_budget_then_defers() {
        let mut w = PumpWindow::new(PumpBudget::jedec_ddr3_1600());
        let now = Ps::ZERO;
        for _ in 0..4 {
            assert!(w.try_admit(now, 1.0).is_ok());
        }
        let deferred = w.try_admit(now, 1.0);
        let retry = deferred.expect_err("5th activate in the same instant must defer");
        assert!(retry > now);
        // After the window passes, admission succeeds again.
        assert!(w.try_admit(retry, 1.0).is_ok());
    }

    #[test]
    fn window_expires_old_draws() {
        let mut w = PumpWindow::new(PumpBudget::jedec_ddr3_1600());
        assert!(w.try_admit(Ps(0), 4.0).is_ok());
        assert!(w.drawn(Ps(0)) >= 4.0);
        let later = Ps(41_000); // > 40 ns
        assert!((w.drawn(later) - 0.0).abs() < 1e-12);
        assert!(w.try_admit(later, 4.0).is_ok());
    }

    #[test]
    fn oversized_command_is_admitted_saturating() {
        let mut w =
            PumpWindow::new(PumpBudget { tokens_per_window: 2.0, ..PumpBudget::jedec_ddr3_1600() });
        // Cost larger than the whole budget: admit rather than deadlock.
        assert!(w.try_admit(Ps(0), 3.0).is_ok());
        // But the window is now saturated.
        assert!(w.try_admit(Ps(1), 0.5).is_err());
    }

    #[test]
    fn deferral_time_is_exact() {
        let mut w = PumpWindow::new(PumpBudget::jedec_ddr3_1600());
        assert!(w.try_admit(Ps(0), 2.0).is_ok());
        assert!(w.try_admit(Ps(10_000), 2.0).is_ok());
        // Needs 1 token: the first draw (2.0) expires at 0 + 40 ns.
        let retry = w.try_admit(Ps(20_000), 1.0).unwrap_err();
        assert_eq!(retry, Ps(40_000));
        assert!(w.try_admit(retry, 1.0).is_ok());
    }
}
