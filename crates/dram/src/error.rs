//! Error types for the DRAM substrate.

use crate::geometry::TopoPath;
use crate::units::Ps;
use std::error::Error;
use std::fmt;

/// Errors produced by the DRAM substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DramError {
    /// A bank index was out of range.
    BankOutOfRange {
        /// Requested bank.
        bank: usize,
        /// Number of banks in the module.
        banks: usize,
    },
    /// A topology path was outside the configured topology.
    PathOutOfRange {
        /// Requested path.
        path: TopoPath,
        /// Channels in the topology.
        channels: usize,
        /// Ranks per channel.
        ranks: usize,
        /// Banks per rank.
        banks: usize,
    },
    /// A command was issued to a bank that is still busy.
    BankBusy {
        /// The bank that was busy.
        bank: usize,
        /// When the bank becomes free.
        free_at: Ps,
    },
    /// The charge-pump budget can never admit this command (its cost exceeds
    /// the entire window budget).
    CommandExceedsPumpBudget {
        /// Pump cost of the offending command.
        cost: f64,
        /// Total budget per window.
        budget: f64,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {bank} out of range (module has {banks} banks)")
            }
            DramError::PathOutOfRange { path, channels, ranks, banks } => {
                write!(
                    f,
                    "path {path} outside topology ({channels} channels × {ranks} ranks × {banks} banks)"
                )
            }
            DramError::BankBusy { bank, free_at } => {
                write!(f, "bank {bank} busy until {free_at}")
            }
            DramError::CommandExceedsPumpBudget { cost, budget } => {
                write!(f, "command pump cost {cost:.2} exceeds the whole window budget {budget:.2}")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DramError::BankOutOfRange { bank: 9, banks: 8 };
        assert_eq!(format!("{e}"), "bank 9 out of range (module has 8 banks)");
        let e = DramError::BankBusy { bank: 1, free_at: Ps(100) };
        assert!(format!("{e}").contains("busy"));
        let e = DramError::CommandExceedsPumpBudget { cost: 9.0, budget: 4.0 };
        assert!(format!("{e}").contains("pump"));
        let e = DramError::PathOutOfRange {
            path: TopoPath::new(4, 0, 0),
            channels: 4,
            ranks: 2,
            banks: 8,
        };
        assert!(format!("{e}").contains("c4.r0.b0"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DramError>();
    }
}
