//! IDD-based DRAM energy/power model.
//!
//! Constants follow the Micron MT41J256M16 DDR3 datasheet (the paper's §6.2
//! power source) and the DRAMPower-style activate/precharge energy formula:
//!
//! `E(ACT+PRE) = (IDD0·tRC − IDD3N·tRAS − IDD2N·tRP) · VDD`
//!
//! On top of that base the paper specifies two surcharges:
//!
//! * each **additional simultaneously driven wordline** costs ≈22 % of an
//!   activation (charge-pump inefficiency, §6.2), and
//! * an **APP-class command** (pseudo-precharge) costs ≈31 % more than a
//!   regular AP activation (§6.2).
//!
//! DRISA's added gates and latches raise *background* power; that shows up
//! as a per-design background multiplier.

use crate::command::CommandProfile;
use crate::timing::Ddr3Timing;
use crate::units::{Ns, Picojoules};

/// Fraction of an activation's energy attributable to the restore phase.
///
/// Used to discount trimmed (restore-truncated) activations; derived from the
/// restore share of `tRAS` after the sense phase completes.
const RESTORE_ENERGY_FRACTION: f64 = 0.45;

/// DRAM energy/power model.
///
/// ```
/// use elp2im_dram::power::PowerModel;
/// use elp2im_dram::command::CommandProfile;
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let t = Ddr3Timing::ddr3_1600();
/// let p = PowerModel::micron_ddr3_1600();
/// let e_ap = p.command_energy(&CommandProfile::ap(&t));
/// let e_app = p.command_energy(&CommandProfile::app(&t));
/// // §6.2: APP costs ~31 % more activate energy than AP.
/// assert!(e_app.as_f64() > e_ap.as_f64() * 1.15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Activate-precharge current (mA), one bank active.
    pub idd0_ma: f64,
    /// Precharge standby current (mA).
    pub idd2n_ma: f64,
    /// Active standby current (mA).
    pub idd3n_ma: f64,
    /// Timing set used to split activate/precharge phases.
    pub timing: Ddr3Timing,
    /// Surcharge per *extra* simultaneously driven wordline (0.22 ⇒ +22 %).
    pub extra_wordline_surcharge: f64,
    /// Surcharge for a pseudo-precharge phase (0.31 ⇒ +31 % of an
    /// activation).
    pub pseudo_precharge_surcharge: f64,
}

impl PowerModel {
    /// Micron MT41J256M16 (DDR3-1600) datasheet constants.
    pub fn micron_ddr3_1600() -> Self {
        PowerModel {
            vdd: 1.5,
            idd0_ma: 95.0,
            idd2n_ma: 42.0,
            idd3n_ma: 45.0,
            timing: Ddr3Timing::ddr3_1600(),
            extra_wordline_surcharge: 0.22,
            pseudo_precharge_surcharge: 0.31,
        }
    }

    /// Energy of one full activate+precharge cycle (no surcharges).
    pub fn act_pre_energy(&self) -> Picojoules {
        let t = &self.timing;
        let t_rc = t.ap().as_f64();
        // mA · ns · V = pJ
        let pj = (self.idd0_ma * t_rc
            - self.idd3n_ma * t.t_ras.as_f64()
            - self.idd2n_ma * t.t_rp.as_f64())
            * self.vdd;
        Picojoules(pj)
    }

    /// Activation-phase share of [`Self::act_pre_energy`].
    pub fn act_energy(&self) -> Picojoules {
        let share = self.timing.t_ras / self.timing.ap();
        self.act_pre_energy() * share
    }

    /// Precharge-phase share of [`Self::act_pre_energy`].
    pub fn pre_energy(&self) -> Picojoules {
        self.act_pre_energy() * (1.0 - self.timing.t_ras / self.timing.ap())
    }

    /// Dynamic energy of one command described by `profile`.
    ///
    /// Sums: a full activation per restoring wordline event, a discounted
    /// activation per trimmed event, one precharge, the +22 %-per-extra-
    /// wordline surcharge and the +31 % pseudo-precharge surcharge.
    pub fn command_energy(&self, profile: &CommandProfile) -> Picojoules {
        let e_act = self.act_energy().as_f64();
        let restoring = f64::from(profile.restores.min(profile.total_wordline_events));
        let trimmed = f64::from(profile.total_wordline_events) - restoring;
        let mut pj = e_act * restoring + e_act * (1.0 - RESTORE_ENERGY_FRACTION) * trimmed;
        pj += self.pre_energy().as_f64();
        pj += e_act
            * self.extra_wordline_surcharge
            * f64::from(profile.extra_simultaneous_wordlines());
        if profile.pseudo_precharge {
            pj += e_act * self.pseudo_precharge_surcharge;
        }
        Picojoules(pj)
    }

    /// Background (standby) power in milliwatts while a subarray computes.
    ///
    /// `design_factor` scales for designs that add always-on logic (DRISA).
    pub fn background_power_mw(&self, design_factor: f64) -> f64 {
        self.idd3n_ma * self.vdd * design_factor
    }

    /// Background energy over `duration` for a design with the given factor.
    pub fn background_energy(&self, duration: Ns, design_factor: f64) -> Picojoules {
        Picojoules(self.background_power_mw(design_factor) * duration.as_f64())
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::micron_ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::CommandProfile;

    fn model() -> PowerModel {
        PowerModel::micron_ddr3_1600()
    }

    #[test]
    fn act_pre_energy_is_in_nanojoule_range() {
        let e = model().act_pre_energy();
        // (95·48.75 − 45·35 − 42·13.75) × 1.5 ≈ 3.7 nJ
        assert!((e.as_nanojoules() - 3.72).abs() < 0.1, "e = {e}");
    }

    #[test]
    fn phase_split_sums_to_total() {
        let p = model();
        let total = p.act_energy() + p.pre_energy();
        assert!((total.as_f64() - p.act_pre_energy().as_f64()).abs() < 1e-9);
    }

    #[test]
    fn app_surcharge_matches_paper() {
        let p = model();
        let t = p.timing.clone();
        let ap = p.command_energy(&CommandProfile::ap(&t)).as_f64();
        let app = p.command_energy(&CommandProfile::app(&t)).as_f64();
        // The +31 % applies to the activation share.
        let expected = ap + p.act_energy().as_f64() * 0.31;
        assert!((app - expected).abs() < 1e-9);
    }

    #[test]
    fn tra_costs_more_than_ap_but_less_than_three() {
        let p = model();
        let t = p.timing.clone();
        let ap = p.command_energy(&CommandProfile::ap(&t)).as_f64();
        let tra = p.command_energy(&CommandProfile::ambit_tra_aap(&t)).as_f64();
        assert!(tra > 2.0 * ap, "tra = {tra}, ap = {ap}");
    }

    #[test]
    fn trimmed_app_is_cheaper_than_app() {
        let p = model();
        let t = p.timing.clone();
        let app = p.command_energy(&CommandProfile::app(&t)).as_f64();
        let tapp = p.command_energy(&CommandProfile::t_app(&t)).as_f64();
        assert!(tapp < app);
    }

    #[test]
    fn background_scales_with_factor() {
        let p = model();
        let base = p.background_energy(Ns(100.0), 1.0).as_f64();
        let drisa = p.background_energy(Ns(100.0), 1.5).as_f64();
        assert!((drisa / base - 1.5).abs() < 1e-12);
    }
}
