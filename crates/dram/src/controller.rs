//! Event-driven multi-bank controller with pump-constraint enforcement.
//!
//! The PIM layers hand per-bank command streams to the controller; it
//! interleaves them, enforcing (a) per-bank serialization and (b) the
//! rank-wide charge-pump budget via an exact sliding window
//! ([`crate::constraint::PumpWindow`]). The result is the makespan, energy,
//! and stall accounting used by the §6.3 case studies to validate the
//! analytic parallelism estimates.

use crate::bank::BankState;
use crate::command::CommandProfile;
use crate::constraint::{PumpBudget, PumpWindow};
use crate::error::DramError;
use crate::geometry::TopoPath;
use crate::power::PowerModel;
use crate::stats::RunStats;
use crate::telemetry::{CommandEvent, StallReason, TraceSink};
use crate::units::{Ns, Picojoules, Ps};

/// Event-driven controller over the banks of one rank.
///
/// ```
/// use elp2im_dram::controller::Controller;
/// use elp2im_dram::command::CommandProfile;
/// use elp2im_dram::constraint::PumpBudget;
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let t = Ddr3Timing::ddr3_1600();
/// let mut ctrl = Controller::new(8, PumpBudget::unconstrained());
/// // 8 banks each run one AP; unconstrained, they fully overlap.
/// let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t)])).collect();
/// let stats = ctrl.run_streams(&streams).unwrap();
/// assert!((stats.makespan.as_f64() - t.ap().as_f64()).abs() < 0.01);
/// ```
#[derive(Debug)]
pub struct Controller {
    banks: Vec<BankState>,
    pump: PumpWindow,
    power: PowerModel,
    now: Ps,
    /// Commands issue over a single shared command bus, so issue instants
    /// are globally non-decreasing. This also keeps the pump window's
    /// sliding accounting exact (no retroactive draws).
    last_issue: Ps,
    /// Periodic refresh blackout: `(interval, duration)` — every
    /// `interval`, the rank is unavailable for `duration` (all-bank
    /// refresh at the start of each interval).
    refresh: Option<(Ps, Ps)>,
    stats: RunStats,
    /// Optional per-command trace receiver. `None` keeps the hot path
    /// branch-predictable; the telemetry layer installs a sink on demand.
    sink: Option<Box<dyn TraceSink>>,
    /// Monotonic sequence number for emitted [`CommandEvent`]s.
    next_seq: u64,
}

impl Controller {
    /// Creates a controller for `banks` banks under `budget`.
    pub fn new(banks: usize, budget: PumpBudget) -> Self {
        Controller {
            banks: vec![BankState::new(); banks],
            pump: PumpWindow::new(budget),
            power: PowerModel::micron_ddr3_1600(),
            now: Ps::ZERO,
            last_issue: Ps::ZERO,
            refresh: None,
            stats: RunStats::new(),
            sink: None,
            next_seq: 0,
        }
    }

    /// Replaces the power model (default: Micron DDR3-1600).
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Installs a trace sink that observes every issued command
    /// (builder form of [`Controller::set_sink`]).
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Installs (or replaces) the trace sink.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Removes and returns the trace sink, if one was installed.
    pub fn take_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Enables periodic all-bank refresh from a timing set (tREFI/tRFC).
    /// The paper's evaluation ignores refresh; this supports sensitivity
    /// studies.
    pub fn with_refresh(mut self, timing: &crate::timing::Ddr3Timing) -> Self {
        self.refresh = Some((timing.t_refi.to_ps(), timing.t_rfc.to_ps()));
        self
    }

    /// Pushes `t` past any refresh blackout it falls into.
    fn align_refresh(&self, t: Ps) -> Ps {
        match self.refresh {
            None => t,
            Some((interval, duration)) => {
                let offset = Ps(t.0 % interval.0);
                if offset < duration {
                    Ps(t.0 - offset.0 + duration.0)
                } else {
                    t
                }
            }
        }
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> Ps {
        self.now
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Issues one command on `bank` at the earliest legal time at or after
    /// `earliest`, and returns the command's completion time.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] for an invalid bank index.
    pub fn issue(
        &mut self,
        bank: usize,
        profile: &CommandProfile,
        earliest: Ps,
    ) -> Result<Ps, DramError> {
        let nbanks = self.banks.len();
        let bank_free = self
            .banks
            .get(bank)
            .ok_or(DramError::BankOutOfRange { bank, banks: nbanks })?
            .next_free(earliest);
        // In-order issue over the shared command bus.
        let mut start = bank_free.max(self.last_issue);
        let cost = self.pump.budget().command_cost(profile);
        let requested = start;
        // The refresh/pump loop alternates two deferrals; accumulating each
        // hop telescopes to exactly `start - requested`, so the split below
        // reconciles in integer picoseconds.
        let mut refresh_wait = 0u64;
        let mut pump_wait = 0u64;
        loop {
            let aligned = self.align_refresh(start);
            refresh_wait += aligned.saturating_sub(start).0;
            start = aligned;
            match self.pump.try_admit(start, cost) {
                Ok(()) => break,
                Err(retry) => {
                    pump_wait += retry.saturating_sub(start).0;
                    start = retry;
                }
            }
        }
        self.last_issue = start;
        let done = self.banks[bank].occupy(start, profile.duration.to_ps());
        let energy = self.power.command_energy(profile);
        self.stats.record(profile.class, profile.duration, profile.total_wordline_events, energy);
        self.stats.pump_stall += Ps(pump_wait).to_ns();
        if done > self.now {
            self.now = done;
        }
        self.stats.makespan = Ns(self.stats.makespan.as_f64().max(done.to_ns().as_f64()));
        // Background energy accrues over the whole simulated wall clock;
        // restamping from the cumulative makespan keeps it linear, so the
        // per-run delta in `run_streams` subtracts cleanly.
        self.stats.background_energy = self.power.background_energy(self.stats.makespan, 1.0);
        if let Some(sink) = self.sink.as_mut() {
            let bank_wait = bank_free.saturating_sub(earliest);
            let bus_wait = requested.saturating_sub(bank_free);
            let reason = if pump_wait > 0 {
                StallReason::Pump
            } else if refresh_wait > 0 {
                StallReason::Refresh
            } else if bus_wait > Ps::ZERO {
                StallReason::Bus
            } else if bank_wait > Ps::ZERO {
                StallReason::Bank
            } else {
                StallReason::None
            };
            sink.record(&CommandEvent {
                seq: self.next_seq,
                path: TopoPath::flat_bank(bank),
                class: profile.class,
                issue: earliest,
                start,
                done,
                stall: start.saturating_sub(earliest),
                bank_wait,
                bus_wait,
                refresh_wait: Ps(refresh_wait),
                pump_wait: Ps(pump_wait),
                reason,
                energy,
            });
        }
        self.next_seq += 1;
        Ok(done)
    }

    /// Runs one command stream per `(bank, stream)` pair concurrently and
    /// returns the aggregate statistics for this run.
    ///
    /// Streams on distinct banks interleave freely subject to the pump
    /// budget; commands within a stream execute in order.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BankOutOfRange`] if any stream names an invalid
    /// bank.
    pub fn run_streams(
        &mut self,
        streams: &[(usize, Vec<CommandProfile>)],
    ) -> Result<RunStats, DramError> {
        let before = self.stats.clone();
        let run_start = self.now;
        // Cursor per stream; issue in global earliest-first order so the
        // sliding pump window sees commands in time order.
        let mut cursors: Vec<usize> = vec![0; streams.len()];
        let mut ready: Vec<Ps> = vec![self.now; streams.len()];
        loop {
            // Pick the unfinished stream whose next command can start
            // soonest (bank free time).
            let mut best: Option<(usize, Ps)> = None;
            for (i, (bank, cmds)) in streams.iter().enumerate() {
                if cursors[i] >= cmds.len() {
                    continue;
                }
                let state = self
                    .banks
                    .get(*bank)
                    .ok_or(DramError::BankOutOfRange { bank: *bank, banks: self.banks.len() })?;
                let t = state.next_free(ready[i]);
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
            let Some((i, t)) = best else { break };
            let (bank, cmds) = &streams[i];
            let done = self.issue(*bank, &cmds[cursors[i]], t)?;
            cursors[i] += 1;
            ready[i] = done;
        }
        let mut delta = self.stats.clone();
        // Subtract the prior counters to report just this run.
        delta.wordline_activations -= before.wordline_activations;
        delta.busy_time = delta.busy_time - before.busy_time;
        delta.energy = Picojoules(delta.energy.as_f64() - before.energy.as_f64());
        delta.pump_stall = delta.pump_stall - before.pump_stall;
        // The cumulative makespan is an absolute timestamp; this run's
        // makespan is measured from where the clock stood when it began.
        delta.makespan = self.now.saturating_sub(run_start).to_ns();
        delta.background_energy =
            Picojoules(delta.background_energy.as_f64() - before.background_energy.as_f64());
        for (k, v) in &before.commands {
            if let Some(cur) = delta.commands.get_mut(k) {
                *cur -= v;
            }
        }
        delta.commands.retain(|_, v| *v > 0);
        Ok(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::Ddr3Timing;

    fn t() -> Ddr3Timing {
        Ddr3Timing::ddr3_1600()
    }

    #[test]
    fn serializes_within_a_bank() {
        let mut c = Controller::new(1, PumpBudget::unconstrained());
        let ap = CommandProfile::ap(&t());
        let d1 = c.issue(0, &ap, Ps::ZERO).unwrap();
        let d2 = c.issue(0, &ap, Ps::ZERO).unwrap();
        assert_eq!(d2, Ps(d1.0 * 2));
    }

    #[test]
    fn parallel_banks_overlap_when_unconstrained() {
        let mut c = Controller::new(8, PumpBudget::unconstrained());
        let ap = CommandProfile::ap(&t());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![ap.clone(); 4])).collect();
        let stats = c.run_streams(&streams).unwrap();
        // Perfect overlap: makespan = 4 APs, not 32.
        let expect = ap.duration.as_f64() * 4.0;
        assert!((stats.makespan.as_f64() - expect).abs() < 0.01, "{stats}");
        assert_eq!(stats.total_commands(), 32);
        assert_eq!(stats.pump_stall, Ns::ZERO);
    }

    #[test]
    fn pump_constraint_throttles_parallelism() {
        // 8 banks of back-to-back APs under the JEDEC budget: only ~4 ACTs
        // per 40 ns fit, so makespan roughly doubles vs unconstrained.
        let ap = CommandProfile::ap(&t());
        let per_bank = 16;
        let streams: Vec<_> = (0..8).map(|b| (b, vec![ap.clone(); per_bank])).collect();

        let mut free = Controller::new(8, PumpBudget::unconstrained());
        let sf = free.run_streams(&streams).unwrap();
        let mut tight = Controller::new(8, PumpBudget::jedec_ddr3_1600());
        let st = tight.run_streams(&streams).unwrap();

        assert!(
            st.makespan.as_f64() > sf.makespan.as_f64() * 1.5,
            "constrained {} vs free {}",
            st.makespan,
            sf.makespan
        );
        assert!(st.pump_stall.as_f64() > 0.0);
    }

    #[test]
    fn tra_streams_throttle_harder_than_ap_streams() {
        let profile_ap = CommandProfile::ap(&t());
        let profile_tra = CommandProfile::ambit_tra_aap(&t());
        let n = 16;

        let mk = |p: &CommandProfile| -> Vec<(usize, Vec<CommandProfile>)> {
            (0..8).map(|b| (b, vec![p.clone(); n])).collect()
        };
        let mut c1 = Controller::new(8, PumpBudget::jedec_ddr3_1600());
        let s_ap = c1.run_streams(&mk(&profile_ap)).unwrap();
        let mut c2 = Controller::new(8, PumpBudget::jedec_ddr3_1600());
        let s_tra = c2.run_streams(&mk(&profile_tra)).unwrap();

        // Per-command slowdown factor must be clearly worse for TRA.
        let slow_ap = s_ap.makespan.as_f64() / (profile_ap.duration.as_f64() * n as f64);
        let slow_tra = s_tra.makespan.as_f64() / (profile_tra.duration.as_f64() * n as f64);
        assert!(slow_tra > slow_ap * 1.5, "ap x{slow_ap:.2} vs tra x{slow_tra:.2}");
    }

    #[test]
    fn bank_out_of_range_is_an_error() {
        let mut c = Controller::new(2, PumpBudget::unconstrained());
        let e = c.issue(5, &CommandProfile::ap(&t()), Ps::ZERO).unwrap_err();
        assert_eq!(e, DramError::BankOutOfRange { bank: 5, banks: 2 });
    }

    #[test]
    fn run_streams_reports_delta_not_cumulative() {
        let mut c = Controller::new(1, PumpBudget::unconstrained());
        let ap = CommandProfile::ap(&t());
        let s1 = c.run_streams(&[(0, vec![ap.clone(); 2])]).unwrap();
        let s2 = c.run_streams(&[(0, vec![ap.clone(); 3])]).unwrap();
        assert_eq!(s1.total_commands(), 2);
        assert_eq!(s2.total_commands(), 3);
        assert_eq!(c.stats().total_commands(), 5);
        // Each run's makespan covers only its own commands, not the
        // cumulative clock.
        let dur = ap.duration.as_f64();
        assert!((s1.makespan.as_f64() - 2.0 * dur).abs() < 0.01, "{s1}");
        assert!((s2.makespan.as_f64() - 3.0 * dur).abs() < 0.01, "{s2}");
        assert!((c.stats().makespan.as_f64() - 5.0 * dur).abs() < 0.01, "cumulative {}", c.stats());
    }

    #[test]
    fn background_energy_tracks_makespan() {
        let mut c = Controller::new(1, PumpBudget::unconstrained());
        let ap = CommandProfile::ap(&t());
        let s1 = c.run_streams(&[(0, vec![ap.clone(); 2])]).unwrap();
        let s2 = c.run_streams(&[(0, vec![ap.clone(); 2])]).unwrap();
        let model = PowerModel::micron_ddr3_1600();
        let expect = model.background_energy(s1.makespan, 1.0).as_f64();
        assert!((s1.background_energy.as_f64() - expect).abs() < 1e-6, "{s1}");
        // Identical back-to-back runs accrue identical background energy.
        assert!((s2.background_energy.as_f64() - expect).abs() < 1e-6, "{s2}");
        // Average power now exceeds the dynamic-only figure.
        assert!(s1.average_power_mw() > s1.dynamic_power_mw());
    }

    #[test]
    fn sink_observes_every_command_with_reasons() {
        use crate::telemetry::MemorySink;

        let ap = CommandProfile::ap(&t());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![ap.clone(); 8])).collect();
        let mut c = Controller::new(8, PumpBudget::jedec_ddr3_1600())
            .with_sink(Box::new(MemorySink::new()));
        let stats = c.run_streams(&streams).unwrap();
        let sink = c.take_sink().unwrap();
        let mem = sink.as_any().downcast_ref::<MemorySink>().unwrap();
        assert_eq!(mem.len() as u64, stats.total_commands());
        assert!(mem.metrics.stalls_by_reason.contains_key("pump"), "{:?}", mem.metrics);
        for e in &mem.events {
            assert!(e.done > e.start);
            assert_eq!(e.stall, e.start.saturating_sub(e.issue));
            assert!(e.waits_reconcile(), "seq {}: waits do not sum to stall", e.seq);
            assert_eq!(e.reason, e.dominant_reason());
        }
        assert!(mem.metrics.stalls_reconcile());
    }

    #[test]
    fn stall_split_reconciles_under_refresh_and_pump() {
        use crate::telemetry::MemorySink;

        // Frequent refresh + a tight pump budget: commands get delayed by
        // bank occupancy, the bus, refresh blackouts, and pump deferrals
        // within the same run — the four-way split must still sum exactly
        // to the total stall, command by command and in aggregate.
        let short_refresh =
            Ddr3Timing { t_refi: crate::units::Ns(500.0), ..Ddr3Timing::ddr3_1600() };
        let ap = CommandProfile::ap(&t());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![ap.clone(); 12])).collect();
        let mut c = Controller::new(8, PumpBudget::jedec_ddr3_1600())
            .with_refresh(&short_refresh)
            .with_sink(Box::new(MemorySink::new()));
        c.run_streams(&streams).unwrap();
        // A direct issue asking for t = 0 on a now-busy bank adds a pure
        // bank wait (run_streams pre-clamps its requests to bank-free, so
        // that cause only appears on the direct-issue API).
        c.issue(0, &ap, Ps::ZERO).unwrap();
        let sink = c.take_sink().unwrap();
        let mem = sink.as_any().downcast_ref::<MemorySink>().unwrap();
        assert!(!mem.is_empty());
        for e in &mem.events {
            assert!(e.waits_reconcile(), "seq {}: waits do not sum to stall", e.seq);
        }
        let m = &mem.metrics;
        assert!(m.total_stall_ps > 0);
        assert!(m.stalls_reconcile());
        // All four causes actually occur in this workload.
        for reason in [StallReason::Bank, StallReason::Bus, StallReason::Refresh, StallReason::Pump]
        {
            assert!(m.stall_ps_for(reason) > 0, "no {} time attributed", reason.label());
        }
    }

    #[test]
    fn refresh_blackouts_delay_commands() {
        let timing = t();
        let ap = CommandProfile::ap(&timing);
        // Shrink tREFI so blackouts are frequent relative to the stream.
        let short_refresh =
            Ddr3Timing { t_refi: crate::units::Ns(500.0), ..Ddr3Timing::ddr3_1600() };

        let mut plain = Controller::new(1, PumpBudget::unconstrained());
        let sp = plain.run_streams(&[(0, vec![ap.clone(); 40])]).unwrap();
        let mut refreshed =
            Controller::new(1, PumpBudget::unconstrained()).with_refresh(&short_refresh);
        let sr = refreshed.run_streams(&[(0, vec![ap.clone(); 40])]).unwrap();
        // tRFC 260 ns per 500 ns interval: roughly half the time is lost.
        let slowdown = sr.makespan.as_f64() / sp.makespan.as_f64();
        assert!((1.3..=2.2).contains(&slowdown), "slowdown {slowdown}");
        // No command may start inside a blackout.
        assert!(sr.makespan.as_f64() > sp.makespan.as_f64());
    }

    #[test]
    fn realistic_refresh_costs_a_few_percent() {
        let timing = t();
        let ap = CommandProfile::ap(&timing);
        let streams: Vec<_> = (0..4).map(|b| (b, vec![ap.clone(); 400])).collect();
        let mut plain = Controller::new(4, PumpBudget::unconstrained());
        let sp = plain.run_streams(&streams).unwrap();
        let mut refreshed = Controller::new(4, PumpBudget::unconstrained()).with_refresh(&timing);
        let sr = refreshed.run_streams(&streams).unwrap();
        let overhead = sr.makespan.as_f64() / sp.makespan.as_f64() - 1.0;
        assert!((0.0..=0.08).contains(&overhead), "refresh overhead {overhead}");
    }

    /// Cross-check: the event-driven simulator should agree with the
    /// analytic steady-state estimate of `PumpBudget::max_parallel_banks`.
    #[test]
    fn analytic_estimate_matches_simulation() {
        let budget = PumpBudget::jedec_ddr3_1600();
        let timing = t();
        let stream = vec![
            CommandProfile::aap(&timing),
            CommandProfile::app(&timing),
            CommandProfile::ap(&timing),
        ];
        let analytic = budget.max_parallel_banks(&stream, 8);

        let reps = 64;
        let streams: Vec<_> = (0..8)
            .map(|b| {
                let mut v = Vec::new();
                for _ in 0..reps {
                    v.extend(stream.iter().cloned());
                }
                (b, v)
            })
            .collect();
        let mut c = Controller::new(8, budget.clone());
        let s = c.run_streams(&streams).unwrap();
        // Effective parallelism = total busy time / makespan.
        let eff = s.busy_time.as_f64() / s.makespan.as_f64();
        assert!(
            (eff - analytic).abs() / analytic < 0.15,
            "analytic {analytic:.2} vs simulated {eff:.2}"
        );
    }
}
