//! Per-bank timing state for the event-driven controller.

use crate::units::Ps;

/// Timing state of one DRAM bank.
///
/// The controller uses this to serialize commands within a bank; logic
/// semantics live in the PIM layers, so the bank only tracks *when* it is
/// next free and simple occupancy statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BankState {
    busy_until: Ps,
    commands_issued: u64,
}

impl BankState {
    /// A bank that is idle at time zero.
    pub fn new() -> Self {
        BankState::default()
    }

    /// When the bank finishes its current command.
    pub fn busy_until(&self) -> Ps {
        self.busy_until
    }

    /// Whether the bank can accept a command at `now`.
    pub fn is_free(&self, now: Ps) -> bool {
        now >= self.busy_until
    }

    /// Earliest time at or after `now` when the bank is free.
    pub fn next_free(&self, now: Ps) -> Ps {
        if self.is_free(now) {
            now
        } else {
            self.busy_until
        }
    }

    /// Occupies the bank from `start` for `duration` picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if the bank is still busy at `start` — the controller must
    /// never double-book a bank.
    pub fn occupy(&mut self, start: Ps, duration: Ps) -> Ps {
        assert!(
            self.is_free(start),
            "bank double-booked: busy until {}, occupy at {}",
            self.busy_until,
            start
        );
        self.busy_until = start + duration;
        self.commands_issued += 1;
        self.busy_until
    }

    /// Number of commands this bank has executed.
    pub fn commands_issued(&self) -> u64 {
        self.commands_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupy_advances_busy_until() {
        let mut b = BankState::new();
        assert!(b.is_free(Ps(0)));
        let done = b.occupy(Ps(0), Ps(49_000));
        assert_eq!(done, Ps(49_000));
        assert!(!b.is_free(Ps(10_000)));
        assert!(b.is_free(Ps(49_000)));
        assert_eq!(b.commands_issued(), 1);
    }

    #[test]
    fn next_free_clamps_to_now() {
        let mut b = BankState::new();
        b.occupy(Ps(0), Ps(100));
        assert_eq!(b.next_free(Ps(50)), Ps(100));
        assert_eq!(b.next_free(Ps(200)), Ps(200));
    }

    #[test]
    #[should_panic(expected = "double-booked")]
    fn double_booking_panics() {
        let mut b = BankState::new();
        b.occupy(Ps(0), Ps(100));
        b.occupy(Ps(50), Ps(100));
    }
}
