//! DRAM module geometry and typed row addressing.
//!
//! The paper's case studies use a regular DRAM module with 8 banks (§6.3);
//! subarray and row dimensions follow common DDR3 organizations (512-row
//! subarrays with 8 KiB rows, cf. §5.2's 512×512 matrix note — a subarray
//! row spans many matrices horizontally).

use std::fmt;

/// Geometry of a DRAM module visible to the PIM layers.
///
/// ```
/// use elp2im_dram::geometry::Geometry;
/// let g = Geometry::ddr3_module();
/// assert_eq!(g.banks, 8);
/// assert_eq!(g.row_bits(), 65_536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Independent banks per module.
    pub banks: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Data rows per subarray (excluding any reserved rows).
    pub rows_per_subarray: usize,
    /// Row width in bytes (one full row across all matrices of a subarray).
    pub row_bytes: usize,
}

impl Geometry {
    /// The 8-bank DDR3 module configuration used in §6.3.
    pub fn ddr3_module() -> Self {
        Geometry { banks: 8, subarrays_per_bank: 64, rows_per_subarray: 512, row_bytes: 8192 }
    }

    /// A deliberately tiny geometry for fast tests.
    pub fn tiny() -> Self {
        Geometry { banks: 2, subarrays_per_bank: 2, rows_per_subarray: 32, row_bytes: 32 }
    }

    /// Bits per row.
    pub fn row_bits(&self) -> usize {
        self.row_bytes * 8
    }

    /// Total number of subarrays in the module.
    pub fn total_subarrays(&self) -> usize {
        self.banks * self.subarrays_per_bank
    }

    /// Total module capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.total_subarrays() * self.rows_per_subarray * self.row_bytes
    }

    /// Number of bit-lanes that can compute in parallel when every subarray
    /// of every bank executes the same bulk bitwise operation.
    pub fn parallel_lanes(&self) -> usize {
        self.total_subarrays() * self.row_bits()
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::ddr3_module()
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} banks × {} subarrays × {} rows × {} B",
            self.banks, self.subarrays_per_bank, self.rows_per_subarray, self.row_bytes
        )
    }
}

/// A fully qualified row address within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr {
    /// Bank index.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Row index within the subarray.
    pub row: usize,
}

impl RowAddr {
    /// Creates a row address; validates against a geometry.
    ///
    /// # Errors
    ///
    /// Returns `None` if any component is out of range for `geom`.
    pub fn checked_new(geom: &Geometry, bank: usize, subarray: usize, row: usize) -> Option<Self> {
        if bank < geom.banks && subarray < geom.subarrays_per_bank && row < geom.rows_per_subarray {
            Some(RowAddr { bank, subarray, row })
        } else {
            None
        }
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.s{}.r{}", self.bank, self.subarray, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_module_capacity() {
        let g = Geometry::ddr3_module();
        // 8 × 64 × 512 × 8 KiB = 2 GiB
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024);
        assert_eq!(g.parallel_lanes(), 8 * 64 * 65_536);
    }

    #[test]
    fn checked_addressing() {
        let g = Geometry::tiny();
        assert!(RowAddr::checked_new(&g, 1, 1, 31).is_some());
        assert!(RowAddr::checked_new(&g, 2, 0, 0).is_none());
        assert!(RowAddr::checked_new(&g, 0, 2, 0).is_none());
        assert!(RowAddr::checked_new(&g, 0, 0, 32).is_none());
    }

    #[test]
    fn display_round_trips_information() {
        let a = RowAddr { bank: 3, subarray: 7, row: 100 };
        assert_eq!(format!("{a}"), "b3.s7.r100");
        let g = Geometry::tiny();
        assert!(format!("{g}").contains("2 banks"));
    }
}
