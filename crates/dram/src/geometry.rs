//! DRAM module geometry and typed row addressing.
//!
//! The paper's case studies use a regular DRAM module with 8 banks (§6.3);
//! subarray and row dimensions follow common DDR3 organizations (512-row
//! subarrays with 8 KiB rows, cf. §5.2's 512×512 matrix note — a subarray
//! row spans many matrices horizontally).

use std::fmt;

/// Geometry of a DRAM module visible to the PIM layers.
///
/// ```
/// use elp2im_dram::geometry::Geometry;
/// let g = Geometry::ddr3_module();
/// assert_eq!(g.banks, 8);
/// assert_eq!(g.row_bits(), 65_536);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Independent banks per module.
    pub banks: usize,
    /// Subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Data rows per subarray (excluding any reserved rows).
    pub rows_per_subarray: usize,
    /// Row width in bytes (one full row across all matrices of a subarray).
    pub row_bytes: usize,
}

impl Geometry {
    /// The 8-bank DDR3 module configuration used in §6.3.
    pub fn ddr3_module() -> Self {
        Geometry { banks: 8, subarrays_per_bank: 64, rows_per_subarray: 512, row_bytes: 8192 }
    }

    /// A deliberately tiny geometry for fast tests.
    pub fn tiny() -> Self {
        Geometry { banks: 2, subarrays_per_bank: 2, rows_per_subarray: 32, row_bytes: 32 }
    }

    /// Bits per row.
    pub fn row_bits(&self) -> usize {
        self.row_bytes * 8
    }

    /// Total number of subarrays in the module.
    pub fn total_subarrays(&self) -> usize {
        self.banks * self.subarrays_per_bank
    }

    /// Total module capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.total_subarrays() * self.rows_per_subarray * self.row_bytes
    }

    /// Number of bit-lanes that can compute in parallel when every subarray
    /// of every bank executes the same bulk bitwise operation.
    pub fn parallel_lanes(&self) -> usize {
        self.total_subarrays() * self.row_bits()
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::ddr3_module()
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} banks × {} subarrays × {} rows × {} B",
            self.banks, self.subarrays_per_bank, self.rows_per_subarray, self.row_bytes
        )
    }
}

/// A multi-module DRAM topology: channels × ranks × banks.
///
/// The paper's evaluation (§6.3) and the in-DRAM bulk-bitwise survey both
/// frame the system-level win as integration *above* the subarray
/// substrate: every channel has its own command/data bus, so channels
/// overlap fully; every rank has its own charge-pump delivery network, so
/// the tFAW-style activation window applies per rank; banks within a rank
/// share both. [`Topology`] captures exactly those sharing domains, with
/// [`Geometry`] describing the per-rank bank/subarray/row shape.
///
/// ```
/// use elp2im_dram::geometry::{Geometry, Topology};
/// let t = Topology::new(4, 2, Geometry::ddr3_module());
/// assert_eq!(t.total_banks(), 4 * 2 * 8);
/// // Flat unit indices enumerate (channel, rank, bank) lexicographically.
/// let p = t.path(10);
/// assert_eq!((p.channel, p.rank, p.bank), (0, 1, 2));
/// assert_eq!(t.flat_index(p), 10);
/// assert_eq!(t.path(16).channel, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Independent channels, each with its own command bus.
    pub channels: usize,
    /// Ranks per channel, each with its own charge-pump window.
    pub ranks_per_channel: usize,
    /// Per-rank shape: banks per rank plus subarray/row dimensions.
    pub geometry: Geometry,
}

impl Topology {
    /// A topology of `channels` × `ranks_per_channel` ranks, each shaped
    /// like `geometry` (`geometry.banks` banks per rank).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(channels: usize, ranks_per_channel: usize, geometry: Geometry) -> Self {
        assert!(channels > 0, "a topology needs at least one channel");
        assert!(ranks_per_channel > 0, "a topology needs at least one rank per channel");
        assert!(geometry.banks > 0, "a rank needs at least one bank");
        Topology { channels, ranks_per_channel, geometry }
    }

    /// The single-module topology every pre-topology layer assumed:
    /// one channel, one rank, `geometry.banks` banks.
    pub fn module(geometry: Geometry) -> Self {
        Topology::new(1, 1, geometry)
    }

    /// Total ranks across every channel.
    pub fn total_ranks(&self) -> usize {
        self.channels * self.ranks_per_channel
    }

    /// Total banks across every channel and rank.
    pub fn total_banks(&self) -> usize {
        self.total_ranks() * self.geometry.banks
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.total_ranks() * self.geometry.capacity_bytes()
    }

    /// Whether `path` addresses a bank inside this topology.
    pub fn contains(&self, path: TopoPath) -> bool {
        path.channel < self.channels
            && path.rank < self.ranks_per_channel
            && path.bank < self.geometry.banks
    }

    /// Flat unit index of `path`: `(channel, rank, bank)` lexicographic.
    ///
    /// # Panics
    ///
    /// Panics if `path` is outside the topology.
    pub fn flat_index(&self, path: TopoPath) -> usize {
        assert!(self.contains(path), "{path} outside {self}");
        (path.channel * self.ranks_per_channel + path.rank) * self.geometry.banks + path.bank
    }

    /// Inverse of [`Topology::flat_index`].
    ///
    /// # Panics
    ///
    /// Panics if `flat` is at or beyond [`Topology::total_banks`].
    pub fn path(&self, flat: usize) -> TopoPath {
        assert!(flat < self.total_banks(), "flat index {flat} outside {self}");
        let banks = self.geometry.banks;
        TopoPath {
            channel: flat / (self.ranks_per_channel * banks),
            rank: (flat / banks) % self.ranks_per_channel,
            bank: flat % banks,
        }
    }

    /// Every bank path, in flat-index order.
    pub fn paths(&self) -> impl Iterator<Item = TopoPath> + '_ {
        (0..self.total_banks()).map(|i| self.path(i))
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::module(Geometry::default())
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} channels × {} ranks × ({})",
            self.channels, self.ranks_per_channel, self.geometry
        )
    }
}

/// A fully qualified bank address within a [`Topology`].
///
/// Ordering is lexicographic `(channel, rank, bank)`, matching
/// [`Topology::flat_index`]; schedulers use it as the deterministic
/// tie-break, and telemetry keys events and counters by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TopoPath {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
}

impl TopoPath {
    /// Creates a path from its three components.
    pub fn new(channel: usize, rank: usize, bank: usize) -> Self {
        TopoPath { channel, rank, bank }
    }

    /// The path of `bank` in the single-module topology (channel 0,
    /// rank 0) — how pre-topology bank indices embed into the hierarchy.
    pub fn flat_bank(bank: usize) -> Self {
        TopoPath { channel: 0, rank: 0, bank }
    }

    /// The pump-sharing domain of this path: its `(channel, rank)` pair.
    pub fn rank_id(self) -> (usize, usize) {
        (self.channel, self.rank)
    }
}

impl fmt::Display for TopoPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}.r{}.b{}", self.channel, self.rank, self.bank)
    }
}

/// A fully qualified row address within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowAddr {
    /// Bank index.
    pub bank: usize,
    /// Subarray index within the bank.
    pub subarray: usize,
    /// Row index within the subarray.
    pub row: usize,
}

impl RowAddr {
    /// Creates a row address; validates against a geometry.
    ///
    /// # Errors
    ///
    /// Returns `None` if any component is out of range for `geom`.
    pub fn checked_new(geom: &Geometry, bank: usize, subarray: usize, row: usize) -> Option<Self> {
        if bank < geom.banks && subarray < geom.subarrays_per_bank && row < geom.rows_per_subarray {
            Some(RowAddr { bank, subarray, row })
        } else {
            None
        }
    }
}

impl fmt::Display for RowAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.s{}.r{}", self.bank, self.subarray, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_module_capacity() {
        let g = Geometry::ddr3_module();
        // 8 × 64 × 512 × 8 KiB = 2 GiB
        assert_eq!(g.capacity_bytes(), 2 * 1024 * 1024 * 1024);
        assert_eq!(g.parallel_lanes(), 8 * 64 * 65_536);
    }

    #[test]
    fn checked_addressing() {
        let g = Geometry::tiny();
        assert!(RowAddr::checked_new(&g, 1, 1, 31).is_some());
        assert!(RowAddr::checked_new(&g, 2, 0, 0).is_none());
        assert!(RowAddr::checked_new(&g, 0, 2, 0).is_none());
        assert!(RowAddr::checked_new(&g, 0, 0, 32).is_none());
    }

    #[test]
    fn display_round_trips_information() {
        let a = RowAddr { bank: 3, subarray: 7, row: 100 };
        assert_eq!(format!("{a}"), "b3.s7.r100");
        let g = Geometry::tiny();
        assert!(format!("{g}").contains("2 banks"));
        let p = TopoPath::new(1, 0, 5);
        assert_eq!(format!("{p}"), "c1.r0.b5");
    }

    #[test]
    fn topology_flat_index_round_trips() {
        let t = Topology::new(3, 2, Geometry::tiny());
        assert_eq!(t.total_ranks(), 6);
        assert_eq!(t.total_banks(), 12);
        for flat in 0..t.total_banks() {
            let p = t.path(flat);
            assert!(t.contains(p));
            assert_eq!(t.flat_index(p), flat);
        }
        // Lexicographic order of paths matches flat order.
        let paths: Vec<_> = t.paths().collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted);
    }

    #[test]
    fn module_topology_matches_flat_banks() {
        let t = Topology::module(Geometry::ddr3_module());
        assert_eq!(t.total_banks(), 8);
        for b in 0..8 {
            assert_eq!(t.path(b), TopoPath::flat_bank(b));
            assert_eq!(t.flat_index(TopoPath::flat_bank(b)), b);
        }
        assert_eq!(t.capacity_bytes(), Geometry::ddr3_module().capacity_bytes());
    }

    #[test]
    fn topology_rejects_out_of_range() {
        let t = Topology::new(2, 2, Geometry::tiny());
        assert!(!t.contains(TopoPath::new(2, 0, 0)));
        assert!(!t.contains(TopoPath::new(0, 2, 0)));
        assert!(!t.contains(TopoPath::new(0, 0, 2)));
    }
}
