//! Typed time and energy units used throughout the workspace.
//!
//! The simulator keeps two representations of time:
//!
//! * [`Ns`] — a floating-point nanosecond quantity for analytic model
//!   arithmetic (latency sums, rates).
//! * [`Ps`] — an integer picosecond timestamp for the event-driven
//!   controller, where exact ordering matters.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration (or latency) in nanoseconds.
///
/// ```
/// use elp2im_dram::units::Ns;
/// let cycle = Ns(49.0) + Ns(35.0);
/// assert_eq!(cycle, Ns(84.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ns(pub f64);

impl Ns {
    /// Zero duration.
    pub const ZERO: Ns = Ns(0.0);

    /// Returns the raw nanosecond count.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Converts to integer picoseconds (rounding to nearest).
    ///
    /// # Panics
    ///
    /// Panics if the duration is negative or not finite.
    pub fn to_ps(self) -> Ps {
        assert!(self.0.is_finite() && self.0 >= 0.0, "cannot convert {self} to picoseconds");
        Ps((self.0 * 1000.0).round() as u64)
    }

    /// Converts to seconds.
    pub fn as_secs(self) -> f64 {
        self.0 * 1e-9
    }
}

impl Add for Ns {
    type Output = Ns;
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl Mul<f64> for Ns {
    type Output = Ns;
    fn mul(self, rhs: f64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<Ns> for Ns {
    type Output = f64;
    fn div(self, rhs: Ns) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Ns {
    fn sum<I: Iterator<Item = Ns>>(iter: I) -> Ns {
        Ns(iter.map(|n| n.0).sum())
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ns", self.0)
    }
}

/// An absolute timestamp (or exact duration) in integer picoseconds.
///
/// Used by the event-driven controller so that event ordering is exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ps(pub u64);

impl Ps {
    /// Time zero.
    pub const ZERO: Ps = Ps(0);

    /// Converts back to floating-point nanoseconds.
    pub fn to_ns(self) -> Ns {
        Ns(self.0 as f64 / 1000.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Ps {
    type Output = Ps;
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ps", self.0)
    }
}

/// An energy quantity in picojoules.
///
/// ```
/// use elp2im_dram::units::Picojoules;
/// let e = Picojoules(100.0) + Picojoules(20.0);
/// assert_eq!(e.as_f64(), 120.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Picojoules(pub f64);

impl Picojoules {
    /// Zero energy.
    pub const ZERO: Picojoules = Picojoules(0.0);

    /// Returns the raw picojoule count.
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Converts to nanojoules.
    pub fn as_nanojoules(self) -> f64 {
        self.0 / 1000.0
    }

    /// Average power in milliwatts over the given duration.
    ///
    /// # Panics
    ///
    /// Panics if `over` is zero.
    pub fn power_mw(self, over: Ns) -> f64 {
        assert!(over.0 > 0.0, "cannot compute power over a zero duration");
        // pJ / ns = mW
        self.0 / over.0
    }
}

impl Add for Picojoules {
    type Output = Picojoules;
    fn add(self, rhs: Picojoules) -> Picojoules {
        Picojoules(self.0 + rhs.0)
    }
}

impl AddAssign for Picojoules {
    fn add_assign(&mut self, rhs: Picojoules) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Picojoules {
    type Output = Picojoules;
    fn mul(self, rhs: f64) -> Picojoules {
        Picojoules(self.0 * rhs)
    }
}

impl Sum for Picojoules {
    fn sum<I: Iterator<Item = Picojoules>>(iter: I) -> Picojoules {
        Picojoules(iter.map(|e| e.0).sum())
    }
}

impl fmt::Display for Picojoules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} pJ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_arithmetic() {
        assert_eq!(Ns(1.5) + Ns(2.5), Ns(4.0));
        assert_eq!(Ns(5.0) - Ns(2.0), Ns(3.0));
        assert_eq!(Ns(5.0) * 2.0, Ns(10.0));
        assert!((Ns(10.0) / Ns(4.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ns_sum() {
        let total: Ns = [Ns(1.0), Ns(2.0), Ns(3.0)].into_iter().sum();
        assert_eq!(total, Ns(6.0));
    }

    #[test]
    fn ns_to_ps_roundtrip() {
        let ns = Ns(48.75);
        assert_eq!(ns.to_ps(), Ps(48750));
        assert!((ns.to_ps().to_ns().as_f64() - 48.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "picoseconds")]
    fn negative_ns_to_ps_panics() {
        let _ = Ns(-1.0).to_ps();
    }

    #[test]
    fn ps_ordering_is_exact() {
        assert!(Ps(1) < Ps(2));
        assert_eq!(Ps(3) + Ps(4), Ps(7));
        assert_eq!(Ps(3).saturating_sub(Ps(5)), Ps::ZERO);
    }

    #[test]
    fn picojoules_power() {
        // 100 pJ over 50 ns = 2 mW
        assert!((Picojoules(100.0).power_mw(Ns(50.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Ns(48.75)), "48.75 ns");
        assert_eq!(format!("{}", Ps(10)), "10 ps");
        assert_eq!(format!("{}", Picojoules(1.25)), "1.2 pJ");
    }
}
