//! Deterministic interleaved scheduling of per-bank command streams.
//!
//! The batch execution layer (`elp2im-core::batch`) shards a bulk bitwise
//! operation across banks and needs to know what the module's command bus
//! actually does with the resulting per-bank primitive streams: the true
//! wall-clock **makespan** under the shared charge-pump/tFAW window
//! (§6.3), not the per-bank serial `busy_time`. [`InterleavedScheduler`]
//! produces exactly that, plus an exact per-command trace
//! ([`ScheduledCommand`]) a logic analyzer on the bus would record —
//! which the golden-sequence tests pin down cycle by cycle.
//!
//! Unlike [`crate::controller::Controller`], the scheduler is stateless:
//! every [`InterleavedScheduler::schedule`] call starts from an idle rank
//! at t = 0 and is a pure function of its inputs, so results are
//! reproducible and comparable across runs.
//!
//! # Determinism
//!
//! The issue order is fully deterministic:
//!
//! 1. Streams are processed in ascending **bank index** (duplicate bank
//!    entries are merged in input order).
//! 2. At every step, the pending command with the earliest legal start
//!    time (its bank's free time, clamped by in-order bus issue) is
//!    chosen; ties go to the **lowest bank index**.
//! 3. The charge-pump sliding window then defers the start further if the
//!    rank-wide activation budget is exhausted; the deferral is recorded
//!    as that command's `pump_stall`.

use crate::bank::BankState;
use crate::command::{CommandClass, CommandProfile};
use crate::constraint::{PumpBudget, PumpWindow};
use crate::error::DramError;
use crate::power::PowerModel;
use crate::stats::RunStats;
use crate::telemetry::{CommandEvent, NullSink, StallReason, TraceSink};
use crate::units::{Ns, Ps};

/// One command as actually issued on the shared bus.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCommand {
    /// Global issue order (0-based).
    pub seq: usize,
    /// Bank the command executes on.
    pub bank: usize,
    /// Position within that bank's stream.
    pub index_in_bank: usize,
    /// Command classification.
    pub class: CommandClass,
    /// Issue instant.
    pub start: Ps,
    /// Completion instant.
    pub done: Ps,
    /// Delay inserted before this command because the charge-pump/tFAW
    /// window was exhausted (zero when the bank or bus was the limiter).
    pub pump_stall: Ps,
}

/// The full outcome of scheduling one batch of per-bank streams.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Exact bus trace, in issue order.
    pub commands: Vec<ScheduledCommand>,
    /// Aggregate statistics: `busy_time` is the per-bank serial sum,
    /// `makespan` the true wall clock, `pump_stall` the summed deferrals.
    pub stats: RunStats,
    /// Completion time of each bank that appeared in the input, keyed by
    /// bank index (banks without work are absent).
    pub bank_done: Vec<(usize, Ps)>,
}

impl Schedule {
    /// Wall-clock makespan of the batch.
    pub fn makespan(&self) -> Ns {
        self.stats.makespan
    }

    /// The trace restricted to one bank, in issue order.
    pub fn bank_trace(&self, bank: usize) -> Vec<&ScheduledCommand> {
        self.commands.iter().filter(|c| c.bank == bank).collect()
    }

    /// The first command that was stalled by the pump window, if any.
    pub fn first_stall(&self) -> Option<&ScheduledCommand> {
        self.commands.iter().find(|c| c.pump_stall > Ps::ZERO)
    }
}

/// Deterministic, stateless scheduler for per-bank command streams under
/// the shared charge-pump budget.
///
/// ```
/// use elp2im_dram::command::CommandProfile;
/// use elp2im_dram::constraint::PumpBudget;
/// use elp2im_dram::interleave::InterleavedScheduler;
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let t = Ddr3Timing::ddr3_1600();
/// let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
/// let streams: Vec<_> = (0..4).map(|b| (b, vec![CommandProfile::ap(&t); 2])).collect();
/// let s = sched.schedule(&streams).unwrap();
/// // Four banks fully overlap: makespan = one bank's serial time.
/// assert!((s.makespan().as_f64() - 2.0 * t.ap().as_f64()).abs() < 0.01);
/// assert_eq!(s.stats.total_commands(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct InterleavedScheduler {
    budget: PumpBudget,
    power: PowerModel,
}

impl InterleavedScheduler {
    /// A scheduler enforcing `budget` with the default Micron power model.
    pub fn new(budget: PumpBudget) -> Self {
        InterleavedScheduler { budget, power: PowerModel::micron_ddr3_1600() }
    }

    /// Replaces the power model used for energy accounting.
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// The enforced budget.
    pub fn budget(&self) -> &PumpBudget {
        &self.budget
    }

    /// Schedules `streams` (pairs of bank index and that bank's in-order
    /// command stream) from an idle rank at t = 0 and returns the exact
    /// trace plus aggregate statistics.
    ///
    /// # Errors
    ///
    /// [`DramError::BankOutOfRange`] if a stream names a bank at or above
    /// `usize::MAX / 2` (a sentinel for obviously corrupt indices); any
    /// bank index is otherwise legal — the scheduler sizes itself to the
    /// largest one named.
    pub fn schedule(
        &self,
        streams: &[(usize, Vec<CommandProfile>)],
    ) -> Result<Schedule, DramError> {
        // Monomorphized with the no-op sink: compiles to the untraced path.
        self.schedule_with(streams, &mut NullSink)
    }

    /// [`InterleavedScheduler::schedule`] with a dynamic trace sink, for
    /// callers that hold a `Box<dyn TraceSink>`.
    ///
    /// # Errors
    ///
    /// Same as [`InterleavedScheduler::schedule`].
    pub fn schedule_traced(
        &self,
        streams: &[(usize, Vec<CommandProfile>)],
        sink: &mut dyn TraceSink,
    ) -> Result<Schedule, DramError> {
        self.schedule_with(streams, sink)
    }

    /// Schedules `streams` while reporting every issued command to `sink`.
    ///
    /// Generic over the sink so the [`NullSink`] instantiation is zero
    /// cost (verified by the criterion bench in `elp2im-bench`).
    ///
    /// # Errors
    ///
    /// Same as [`InterleavedScheduler::schedule`].
    pub fn schedule_with<S: TraceSink + ?Sized>(
        &self,
        streams: &[(usize, Vec<CommandProfile>)],
        sink: &mut S,
    ) -> Result<Schedule, DramError> {
        // Merge duplicate bank entries and sort by bank index so the
        // tie-break below is by bank, not input order.
        let mut merged: Vec<(usize, Vec<&CommandProfile>)> = Vec::new();
        for (bank, cmds) in streams {
            if *bank >= usize::MAX / 2 {
                return Err(DramError::BankOutOfRange { bank: *bank, banks: usize::MAX / 2 });
            }
            match merged.iter_mut().find(|(b, _)| b == bank) {
                Some((_, v)) => v.extend(cmds.iter()),
                None => merged.push((*bank, cmds.iter().collect())),
            }
        }
        merged.sort_by_key(|&(bank, _)| bank);

        let mut banks: Vec<BankState> = (0..merged.len()).map(|_| BankState::new()).collect();
        let mut pump = PumpWindow::new(self.budget.clone());
        let mut cursors = vec![0usize; merged.len()];
        let mut last_issue = Ps::ZERO;
        let mut stats = RunStats::new();
        let mut commands = Vec::with_capacity(merged.iter().map(|(_, v)| v.len()).sum());

        loop {
            // Earliest-bank-free-first among unfinished streams; ties go
            // to the lowest bank index (merged is sorted by bank, and the
            // strict `<` keeps the first/lowest candidate). The shared-bus
            // clamp by `last_issue` applies at issue, not selection —
            // matching `Controller::run_streams`.
            let mut best: Option<(usize, Ps)> = None;
            for (i, (_, cmds)) in merged.iter().enumerate() {
                if cursors[i] >= cmds.len() {
                    continue;
                }
                let t = banks[i].next_free(Ps::ZERO);
                if best.is_none_or(|(_, bt)| t < bt) {
                    best = Some((i, t));
                }
            }
            let Some((i, bank_free)) = best else { break };
            let (bank, cmds) = &merged[i];
            let profile = cmds[cursors[i]];
            let requested = bank_free.max(last_issue);

            // Admit against the rank-wide pump window, deferring as needed.
            let cost = self.budget.command_cost(profile);
            let mut start = requested;
            loop {
                match pump.try_admit(start, cost) {
                    Ok(()) => break,
                    Err(retry) => start = retry,
                }
            }
            let stall = start.saturating_sub(requested);
            last_issue = start;
            let done = banks[i].occupy(start, profile.duration.to_ps());

            let energy = self.power.command_energy(profile);
            stats.record(profile.class, profile.duration, profile.total_wordline_events, energy);
            stats.pump_stall += stall.to_ns();
            stats.makespan = Ns(stats.makespan.as_f64().max(done.to_ns().as_f64()));

            // The request instant here is the bank-free time itself, so a
            // wait is either the pump window or the shared-bus clamp.
            let reason = if stall > Ps::ZERO {
                StallReason::Pump
            } else if requested > bank_free {
                StallReason::Bus
            } else {
                StallReason::None
            };
            sink.record(&CommandEvent {
                seq: commands.len() as u64,
                bank: *bank,
                class: profile.class,
                issue: bank_free,
                start,
                done,
                stall: start.saturating_sub(bank_free),
                reason,
                energy,
            });

            commands.push(ScheduledCommand {
                seq: commands.len(),
                bank: *bank,
                index_in_bank: cursors[i],
                class: profile.class,
                start,
                done,
                pump_stall: stall,
            });
            cursors[i] += 1;
        }

        // Stamp the standby accrual over the schedule's wall clock so
        // average-power figures include the background term (Fig. 13).
        stats.background_energy = self.power.background_energy(stats.makespan, 1.0);

        let bank_done = merged
            .iter()
            .enumerate()
            .map(|(i, (bank, _))| (*bank, banks[i].busy_until()))
            .collect();
        Ok(Schedule { commands, stats, bank_done })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::Ddr3Timing;

    fn t() -> Ddr3Timing {
        Ddr3Timing::ddr3_1600()
    }

    #[test]
    fn single_bank_serializes_and_makespan_equals_busy() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let s = sched.schedule(&[(0, vec![CommandProfile::ap(&t()); 5])]).unwrap();
        assert_eq!(s.commands.len(), 5);
        assert!((s.stats.makespan.as_f64() - s.stats.busy_time.as_f64()).abs() < 1e-9);
        // Back-to-back, no gaps.
        for w in s.commands.windows(2) {
            assert_eq!(w[0].done, w[1].start);
        }
    }

    #[test]
    fn banks_overlap_when_unconstrained() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t()); 4])).collect();
        let s = sched.schedule(&streams).unwrap();
        let expect = CommandProfile::ap(&t()).duration.as_f64() * 4.0;
        assert!((s.stats.makespan.as_f64() - expect).abs() < 0.01);
        assert!((s.stats.busy_time.as_f64() - expect * 8.0).abs() < 0.01);
        assert_eq!(s.stats.pump_stall, Ns::ZERO);
    }

    #[test]
    fn issue_order_round_robins_by_bank_index() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        // Input deliberately out of order: the schedule must not care.
        let streams = vec![
            (2, vec![CommandProfile::ap(&t()); 2]),
            (0, vec![CommandProfile::ap(&t()); 2]),
            (1, vec![CommandProfile::ap(&t()); 2]),
        ];
        let s = sched.schedule(&streams).unwrap();
        let order: Vec<usize> = s.commands.iter().map(|c| c.bank).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn identical_inputs_produce_identical_schedules() {
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::aap(&t()); 6])).collect();
        let a = sched.schedule(&streams).unwrap();
        let b = sched.schedule(&streams).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pump_constraint_inserts_recorded_stalls() {
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t()); 8])).collect();
        let s = sched.schedule(&streams).unwrap();
        assert!(s.stats.pump_stall.as_f64() > 0.0);
        let first = s.first_stall().expect("8 concurrent AP streams must stall");
        // The JEDEC budget admits 4 activates per 40 ns window; the fifth
        // command is the first deferred one.
        assert_eq!(first.seq, 4);
        // Sum of per-command stalls must equal the aggregate.
        let total: f64 = s.commands.iter().map(|c| c.pump_stall.to_ns().as_f64()).sum();
        assert!((total - s.stats.pump_stall.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn duplicate_bank_entries_merge_in_order() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let ap = CommandProfile::ap(&t());
        let app = CommandProfile::app(&t());
        let s = sched.schedule(&[(0, vec![ap.clone()]), (0, vec![app.clone()])]).unwrap();
        assert_eq!(s.commands.len(), 2);
        assert_eq!(s.commands[0].class, CommandClass::Ap);
        assert_eq!(s.commands[1].class, CommandClass::App);
        // One bank: fully serialized.
        assert_eq!(s.commands[1].start, s.commands[0].done);
    }

    #[test]
    fn agrees_with_event_driven_controller() {
        // The stateless scheduler and the stateful controller implement
        // the same issue rules; from an idle rank they must agree on the
        // makespan.
        use crate::controller::Controller;
        for budget in [PumpBudget::unconstrained(), PumpBudget::jedec_ddr3_1600()] {
            let streams: Vec<_> = (0..8)
                .map(|b| {
                    (
                        b,
                        vec![
                            CommandProfile::aap(&t()),
                            CommandProfile::app(&t()),
                            CommandProfile::ap(&t()),
                        ],
                    )
                })
                .collect();
            let s = InterleavedScheduler::new(budget.clone()).schedule(&streams).unwrap();
            let mut c = Controller::new(8, budget);
            let cs = c.run_streams(&streams).unwrap();
            assert!(
                (s.stats.makespan.as_f64() - cs.makespan.as_f64()).abs() < 1e-6,
                "scheduler {} vs controller {}",
                s.stats.makespan,
                cs.makespan
            );
            assert!((s.stats.pump_stall.as_f64() - cs.pump_stall.as_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn traced_schedule_matches_untraced_and_fills_sink() {
        use crate::telemetry::MemorySink;
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t()); 6])).collect();
        let plain = sched.schedule(&streams).unwrap();
        let mut sink = MemorySink::new();
        let traced = sched.schedule_traced(&streams, &mut sink).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(sink.len(), traced.commands.len());
        for (event, cmd) in sink.events.iter().zip(traced.commands.iter()) {
            assert_eq!(event.seq as usize, cmd.seq);
            assert_eq!(event.bank, cmd.bank);
            assert_eq!(event.start, cmd.start);
            assert_eq!(event.done, cmd.done);
        }
        // The pump-constrained run must attribute some stalls to the pump.
        assert!(sink.metrics.stalls_by_reason.contains_key("pump"));
    }

    #[test]
    fn schedule_stamps_background_energy() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let s = sched.schedule(&[(0, vec![CommandProfile::ap(&t()); 4])]).unwrap();
        let expect = PowerModel::micron_ddr3_1600().background_energy(s.stats.makespan, 1.0);
        assert!((s.stats.background_energy.as_f64() - expect.as_f64()).abs() < 1e-6);
        assert!(s.stats.average_power_mw() > s.stats.dynamic_power_mw());
    }

    #[test]
    fn empty_input_is_empty_schedule() {
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let s = sched.schedule(&[]).unwrap();
        assert!(s.commands.is_empty());
        assert_eq!(s.stats.total_commands(), 0);
        assert_eq!(s.stats.makespan, Ns::ZERO);
    }
}
