//! Deterministic interleaved scheduling of per-bank command streams.
//!
//! The batch execution layer (`elp2im-core::batch`) shards a bulk bitwise
//! operation across banks and needs to know what the module's command bus
//! actually does with the resulting per-bank primitive streams: the true
//! wall-clock **makespan** under the shared charge-pump/tFAW window
//! (§6.3), not the per-bank serial `busy_time`. [`InterleavedScheduler`]
//! produces exactly that, plus an exact per-command trace
//! ([`ScheduledCommand`]) a logic analyzer on the bus would record —
//! which the golden-sequence tests pin down cycle by cycle.
//!
//! Unlike [`crate::controller::Controller`], the scheduler is stateless:
//! every [`InterleavedScheduler::schedule`] call starts from an idle rank
//! at t = 0 and is a pure function of its inputs, so results are
//! reproducible and comparable across runs.
//!
//! This module is the single-rank view of the topology-aware
//! [`crate::hierarchy::HierarchicalScheduler`]: `schedule` embeds its
//! flat bank indices at channel 0, rank 0 ([`TopoPath::flat_bank`]) and
//! runs the shared scheduling core, so the flat and hierarchical
//! schedulers can never disagree on single-rank workloads.
//!
//! # Determinism
//!
//! The issue order is fully deterministic:
//!
//! 1. Streams are processed in ascending **bank index** (duplicate bank
//!    entries are merged in input order).
//! 2. At every step, the pending command with the earliest legal start
//!    time (its bank's free time, clamped by in-order bus issue) is
//!    chosen; ties go to the **lowest bank index**.
//! 3. The charge-pump sliding window then defers the start further if the
//!    rank-wide activation budget is exhausted; the deferral is recorded
//!    as that command's `pump_stall`.

use crate::command::{CommandClass, CommandProfile};
use crate::constraint::PumpBudget;
use crate::error::DramError;
use crate::geometry::TopoPath;
use crate::hierarchy::schedule_core;
use crate::power::PowerModel;
use crate::stats::RunStats;
use crate::telemetry::{NullSink, TraceSink};
use crate::units::{Ns, Ps};

/// One command as actually issued on a channel's bus.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledCommand {
    /// Global issue order (0-based).
    pub seq: usize,
    /// Bank the command executes on. Flat single-rank schedules report
    /// `c0.r0.b<bank>`.
    pub path: TopoPath,
    /// Position within that bank's stream.
    pub index_in_bank: usize,
    /// Command classification.
    pub class: CommandClass,
    /// Issue instant.
    pub start: Ps,
    /// Completion instant.
    pub done: Ps,
    /// Delay inserted before this command because its rank's
    /// charge-pump/tFAW window was exhausted.
    pub pump_stall: Ps,
    /// Delay inserted before this command by in-order issue on its
    /// channel's shared bus (zero when the bank itself was the limiter).
    pub bus_wait: Ps,
}

impl ScheduledCommand {
    /// Flat bank index, for single-rank traces.
    pub fn bank(&self) -> usize {
        self.path.bank
    }
}

/// The full outcome of scheduling one batch of per-bank streams.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Exact bus trace, in issue order.
    pub commands: Vec<ScheduledCommand>,
    /// Aggregate statistics: `busy_time` is the per-bank serial sum,
    /// `makespan` the true wall clock, `pump_stall` the summed deferrals.
    pub stats: RunStats,
    /// Completion time of each bank that had work, keyed by path and
    /// sorted by it (banks without work are absent).
    pub bank_done: Vec<(TopoPath, Ps)>,
    /// Per-rank statistics, keyed by `(channel, rank)` and sorted by it;
    /// ranks without work are absent. Each entry is the stats of that
    /// rank's sub-trace (its own makespan and standby accrual), so a
    /// [`RunStats::merge_parallel`] fold over the entries reproduces the
    /// whole-schedule `stats`. Flat schedules have at most one entry,
    /// keyed `(0, 0)`.
    pub rank_stats: Vec<((usize, usize), RunStats)>,
}

impl Schedule {
    /// Wall-clock makespan of the batch.
    pub fn makespan(&self) -> Ns {
        self.stats.makespan
    }

    /// The trace restricted to one flat bank (channel 0, rank 0), in
    /// issue order.
    pub fn bank_trace(&self, bank: usize) -> Vec<&ScheduledCommand> {
        self.trace_for(TopoPath::flat_bank(bank))
    }

    /// The trace restricted to one bank path, in issue order.
    pub fn trace_for(&self, path: TopoPath) -> Vec<&ScheduledCommand> {
        self.commands.iter().filter(|c| c.path == path).collect()
    }

    /// The statistics of one rank's sub-trace, if it had work.
    pub fn rank_stats_for(&self, channel: usize, rank: usize) -> Option<&RunStats> {
        self.rank_stats.iter().find(|(id, _)| *id == (channel, rank)).map(|(_, s)| s)
    }

    /// Wall-clock makespan of one channel's sub-trace (zero when the
    /// channel had no work).
    pub fn channel_makespan(&self, channel: usize) -> Ns {
        self.rank_stats
            .iter()
            .filter(|((c, _), _)| *c == channel)
            .map(|(_, s)| s.makespan)
            .fold(Ns::ZERO, |a, b| Ns(a.as_f64().max(b.as_f64())))
    }

    /// The first command that was stalled by the pump window, if any.
    pub fn first_stall(&self) -> Option<&ScheduledCommand> {
        self.commands.iter().find(|c| c.pump_stall > Ps::ZERO)
    }

    /// The schedule as a list of claims — `(path, start)` in bus issue
    /// order — the form [`crate::verify::verify_claims`] checks. A
    /// schedule produced by this crate's schedulers always verifies clean
    /// against its own input streams.
    pub fn claims(&self) -> Vec<crate::verify::ClaimedCommand> {
        self.commands
            .iter()
            .map(|c| crate::verify::ClaimedCommand { path: c.path, start: c.start })
            .collect()
    }
}

/// Deterministic, stateless scheduler for per-bank command streams under
/// the shared charge-pump budget.
///
/// ```
/// use elp2im_dram::command::CommandProfile;
/// use elp2im_dram::constraint::PumpBudget;
/// use elp2im_dram::interleave::InterleavedScheduler;
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let t = Ddr3Timing::ddr3_1600();
/// let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
/// let streams: Vec<_> = (0..4).map(|b| (b, vec![CommandProfile::ap(&t); 2])).collect();
/// let s = sched.schedule(&streams).unwrap();
/// // Four banks fully overlap: makespan = one bank's serial time.
/// assert!((s.makespan().as_f64() - 2.0 * t.ap().as_f64()).abs() < 0.01);
/// assert_eq!(s.stats.total_commands(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct InterleavedScheduler {
    budget: PumpBudget,
    power: PowerModel,
}

impl InterleavedScheduler {
    /// A scheduler enforcing `budget` with the default Micron power model.
    pub fn new(budget: PumpBudget) -> Self {
        InterleavedScheduler { budget, power: PowerModel::micron_ddr3_1600() }
    }

    /// Replaces the power model used for energy accounting.
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// The enforced budget.
    pub fn budget(&self) -> &PumpBudget {
        &self.budget
    }

    /// Schedules `streams` (pairs of bank index and that bank's in-order
    /// command stream) from an idle rank at t = 0 and returns the exact
    /// trace plus aggregate statistics.
    ///
    /// # Errors
    ///
    /// [`DramError::BankOutOfRange`] if a stream names a bank at or above
    /// `usize::MAX / 2` (a sentinel for obviously corrupt indices); any
    /// bank index is otherwise legal — the scheduler sizes itself to the
    /// largest one named.
    pub fn schedule(
        &self,
        streams: &[(usize, Vec<CommandProfile>)],
    ) -> Result<Schedule, DramError> {
        // Monomorphized with the no-op sink: compiles to the untraced path.
        self.schedule_with(streams, &mut NullSink)
    }

    /// [`InterleavedScheduler::schedule`] with a dynamic trace sink, for
    /// callers that hold a `Box<dyn TraceSink>`.
    ///
    /// # Errors
    ///
    /// Same as [`InterleavedScheduler::schedule`].
    pub fn schedule_traced(
        &self,
        streams: &[(usize, Vec<CommandProfile>)],
        sink: &mut dyn TraceSink,
    ) -> Result<Schedule, DramError> {
        self.schedule_with(streams, sink)
    }

    /// Schedules `streams` while reporting every issued command to `sink`.
    ///
    /// Generic over the sink so the [`NullSink`] instantiation is zero
    /// cost (verified by the criterion bench in `elp2im-bench`).
    ///
    /// # Errors
    ///
    /// Same as [`InterleavedScheduler::schedule`].
    pub fn schedule_with<S: TraceSink + ?Sized>(
        &self,
        streams: &[(usize, Vec<CommandProfile>)],
        sink: &mut S,
    ) -> Result<Schedule, DramError> {
        let lifted: Vec<(TopoPath, &[CommandProfile])> =
            streams.iter().map(|(b, v)| (TopoPath::flat_bank(*b), v.as_slice())).collect();
        schedule_core(&self.budget, &self.power, &lifted, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::StallReason;
    use crate::timing::Ddr3Timing;

    fn t() -> Ddr3Timing {
        Ddr3Timing::ddr3_1600()
    }

    #[test]
    fn single_bank_serializes_and_makespan_equals_busy() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let s = sched.schedule(&[(0, vec![CommandProfile::ap(&t()); 5])]).unwrap();
        assert_eq!(s.commands.len(), 5);
        assert!((s.stats.makespan.as_f64() - s.stats.busy_time.as_f64()).abs() < 1e-9);
        // Back-to-back, no gaps.
        for w in s.commands.windows(2) {
            assert_eq!(w[0].done, w[1].start);
        }
    }

    #[test]
    fn banks_overlap_when_unconstrained() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t()); 4])).collect();
        let s = sched.schedule(&streams).unwrap();
        let expect = CommandProfile::ap(&t()).duration.as_f64() * 4.0;
        assert!((s.stats.makespan.as_f64() - expect).abs() < 0.01);
        assert!((s.stats.busy_time.as_f64() - expect * 8.0).abs() < 0.01);
        assert_eq!(s.stats.pump_stall, Ns::ZERO);
    }

    #[test]
    fn issue_order_round_robins_by_bank_index() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        // Input deliberately out of order: the schedule must not care.
        let streams = vec![
            (2, vec![CommandProfile::ap(&t()); 2]),
            (0, vec![CommandProfile::ap(&t()); 2]),
            (1, vec![CommandProfile::ap(&t()); 2]),
        ];
        let s = sched.schedule(&streams).unwrap();
        let order: Vec<usize> = s.commands.iter().map(|c| c.bank()).collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn identical_inputs_produce_identical_schedules() {
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::aap(&t()); 6])).collect();
        let a = sched.schedule(&streams).unwrap();
        let b = sched.schedule(&streams).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn pump_constraint_inserts_recorded_stalls() {
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t()); 8])).collect();
        let s = sched.schedule(&streams).unwrap();
        assert!(s.stats.pump_stall.as_f64() > 0.0);
        let first = s.first_stall().expect("8 concurrent AP streams must stall");
        // The JEDEC budget admits 4 activates per 40 ns window; the fifth
        // command is the first deferred one.
        assert_eq!(first.seq, 4);
        // Sum of per-command stalls must equal the aggregate.
        let total: f64 = s.commands.iter().map(|c| c.pump_stall.to_ns().as_f64()).sum();
        assert!((total - s.stats.pump_stall.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn duplicate_bank_entries_merge_in_order() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let ap = CommandProfile::ap(&t());
        let app = CommandProfile::app(&t());
        let s = sched.schedule(&[(0, vec![ap.clone()]), (0, vec![app.clone()])]).unwrap();
        assert_eq!(s.commands.len(), 2);
        assert_eq!(s.commands[0].class, CommandClass::Ap);
        assert_eq!(s.commands[1].class, CommandClass::App);
        // One bank: fully serialized.
        assert_eq!(s.commands[1].start, s.commands[0].done);
    }

    #[test]
    fn bank_done_omits_banks_without_work() {
        // The `bank_done` doc promises "banks without work are absent":
        // an explicitly empty stream must not materialize a (bank, 0)
        // entry, whether it stands alone or rides along a duplicate.
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let s = sched
            .schedule(&[
                (0, vec![CommandProfile::ap(&t())]),
                (3, vec![]),
                (1, vec![CommandProfile::ap(&t())]),
            ])
            .unwrap();
        let banks: Vec<usize> = s.bank_done.iter().map(|(p, _)| p.bank).collect();
        assert_eq!(banks, vec![0, 1]);
        // An empty duplicate of a working bank must not disturb it either.
        let s = sched
            .schedule(&[(2, vec![]), (2, vec![CommandProfile::ap(&t())]), (2, vec![])])
            .unwrap();
        assert_eq!(s.bank_done.len(), 1);
        assert_eq!(s.bank_done[0].0, TopoPath::flat_bank(2));
        assert!(s.bank_done[0].1 > Ps::ZERO);
        // A schedule of only empty streams reports no banks at all.
        let s = sched.schedule(&[(0, vec![]), (1, vec![])]).unwrap();
        assert!(s.bank_done.is_empty());
        assert_eq!(s.stats.total_commands(), 0);
    }

    #[test]
    fn agrees_with_event_driven_controller() {
        // The stateless scheduler and the stateful controller implement
        // the same issue rules; from an idle rank they must agree on the
        // makespan.
        use crate::controller::Controller;
        for budget in [PumpBudget::unconstrained(), PumpBudget::jedec_ddr3_1600()] {
            let streams: Vec<_> = (0..8)
                .map(|b| {
                    (
                        b,
                        vec![
                            CommandProfile::aap(&t()),
                            CommandProfile::app(&t()),
                            CommandProfile::ap(&t()),
                        ],
                    )
                })
                .collect();
            let s = InterleavedScheduler::new(budget.clone()).schedule(&streams).unwrap();
            let mut c = Controller::new(8, budget);
            let cs = c.run_streams(&streams).unwrap();
            assert!(
                (s.stats.makespan.as_f64() - cs.makespan.as_f64()).abs() < 1e-6,
                "scheduler {} vs controller {}",
                s.stats.makespan,
                cs.makespan
            );
            assert!((s.stats.pump_stall.as_f64() - cs.pump_stall.as_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn traced_schedule_matches_untraced_and_fills_sink() {
        use crate::telemetry::MemorySink;
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let streams: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t()); 6])).collect();
        let plain = sched.schedule(&streams).unwrap();
        let mut sink = MemorySink::new();
        let traced = sched.schedule_traced(&streams, &mut sink).unwrap();
        assert_eq!(plain, traced);
        assert_eq!(sink.len(), traced.commands.len());
        for (event, cmd) in sink.events.iter().zip(traced.commands.iter()) {
            assert_eq!(event.seq as usize, cmd.seq);
            assert_eq!(event.path, cmd.path);
            assert_eq!(event.start, cmd.start);
            assert_eq!(event.done, cmd.done);
        }
        // The pump-constrained run must attribute some stalls to the pump.
        assert!(sink.metrics.stalls_by_reason.contains_key("pump"));
    }

    #[test]
    fn bus_and_pump_waits_split_exactly() {
        // Regression for the stall-misattribution bug: a command delayed
        // by both the shared bus and the pump window used to report the
        // whole wait under `pump` in the trace. The split components must
        // now reconcile exactly (integer picoseconds) with the total, and
        // the metrics registry's per-reason sums with its total.
        use crate::telemetry::MemorySink;
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        // 12 banks, one AP each: seqs 0–3 issue at t = 0, seq 4 is pump-
        // deferred to 40 ns, seqs 5–7 bus-wait to 40 ns, and seq 8 hits
        // BOTH — the bus clamp to 40 ns and a again-full pump window
        // pushing it to 80 ns.
        let streams: Vec<_> = (0..12).map(|b| (b, vec![CommandProfile::ap(&t()); 2])).collect();
        let mut sink = MemorySink::new();
        let s = sched.schedule_traced(&streams, &mut sink).unwrap();

        // Both causes must actually occur in this workload, including at
        // least one command that waits on both at once.
        assert!(sink.events.iter().any(|e| e.bus_wait > Ps::ZERO && e.pump_wait > Ps::ZERO));
        for (e, c) in sink.events.iter().zip(s.commands.iter()) {
            assert!(e.waits_reconcile(), "seq {}: waits do not sum to stall", e.seq);
            assert_eq!(e.pump_wait, c.pump_stall);
            assert_eq!(e.bus_wait, c.bus_wait);
            // Dominance: a pump-deferred command reports `pump` even when
            // it also waited on the bus; a bus-only wait reports `bus`.
            assert_eq!(e.reason, e.dominant_reason());
            if e.reason == StallReason::Bus {
                assert_eq!(e.pump_wait, Ps::ZERO);
            }
        }
        // Exact reconciliation in integer picoseconds, no f64 drift.
        assert!(sink.metrics.total_stall_ps > 0);
        assert!(sink.metrics.stalls_reconcile());
        let pump_ps: u64 = s.commands.iter().map(|c| c.pump_stall.0).sum();
        let bus_ps: u64 = s.commands.iter().map(|c| c.bus_wait.0).sum();
        assert_eq!(sink.metrics.stall_ps_for(StallReason::Pump), pump_ps);
        assert_eq!(sink.metrics.stall_ps_for(StallReason::Bus), bus_ps);
        assert_eq!(sink.metrics.total_stall_ps, pump_ps + bus_ps);
    }

    #[test]
    fn schedule_stamps_background_energy() {
        let sched = InterleavedScheduler::new(PumpBudget::unconstrained());
        let s = sched.schedule(&[(0, vec![CommandProfile::ap(&t()); 4])]).unwrap();
        let expect = PowerModel::micron_ddr3_1600().background_energy(s.stats.makespan, 1.0);
        assert!((s.stats.background_energy.as_f64() - expect.as_f64()).abs() < 1e-6);
        assert!(s.stats.average_power_mw() > s.stats.dynamic_power_mw());
    }

    #[test]
    fn empty_input_is_empty_schedule() {
        let sched = InterleavedScheduler::new(PumpBudget::jedec_ddr3_1600());
        let s = sched.schedule(&[]).unwrap();
        assert!(s.commands.is_empty());
        assert_eq!(s.stats.total_commands(), 0);
        assert_eq!(s.stats.makespan, Ns::ZERO);
    }
}
