//! Minimal JSON document model: build, render, and parse.
//!
//! The telemetry exporters ([`crate::telemetry`]) and the bench harness
//! emit machine-readable reports; this environment is offline (no
//! crates.io), so instead of `serde_json` the workspace carries this small
//! self-contained value model. It supports exactly what the reports need:
//! ordered objects, arrays, strings (with full escape handling), finite
//! numbers, booleans, and null — plus a strict parser so emitted documents
//! can be round-trip validated in tests and CI.

use std::fmt;

/// A JSON value. Object keys keep insertion order so reports render
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) a key in an object, builder style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn with(mut self, key: impl Into<String>, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let key = key.into();
                match fields.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, v)) => *v = value,
                    None => fields.push((key, value)),
                }
            }
            other => panic!("Json::with on non-object {other:?}"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(0));
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => render_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].render(out, ind);
            }),
            Json::Obj(fields) => render_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.render(out, ind);
            }),
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for the first syntax error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError { pos, message: "trailing characters after document" });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render(&mut out, None);
        f.write_str(&out)
    }
}

fn render_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(depth) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, inner);
    }
    if let Some(depth) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(depth));
    }
    out.push(close);
}

/// A parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, literal: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(())
    } else {
        Err(JsonError { pos: *pos, message: "invalid literal" })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError { pos: *pos, message: "unexpected end of input" }),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(JsonError { pos: *pos, message: "expected ',' or ']'" }),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(JsonError { pos: *pos, message: "expected ':'" });
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(JsonError { pos: *pos, message: "expected ',' or '}'" }),
                }
            }
        }
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(JsonError { pos: *pos, message: "unexpected character" }),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or(JsonError { pos: start, message: "invalid number" })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError { pos: *pos, message: "expected string" });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError { pos: *pos, message: "unterminated string" }),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).copied();
                *pos += 1;
                match esc {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(JsonError { pos: *pos, message: "invalid \\u escape" })?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our reports;
                        // lone surrogates map to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(JsonError { pos: *pos - 1, message: "invalid escape" }),
                }
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this
                // boundary arithmetic is safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError { pos: *pos, message: "invalid UTF-8" })?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render_compact() {
        let doc = Json::obj()
            .with("name", Json::str("fig10"))
            .with("n", Json::Num(3.0))
            .with("half", Json::Num(0.5))
            .with("ok", Json::Bool(true))
            .with("none", Json::Null)
            .with("rows", Json::Arr(vec![Json::Num(1.0), Json::str("a,b")]));
        assert_eq!(
            doc.to_string(),
            r#"{"name":"fig10","n":3,"half":0.5,"ok":true,"none":null,"rows":[1,"a,b"]}"#
        );
    }

    #[test]
    fn with_replaces_existing_key() {
        let doc = Json::obj().with("k", Json::Num(1.0)).with("k", Json::Num(2.0));
        assert_eq!(doc.to_string(), r#"{"k":2}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode µ";
        let rendered = Json::str(nasty).to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), Json::str(nasty));
    }

    #[test]
    fn parse_round_trips_structures() {
        let doc = Json::obj()
            .with("title", Json::str("x"))
            .with("rows", Json::Arr(vec![Json::Arr(vec![Json::str("1.5 ns"), Json::Num(-2.25)])]))
            .with("stats", Json::Null);
        for text in [doc.to_string(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite numbers rejected");
    }

    #[test]
    fn numbers_render_as_integers_when_exact() {
        assert_eq!(Json::Num(48.75).to_string(), "48.75");
        assert_eq!(Json::Num(1e6).to_string(), "1000000");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn pretty_is_indented_and_parseable() {
        let doc = Json::obj().with("a", Json::Arr(vec![Json::Num(1.0)]));
        let p = doc.pretty();
        assert_eq!(p, "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::parse(&p).unwrap(), doc);
    }

    #[test]
    fn accessors() {
        let doc = Json::obj().with("s", Json::str("v")).with("n", Json::Num(2.0));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(2.0));
        assert!(doc.get("missing").is_none());
        assert_eq!(Json::Arr(vec![]).as_array(), Some(&[][..]));
    }
}
