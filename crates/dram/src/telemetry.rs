//! Per-command telemetry: trace sinks, metrics, and exporters.
//!
//! The analytic [`crate::stats::RunStats`] block answers "how much, in
//! total" — this module answers "what happened, when". Both the
//! event-driven [`crate::controller::Controller`] and the bank-parallel
//! [`crate::interleave::InterleavedScheduler`] can feed every issued
//! command into a [`TraceSink`]:
//!
//! * [`NullSink`] — the zero-cost default; its `record` is an inline no-op
//!   so monomorphized hot paths compile to the untraced code.
//! * [`MemorySink`] — keeps the full [`CommandEvent`] list and an
//!   incrementally updated [`MetricsRegistry`] for export.
//!
//! Exporters ([`events_to_json`], [`events_to_csv`], [`stats_to_json`])
//! produce machine-readable reports consumed by `elp2im-bench`; the JSON
//! documents use the in-repo [`crate::json::Json`] model so they can be
//! parsed back and schema-checked without external dependencies.

use crate::command::CommandClass;
use crate::geometry::TopoPath;
use crate::json::Json;
use crate::stats::RunStats;
use crate::units::{Ns, Picojoules, Ps};
use std::collections::BTreeMap;
use std::fmt;

/// Why a command started later than its requested issue time.
///
/// When several causes apply the dominant one is reported, with the
/// precedence pump > refresh > bus > bank (the pump window is the paper's
/// central constraint, so it wins ties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StallReason {
    /// The command started exactly when requested.
    #[default]
    None,
    /// The target bank was still busy with a previous command.
    Bank,
    /// The shared command bus was occupied by another bank's issue slot.
    Bus,
    /// The charge-pump budget (tFAW-style sliding window) deferred the
    /// activation.
    Pump,
    /// The start was pushed past a refresh window.
    Refresh,
}

impl StallReason {
    /// All reason codes, in precedence-display order. Exporters and the
    /// static verifier iterate this to keep per-reason tables exhaustive
    /// when a variant is added.
    pub const ALL: [StallReason; 5] = [
        StallReason::None,
        StallReason::Bank,
        StallReason::Bus,
        StallReason::Pump,
        StallReason::Refresh,
    ];

    /// Stable lowercase label used in JSON/CSV exports.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::None => "none",
            StallReason::Bank => "bank",
            StallReason::Bus => "bus",
            StallReason::Pump => "pump",
            StallReason::Refresh => "refresh",
        }
    }
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One issued command, as observed by a [`TraceSink`].
///
/// The wait is reported twice: `stall` is the total (`start - issue`),
/// and the four `*_wait` fields split it exactly by cause — their sum
/// always equals `stall` ([`CommandEvent::waits_reconcile`]). `reason`
/// is the dominant non-zero component under the [`StallReason`]
/// precedence, kept for coarse per-reason *counts*.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandEvent {
    /// Global issue order (0-based, per producing controller/scheduler).
    pub seq: u64,
    /// Bank the command executed on, as a topology path. Single-module
    /// producers report `c0.r0.b<bank>` ([`TopoPath::flat_bank`]).
    pub path: TopoPath,
    /// Command classification.
    pub class: CommandClass,
    /// When the producer *asked* for the command to start.
    pub issue: Ps,
    /// When the command actually started.
    pub start: Ps,
    /// When the command completed.
    pub done: Ps,
    /// `start - issue`: how long the command waited in total.
    pub stall: Ps,
    /// Portion of `stall` spent waiting for the target bank to go idle.
    pub bank_wait: Ps,
    /// Portion of `stall` spent waiting for the shared channel bus.
    pub bus_wait: Ps,
    /// Portion of `stall` spent pushed past refresh blackouts.
    pub refresh_wait: Ps,
    /// Portion of `stall` deferred by the charge-pump window.
    pub pump_wait: Ps,
    /// Dominant cause of the wait (see [`StallReason`]).
    pub reason: StallReason,
    /// Dynamic energy charged to this command.
    pub energy: Picojoules,
}

impl CommandEvent {
    /// Command latency (`done - start`).
    pub fn latency(&self) -> Ps {
        self.done.saturating_sub(self.start)
    }

    /// Whether the per-cause waits sum exactly to the total stall.
    /// Producers in this crate guarantee this; exporters and the
    /// reconciliation tests assert it.
    pub fn waits_reconcile(&self) -> bool {
        self.bank_wait.0 + self.bus_wait.0 + self.refresh_wait.0 + self.pump_wait.0 == self.stall.0
    }

    /// Dominant stall reason derived from the wait split, under the
    /// documented precedence pump > refresh > bus > bank.
    pub fn dominant_reason(&self) -> StallReason {
        if self.pump_wait > Ps::ZERO {
            StallReason::Pump
        } else if self.refresh_wait > Ps::ZERO {
            StallReason::Refresh
        } else if self.bus_wait > Ps::ZERO {
            StallReason::Bus
        } else if self.bank_wait > Ps::ZERO {
            StallReason::Bank
        } else {
            StallReason::None
        }
    }
}

/// Receiver for per-command telemetry.
///
/// Implementations must be cheap: `record` is called once per issued
/// command on the simulator hot path. The `Debug` supertrait lets
/// structures that own a boxed sink keep their derived `Debug`.
pub trait TraceSink: fmt::Debug {
    /// Observes one issued command.
    fn record(&mut self, event: &CommandEvent);

    /// Shared-reference view as [`std::any::Any`], so a concrete sink can
    /// be recovered from a `Box<dyn TraceSink>` after a traced run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable-reference view as [`std::any::Any`].
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// The do-nothing sink. Generic hot paths monomorphized with `NullSink`
/// compile to the untraced code (criterion-verified in `benches/batch.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _event: &CommandEvent) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// In-memory sink: keeps every event and a running [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// All recorded events, in issue order.
    pub events: Vec<CommandEvent>,
    /// Aggregated counters and histograms.
    pub metrics: MetricsRegistry,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &CommandEvent) {
        self.metrics.observe(event);
        self.events.push(event.clone());
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A power-of-two-bucketed latency histogram over nanoseconds.
///
/// Bucket `i` counts observations in `[2^(i-1), 2^i)` ns, with bucket 0
/// taking everything below 1 ns. Sixteen buckets reach ~32 µs, far beyond
/// any single DRAM command or stall in this workspace; larger values clamp
/// into the last bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; Histogram::BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (ns).
    pub sum_ns: f64,
    /// Largest observed value (ns).
    pub max_ns: f64,
}

impl Histogram {
    /// Number of buckets.
    pub const BUCKETS: usize = 16;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; Histogram::BUCKETS], count: 0, sum_ns: 0.0, max_ns: 0.0 }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: Ns) {
        let v = value.as_f64().max(0.0);
        let idx =
            if v < 1.0 { 0 } else { (v.log2().floor() as usize + 1).min(Histogram::BUCKETS - 1) };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += v;
        self.max_ns = self.max_ns.max(v);
    }

    /// Mean observed value (ns); zero when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns / self.count as f64
        }
    }

    /// Adds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// JSON view: `{count, mean_ns, max_ns, buckets: [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("count", Json::Num(self.count as f64))
            .with("mean_ns", Json::Num(self.mean_ns()))
            .with("max_ns", Json::Num(self.max_ns))
            .with("buckets", Json::Arr(self.buckets.iter().map(|&b| Json::Num(b as f64)).collect()))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Aggregated telemetry: per-class and per-path counters, stall-reason
/// counts and exact stall time by cause, and latency/stall histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    /// Commands observed, by class label.
    pub commands_by_class: BTreeMap<String, u64>,
    /// Commands observed, by topology path (channel, rank, bank).
    pub commands_by_path: BTreeMap<TopoPath, u64>,
    /// Stalled commands, by dominant [`StallReason::label`] (reason
    /// `none` is not counted).
    pub stalls_by_reason: BTreeMap<&'static str, u64>,
    /// Exact stalled time in picoseconds, by cause. Unlike
    /// `stalls_by_reason` this splits a multi-cause wait across its
    /// components, so the values here always sum to `total_stall_ps`.
    pub stall_ps_by_reason: BTreeMap<&'static str, u64>,
    /// Exact total stalled time (`start - issue`, summed) in picoseconds.
    pub total_stall_ps: u64,
    /// Command latency (`done - start`) distribution.
    pub latency: Histogram,
    /// Stall (`start - issue`) distribution, recorded only for stalled
    /// commands.
    pub stall: Histogram,
    /// Total dynamic energy of observed commands.
    pub energy: Picojoules,
    /// Free-form named counters for layers above the command stream —
    /// e.g. the fault-aware executors report `retries`,
    /// `verify_recomputes`, and ECC refresh overhead here.
    pub counters: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Folds one event into the counters and histograms.
    pub fn observe(&mut self, event: &CommandEvent) {
        *self.commands_by_class.entry(event.class.to_string()).or_insert(0) += 1;
        *self.commands_by_path.entry(event.path).or_insert(0) += 1;
        self.latency.observe(event.latency().to_ns());
        if event.reason != StallReason::None {
            *self.stalls_by_reason.entry(event.reason.label()).or_insert(0) += 1;
            self.stall.observe(event.stall.to_ns());
        }
        for (label, wait) in [
            (StallReason::Bank.label(), event.bank_wait),
            (StallReason::Bus.label(), event.bus_wait),
            (StallReason::Refresh.label(), event.refresh_wait),
            (StallReason::Pump.label(), event.pump_wait),
        ] {
            if wait > Ps::ZERO {
                *self.stall_ps_by_reason.entry(label).or_insert(0) += wait.0;
            }
        }
        self.total_stall_ps += event.stall.0;
        self.energy += event.energy;
    }

    /// Total observed commands.
    pub fn total_commands(&self) -> u64 {
        self.commands_by_class.values().sum()
    }

    /// Adds `by` to the named free-form counter.
    pub fn bump(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// The named free-form counter (0 when never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Exact stalled time attributed to `reason`, in picoseconds.
    pub fn stall_ps_for(&self, reason: StallReason) -> u64 {
        self.stall_ps_by_reason.get(reason.label()).copied().unwrap_or(0)
    }

    /// Whether the per-cause stall times sum exactly to the total.
    /// Holds by construction for every producer in this crate; the
    /// regression tests assert it on traced runs.
    pub fn stalls_reconcile(&self) -> bool {
        self.stall_ps_by_reason.values().sum::<u64>() == self.total_stall_ps
    }

    /// Adds another registry's observations into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.commands_by_class {
            *self.commands_by_class.entry(k.clone()).or_insert(0) += v;
        }
        for (&k, v) in &other.commands_by_path {
            *self.commands_by_path.entry(k).or_insert(0) += v;
        }
        for (&k, v) in &other.stalls_by_reason {
            *self.stalls_by_reason.entry(k).or_insert(0) += v;
        }
        for (&k, v) in &other.stall_ps_by_reason {
            *self.stall_ps_by_reason.entry(k).or_insert(0) += v;
        }
        self.total_stall_ps += other.total_stall_ps;
        self.latency.merge(&other.latency);
        self.stall.merge(&other.stall);
        self.energy += other.energy;
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// JSON view of the full registry.
    pub fn to_json(&self) -> Json {
        let classes = Json::Obj(
            self.commands_by_class.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect(),
        );
        let paths = Json::Obj(
            self.commands_by_path
                .iter()
                .map(|(k, &v)| (k.to_string(), Json::Num(v as f64)))
                .collect(),
        );
        let stalls = Json::Obj(
            self.stalls_by_reason
                .iter()
                .map(|(&k, &v)| (k.to_string(), Json::Num(v as f64)))
                .collect(),
        );
        let stall_ps = Json::Obj(
            self.stall_ps_by_reason
                .iter()
                .map(|(&k, &v)| (k.to_string(), Json::Num(v as f64)))
                .collect(),
        );
        let counters = Json::Obj(
            self.counters.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect(),
        );
        Json::obj()
            .with("total_commands", Json::Num(self.total_commands() as f64))
            .with("commands_by_class", classes)
            .with("commands_by_path", paths)
            .with("stalls_by_reason", stalls)
            .with("stall_ps_by_reason", stall_ps)
            .with("total_stall_ps", Json::Num(self.total_stall_ps as f64))
            .with("latency", self.latency.to_json())
            .with("stall", self.stall.to_json())
            .with("dynamic_energy_pj", Json::Num(self.energy.as_f64()))
            .with("counters", counters)
    }
}

/// Renders an event list as a JSON array of objects.
pub fn events_to_json(events: &[CommandEvent]) -> Json {
    Json::Arr(
        events
            .iter()
            .map(|e| {
                Json::obj()
                    .with("seq", Json::Num(e.seq as f64))
                    .with("path", Json::str(e.path.to_string()))
                    .with("channel", Json::Num(e.path.channel as f64))
                    .with("rank", Json::Num(e.path.rank as f64))
                    .with("bank", Json::Num(e.path.bank as f64))
                    .with("class", Json::str(e.class.to_string()))
                    .with("issue_ps", Json::Num(e.issue.0 as f64))
                    .with("start_ps", Json::Num(e.start.0 as f64))
                    .with("done_ps", Json::Num(e.done.0 as f64))
                    .with("stall_ps", Json::Num(e.stall.0 as f64))
                    .with("bank_wait_ps", Json::Num(e.bank_wait.0 as f64))
                    .with("bus_wait_ps", Json::Num(e.bus_wait.0 as f64))
                    .with("refresh_wait_ps", Json::Num(e.refresh_wait.0 as f64))
                    .with("pump_wait_ps", Json::Num(e.pump_wait.0 as f64))
                    .with("reason", Json::str(e.reason.label()))
                    .with("energy_pj", Json::Num(e.energy.as_f64()))
            })
            .collect(),
    )
}

/// Renders an event list as CSV with a header row.
pub fn events_to_csv(events: &[CommandEvent]) -> String {
    let mut out = String::from(
        "seq,channel,rank,bank,class,issue_ps,start_ps,done_ps,stall_ps,\
         bank_wait_ps,bus_wait_ps,refresh_wait_ps,pump_wait_ps,reason,energy_pj\n",
    );
    for e in events {
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            e.seq,
            e.path.channel,
            e.path.rank,
            e.path.bank,
            e.class,
            e.issue.0,
            e.start.0,
            e.done.0,
            e.stall.0,
            e.bank_wait.0,
            e.bus_wait.0,
            e.refresh_wait.0,
            e.pump_wait.0,
            e.reason,
            e.energy.0
        );
    }
    out
}

/// JSON view of a [`RunStats`] block, including the split power figures.
pub fn stats_to_json(stats: &RunStats) -> Json {
    let commands =
        Json::Obj(stats.commands.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect());
    Json::obj()
        .with("commands", commands)
        .with("total_commands", Json::Num(stats.total_commands() as f64))
        .with("wordline_activations", Json::Num(stats.wordline_activations as f64))
        .with("busy_ns", Json::Num(stats.busy_time.as_f64()))
        .with("makespan_ns", Json::Num(stats.makespan.as_f64()))
        .with("pump_stall_ns", Json::Num(stats.pump_stall.as_f64()))
        .with("dynamic_energy_pj", Json::Num(stats.energy.as_f64()))
        .with("background_energy_pj", Json::Num(stats.background_energy.as_f64()))
        .with("dynamic_power_mw", Json::Num(stats.dynamic_power_mw()))
        .with("average_power_mw", Json::Num(stats.average_power_mw()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq: u64, bank: usize, start: u64, stall: u64, reason: StallReason) -> CommandEvent {
        let wait = Ps(stall);
        CommandEvent {
            seq,
            path: TopoPath::flat_bank(bank),
            class: CommandClass::Ap,
            issue: Ps(start.saturating_sub(stall)),
            start: Ps(start),
            done: Ps(start + 48_750),
            stall: wait,
            bank_wait: if reason == StallReason::Bank { wait } else { Ps::ZERO },
            bus_wait: if reason == StallReason::Bus { wait } else { Ps::ZERO },
            refresh_wait: if reason == StallReason::Refresh { wait } else { Ps::ZERO },
            pump_wait: if reason == StallReason::Pump { wait } else { Ps::ZERO },
            reason,
            energy: Picojoules(100.0),
        }
    }

    #[test]
    fn null_sink_records_nothing() {
        let mut sink = NullSink;
        sink.record(&event(0, 0, 0, 0, StallReason::None));
        // NullSink is a ZST; nothing observable — this test just pins that
        // the trait call compiles and is callable through dyn.
        let dyn_sink: &mut dyn TraceSink = &mut sink;
        dyn_sink.record(&event(1, 0, 0, 0, StallReason::None));
    }

    #[test]
    fn memory_sink_collects_events_and_metrics() {
        let mut sink = MemorySink::new();
        sink.record(&event(0, 0, 0, 0, StallReason::None));
        sink.record(&event(1, 1, 10_000, 10_000, StallReason::Pump));
        sink.record(&event(2, 0, 97_500, 48_750, StallReason::Bank));
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.metrics.total_commands(), 3);
        assert_eq!(sink.metrics.commands_by_path[&TopoPath::flat_bank(0)], 2);
        assert_eq!(sink.metrics.stalls_by_reason["pump"], 1);
        assert_eq!(sink.metrics.stalls_by_reason["bank"], 1);
        assert_eq!(sink.metrics.stall.count, 2);
        assert_eq!(sink.metrics.stall_ps_by_reason["pump"], 10_000);
        assert_eq!(sink.metrics.stall_ps_by_reason["bank"], 48_750);
        assert_eq!(sink.metrics.total_stall_ps, 58_750);
        assert!(sink.metrics.stalls_reconcile());
        assert!((sink.metrics.energy.as_f64() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn split_waits_reconcile_per_reason() {
        // One command delayed by both the bus and the pump: the split
        // must keep both components, even though the dominant reason
        // (and the count) goes to the pump.
        let mut e = event(0, 3, 100_000, 15_000, StallReason::Pump);
        e.pump_wait = Ps(9_000);
        e.bus_wait = Ps(6_000);
        assert!(e.waits_reconcile());
        assert_eq!(e.dominant_reason(), StallReason::Pump);
        let mut m = MetricsRegistry::new();
        m.observe(&e);
        assert_eq!(m.stalls_by_reason["pump"], 1);
        assert!(!m.stalls_by_reason.contains_key("bus"));
        assert_eq!(m.stall_ps_for(StallReason::Pump), 9_000);
        assert_eq!(m.stall_ps_for(StallReason::Bus), 6_000);
        assert_eq!(m.total_stall_ps, 15_000);
        assert!(m.stalls_reconcile());
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new();
        h.observe(Ns(0.5)); // bucket 0
        h.observe(Ns(1.5)); // [1,2) -> bucket 1
        h.observe(Ns(48.75)); // [32,64) -> bucket 6
        h.observe(Ns(1e9)); // clamps into the last bucket
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[6], 1);
        assert_eq!(h.buckets[Histogram::BUCKETS - 1], 1);
        assert_eq!(h.count, 4);
        assert!((h.max_ns - 1e9).abs() < 1e-3);
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Histogram::new();
        a.observe(Ns(10.0));
        let mut b = Histogram::new();
        b.observe(Ns(20.0));
        b.observe(Ns(40.0));
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert!((a.mean_ns() - 70.0 / 3.0).abs() < 1e-9);
        assert!((a.max_ns - 40.0).abs() < 1e-12);
    }

    #[test]
    fn registry_merge_matches_combined_observation() {
        let events: Vec<_> = (0..6)
            .map(|i| {
                event(
                    i,
                    i as usize % 2,
                    i * 50_000,
                    if i % 3 == 0 { 5_000 } else { 0 },
                    if i % 3 == 0 { StallReason::Bus } else { StallReason::None },
                )
            })
            .collect();
        let mut whole = MetricsRegistry::new();
        for e in &events {
            whole.observe(e);
        }
        let (mut left, mut right) = (MetricsRegistry::new(), MetricsRegistry::new());
        for e in &events[..3] {
            left.observe(e);
        }
        for e in &events[3..] {
            right.observe(e);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn exporters_produce_parseable_output() {
        let events = vec![
            event(0, 2, 0, 0, StallReason::None),
            event(1, 2, 48_750, 750, StallReason::Refresh),
        ];
        let json = events_to_json(&events);
        let parsed = Json::parse(&json.to_string()).unwrap();
        let arr = parsed.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("reason").and_then(Json::as_str), Some("refresh"));
        assert_eq!(arr[1].get("stall_ps").and_then(Json::as_f64), Some(750.0));
        assert_eq!(arr[1].get("refresh_wait_ps").and_then(Json::as_f64), Some(750.0));
        assert_eq!(arr[1].get("path").and_then(Json::as_str), Some("c0.r0.b2"));
        assert_eq!(arr[1].get("bank").and_then(Json::as_f64), Some(2.0));

        let csv = events_to_csv(&events);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some(
                "seq,channel,rank,bank,class,issue_ps,start_ps,done_ps,stall_ps,\
                 bank_wait_ps,bus_wait_ps,refresh_wait_ps,pump_wait_ps,reason,energy_pj"
            )
        );
        assert_eq!(lines.count(), 2);
    }

    #[test]
    fn stats_json_reports_split_power() {
        let mut s = RunStats::new();
        s.record(CommandClass::Ap, Ns(50.0), 1, Picojoules(100.0));
        s.makespan = Ns(100.0);
        s.background_energy = Picojoules(50.0);
        let doc = stats_to_json(&s);
        assert_eq!(doc.get("dynamic_power_mw").and_then(Json::as_f64), Some(1.0));
        assert_eq!(doc.get("average_power_mw").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("makespan_ns").and_then(Json::as_f64), Some(100.0));
    }
}
