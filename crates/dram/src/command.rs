//! Technology-neutral command profiles.
//!
//! Every in-DRAM design in this workspace (ELP2IM, Ambit, DRISA, RowClone)
//! ultimately issues *commands* to a bank. A [`CommandProfile`] captures the
//! properties the substrate cares about — duration, how many wordlines are
//! driven (simultaneously and sequentially), and whether a pseudo-precharge
//! happens — without knowing anything about the logic semantics. The power
//! model ([`crate::power`]) and the power-constraint model
//! ([`crate::constraint`]) consume profiles; the PIM layers construct them.

use crate::timing::Ddr3Timing;
use crate::units::Ns;
use std::fmt;

/// Broad command classification, used for statistics and display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandClass {
    /// Regular activate + precharge (`AP`).
    Ap,
    /// Back-to-back double activation (`AAP`, RowClone copy).
    Aap,
    /// Overlapped double activation (`oAAP`, dual decoder domains).
    OAap,
    /// Activate + pseudo-precharge + precharge (`APP`).
    App,
    /// Overlapped APP (`oAPP`).
    OApp,
    /// Trimmed APP (`tAPP`, restore truncated).
    TApp,
    /// Overlapped and trimmed APP (`otAPP`).
    OtApp,
    /// Ambit triple-row activation followed by a result copy.
    TraAap,
    /// DRISA NOR-gate compute step.
    DrisaStep,
    /// Plain precharge.
    Precharge,
    /// A burst read or write on the data bus.
    DataBurst,
}

impl CommandClass {
    /// The display mnemonic as a static string (no allocation), used by
    /// per-command statistics counters.
    pub fn name(self) -> &'static str {
        match self {
            CommandClass::Ap => "AP",
            CommandClass::Aap => "AAP",
            CommandClass::OAap => "oAAP",
            CommandClass::App => "APP",
            CommandClass::OApp => "oAPP",
            CommandClass::TApp => "tAPP",
            CommandClass::OtApp => "otAPP",
            CommandClass::TraAap => "TRA",
            CommandClass::DrisaStep => "NORstep",
            CommandClass::Precharge => "PRE",
            CommandClass::DataBurst => "BURST",
        }
    }
}

impl fmt::Display for CommandClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The substrate-visible shape of one DRAM command.
///
/// ```
/// use elp2im_dram::command::CommandProfile;
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let t = Ddr3Timing::ddr3_1600();
/// let tra = CommandProfile::ambit_tra_aap(&t);
/// assert_eq!(tra.max_simultaneous_wordlines, 3);
/// assert_eq!(tra.total_wordline_events, 4); // TRA (3) + result-row copy (1)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CommandProfile {
    /// Classification (for stats/printing).
    pub class: CommandClass,
    /// Wall-clock duration of the command.
    pub duration: Ns,
    /// Largest number of wordlines driven *at the same instant*.
    ///
    /// Regular AP: 1. oAAP: 2. Ambit TRA: 3. This is what stresses the
    /// charge pump and what the +22 %-per-wordline surcharge applies to.
    pub max_simultaneous_wordlines: u8,
    /// Total count of wordline-raise events over the whole command,
    /// including sequential ones (an AAP raises 2 wordlines one after the
    /// other; a TRA-AAP raises 3 + 1).
    pub total_wordline_events: u8,
    /// Number of full cell restores performed (a trimmed APP performs 0).
    pub restores: u8,
    /// Whether the command contains a pseudo-precharge phase (+31 %
    /// activate-energy surcharge per the paper, §6.2).
    pub pseudo_precharge: bool,
}

impl CommandProfile {
    /// Regular activate-precharge.
    pub fn ap(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::Ap,
            duration: t.ap(),
            max_simultaneous_wordlines: 1,
            total_wordline_events: 1,
            restores: 1,
            pseudo_precharge: false,
        }
    }

    /// Back-to-back activate-activate-precharge (RowClone copy).
    pub fn aap(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::Aap,
            duration: t.aap(),
            max_simultaneous_wordlines: 1,
            total_wordline_events: 2,
            restores: 2,
            pseudo_precharge: false,
        }
    }

    /// Overlapped AAP: both wordlines up simultaneously (dual decoder).
    pub fn o_aap(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::OAap,
            duration: t.o_aap(),
            max_simultaneous_wordlines: 2,
            total_wordline_events: 2,
            restores: 2,
            pseudo_precharge: false,
        }
    }

    /// Activate-pseudoprecharge-precharge.
    pub fn app(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::App,
            duration: t.app(),
            max_simultaneous_wordlines: 1,
            total_wordline_events: 1,
            restores: 1,
            pseudo_precharge: true,
        }
    }

    /// Overlapped APP.
    pub fn o_app(t: &Ddr3Timing) -> Self {
        CommandProfile { class: CommandClass::OApp, duration: t.o_app(), ..CommandProfile::app(t) }
    }

    /// Trimmed APP (no restore; the accessed row is destroyed).
    pub fn t_app(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::TApp,
            duration: t.t_app(),
            restores: 0,
            ..CommandProfile::app(t)
        }
    }

    /// Overlapped **and** trimmed APP.
    pub fn ot_app(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::OtApp,
            duration: t.ot_app(),
            restores: 0,
            ..CommandProfile::app(t)
        }
    }

    /// Ambit triple-row activation with overlapped result copy: the B-group
    /// address raises three wordlines, charge sharing computes the majority,
    /// and the result row is raised to receive the copy.
    pub fn ambit_tra_aap(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::TraAap,
            duration: t.o_aap(),
            max_simultaneous_wordlines: 3,
            total_wordline_events: 4,
            restores: 4,
            pseudo_precharge: false,
        }
    }

    /// DRISA NOR compute step: one activation driving through the added
    /// logic gates; modeled with oAAP-class duration.
    pub fn drisa_step(t: &Ddr3Timing) -> Self {
        CommandProfile {
            class: CommandClass::DrisaStep,
            duration: t.o_aap(),
            max_simultaneous_wordlines: 1,
            total_wordline_events: 1,
            restores: 1,
            pseudo_precharge: false,
        }
    }

    /// Number of *extra* wordlines beyond the first that are driven
    /// simultaneously (0 for regular commands).
    pub fn extra_simultaneous_wordlines(&self) -> u8 {
        self.max_simultaneous_wordlines.saturating_sub(1)
    }
}

impl fmt::Display for CommandProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {} wl)", self.class, self.duration, self.total_wordline_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table1_durations() {
        let t = Ddr3Timing::ddr3_1600();
        assert!((CommandProfile::ap(&t).duration.as_f64() - 48.75).abs() < 0.5);
        assert!((CommandProfile::aap(&t).duration.as_f64() - 83.75).abs() < 0.5);
        assert!((CommandProfile::o_aap(&t).duration.as_f64() - 52.75).abs() < 0.5);
        assert!((CommandProfile::app(&t).duration.as_f64() - 66.6).abs() < 0.5);
        assert!((CommandProfile::o_app(&t).duration.as_f64() - 52.9).abs() < 0.5);
        assert!((CommandProfile::t_app(&t).duration.as_f64() - 45.6).abs() < 0.5);
        assert!((CommandProfile::ot_app(&t).duration.as_f64() - 31.9).abs() < 0.5);
    }

    #[test]
    fn wordline_counts() {
        let t = Ddr3Timing::ddr3_1600();
        assert_eq!(CommandProfile::ap(&t).extra_simultaneous_wordlines(), 0);
        assert_eq!(CommandProfile::o_aap(&t).extra_simultaneous_wordlines(), 1);
        assert_eq!(CommandProfile::ambit_tra_aap(&t).extra_simultaneous_wordlines(), 2);
        // A sequential AAP never drives two wordlines at once.
        assert_eq!(CommandProfile::aap(&t).max_simultaneous_wordlines, 1);
        assert_eq!(CommandProfile::aap(&t).total_wordline_events, 2);
    }

    #[test]
    fn trimmed_commands_do_not_restore() {
        let t = Ddr3Timing::ddr3_1600();
        assert_eq!(CommandProfile::t_app(&t).restores, 0);
        assert_eq!(CommandProfile::ot_app(&t).restores, 0);
        assert_eq!(CommandProfile::app(&t).restores, 1);
    }

    #[test]
    fn display_is_informative() {
        let t = Ddr3Timing::ddr3_1600();
        let s = format!("{}", CommandProfile::ambit_tra_aap(&t));
        assert!(s.contains("TRA"), "{s}");
        assert!(s.contains("wl"), "{s}");
    }
}
