//! Run statistics collected by the event-driven controller and by the
//! analytic device models.

use crate::command::CommandClass;
use crate::units::{Ns, Picojoules};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics for a simulated run or a modeled operation stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Commands issued, by class.
    pub commands: BTreeMap<String, u64>,
    /// Total wordline-raise events.
    pub wordline_activations: u64,
    /// Busy time summed over commands (per-bank serial time).
    pub busy_time: Ns,
    /// Wall-clock makespan (with bank parallelism), when simulated.
    pub makespan: Ns,
    /// Dynamic energy.
    pub energy: Picojoules,
    /// Background (standby/IDD3N) energy over the makespan, when the
    /// producer stamps it. Zero for purely analytic per-command sums.
    pub background_energy: Picojoules,
    /// Time spent stalled waiting for pump budget.
    pub pump_stall: Ns,
}

impl RunStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Records one command. Allocation-free in steady state: the class
    /// name is a `&'static str` lookup, and the counter key is only
    /// materialized the first time a class appears.
    pub fn record(&mut self, class: CommandClass, duration: Ns, wordlines: u8, energy: Picojoules) {
        match self.commands.get_mut(class.name()) {
            Some(count) => *count += 1,
            None => {
                self.commands.insert(class.name().to_string(), 1);
            }
        }
        self.wordline_activations += u64::from(wordlines);
        self.busy_time += duration;
        self.energy += energy;
    }

    /// Total number of commands of every class.
    pub fn total_commands(&self) -> u64 {
        self.commands.values().sum()
    }

    fn merge_counts(&mut self, other: &RunStats) {
        for (k, v) in &other.commands {
            *self.commands.entry(k.clone()).or_insert(0) += v;
        }
        self.wordline_activations += other.wordline_activations;
        self.busy_time += other.busy_time;
        self.energy += other.energy;
        self.pump_stall += other.pump_stall;
    }

    /// Merges statistics from a run that executed *concurrently* with this
    /// one (e.g. two banks of the same schedule): counters and energies
    /// add, makespans overlap so the wall clock is their maximum.
    pub fn merge_parallel(&mut self, other: &RunStats) {
        self.merge_counts(other);
        self.makespan = Ns(self.makespan.as_f64().max(other.makespan.as_f64()));
        // Background energy accrues over wall-clock time once for the whole
        // device, so overlapping runs contribute the larger accrual, not
        // the sum.
        self.background_energy =
            Picojoules(self.background_energy.as_f64().max(other.background_energy.as_f64()));
    }

    /// Merges statistics from a run that executed *after* this one
    /// (back-to-back batches): everything adds, including the makespan and
    /// the background energy accrued over it.
    pub fn merge_sequential(&mut self, other: &RunStats) {
        self.merge_counts(other);
        self.makespan += other.makespan;
        self.background_energy += other.background_energy;
    }

    /// Dynamic plus background energy.
    pub fn total_energy(&self) -> Picojoules {
        self.energy + self.background_energy
    }

    /// Average power over the makespan (mW), including the background
    /// (standby) term when the producer stamped one — the paper's Fig. 13
    /// methodology. Falls back to busy time when no makespan was simulated.
    pub fn average_power_mw(&self) -> f64 {
        match self.power_window() {
            Some(t) => self.total_energy().power_mw(t),
            None => 0.0,
        }
    }

    /// Average *dynamic-only* power over the makespan (mW); the historical
    /// figure, kept for comparisons that exclude standby draw.
    pub fn dynamic_power_mw(&self) -> f64 {
        match self.power_window() {
            Some(t) => self.energy.power_mw(t),
            None => 0.0,
        }
    }

    fn power_window(&self) -> Option<Ns> {
        let t = if self.makespan.as_f64() > 0.0 { self.makespan } else { self.busy_time };
        (t.as_f64() > 0.0).then_some(t)
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} commands, {} wordline activations, busy {}, {}",
            self.total_commands(),
            self.wordline_activations,
            self.busy_time,
            self.energy
        )?;
        if self.background_energy.as_f64() > 0.0 {
            write!(f, " (+{} background)", self.background_energy)?;
        }
        if self.makespan.as_f64() > 0.0 {
            write!(f, ", makespan {}", self.makespan)?;
        }
        if self.pump_stall.as_f64() > 0.0 {
            write!(f, ", pump stall {}", self.pump_stall)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = RunStats::new();
        s.record(CommandClass::Ap, Ns(49.0), 1, Picojoules(100.0));
        s.record(CommandClass::Ap, Ns(49.0), 1, Picojoules(100.0));
        s.record(CommandClass::TraAap, Ns(53.0), 4, Picojoules(400.0));
        assert_eq!(s.total_commands(), 3);
        assert_eq!(s.wordline_activations, 6);
        assert_eq!(s.commands["AP"], 2);
        assert!((s.busy_time.as_f64() - 151.0).abs() < 1e-9);
        assert!((s.energy.as_f64() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn merge_parallel_takes_max_makespan() {
        let mut a = RunStats::new();
        a.record(CommandClass::Ap, Ns(49.0), 1, Picojoules(10.0));
        a.makespan = Ns(100.0);
        a.background_energy = Picojoules(7.0);
        let mut b = RunStats::new();
        b.record(CommandClass::App, Ns(67.0), 1, Picojoules(20.0));
        b.makespan = Ns(80.0);
        b.background_energy = Picojoules(5.0);
        a.merge_parallel(&b);
        assert_eq!(a.total_commands(), 2);
        assert_eq!(a.makespan, Ns(100.0)); // overlap: max, not sum
        assert!((a.energy.as_f64() - 30.0).abs() < 1e-9);
        assert!((a.background_energy.as_f64() - 7.0).abs() < 1e-9); // max
    }

    #[test]
    fn merge_sequential_sums_makespan() {
        let mut a = RunStats::new();
        a.record(CommandClass::Ap, Ns(49.0), 1, Picojoules(10.0));
        a.makespan = Ns(100.0);
        a.background_energy = Picojoules(7.0);
        let mut b = RunStats::new();
        b.record(CommandClass::App, Ns(67.0), 1, Picojoules(20.0));
        b.makespan = Ns(80.0);
        b.background_energy = Picojoules(5.0);
        a.merge_sequential(&b);
        assert_eq!(a.total_commands(), 2);
        assert_eq!(a.makespan, Ns(180.0)); // back-to-back: sum
        assert!((a.background_energy.as_f64() - 12.0).abs() < 1e-9); // sum
    }

    #[test]
    fn average_power_uses_makespan_and_background() {
        let mut s = RunStats::new();
        s.record(CommandClass::Ap, Ns(50.0), 1, Picojoules(100.0));
        assert!((s.average_power_mw() - 2.0).abs() < 1e-12); // busy fallback
        s.makespan = Ns(200.0);
        assert!((s.average_power_mw() - 0.5).abs() < 1e-12);
        s.background_energy = Picojoules(100.0);
        assert!((s.average_power_mw() - 1.0).abs() < 1e-12); // includes background
        assert!((s.dynamic_power_mw() - 0.5).abs() < 1e-12); // excludes it
        assert!((s.total_energy().as_f64() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_power_is_zero() {
        assert_eq!(RunStats::new().average_power_mw(), 0.0);
        assert_eq!(RunStats::new().dynamic_power_mw(), 0.0);
    }

    #[test]
    fn display_mentions_background_when_present() {
        let mut s = RunStats::new();
        s.record(CommandClass::Ap, Ns(50.0), 1, Picojoules(100.0));
        assert!(!format!("{s}").contains("background"));
        s.background_energy = Picojoules(10.0);
        assert!(format!("{s}").contains("background"));
    }
}
