//! Run statistics collected by the event-driven controller and by the
//! analytic device models.

use crate::command::CommandClass;
use crate::units::{Ns, Picojoules};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics for a simulated run or a modeled operation stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Commands issued, by class.
    pub commands: BTreeMap<String, u64>,
    /// Total wordline-raise events.
    pub wordline_activations: u64,
    /// Busy time summed over commands (per-bank serial time).
    pub busy_time: Ns,
    /// Wall-clock makespan (with bank parallelism), when simulated.
    pub makespan: Ns,
    /// Dynamic energy.
    pub energy: Picojoules,
    /// Time spent stalled waiting for pump budget.
    pub pump_stall: Ns,
}

impl RunStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        RunStats::default()
    }

    /// Records one command.
    pub fn record(&mut self, class: CommandClass, duration: Ns, wordlines: u8, energy: Picojoules) {
        *self.commands.entry(class.to_string()).or_insert(0) += 1;
        self.wordline_activations += u64::from(wordlines);
        self.busy_time += duration;
        self.energy += energy;
    }

    /// Total number of commands of every class.
    pub fn total_commands(&self) -> u64 {
        self.commands.values().sum()
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &RunStats) {
        for (k, v) in &other.commands {
            *self.commands.entry(k.clone()).or_insert(0) += v;
        }
        self.wordline_activations += other.wordline_activations;
        self.busy_time += other.busy_time;
        self.makespan = Ns(self.makespan.as_f64().max(other.makespan.as_f64()));
        self.energy += other.energy;
        self.pump_stall += other.pump_stall;
    }

    /// Average power over the makespan (mW); falls back to busy time when no
    /// makespan was simulated.
    pub fn average_power_mw(&self) -> f64 {
        let t = if self.makespan.as_f64() > 0.0 { self.makespan } else { self.busy_time };
        if t.as_f64() <= 0.0 {
            return 0.0;
        }
        self.energy.power_mw(t)
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} commands, {} wordline activations, busy {}, {}",
            self.total_commands(),
            self.wordline_activations,
            self.busy_time,
            self.energy
        )?;
        if self.makespan.as_f64() > 0.0 {
            write!(f, ", makespan {}", self.makespan)?;
        }
        if self.pump_stall.as_f64() > 0.0 {
            write!(f, ", pump stall {}", self.pump_stall)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut s = RunStats::new();
        s.record(CommandClass::Ap, Ns(49.0), 1, Picojoules(100.0));
        s.record(CommandClass::Ap, Ns(49.0), 1, Picojoules(100.0));
        s.record(CommandClass::TraAap, Ns(53.0), 4, Picojoules(400.0));
        assert_eq!(s.total_commands(), 3);
        assert_eq!(s.wordline_activations, 6);
        assert_eq!(s.commands["AP"], 2);
        assert!((s.busy_time.as_f64() - 151.0).abs() < 1e-9);
        assert!((s.energy.as_f64() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = RunStats::new();
        a.record(CommandClass::Ap, Ns(49.0), 1, Picojoules(10.0));
        a.makespan = Ns(100.0);
        let mut b = RunStats::new();
        b.record(CommandClass::App, Ns(67.0), 1, Picojoules(20.0));
        b.makespan = Ns(80.0);
        a.merge(&b);
        assert_eq!(a.total_commands(), 2);
        assert_eq!(a.makespan, Ns(100.0)); // max, not sum
        assert!((a.energy.as_f64() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn average_power_uses_makespan() {
        let mut s = RunStats::new();
        s.record(CommandClass::Ap, Ns(50.0), 1, Picojoules(100.0));
        assert!((s.average_power_mw() - 2.0).abs() < 1e-12); // busy fallback
        s.makespan = Ns(200.0);
        assert!((s.average_power_mw() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_power_is_zero() {
        assert_eq!(RunStats::new().average_power_mw(), 0.0);
    }
}
