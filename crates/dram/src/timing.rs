//! DDR3 timing parameters and the primitive latencies derived from them.
//!
//! The paper evaluates everything on DDR3-1600 (JEDEC JESD79-3D). Table 1
//! lists the latency of each ELP2IM primitive; this module derives those
//! numbers from the underlying DDR3 timing constraints so the relationship
//! is explicit:
//!
//! * `AP  = tRAS + tRP                      ≈ 49 ns`
//! * `AAP = 2·tRAS + tRP                    ≈ 84 ns`
//! * `oAAP = AP + tOverlapPenalty (4 ns)    ≈ 53 ns`  (dual row decoder)
//! * `APP = tRAS + tPP + tRP                ≈ 67 ns`  (tPP = 1.3 × tRP)
//! * `oAPP = tRAS + tPP                     ≈ 53 ns`  (row-buffer decoupling)
//! * `tAPP = APP − tRestoreTrim             ≈ 46 ns`  (restore truncation)
//! * `otAPP = APP − overlap − trim          ≈ 32 ns`  (both optimizations;
//!   needed by the Fig. 8 sequences 5 and 6 — see DESIGN.md §3.2)

use crate::units::Ns;

/// DDR3 timing parameter set.
///
/// Construct with [`Ddr3Timing::ddr3_1600`] for the paper's configuration,
/// or build a custom set for sensitivity studies.
///
/// ```
/// use elp2im_dram::timing::Ddr3Timing;
/// let t = Ddr3Timing::ddr3_1600();
/// assert!((t.app().as_f64() - 66.6).abs() < 1.0); // Table 1: ~67 ns
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ddr3Timing {
    /// Clock period (DDR3-1600: 1.25 ns).
    pub t_ck: Ns,
    /// Activate-to-precharge minimum (row active time).
    pub t_ras: Ns,
    /// Precharge time.
    pub t_rp: Ns,
    /// Activate-to-read/write delay.
    pub t_rcd: Ns,
    /// Activate-to-activate delay, different banks.
    pub t_rrd: Ns,
    /// Four-activate window.
    pub t_faw: Ns,
    /// Pseudo-precharge time as a multiple of `t_rp`.
    ///
    /// §6.1.1: pseudo-precharge is 20–30 % longer than precharge; the paper
    /// (and this default) takes the conservative 30 %, i.e. `1.3`.
    pub pseudo_precharge_factor: f64,
    /// Extra latency of an overlapped double activation (oAAP) over AP.
    ///
    /// §2.2.1: oAAP is "only 4 ns longer than AP".
    pub overlap_penalty: Ns,
    /// Latency saved by truncating the restore phase (tAPP vs APP).
    ///
    /// §4.2.2: ~31 % saved vs a regular APP ⇒ ≈21 ns for DDR3-1600.
    pub restore_trim: Ns,
    /// Average refresh interval (DDR3: 7.8 µs).
    pub t_refi: Ns,
    /// Refresh cycle time (DDR3 4 Gb-class: 260 ns).
    pub t_rfc: Ns,
}

impl Ddr3Timing {
    /// A DDR4-2400 parameter set (§6.2: "DDR3-1600 is just an example,
    /// other type of DRAM is also compatible with the aforementioned
    /// designs"). The pseudo-precharge and overlap/trim relations carry
    /// over unchanged; only the base constraints differ.
    pub fn ddr4_2400() -> Self {
        Ddr3Timing {
            t_ck: Ns(0.833),
            t_ras: Ns(32.0),
            t_rp: Ns(13.32),
            t_rcd: Ns(13.32),
            t_rrd: Ns(3.3),
            t_faw: Ns(21.0),
            pseudo_precharge_factor: 1.3,
            overlap_penalty: Ns(4.0),
            restore_trim: Ns(19.0),
            t_refi: Ns(7800.0),
            t_rfc: Ns(350.0),
        }
    }

    /// The DDR3-1600 parameter set used throughout the paper.
    pub fn ddr3_1600() -> Self {
        Ddr3Timing {
            t_ck: Ns(1.25),
            t_ras: Ns(35.0),
            t_rp: Ns(13.75),
            t_rcd: Ns(13.75),
            t_rrd: Ns(6.0),
            t_faw: Ns(40.0),
            pseudo_precharge_factor: 1.3,
            overlap_penalty: Ns(4.0),
            restore_trim: Ns(21.0),
            t_refi: Ns(7800.0),
            t_rfc: Ns(260.0),
        }
    }

    /// Pseudo-precharge duration (`tPP = factor × tRP`).
    pub fn t_pp(&self) -> Ns {
        self.t_rp * self.pseudo_precharge_factor
    }

    /// Regular Activate-Precharge cycle: `tRAS + tRP` (~49 ns).
    pub fn ap(&self) -> Ns {
        self.t_ras + self.t_rp
    }

    /// Back-to-back Activate-Activate-Precharge (RowClone copy, ~84 ns).
    pub fn aap(&self) -> Ns {
        self.t_ras + self.t_ras + self.t_rp
    }

    /// Overlapped AAP using a separate row decoder (~53 ns).
    pub fn o_aap(&self) -> Ns {
        self.ap() + self.overlap_penalty
    }

    /// Activate-PseudoPrecharge-Precharge (~67 ns).
    pub fn app(&self) -> Ns {
        self.t_ras + self.t_pp() + self.t_rp
    }

    /// Overlapped APP: the final precharge overlaps the pseudo-precharge via
    /// row-buffer decoupling (~53 ns).
    pub fn o_app(&self) -> Ns {
        self.t_ras + self.t_pp()
    }

    /// Trimmed APP: the restore phase is truncated (~46 ns).
    pub fn t_app(&self) -> Ns {
        self.app() - self.restore_trim
    }

    /// Overlapped **and** trimmed APP (~32 ns).
    ///
    /// Not listed in Table 1 (see DESIGN.md §3.2) but required to reproduce
    /// the Fig. 8 sequence-5/6 latency totals of 346 ns and 297 ns.
    pub fn ot_app(&self) -> Ns {
        self.app() - (self.app() - self.o_app()) - self.restore_trim
    }

    /// The latency saved by overlapping an APP (APP − oAPP), ~14 ns.
    pub fn overlap_saving(&self) -> Ns {
        self.app() - self.o_app()
    }

    /// Fraction of time the rank is unavailable due to refresh
    /// (`tRFC / tREFI`, ~3.3 % for DDR3). The paper's evaluation ignores
    /// refresh; this is exposed for sensitivity studies.
    pub fn refresh_overhead(&self) -> f64 {
        self.t_rfc / self.t_refi
    }

    /// Inflates a duration by the steady-state refresh overhead.
    pub fn with_refresh(&self, d: Ns) -> Ns {
        d * (1.0 / (1.0 - self.refresh_overhead()))
    }
}

impl Default for Ddr3Timing {
    fn default() -> Self {
        Ddr3Timing::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Ns, b: f64, tol: f64) -> bool {
        (a.as_f64() - b).abs() <= tol
    }

    /// Table 1 of the paper, reproduced to within a nanosecond.
    #[test]
    fn table1_latencies() {
        let t = Ddr3Timing::ddr3_1600();
        assert!(close(t.ap(), 49.0, 0.5), "AP = {}", t.ap());
        assert!(close(t.aap(), 84.0, 0.5), "AAP = {}", t.aap());
        assert!(close(t.o_aap(), 53.0, 0.5), "oAAP = {}", t.o_aap());
        assert!(close(t.app(), 67.0, 0.5), "APP = {}", t.app());
        assert!(close(t.o_app(), 53.0, 0.5), "oAPP = {}", t.o_app());
        assert!(close(t.t_app(), 46.0, 0.5), "tAPP = {}", t.t_app());
        assert!(close(t.ot_app(), 32.0, 0.5), "otAPP = {}", t.ot_app());
    }

    /// §6.1.1: pseudo-precharge is 20–30 % longer than a precharge.
    #[test]
    fn pseudo_precharge_is_longer_than_precharge() {
        let t = Ddr3Timing::ddr3_1600();
        let ratio = t.t_pp() / t.t_rp;
        assert!((1.2..=1.3001).contains(&ratio), "ratio = {ratio}");
    }

    /// §3.3: APP-AP is ~18 % longer than AP-AP.
    #[test]
    fn two_cycle_access_overhead() {
        let t = Ddr3Timing::ddr3_1600();
        let app_ap = t.app() + t.ap();
        let ap_ap = t.ap() + t.ap();
        let overhead = app_ap / ap_ap - 1.0;
        assert!((0.15..=0.20).contains(&overhead), "APP-AP overhead = {overhead:.3}");
    }

    /// §4.2.1: oAPP saves ~21 % vs APP; §4.2.2: tAPP saves ~31 %.
    #[test]
    fn optimization_savings() {
        let t = Ddr3Timing::ddr3_1600();
        let o_saving = 1.0 - t.o_app() / t.app();
        let trim_saving = 1.0 - t.t_app() / t.app();
        assert!((0.18..=0.24).contains(&o_saving), "oAPP saving {o_saving}");
        assert!((0.28..=0.34).contains(&trim_saving), "tAPP saving {trim_saving}");
    }

    #[test]
    fn default_is_ddr3_1600() {
        assert_eq!(Ddr3Timing::default(), Ddr3Timing::ddr3_1600());
    }

    /// The design's structural relations (APP-AP overhead, optimization
    /// savings) transfer to DDR4 timing unchanged — §6.2's compatibility
    /// remark.
    #[test]
    fn relations_hold_on_ddr4() {
        let t = Ddr3Timing::ddr4_2400();
        assert!(t.ap() < t.app() && t.app() < t.aap());
        assert!(t.o_app() < t.app());
        assert!(t.t_app() < t.app());
        assert!(t.ot_app() < t.o_app());
        let overhead = (t.app() + t.ap()) / (t.ap() + t.ap()) - 1.0;
        assert!((0.12..=0.25).contains(&overhead), "APP-AP overhead {overhead}");
        let pp_ratio = t.t_pp() / t.t_rp;
        assert!((1.2..=1.31).contains(&pp_ratio));
    }

    #[test]
    fn refresh_overhead_is_a_few_percent() {
        let t = Ddr3Timing::ddr3_1600();
        let oh = t.refresh_overhead();
        assert!((0.02..=0.05).contains(&oh), "refresh overhead {oh}");
        let inflated = t.with_refresh(Ns(1000.0));
        assert!(inflated.as_f64() > 1000.0 && inflated.as_f64() < 1060.0);
    }
}
