//! DDR3 DRAM substrate for the ELP2IM reproduction.
//!
//! This crate provides everything the processing-in-memory layers sit on:
//!
//! * [`timing`] — DDR3-1600 timing parameters and the derived latencies of
//!   the ELP2IM / Ambit primitives (Table 1 of the paper).
//! * [`geometry`] — module/bank/subarray/row geometry and typed addresses.
//! * [`command`] — technology-neutral *command profiles*: duration, number
//!   of simultaneously / sequentially driven wordlines, pseudo-precharge
//!   events. Both ELP2IM and the baselines describe their primitives as
//!   profiles, and the power/constraint models consume them.
//! * [`power`] — an IDD-based energy/power model (Micron DDR3 datasheet
//!   constants) with the paper's surcharges (+31 % for a pseudo-precharge
//!   activate, +22 % per extra simultaneously driven wordline).
//! * [`constraint`] — the charge-pump / tFAW power-constraint model that
//!   limits bank-level parallelism (§6.3 of the paper).
//! * [`bank`] and [`controller`] — an event-driven multi-bank simulator that
//!   issues command streams under the pump constraint and accounts time,
//!   energy and row activations.
//! * [`interleave`] — a stateless, deterministic scheduler over per-bank
//!   command streams, producing an exact bus trace and the true wall-clock
//!   makespan for the batch execution layer.
//! * [`hierarchy`] — the topology-aware generalization: channel/rank/bank
//!   ([`geometry::Topology`]) scheduling with per-rank pump windows and
//!   per-channel buses; the flat scheduler is its single-rank embedding.
//! * [`verify`] — the static timing verifier: checks a *claimed* schedule
//!   (bus-order issue instants) against the pump window, per-channel
//!   in-order issue, bank occupancy and refresh blackouts, returning a
//!   concrete counterexample for every refuted obligation.
//! * [`telemetry`] — per-command trace sinks ([`telemetry::TraceSink`]),
//!   counters/histograms ([`telemetry::MetricsRegistry`]), and JSON/CSV
//!   exporters; the default [`telemetry::NullSink`] keeps the hot path free.
//! * [`json`] — a minimal self-contained JSON document model (build,
//!   render, parse) backing the exporters in this offline workspace.
//!
//! # Example
//!
//! ```
//! use elp2im_dram::timing::Ddr3Timing;
//!
//! let t = Ddr3Timing::ddr3_1600();
//! // Table 1 of the paper: a regular activate-precharge cycle is ~49 ns.
//! assert!((t.ap().as_f64() - 48.75).abs() < 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod command;
pub mod constraint;
pub mod controller;
pub mod error;
pub mod geometry;
pub mod hierarchy;
pub mod interleave;
pub mod json;
pub mod power;
pub mod stats;
pub mod telemetry;
pub mod timing;
pub mod units;
pub mod verify;

pub use command::{CommandClass, CommandProfile};
pub use constraint::PumpBudget;
pub use controller::Controller;
pub use error::DramError;
pub use geometry::{Geometry, RowAddr, TopoPath, Topology};
pub use hierarchy::HierarchicalScheduler;
pub use interleave::{InterleavedScheduler, Schedule, ScheduledCommand};
pub use json::Json;
pub use power::PowerModel;
pub use stats::RunStats;
pub use telemetry::{CommandEvent, MemorySink, MetricsRegistry, NullSink, StallReason, TraceSink};
pub use timing::Ddr3Timing;
pub use units::{Ns, Picojoules, Ps};
pub use verify::{verify_claims, ClaimedCommand, TimingViolation};
