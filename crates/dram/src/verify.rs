//! Static timing verification of claimed schedules.
//!
//! The schedulers ([`crate::interleave::InterleavedScheduler`],
//! [`crate::hierarchy::HierarchicalScheduler`]) *construct* legal
//! schedules; this module *checks* them. [`verify_claims`] takes a claimed
//! bus-order schedule — a list of `(path, start)` instants — together with
//! the per-bank command streams it claims to realize, and discharges four
//! proof obligations over exact integer-picosecond intervals, without
//! executing anything:
//!
//! 1. **Bank occupancy** — a bank's commands may not overlap: each start
//!    lies at or after the previous command's completion on that bank.
//! 2. **In-order bus issue** — per channel, issue instants are
//!    non-decreasing in claim order (the bus serializes issues).
//! 3. **Charge-pump / tFAW window** — replaying the per-rank
//!    [`PumpWindow`] at the claimed instants never overdraws the budget.
//! 4. **Refresh alignment** — when a `(interval, duration)` refresh
//!    blackout is declared, no command starts inside a blackout (the
//!    semantics of [`crate::controller::Controller::with_refresh`]).
//!
//! A schedule produced by either scheduler verifies clean by construction
//! (pinned against the golden traces in the tests below); any perturbed
//! schedule is rejected with a concrete counterexample naming the claim,
//! the instant, and the interval it violates. The plan-level static
//! analyzer (`elp2im_core::planlint`) is the primary consumer.

use crate::command::CommandProfile;
use crate::constraint::{PumpBudget, PumpWindow};
use crate::error::DramError;
use crate::geometry::TopoPath;
use crate::hierarchy::HierarchicalScheduler;
use crate::interleave::Schedule;
use crate::telemetry::StallReason;
use crate::units::Ps;
use std::collections::BTreeMap;
use std::fmt;

/// One claimed command issue: the `k`-th claim naming `path` binds to the
/// `k`-th command of that bank's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimedCommand {
    /// Bank the command executes on.
    pub path: TopoPath,
    /// Claimed issue instant.
    pub start: Ps,
}

/// A refuted proof obligation: the concrete counterexample for one claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimingViolation {
    /// The claim list names a different number of commands for a bank than
    /// its stream holds (or names a bank with no stream).
    ClaimShapeMismatch {
        /// The bank.
        path: TopoPath,
        /// Commands claimed for it.
        claimed: usize,
        /// Commands its stream holds.
        expected: usize,
    },
    /// A command starts before its bank finished the previous one.
    BankOverlap {
        /// The bank.
        path: TopoPath,
        /// Claim index (bus order).
        seq: usize,
        /// Position within the bank's stream.
        index: usize,
        /// Claimed start.
        start: Ps,
        /// Completion instant of the bank's previous command.
        prev_done: Ps,
    },
    /// Per-channel in-order issue is violated: a later claim on the same
    /// channel starts earlier than a previous one.
    BusOrderViolation {
        /// The shared channel.
        channel: usize,
        /// Claim index (bus order).
        seq: usize,
        /// The offending bank.
        path: TopoPath,
        /// Position within the bank's stream.
        index: usize,
        /// Claimed start.
        start: Ps,
        /// Claim index of the earlier issue it undercuts.
        prev_seq: usize,
        /// Start of that earlier issue.
        prev_start: Ps,
    },
    /// The rank's charge-pump / tFAW sliding window is overdrawn at the
    /// claimed instant.
    PumpOverrun {
        /// The rank, as `(channel, rank)`.
        rank: (usize, usize),
        /// Claim index (bus order).
        seq: usize,
        /// The bank.
        path: TopoPath,
        /// Position within the bank's stream.
        index: usize,
        /// Claimed start.
        start: Ps,
        /// Earliest instant the window would admit the command.
        earliest: Ps,
    },
    /// The command starts inside a refresh blackout.
    RefreshMisalignment {
        /// Claim index (bus order).
        seq: usize,
        /// The bank.
        path: TopoPath,
        /// Position within the bank's stream.
        index: usize,
        /// Claimed start.
        start: Ps,
        /// End of the blackout the start falls into.
        blackout_until: Ps,
    },
}

impl TimingViolation {
    /// Stable machine-readable identifier, mirroring
    /// `DiagnosticKind::slug` on the program-level analyzer.
    pub fn slug(&self) -> &'static str {
        match self {
            TimingViolation::ClaimShapeMismatch { .. } => "claim-shape-mismatch",
            TimingViolation::BankOverlap { .. } => "bank-overlap",
            TimingViolation::BusOrderViolation { .. } => "bus-order-violation",
            TimingViolation::PumpOverrun { .. } => "pump-overrun",
            TimingViolation::RefreshMisalignment { .. } => "refresh-misalignment",
        }
    }

    /// The stall-reason bucket the refuted obligation corresponds to, so
    /// telemetry can aggregate violations with the scheduler's own
    /// stall-split reason codes.
    pub fn stall_reason(&self) -> StallReason {
        match self {
            TimingViolation::ClaimShapeMismatch { .. } => StallReason::None,
            TimingViolation::BankOverlap { .. } => StallReason::Bank,
            TimingViolation::BusOrderViolation { .. } => StallReason::Bus,
            TimingViolation::PumpOverrun { .. } => StallReason::Pump,
            TimingViolation::RefreshMisalignment { .. } => StallReason::Refresh,
        }
    }
}

impl fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingViolation::ClaimShapeMismatch { path, claimed, expected } => {
                write!(f, "bank {path}: {claimed} commands claimed but the stream holds {expected}")
            }
            TimingViolation::BankOverlap { path, seq, index, start, prev_done } => write!(
                f,
                "bank {path}: claim #{seq} (command #{index}) starts at {} ps before the \
                 previous command completes at {} ps",
                start.0, prev_done.0
            ),
            TimingViolation::BusOrderViolation {
                channel,
                seq,
                path,
                index,
                start,
                prev_seq,
                prev_start,
            } => write!(
                f,
                "channel {channel}: claim #{seq} ({path} command #{index}) starts at {} ps, \
                 before claim #{prev_seq} at {} ps (in-order bus issue violated)",
                start.0, prev_start.0
            ),
            TimingViolation::PumpOverrun { rank, seq, path, index, start, earliest } => write!(
                f,
                "rank c{}.r{}: claim #{seq} ({path} command #{index}) at {} ps overdraws the \
                 charge-pump window (earliest legal start {} ps)",
                rank.0, rank.1, start.0, earliest.0
            ),
            TimingViolation::RefreshMisalignment { seq, path, index, start, blackout_until } => {
                write!(
                    f,
                    "claim #{seq} ({path} command #{index}) at {} ps lands in a refresh \
                     blackout until {} ps",
                    start.0, blackout_until.0
                )
            }
        }
    }
}

/// Merges streams exactly as the scheduling core does: duplicate paths
/// concatenate in input order, empty streams are dropped.
fn merge_streams(
    streams: &[(TopoPath, Vec<CommandProfile>)],
) -> BTreeMap<TopoPath, Vec<&CommandProfile>> {
    let mut merged: BTreeMap<TopoPath, Vec<&CommandProfile>> = BTreeMap::new();
    for (path, cmds) in streams {
        if cmds.is_empty() {
            continue;
        }
        merged.entry(*path).or_default().extend(cmds.iter());
    }
    merged
}

/// Checks `claims` (in claimed bus order) against `streams` under `budget`
/// and an optional `(interval, duration)` refresh blackout. Returns every
/// refuted obligation; an empty vector is the certificate that the claimed
/// schedule is legal.
pub fn verify_claims(
    budget: &PumpBudget,
    refresh: Option<(Ps, Ps)>,
    streams: &[(TopoPath, Vec<CommandProfile>)],
    claims: &[ClaimedCommand],
) -> Vec<TimingViolation> {
    let merged = merge_streams(streams);
    let mut violations = Vec::new();

    // Shape first: every bank's claim count must match its stream length.
    let mut claimed_counts: BTreeMap<TopoPath, usize> = BTreeMap::new();
    for c in claims {
        *claimed_counts.entry(c.path).or_insert(0) += 1;
    }
    let mut shape_ok = true;
    for (path, cmds) in &merged {
        let claimed = claimed_counts.get(path).copied().unwrap_or(0);
        if claimed != cmds.len() {
            violations.push(TimingViolation::ClaimShapeMismatch {
                path: *path,
                claimed,
                expected: cmds.len(),
            });
            shape_ok = false;
        }
    }
    for (path, claimed) in &claimed_counts {
        if !merged.contains_key(path) {
            violations.push(TimingViolation::ClaimShapeMismatch {
                path: *path,
                claimed: *claimed,
                expected: 0,
            });
            shape_ok = false;
        }
    }
    if !shape_ok {
        // Claim-to-command binding is meaningless under a shape mismatch.
        return violations;
    }

    let mut cursors: BTreeMap<TopoPath, usize> = BTreeMap::new();
    let mut bank_done: BTreeMap<TopoPath, Ps> = BTreeMap::new();
    let mut channel_last: BTreeMap<usize, (usize, Ps)> = BTreeMap::new();
    let mut pumps: BTreeMap<(usize, usize), PumpWindow> = BTreeMap::new();

    for (seq, claim) in claims.iter().enumerate() {
        let path = claim.path;
        let start = claim.start;
        let index = {
            let c = cursors.entry(path).or_insert(0);
            let i = *c;
            *c += 1;
            i
        };
        let profile = merged[&path][index];

        // 1. Bank occupancy.
        if let Some(&prev_done) = bank_done.get(&path) {
            if start < prev_done {
                violations.push(TimingViolation::BankOverlap {
                    path,
                    seq,
                    index,
                    start,
                    prev_done,
                });
            }
        }
        bank_done.insert(path, start + profile.duration.to_ps());

        // 2. In-order bus issue per channel.
        match channel_last.get(&path.channel) {
            Some(&(prev_seq, prev_start)) if start < prev_start => {
                violations.push(TimingViolation::BusOrderViolation {
                    channel: path.channel,
                    seq,
                    path,
                    index,
                    start,
                    prev_seq,
                    prev_start,
                });
                // Keep the cursor at the later instant: subsequent claims
                // are judged against the real high-water mark.
            }
            _ => {
                channel_last.insert(path.channel, (seq, start));
            }
        }

        // 3. Refresh alignment (Controller::with_refresh semantics: a
        // blackout of `duration` opens at the start of every `interval`).
        if let Some((interval, duration)) = refresh {
            if interval > Ps::ZERO {
                let offset = Ps(start.0 % interval.0);
                if offset < duration {
                    violations.push(TimingViolation::RefreshMisalignment {
                        seq,
                        path,
                        index,
                        start,
                        blackout_until: Ps(start.0 - offset.0 + duration.0),
                    });
                }
            }
        }

        // 4. Charge-pump / tFAW window per rank.
        let window = pumps.entry(path.rank_id()).or_insert_with(|| PumpWindow::new(budget.clone()));
        if let Err(earliest) = window.try_admit(start, budget.command_cost(profile)) {
            violations.push(TimingViolation::PumpOverrun {
                rank: path.rank_id(),
                seq,
                path,
                index,
                start,
                earliest,
            });
            // The draw was refused; later claims are checked against the
            // window without it, mirroring a schedule that would have
            // deferred this command.
        }
    }
    violations
}

/// Schedules `streams` with the deterministic hierarchical rules, then
/// verifies the resulting schedule's own claims (including the optional
/// refresh obligation the scheduler itself does not model). On success the
/// schedule is the constructive proof; any violations refute it.
///
/// # Errors
///
/// Propagates [`HierarchicalScheduler::schedule`] errors.
pub fn prove(
    budget: &PumpBudget,
    refresh: Option<(Ps, Ps)>,
    streams: &[(TopoPath, Vec<CommandProfile>)],
) -> Result<(Schedule, Vec<TimingViolation>), DramError> {
    let schedule = HierarchicalScheduler::new(budget.clone()).schedule(streams)?;
    let violations = verify_claims(budget, refresh, streams, &schedule.claims());
    Ok((schedule, violations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interleave::InterleavedScheduler;
    use crate::timing::Ddr3Timing;

    fn t() -> Ddr3Timing {
        Ddr3Timing::ddr3_1600()
    }

    fn streams(
        channels: usize,
        ranks: usize,
        banks: usize,
        per_bank: usize,
    ) -> Vec<(TopoPath, Vec<CommandProfile>)> {
        let mut out = Vec::new();
        for c in 0..channels {
            for r in 0..ranks {
                for b in 0..banks {
                    out.push((
                        TopoPath::new(c, r, b),
                        vec![
                            CommandProfile::ap(&t()),
                            CommandProfile::aap(&t()),
                            CommandProfile::app(&t()),
                        ]
                        .into_iter()
                        .cycle()
                        .take(per_bank)
                        .collect(),
                    ));
                }
            }
        }
        out
    }

    #[test]
    fn scheduler_output_verifies_clean_on_golden_shapes() {
        for budget in [PumpBudget::unconstrained(), PumpBudget::jedec_ddr3_1600()] {
            for (c, r, b, n) in [(1, 1, 8, 6), (2, 2, 4, 5), (4, 1, 2, 8), (1, 2, 8, 8)] {
                let ss = streams(c, r, b, n);
                let s = HierarchicalScheduler::new(budget.clone()).schedule(&ss).unwrap();
                let v = verify_claims(&budget, None, &ss, &s.claims());
                assert!(v.is_empty(), "{c}x{r}x{b}x{n}: {v:?}");
            }
        }
    }

    #[test]
    fn flat_scheduler_output_verifies_clean() {
        let budget = PumpBudget::jedec_ddr3_1600();
        let flat: Vec<_> = (0..8).map(|b| (b, vec![CommandProfile::ap(&t()); 6])).collect();
        let s = InterleavedScheduler::new(budget.clone()).schedule(&flat).unwrap();
        let lifted: Vec<_> =
            flat.iter().map(|(b, v)| (TopoPath::flat_bank(*b), v.clone())).collect();
        assert!(verify_claims(&budget, None, &lifted, &s.claims()).is_empty());
    }

    #[test]
    fn perturbed_stalled_command_is_refuted_as_pump_overrun() {
        let budget = PumpBudget::jedec_ddr3_1600();
        let ss = streams(1, 1, 8, 6);
        let s = HierarchicalScheduler::new(budget.clone()).schedule(&ss).unwrap();
        let stalled = s
            .commands
            .iter()
            .position(|c| c.pump_stall > Ps::ZERO)
            .expect("8 jedec banks must stall");
        let mut claims = s.claims();
        // Claim the stalled command at the instant the scheduler was
        // denied: the window must refuse it again.
        claims[stalled].start = Ps(claims[stalled].start.0 - s.commands[stalled].pump_stall.0);
        let v = verify_claims(&budget, None, &ss, &claims);
        assert!(
            v.iter().any(|x| matches!(
                x,
                TimingViolation::PumpOverrun { seq, earliest, .. }
                    if *seq == stalled && *earliest <= s.commands[stalled].start
            )),
            "expected a pump overrun at claim #{stalled}: {v:?}"
        );
    }

    #[test]
    fn swapped_channel_starts_are_refuted_as_bus_order_violation() {
        let budget = PumpBudget::unconstrained();
        let ss = streams(1, 1, 2, 2);
        let s = HierarchicalScheduler::new(budget.clone()).schedule(&ss).unwrap();
        let mut claims = s.claims();
        let (a, b) = (claims[1].start, claims[2].start);
        assert!(a < b, "distinct issue instants expected");
        claims[1].start = b;
        claims[2].start = a;
        let v = verify_claims(&budget, None, &ss, &claims);
        assert!(
            v.iter().any(|x| matches!(x, TimingViolation::BusOrderViolation { seq: 2, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn refresh_blackouts_refute_misaligned_claims() {
        let budget = PumpBudget::unconstrained();
        let ss = streams(1, 1, 1, 2);
        let s = HierarchicalScheduler::new(budget.clone()).schedule(&ss).unwrap();
        let claims = s.claims();
        // The first command starts at t = 0, inside the blackout.
        let refresh = Some((Ps(7_800_000), Ps(350_000)));
        let v = verify_claims(&budget, refresh, &ss, &claims);
        assert!(
            v.iter().any(|x| matches!(
                x,
                TimingViolation::RefreshMisalignment { seq: 0, blackout_until: Ps(350_000), .. }
            )),
            "{v:?}"
        );
        assert!(verify_claims(&budget, None, &ss, &claims).is_empty());
    }

    #[test]
    fn overlapping_bank_commands_are_refuted() {
        let budget = PumpBudget::unconstrained();
        let ss = streams(1, 1, 1, 2);
        let s = HierarchicalScheduler::new(budget.clone()).schedule(&ss).unwrap();
        let mut claims = s.claims();
        claims[1].start = Ps(claims[1].start.0 - 1);
        let v = verify_claims(&budget, None, &ss, &claims);
        assert!(
            v.iter().any(|x| matches!(x, TimingViolation::BankOverlap { seq: 1, .. })),
            "{v:?}"
        );
    }

    #[test]
    fn claim_shape_mismatches_are_refuted() {
        let budget = PumpBudget::unconstrained();
        let ss = streams(1, 1, 2, 2);
        let mut claims = HierarchicalScheduler::new(budget.clone()).schedule(&ss).unwrap().claims();
        claims.pop();
        let v = verify_claims(&budget, None, &ss, &claims);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            TimingViolation::ClaimShapeMismatch { claimed: 1, expected: 2, .. }
        ));
        // A claim for a bank with no stream is also a shape mismatch.
        let phantom = vec![ClaimedCommand { path: TopoPath::new(0, 0, 9), start: Ps::ZERO }];
        let v = verify_claims(&budget, None, &ss, &phantom);
        assert!(v
            .iter()
            .any(|x| matches!(x, TimingViolation::ClaimShapeMismatch { expected: 0, .. })));
    }

    #[test]
    fn prove_constructs_and_certifies() {
        let budget = PumpBudget::jedec_ddr3_1600();
        let ss = streams(2, 1, 4, 4);
        let (schedule, violations) = prove(&budget, None, &ss).unwrap();
        assert!(violations.is_empty());
        assert!(schedule.stats.makespan.as_f64() > 0.0);
    }

    #[test]
    fn violations_map_to_stall_reason_codes() {
        let v = TimingViolation::PumpOverrun {
            rank: (0, 0),
            seq: 0,
            path: TopoPath::flat_bank(0),
            index: 0,
            start: Ps::ZERO,
            earliest: Ps(1),
        };
        assert_eq!(v.stall_reason(), StallReason::Pump);
        assert_eq!(v.slug(), "pump-overrun");
        for reason in StallReason::ALL {
            let _ = reason.label();
        }
    }
}
