//! Hierarchical scheduling across channels, ranks, and banks.
//!
//! [`crate::interleave::InterleavedScheduler`] models one rank: every bank
//! shares one command bus and one charge-pump window. Real systems stack
//! two more levels on top (§6.3 and the system-integration discussion in
//! the bulk-bitwise survey): **ranks** on the same channel share the bus
//! but each has its own charge-pump delivery network, and **channels**
//! share nothing, so they overlap fully. [`HierarchicalScheduler`]
//! generalizes the same deterministic issue rules to a
//! [`TopoPath`]-addressed command stream:
//!
//! * each `(channel, rank)` pair gets its own [`PumpWindow`] — the
//!   tFAW-style activation budget constrains ranks independently;
//! * each channel gets its own in-order bus cursor — commands to any rank
//!   of one channel serialize their *issue instants*, exactly as the
//!   single-rank scheduler serializes bank issues;
//! * channels are fully independent — a schedule over `c` channels with
//!   identical per-channel work has the makespan of one channel.
//!
//! The flat scheduler is now a thin wrapper over this core with every
//! stream pinned to `c0.r0` ([`TopoPath::flat_bank`]), so the two can
//! never drift; the golden-sequence tests pin the flat traces bit for
//! bit, and `tests/stats_properties.rs` proves the multi-channel laws
//! (per-channel independence, [`RunStats::merge_parallel`] agreement)
//! by property testing.
//!
//! # Determinism
//!
//! Identical to the flat scheduler, lifted to paths: streams merge in
//! input order per path and sort by `(channel, rank, bank)`; at every
//! step the pending command with the earliest bank-free time issues,
//! ties going to the lowest path; the per-channel bus clamp applies at
//! issue, and the per-rank pump window defers last. The selection loop
//! runs on a binary heap keyed by bank-free time, so each step is
//! `O(log banks)` instead of the previous `O(banks)` scan.

use crate::command::CommandProfile;
use crate::constraint::{PumpBudget, PumpWindow};
use crate::error::DramError;
use crate::geometry::{TopoPath, Topology};
use crate::interleave::{Schedule, ScheduledCommand};
use crate::power::PowerModel;
use crate::stats::RunStats;
use crate::telemetry::{CommandEvent, NullSink, StallReason, TraceSink};
use crate::units::{Ns, Ps};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Deterministic, stateless scheduler for [`TopoPath`]-addressed command
/// streams over a channel/rank/bank hierarchy.
///
/// ```
/// use elp2im_dram::command::CommandProfile;
/// use elp2im_dram::constraint::PumpBudget;
/// use elp2im_dram::geometry::TopoPath;
/// use elp2im_dram::hierarchy::HierarchicalScheduler;
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let t = Ddr3Timing::ddr3_1600();
/// let sched = HierarchicalScheduler::new(PumpBudget::unconstrained());
/// // The same two-bank workload on each of four channels…
/// let mut streams = Vec::new();
/// for c in 0..4 {
///     for b in 0..2 {
///         streams.push((TopoPath::new(c, 0, b), vec![CommandProfile::ap(&t); 3]));
///     }
/// }
/// let s = sched.schedule(&streams).unwrap();
/// // …takes exactly as long as one channel alone: channels share nothing.
/// let one: Vec<_> = streams.iter().filter(|(p, _)| p.channel == 0).cloned().collect();
/// assert_eq!(s.stats.makespan, sched.schedule(&one).unwrap().stats.makespan);
/// ```
#[derive(Debug, Clone)]
pub struct HierarchicalScheduler {
    budget: PumpBudget,
    power: PowerModel,
}

impl HierarchicalScheduler {
    /// A scheduler giving every rank its own copy of `budget`, with the
    /// default Micron power model.
    pub fn new(budget: PumpBudget) -> Self {
        HierarchicalScheduler { budget, power: PowerModel::micron_ddr3_1600() }
    }

    /// Replaces the power model used for energy accounting.
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// The per-rank budget.
    pub fn budget(&self) -> &PumpBudget {
        &self.budget
    }

    /// Schedules `streams` (pairs of path and that bank's in-order
    /// command stream) from an idle array at t = 0.
    ///
    /// # Errors
    ///
    /// [`DramError::BankOutOfRange`] if a path component is at or above
    /// `usize::MAX / 2` (a sentinel for obviously corrupt indices); any
    /// path is otherwise legal — see [`HierarchicalScheduler::schedule_for`]
    /// for topology-validated scheduling.
    pub fn schedule(
        &self,
        streams: &[(TopoPath, Vec<CommandProfile>)],
    ) -> Result<Schedule, DramError> {
        self.schedule_with(streams, &mut NullSink)
    }

    /// [`HierarchicalScheduler::schedule`], validating every path against
    /// `topology` first.
    ///
    /// # Errors
    ///
    /// [`DramError::PathOutOfRange`] if a stream's path is outside
    /// `topology`; otherwise as [`HierarchicalScheduler::schedule`].
    pub fn schedule_for(
        &self,
        topology: &Topology,
        streams: &[(TopoPath, Vec<CommandProfile>)],
    ) -> Result<Schedule, DramError> {
        for (path, _) in streams {
            if !topology.contains(*path) {
                return Err(DramError::PathOutOfRange {
                    path: *path,
                    channels: topology.channels,
                    ranks: topology.ranks_per_channel,
                    banks: topology.geometry.banks,
                });
            }
        }
        self.schedule(streams)
    }

    /// [`HierarchicalScheduler::schedule`] with a dynamic trace sink.
    ///
    /// # Errors
    ///
    /// Same as [`HierarchicalScheduler::schedule`].
    pub fn schedule_traced(
        &self,
        streams: &[(TopoPath, Vec<CommandProfile>)],
        sink: &mut dyn TraceSink,
    ) -> Result<Schedule, DramError> {
        self.schedule_with(streams, sink)
    }

    /// Schedules `streams` while reporting every issued command to `sink`.
    ///
    /// # Errors
    ///
    /// Same as [`HierarchicalScheduler::schedule`].
    pub fn schedule_with<S: TraceSink + ?Sized>(
        &self,
        streams: &[(TopoPath, Vec<CommandProfile>)],
        sink: &mut S,
    ) -> Result<Schedule, DramError> {
        let borrowed: Vec<(TopoPath, &[CommandProfile])> =
            streams.iter().map(|(p, v)| (*p, v.as_slice())).collect();
        schedule_core(&self.budget, &self.power, &borrowed, sink)
    }
}

/// The shared scheduling core behind both the hierarchical and the flat
/// scheduler. See the module docs for the issue rules.
pub(crate) fn schedule_core<S: TraceSink + ?Sized>(
    budget: &PumpBudget,
    power: &PowerModel,
    streams: &[(TopoPath, &[CommandProfile])],
    sink: &mut S,
) -> Result<Schedule, DramError> {
    // Merge duplicate paths in input order; the BTreeMap both dedups in
    // O(n log n) and yields entries sorted by path for the tie-break.
    // Empty streams are dropped here — `Schedule::bank_done` promises
    // "banks without work are absent".
    let mut merged: BTreeMap<TopoPath, Vec<&CommandProfile>> = BTreeMap::new();
    for (path, cmds) in streams {
        for component in [path.channel, path.rank, path.bank] {
            if component >= usize::MAX / 2 {
                return Err(DramError::BankOutOfRange { bank: component, banks: usize::MAX / 2 });
            }
        }
        if cmds.is_empty() {
            continue;
        }
        merged.entry(*path).or_default().extend(cmds.iter());
    }
    let entries: Vec<(TopoPath, Vec<&CommandProfile>)> = merged.into_iter().collect();

    // One pump window per (channel, rank); one bus cursor per channel.
    let mut rank_of = BTreeMap::new();
    let mut channel_of = BTreeMap::new();
    for (path, _) in &entries {
        let next = rank_of.len();
        rank_of.entry(path.rank_id()).or_insert(next);
        let next = channel_of.len();
        channel_of.entry(path.channel).or_insert(next);
    }
    let mut pumps: Vec<PumpWindow> =
        (0..rank_of.len()).map(|_| PumpWindow::new(budget.clone())).collect();
    let mut rank_stats: Vec<RunStats> = (0..rank_of.len()).map(|_| RunStats::new()).collect();
    let mut last_issue: Vec<Ps> = vec![Ps::ZERO; channel_of.len()];

    let mut bank_free: Vec<Ps> = vec![Ps::ZERO; entries.len()];
    let mut cursors = vec![0usize; entries.len()];
    let mut stats = RunStats::new();
    let mut commands = Vec::with_capacity(entries.iter().map(|(_, v)| v.len()).sum());

    // Ready queue keyed by bank-free time, then path order (entries are
    // path-sorted, so the index is the tie-break). A bank's free time
    // only changes when it issues, at which point it is re-pushed with
    // its new key — so the heap top is always the same command the old
    // O(banks) scan would have selected.
    let mut ready: BinaryHeap<Reverse<(Ps, usize)>> =
        (0..entries.len()).map(|i| Reverse((Ps::ZERO, i))).collect();

    while let Some(Reverse((free, i))) = ready.pop() {
        let (path, cmds) = &entries[i];
        let profile = cmds[cursors[i]];
        let rank = rank_of[&path.rank_id()];
        let channel = channel_of[&path.channel];

        // In-order issue on this channel's bus, then per-rank pump
        // admission, deferring as needed.
        let requested = free.max(last_issue[channel]);
        let cost = budget.command_cost(profile);
        let mut start = requested;
        loop {
            match pumps[rank].try_admit(start, cost) {
                Ok(()) => break,
                Err(retry) => start = retry,
            }
        }
        let bus_wait = requested.saturating_sub(free);
        let pump_wait = start.saturating_sub(requested);
        last_issue[channel] = start;
        let done = start + profile.duration.to_ps();
        bank_free[i] = done;

        let energy = power.command_energy(profile);
        for s in [&mut stats, &mut rank_stats[rank]] {
            s.record(profile.class, profile.duration, profile.total_wordline_events, energy);
            s.pump_stall += pump_wait.to_ns();
            s.makespan = Ns(s.makespan.as_f64().max(done.to_ns().as_f64()));
        }

        // The request is born at the bank-free instant, so the wait splits
        // exactly into the bus clamp and the pump deferral.
        let reason = if pump_wait > Ps::ZERO {
            StallReason::Pump
        } else if bus_wait > Ps::ZERO {
            StallReason::Bus
        } else {
            StallReason::None
        };
        sink.record(&CommandEvent {
            seq: commands.len() as u64,
            path: *path,
            class: profile.class,
            issue: free,
            start,
            done,
            stall: start.saturating_sub(free),
            bank_wait: Ps::ZERO,
            bus_wait,
            refresh_wait: Ps::ZERO,
            pump_wait,
            reason,
            energy,
        });

        commands.push(ScheduledCommand {
            seq: commands.len(),
            path: *path,
            index_in_bank: cursors[i],
            class: profile.class,
            start,
            done,
            pump_stall: pump_wait,
            bus_wait,
        });
        cursors[i] += 1;
        if cursors[i] < cmds.len() {
            ready.push(Reverse((done, i)));
        }
    }

    // Stamp standby accrual: the whole schedule over its wall clock, and
    // each rank over its own (so per-rank entries are themselves valid
    // schedules whose parallel merge reproduces the whole — the law
    // checked in `tests/stats_properties.rs`).
    stats.background_energy = power.background_energy(stats.makespan, 1.0);
    for s in rank_stats.iter_mut() {
        s.background_energy = power.background_energy(s.makespan, 1.0);
    }

    let bank_done =
        entries.iter().enumerate().map(|(i, (path, _))| (*path, bank_free[i])).collect();
    let rank_stats = rank_of.into_iter().map(|(id, idx)| (id, rank_stats[idx].clone())).collect();
    Ok(Schedule { commands, stats, bank_done, rank_stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::Controller;
    use crate::timing::Ddr3Timing;

    fn t() -> Ddr3Timing {
        Ddr3Timing::ddr3_1600()
    }

    fn per_channel_streams(
        channels: usize,
        ranks: usize,
        banks: usize,
        per_bank: usize,
    ) -> Vec<(TopoPath, Vec<CommandProfile>)> {
        let mut out = Vec::new();
        for c in 0..channels {
            for r in 0..ranks {
                for b in 0..banks {
                    out.push((TopoPath::new(c, r, b), vec![CommandProfile::ap(&t()); per_bank]));
                }
            }
        }
        out
    }

    #[test]
    fn channels_overlap_fully() {
        let sched = HierarchicalScheduler::new(PumpBudget::jedec_ddr3_1600());
        let one = sched.schedule(&per_channel_streams(1, 1, 8, 6)).unwrap();
        let four = sched.schedule(&per_channel_streams(4, 1, 8, 6)).unwrap();
        // Same per-channel work on four channels: identical makespan,
        // four times the commands and dynamic energy.
        assert_eq!(one.stats.makespan, four.stats.makespan);
        assert_eq!(four.stats.total_commands(), 4 * one.stats.total_commands());
        assert!((four.stats.energy.as_f64() - 4.0 * one.stats.energy.as_f64()).abs() < 1e-6);
    }

    #[test]
    fn ranks_have_independent_pump_windows_but_share_the_bus() {
        // Workload sized so one rank's pump window saturates: a second
        // rank on the same channel must not inherit the deferrals (its
        // own window is fresh), but its issues serialize on the bus.
        let sched = HierarchicalScheduler::new(PumpBudget::jedec_ddr3_1600());
        let one_rank = sched.schedule(&per_channel_streams(1, 1, 8, 8)).unwrap();
        let two_ranks = sched.schedule(&per_channel_streams(1, 2, 8, 8)).unwrap();
        // Two ranks double the pump capacity of the channel; the combined
        // pump stall cannot exceed double a single rank's and the
        // per-rank entries must each see their own window.
        assert_eq!(two_ranks.rank_stats.len(), 2);
        for ((_, _), rs) in &two_ranks.rank_stats {
            assert!(rs.pump_stall.as_f64() <= one_rank.stats.pump_stall.as_f64() + 1e-9);
        }
        // The bus serializes: total makespan exceeds the one-rank run.
        assert!(two_ranks.stats.makespan.as_f64() > one_rank.stats.makespan.as_f64());
    }

    #[test]
    fn flat_embedding_matches_interleaved_scheduler() {
        use crate::interleave::InterleavedScheduler;
        for budget in [PumpBudget::unconstrained(), PumpBudget::jedec_ddr3_1600()] {
            let flat: Vec<_> = (0..8)
                .map(|b| {
                    (
                        b,
                        vec![
                            CommandProfile::aap(&t()),
                            CommandProfile::app(&t()),
                            CommandProfile::ap(&t()),
                        ],
                    )
                })
                .collect();
            let lifted: Vec<_> =
                flat.iter().map(|(b, v)| (TopoPath::flat_bank(*b), v.clone())).collect();
            let a = InterleavedScheduler::new(budget.clone()).schedule(&flat).unwrap();
            let b = HierarchicalScheduler::new(budget).schedule(&lifted).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn agrees_with_event_driven_controller_per_rank() {
        // Each rank of a multi-channel schedule, re-run alone through the
        // stateful controller, must reproduce the hierarchical makespan
        // for single-rank channels: the rank owns both its bus and its
        // pump window, so the hierarchy adds no coupling.
        let sched = HierarchicalScheduler::new(PumpBudget::jedec_ddr3_1600());
        let streams = per_channel_streams(4, 1, 8, 6);
        let s = sched.schedule(&streams).unwrap();
        assert_eq!(s.rank_stats.len(), 4);
        for ((channel, rank), rs) in &s.rank_stats {
            let flat: Vec<_> = streams
                .iter()
                .filter(|(p, _)| p.rank_id() == (*channel, *rank))
                .map(|(p, v)| (p.bank, v.clone()))
                .collect();
            let mut c = Controller::new(8, PumpBudget::jedec_ddr3_1600());
            let cs = c.run_streams(&flat).unwrap();
            assert!(
                (rs.makespan.as_f64() - cs.makespan.as_f64()).abs() < 1e-6,
                "rank c{channel}.r{rank}: hierarchical {} vs controller {}",
                rs.makespan,
                cs.makespan
            );
            assert!((rs.pump_stall.as_f64() - cs.pump_stall.as_f64()).abs() < 1e-6);
        }
    }

    #[test]
    fn rank_stats_parallel_merge_reproduces_whole() {
        let sched = HierarchicalScheduler::new(PumpBudget::jedec_ddr3_1600());
        let s = sched.schedule(&per_channel_streams(3, 2, 4, 5)).unwrap();
        let mut folded = RunStats::new();
        for (_, rs) in &s.rank_stats {
            folded.merge_parallel(rs);
        }
        assert_eq!(folded.commands, s.stats.commands);
        assert_eq!(folded.makespan, s.stats.makespan);
        assert!((folded.energy.as_f64() - s.stats.energy.as_f64()).abs() < 1e-6);
        assert!((folded.pump_stall.as_f64() - s.stats.pump_stall.as_f64()).abs() < 1e-6);
        assert_eq!(folded.background_energy, s.stats.background_energy);
    }

    #[test]
    fn schedule_for_validates_paths() {
        let topo = Topology::new(2, 1, crate::geometry::Geometry::tiny());
        let sched = HierarchicalScheduler::new(PumpBudget::unconstrained());
        let bad = vec![(TopoPath::new(2, 0, 0), vec![CommandProfile::ap(&t())])];
        match sched.schedule_for(&topo, &bad) {
            Err(DramError::PathOutOfRange { path, channels, .. }) => {
                assert_eq!(path, TopoPath::new(2, 0, 0));
                assert_eq!(channels, 2);
            }
            other => panic!("expected PathOutOfRange, got {other:?}"),
        }
        let good = vec![(TopoPath::new(1, 0, 1), vec![CommandProfile::ap(&t())])];
        assert!(sched.schedule_for(&topo, &good).is_ok());
    }

    #[test]
    fn stall_split_reconciles_exactly_in_picoseconds() {
        use crate::telemetry::MemorySink;
        let sched = HierarchicalScheduler::new(PumpBudget::jedec_ddr3_1600());
        let mut sink = MemorySink::new();
        sched.schedule_traced(&per_channel_streams(2, 2, 8, 8), &mut sink).unwrap();
        assert!(sink.metrics.total_stall_ps > 0);
        assert!(sink.metrics.stalls_reconcile());
        for e in &sink.events {
            assert!(e.waits_reconcile());
        }
    }
}
