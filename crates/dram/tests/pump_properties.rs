//! Property-based tests of the charge-pump sliding window: under arbitrary
//! admission sequences the budget invariant must hold and deferral times
//! must be exact.

use elp2im_dram::constraint::{PumpBudget, PumpWindow};
use elp2im_dram::units::{Ns, Ps};
use proptest::prelude::*;

fn budget() -> PumpBudget {
    PumpBudget {
        tokens_per_window: 4.0,
        window: Ns(40.0),
        extra_wordline_cost: 1.22,
        pseudo_precharge_cost: 0.31,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// At no instant does the admitted in-window draw exceed the budget
    /// (for commands that individually fit the budget).
    #[test]
    fn window_never_exceeds_budget(
        deltas in proptest::collection::vec(0u64..60_000, 1..120),
        costs in proptest::collection::vec(0.1f64..4.0, 1..120),
    ) {
        let mut w = PumpWindow::new(budget());
        let mut now = Ps::ZERO;
        for (d, c) in deltas.iter().zip(&costs) {
            now += Ps(*d);
            let mut t = now;
            // Retry until admitted; each deferral must move time forward.
            for _ in 0..1000 {
                match w.try_admit(t, *c) {
                    Ok(()) => break,
                    Err(retry) => {
                        prop_assert!(retry > t, "deferral must advance time");
                        t = retry;
                    }
                }
            }
            prop_assert!(
                w.drawn(t) <= budget().tokens_per_window + 1e-9,
                "budget exceeded: {} at {t}", w.drawn(t)
            );
        }
    }

    /// Admissions spaced a full window apart never defer.
    #[test]
    fn spaced_admissions_always_succeed(costs in proptest::collection::vec(0.1f64..4.0, 1..60)) {
        let mut w = PumpWindow::new(budget());
        let window = Ps(40_001);
        let mut now = Ps::ZERO;
        for c in costs {
            prop_assert!(w.try_admit(now, c).is_ok());
            now += window;
        }
    }

    /// The returned deferral time is tight: admission succeeds exactly at
    /// it, and would still fail one picosecond earlier.
    #[test]
    fn deferral_times_are_tight(
        first in 0.5f64..4.0,
        second in 0.5f64..4.0,
    ) {
        prop_assume!(first + second > 4.0); // force a deferral
        let mut w = PumpWindow::new(budget());
        prop_assert!(w.try_admit(Ps(0), first).is_ok());
        let retry = match w.try_admit(Ps(1000), second) {
            Err(r) => r,
            Ok(()) => return Ok(()), // no conflict after all
        };
        // One ps earlier must still fail…
        let mut probe = w.clone();
        prop_assert!(probe.try_admit(Ps(retry.0 - 1), second).is_err());
        // …and the suggested time succeeds.
        prop_assert!(w.try_admit(retry, second).is_ok());
    }

    /// Unconstrained budgets never defer anything.
    #[test]
    fn unconstrained_never_defers(
        times in proptest::collection::vec(0u64..100_000, 1..80),
        cost in 0.1f64..100.0,
    ) {
        let mut w = PumpWindow::new(PumpBudget::unconstrained());
        for t in times {
            prop_assert!(w.try_admit(Ps(t), cost).is_ok());
        }
    }
}
