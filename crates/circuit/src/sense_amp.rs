//! Latch-type sense amplifier with switchable supply rails.
//!
//! The SA of Fig. 1(a) is a pair of cross-coupled CMOS inverters with two
//! supply nodes (node 1 and node 2). During a regular activation they carry
//! Vdd and Gnd; ELP2IM's pseudo-precharge shifts *one* of them to Vdd/2
//! while the SA stays enabled, and the rail-to-rail output follows — the
//! paper's "stable yet non-traditional state" (§3.1.1).

use crate::phase::Side;

/// Supply-rail pair of the sense amplifier (volts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rails {
    /// Positive supply (node 1).
    pub hi: f64,
    /// Negative supply (node 2).
    pub lo: f64,
}

impl Rails {
    /// Full-swing rails for a normal activation.
    pub fn full(vdd: f64) -> Self {
        Rails { hi: vdd, lo: 0.0 }
    }

    /// OR-style pseudo-precharge: Gnd shifts up to Vdd/2 ('0' bitlines get
    /// regulated to Vdd/2, '1' bitlines keep Vdd).
    pub fn pseudo_or(vdd: f64) -> Self {
        Rails { hi: vdd, lo: vdd / 2.0 }
    }

    /// AND-style pseudo-precharge: Vdd shifts down to Vdd/2 ('1' bitlines
    /// get regulated to Vdd/2, '0' bitlines keep Gnd).
    pub fn pseudo_and(vdd: f64) -> Self {
        Rails { hi: vdd / 2.0, lo: 0.0 }
    }

    /// Rail span (drive supply difference).
    pub fn span(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Sense amplifier state.
#[derive(Debug, Clone, PartialEq)]
pub struct SenseAmp {
    enabled: bool,
    rails: Rails,
    /// Which side the SA latched high, decided at enable time.
    high_side: Option<Side>,
    /// Input-referred offset added to the `Bl` side at decision time
    /// (process-variation mismatch of the latch pair).
    pub offset_v: f64,
}

impl SenseAmp {
    /// A disabled SA with full rails configured.
    pub fn new(vdd: f64) -> Self {
        SenseAmp { enabled: false, rails: Rails::full(vdd), high_side: None, offset_v: 0.0 }
    }

    /// Whether the SA is currently driving.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The latched high side, if enabled and decided.
    pub fn high_side(&self) -> Option<Side> {
        self.high_side
    }

    /// Current rails.
    pub fn rails(&self) -> Rails {
        self.rails
    }

    /// Enables the SA with the given rails and latches a decision from the
    /// instantaneous differential (`v_bl` vs `v_blb`), offset included.
    pub fn enable(&mut self, rails: Rails, v_bl: f64, v_blb: f64) {
        self.enabled = true;
        self.rails = rails;
        self.high_side = Some(if v_bl + self.offset_v >= v_blb { Side::Bl } else { Side::BlBar });
    }

    /// Shifts the supply rails while staying enabled (pseudo-precharge).
    /// The latched decision is preserved; outputs follow the new rails.
    ///
    /// # Panics
    ///
    /// Panics if the SA is not enabled — the pseudo-precharge state is only
    /// meaningful while the SA drives the bitlines.
    pub fn shift_rails(&mut self, rails: Rails) {
        assert!(self.enabled, "pseudo-precharge requires an enabled SA");
        self.rails = rails;
    }

    /// Disables the SA (outputs float; latch decision cleared).
    pub fn disable(&mut self) {
        self.enabled = false;
        self.high_side = None;
    }

    /// Target voltages `(bl_target, blb_target)` the SA currently drives
    /// toward, or `None` if disabled.
    pub fn drive_targets(&self) -> Option<(f64, f64)> {
        let side = self.high_side?;
        if !self.enabled {
            return None;
        }
        Some(match side {
            Side::Bl => (self.rails.hi, self.rails.lo),
            Side::BlBar => (self.rails.lo, self.rails.hi),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latches_decision_at_enable() {
        let mut sa = SenseAmp::new(1.2);
        sa.enable(Rails::full(1.2), 0.7, 0.6);
        assert_eq!(sa.high_side(), Some(Side::Bl));
        assert_eq!(sa.drive_targets(), Some((1.2, 0.0)));
    }

    #[test]
    fn offset_can_flip_a_marginal_decision() {
        let mut sa = SenseAmp::new(1.2);
        sa.offset_v = -0.05;
        sa.enable(Rails::full(1.2), 0.62, 0.60);
        // True differential is +20 mV but offset is −50 mV: wrong decision.
        assert_eq!(sa.high_side(), Some(Side::BlBar));
    }

    #[test]
    fn pseudo_precharge_keeps_decision_and_moves_rail() {
        let mut sa = SenseAmp::new(1.2);
        sa.enable(Rails::full(1.2), 1.0, 0.2);
        sa.shift_rails(Rails::pseudo_or(1.2));
        assert_eq!(sa.high_side(), Some(Side::Bl));
        // '1' keeps Vdd; the low side is regulated up to Vdd/2.
        assert_eq!(sa.drive_targets(), Some((1.2, 0.6)));

        sa.shift_rails(Rails::pseudo_and(1.2));
        assert_eq!(sa.drive_targets(), Some((0.6, 0.0)));
    }

    #[test]
    #[should_panic(expected = "enabled")]
    fn rail_shift_requires_enabled_sa() {
        let mut sa = SenseAmp::new(1.2);
        sa.shift_rails(Rails::pseudo_or(1.2));
    }

    #[test]
    fn disable_clears_latch() {
        let mut sa = SenseAmp::new(1.2);
        sa.enable(Rails::full(1.2), 1.0, 0.0);
        sa.disable();
        assert_eq!(sa.high_side(), None);
        assert_eq!(sa.drive_targets(), None);
    }

    #[test]
    fn rail_constructors() {
        assert_eq!(Rails::pseudo_or(1.2), Rails { hi: 1.2, lo: 0.6 });
        assert_eq!(Rails::pseudo_and(1.2), Rails { hi: 0.6, lo: 0.0 });
        assert!((Rails::full(1.2).span() - 1.2).abs() < 1e-12);
    }
}
