//! Process-variation and coupling-noise models (§6.1.2).
//!
//! PV is categorized into *systematic* and *random* variation; the paper
//! runs Monte-Carlo at the two extremes ("variations are all systematic or
//! all random — any other condition is the intermediate case"). Under
//! random PV every device draws independently; under systematic PV the
//! devices of one column move together, so mismatch-driven effects (SA
//! offset, TRA cell imbalance) largely vanish.

use crate::params::CircuitParams;
use rand::Rng;

/// Which extreme of the PV split to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PvMode {
    /// Every device varies independently (worst for mismatch).
    Random,
    /// All devices of a column vary together (mismatch suppressed).
    Systematic,
}

impl PvMode {
    /// Stable discriminant mixed into Monte-Carlo stream keys
    /// ([`crate::montecarlo::stream_key`]); never derived from labels.
    pub fn id(self) -> u64 {
        match self {
            PvMode::Random => 0,
            PvMode::Systematic => 1,
        }
    }
}

/// One Box-Muller transform: two independent standard-normal deviates
/// from exactly two uniform draws.
///
/// Callers must consume (or explicitly discard) *both* deviates of every
/// pair so each [`VariationSample::draw`] costs a fixed number of RNG
/// draws — the chunked Monte-Carlo engine ([`crate::montecarlo`]) relies
/// on that fixed cost for thread-count-independent determinism.
pub fn box_muller_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Relative scale of the SA input-referred offset versus the raw PV sigma.
///
/// At sigma = 5 % this yields an offset sigma of ≈18 mV at Vdd = 1.2 V,
/// consistent with published latch-SA offsets of tens of millivolts.
const OFFSET_SCALE: f64 = 0.30;

/// Relative scale of the Vdd/2 source mismatch (SA path vs PU path) —
/// ELP2IM's dominant inaccuracy source per §6.1.2.
const HALF_SOURCE_SCALE: f64 = 0.20;

/// Residual mismatch that survives under systematic PV (paths still differ
/// even when devices track).
const SYSTEMATIC_MISMATCH_RESIDUE: f64 = 0.25;

/// One Monte-Carlo draw of the column's process variation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSample {
    /// Multiplier on each of up to three cell capacitances.
    pub cc_mult: [f64; 3],
    /// Multiplier on the bitline capacitance.
    pub cb_mult: f64,
    /// SA input-referred offset (V), signed.
    pub sa_offset_v: f64,
    /// Mismatch between the SA-regulated Vdd/2 and the PU Vdd/2 (V).
    pub half_mismatch_v: f64,
}

impl VariationSample {
    /// A perfectly nominal sample (no variation).
    pub fn nominal() -> Self {
        VariationSample { cc_mult: [1.0; 3], cb_mult: 1.0, sa_offset_v: 0.0, half_mismatch_v: 0.0 }
    }

    /// Draws one sample at relative strength `sigma` (e.g. `0.05` = 5 %).
    ///
    /// Gaussians come from [`box_muller_pair`] with both deviates of each
    /// pair consumed, so a trial costs exactly 6 uniform draws under
    /// [`PvMode::Random`] and 4 under [`PvMode::Systematic`] — a fixed
    /// per-trial budget the chunked Monte-Carlo engine depends on.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn draw<R: Rng + ?Sized>(
        rng: &mut R,
        mode: PvMode,
        sigma: f64,
        params: &CircuitParams,
    ) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        match mode {
            PvMode::Random => {
                let (g0, g1) = box_muller_pair(rng);
                let (g2, g3) = box_muller_pair(rng);
                let (g4, g5) = box_muller_pair(rng);
                VariationSample {
                    cc_mult: [
                        (1.0 + sigma * g0).max(0.1),
                        (1.0 + sigma * g1).max(0.1),
                        (1.0 + sigma * g2).max(0.1),
                    ],
                    cb_mult: (1.0 + sigma * g3).max(0.1),
                    sa_offset_v: sigma * OFFSET_SCALE * params.vdd * g4,
                    half_mismatch_v: sigma * HALF_SOURCE_SCALE * params.vdd * g5,
                }
            }
            PvMode::Systematic => {
                let (g0, g1) = box_muller_pair(rng);
                // The second pair's sine deviate is surplus; the pair is
                // still drawn whole so the per-trial RNG cost stays fixed.
                let (g2, _) = box_muller_pair(rng);
                // One shared draw: all cells (and the bitline) track.
                let shared = (1.0 + sigma * g0).max(0.1);
                VariationSample {
                    cc_mult: [shared; 3],
                    cb_mult: shared,
                    // Mismatch effects mostly cancel; a residue remains
                    // because the two Vdd/2 delivery paths differ.
                    sa_offset_v: sigma
                        * OFFSET_SCALE
                        * SYSTEMATIC_MISMATCH_RESIDUE
                        * params.vdd
                        * g1,
                    half_mismatch_v: sigma
                        * HALF_SOURCE_SCALE
                        * SYSTEMATIC_MISMATCH_RESIDUE
                        * params.vdd
                        * g2,
                }
            }
        }
    }
}

/// Bitline-coupling noise model (open-bitline worst case, §6.1.2).
///
/// The victim bitline picks up `coupling_ratio` of its neighbors' swing.
/// The worst data pattern alternates '0'/'1' along the wordline, so both
/// neighbors swing *against* the victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CouplingModel {
    /// Coupling capacitance as a fraction of Cb (default 0.15).
    pub ratio: f64,
}

impl CouplingModel {
    /// The paper's 15 %-of-Cb coupling configuration.
    pub fn paper_default() -> Self {
        CouplingModel { ratio: 0.15 }
    }

    /// Noise injected into the victim at sense time when both neighbors
    /// deviate by `aggressor_dev` volts in the opposing direction.
    pub fn victim_noise(&self, aggressor_dev: f64) -> f64 {
        self.ratio * aggressor_dev
    }

    /// Aggressor deviation of a regular single-cell access.
    pub fn single_cell_aggressor(&self, p: &CircuitParams, cc_mult: f64, cb_mult: f64) -> f64 {
        let cc = p.cc_ff * cc_mult;
        let cb = p.cb_ff() * cb_mult;
        cc * p.half_vdd() / (cb + cc)
    }

    /// Aggressor deviation of an Ambit TRA whose three cells all store '1'
    /// ("strong 1" neighbors, the paper's worst aggressor).
    pub fn tra_aggressor(&self, p: &CircuitParams, cc_mult: f64, cb_mult: f64) -> f64 {
        let cc = p.cc_ff * cc_mult;
        let cb = p.cb_ff() * cb_mult;
        3.0 * cc * p.half_vdd() / (cb + 3.0 * cc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn nominal_sample_is_identity() {
        let s = VariationSample::nominal();
        assert_eq!(s.cc_mult, [1.0; 3]);
        assert_eq!(s.sa_offset_v, 0.0);
    }

    #[test]
    fn zero_sigma_draws_are_nominal() {
        let p = CircuitParams::default();
        let s = VariationSample::draw(&mut rng(), PvMode::Random, 0.0, &p);
        assert!((s.cc_mult[0] - 1.0).abs() < 1e-12);
        assert_eq!(s.sa_offset_v, 0.0);
    }

    #[test]
    fn random_mode_cells_differ_systematic_match() {
        let p = CircuitParams::default();
        let mut r = rng();
        let rand = VariationSample::draw(&mut r, PvMode::Random, 0.1, &p);
        assert!(rand.cc_mult[0] != rand.cc_mult[1] || rand.cc_mult[1] != rand.cc_mult[2]);
        let sys = VariationSample::draw(&mut r, PvMode::Systematic, 0.1, &p);
        assert_eq!(sys.cc_mult[0], sys.cc_mult[1]);
        assert_eq!(sys.cc_mult[1], sys.cc_mult[2]);
    }

    #[test]
    fn systematic_mismatch_is_suppressed() {
        let p = CircuitParams::default();
        let mut r = rng();
        let n = 2000;
        let mean_abs = |mode: PvMode, r: &mut SmallRng| -> f64 {
            (0..n).map(|_| VariationSample::draw(r, mode, 0.05, &p).sa_offset_v.abs()).sum::<f64>()
                / n as f64
        };
        let rnd = mean_abs(PvMode::Random, &mut r);
        let sys = mean_abs(PvMode::Systematic, &mut r);
        assert!(sys < rnd * 0.5, "systematic {sys} !< half of random {rnd}");
    }

    #[test]
    fn sigma_scales_offsets() {
        let p = CircuitParams::default();
        let mut r = rng();
        let n = 4000;
        let spread = |sigma: f64, r: &mut SmallRng| -> f64 {
            (0..n)
                .map(|_| VariationSample::draw(r, PvMode::Random, sigma, &p).sa_offset_v.abs())
                .sum::<f64>()
                / n as f64
        };
        let small = spread(0.02, &mut r);
        let large = spread(0.08, &mut r);
        assert!(large > small * 2.5, "offset must scale with sigma: {small} vs {large}");
    }

    #[test]
    fn tra_aggressor_swings_harder_than_single_cell() {
        let p = CircuitParams::default();
        let c = CouplingModel::paper_default();
        let single = c.single_cell_aggressor(&p, 1.0, 1.0);
        let tra = c.tra_aggressor(&p, 1.0, 1.0);
        assert!(tra > 1.5 * single, "tra {tra} vs single {single}");
    }

    #[test]
    fn victim_noise_is_proportional() {
        let c = CouplingModel { ratio: 0.15 };
        assert!((c.victim_noise(0.2) - 0.03).abs() < 1e-12);
    }

    /// Both Box-Muller deviates must behave like standard normals — the
    /// sine deviate is consumed now, not discarded.
    #[test]
    fn box_muller_pair_components_are_standard_normal() {
        let mut r = rng();
        let n = 20_000;
        let (mut sum, mut sq) = ([0.0f64; 2], [0.0f64; 2]);
        for _ in 0..n {
            let (a, b) = box_muller_pair(&mut r);
            for (i, g) in [a, b].into_iter().enumerate() {
                sum[i] += g;
                sq[i] += g * g;
            }
        }
        for i in 0..2 {
            let mean = sum[i] / n as f64;
            let var = sq[i] / n as f64 - mean * mean;
            assert!(mean.abs() < 0.03, "component {i} mean {mean}");
            assert!((var - 1.0).abs() < 0.05, "component {i} variance {var}");
        }
    }

    /// A trial consumes exactly 6 (random) / 4 (systematic) uniforms, so
    /// chunked replay stays aligned whatever the mode sequence.
    #[test]
    fn draw_costs_a_fixed_uniform_budget() {
        let p = CircuitParams::default();
        for (mode, uniforms) in [(PvMode::Random, 6), (PvMode::Systematic, 4)] {
            let mut a = rng();
            let mut b = a.clone();
            let _ = VariationSample::draw(&mut a, mode, 0.1, &p);
            for _ in 0..uniforms {
                let _: f64 = b.gen_range(0.0..1.0);
            }
            // Both generators are now at the same stream position.
            assert_eq!(
                VariationSample::draw(&mut a, mode, 0.1, &p),
                VariationSample::draw(&mut b, mode, 0.1, &p),
                "{mode:?} must cost exactly {uniforms} uniforms per trial"
            );
        }
    }

    #[test]
    fn pv_mode_ids_are_distinct() {
        assert_ne!(PvMode::Random.id(), PvMode::Systematic.id());
    }
}
