//! Discrete-time simulation of one open-bitline DRAM column.
//!
//! The column owns: a handful of 1T1C cells and one dual-contact cell (DCC)
//! on the bitline, the complementary reference bitline of the neighbor
//! subarray, a latch-type [`SenseAmp`](crate::sense_amp::SenseAmp) with
//! switchable rails, and a precharge unit with *split* EQ control (the
//! ELP2IM hardware change of Fig. 1(d)).
//!
//! Charge sharing is instantaneous (capacitor divider); everything else is
//! first-order RC relaxation stepped at `dt`. This reproduces the waveform
//! shapes of Fig. 10 and, with variation injected, the sensing-margin
//! failures behind Fig. 11.

use crate::params::CircuitParams;
use crate::phase::{Phase, Side};
use crate::sense_amp::{Rails, SenseAmp};
use crate::waveform::{Sample, Waveform};

/// A cell access port.
///
/// Regular cells connect to the bitline; the dual-contact cell (DCC) has a
/// second transistor to the complementary bitline, which is how NOT is
/// implemented (same design as Ambit's DCC, §2.2.2 / Fig. 2(c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellPort {
    /// Regular cell `i` via the bitline.
    Normal(usize),
    /// The DCC through its true (bitline) port.
    DccTrue,
    /// The DCC through its complement (bitline-bar) port.
    DccBar,
}

impl CellPort {
    fn side(self) -> Side {
        match self {
            CellPort::Normal(_) | CellPort::DccTrue => Side::Bl,
            CellPort::DccBar => Side::BlBar,
        }
    }
}

/// Outcome of a sense operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenseOutcome {
    /// Logic value latched on the bitline side (row-buffer content).
    pub bit: bool,
    /// Differential seen by the SA at decision time (V, signed toward the
    /// decision actually taken; negative means the decision contradicted
    /// the raw differential because of offset).
    pub margin_v: f64,
}

/// One simulated DRAM column.
#[derive(Debug, Clone)]
pub struct Column {
    p: CircuitParams,
    cell_v: Vec<f64>,
    cell_c: Vec<f64>,
    dcc_v: f64,
    dcc_c: f64,
    v_bl: f64,
    v_blb: f64,
    sa: SenseAmp,
    open: Vec<CellPort>,
    t_ns: f64,
    wave: Waveform,
    recording: bool,
    /// The PU's Vdd/2 source level (may mismatch the SA-regulated level).
    pub pu_half_v: f64,
    /// The SA's Vdd/2 rail level during pseudo-precharge.
    pub sa_half_v: f64,
    /// Side currently cut off from the SA by the isolation transistor
    /// (row-buffer decoupling, §4.2.1).
    isolated_side: Option<Side>,
}

/// Number of regular cells a test column carries.
pub const CELLS_PER_COLUMN: usize = 8;

impl Column {
    /// Creates a column with [`CELLS_PER_COLUMN`] discharged cells, a
    /// discharged DCC, and everything precharged to Vdd/2.
    pub fn new(params: CircuitParams) -> Self {
        params.validate();
        let half = params.half_vdd();
        let cc = params.cc_ff;
        Column {
            cell_v: vec![0.0; CELLS_PER_COLUMN],
            cell_c: vec![cc; CELLS_PER_COLUMN],
            dcc_v: 0.0,
            dcc_c: cc,
            v_bl: half,
            v_blb: half,
            sa: SenseAmp::new(params.vdd),
            open: Vec::new(),
            t_ns: 0.0,
            wave: Waveform::new(),
            recording: false,
            pu_half_v: half,
            sa_half_v: half,
            isolated_side: None,
            p: params,
        }
    }

    /// The parameter set in use.
    pub fn params(&self) -> &CircuitParams {
        &self.p
    }

    /// Enables waveform recording.
    pub fn record(&mut self) {
        self.recording = true;
    }

    /// The recorded waveform so far.
    pub fn waveform(&self) -> &Waveform {
        &self.wave
    }

    /// Current simulation time (ns).
    pub fn now_ns(&self) -> f64 {
        self.t_ns
    }

    /// Current bitline voltage.
    pub fn v_bl(&self) -> f64 {
        self.v_bl
    }

    /// Current complementary-bitline voltage.
    pub fn v_blb(&self) -> f64 {
        self.v_blb
    }

    /// Sets the SA input-referred offset (process variation).
    pub fn set_sa_offset(&mut self, offset_v: f64) {
        self.sa.offset_v = offset_v;
    }

    /// Overrides one cell's capacitance (process variation).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `c_ff` is not positive.
    pub fn set_cell_capacitance(&mut self, i: usize, c_ff: f64) {
        assert!(c_ff > 0.0, "capacitance must be positive");
        self.cell_c[i] = c_ff;
    }

    /// Writes a full-rail value into cell `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= CELLS_PER_COLUMN`.
    pub fn write_cell(&mut self, i: usize, bit: bool) {
        self.cell_v[i] = if bit { self.p.vdd } else { 0.0 };
    }

    /// Writes a full-rail value into the DCC.
    pub fn write_dcc(&mut self, bit: bool) {
        self.dcc_v = if bit { self.p.vdd } else { 0.0 };
    }

    /// Reads back the stored logic value of cell `i` (no disturbance).
    pub fn cell_bit(&self, i: usize) -> bool {
        self.cell_v[i] > self.p.half_vdd()
    }

    /// Stored cell voltage (for charge-retention assertions in tests).
    pub fn cell_voltage(&self, i: usize) -> f64 {
        self.cell_v[i]
    }

    /// Reads back the DCC's stored logic value.
    pub fn dcc_bit(&self) -> bool {
        self.dcc_v > self.p.half_vdd()
    }

    /// Injects an additive disturbance onto one bitline (coupling noise).
    pub fn disturb(&mut self, side: Side, dv: f64) {
        match side {
            Side::Bl => self.v_bl += dv,
            Side::BlBar => self.v_blb += dv,
        }
    }

    fn record_sample(&mut self, phase: Phase) {
        if self.recording {
            self.wave.push(Sample { t_ns: self.t_ns, v_bl: self.v_bl, v_blb: self.v_blb, phase });
        }
    }

    fn relax(v: f64, target: f64, dt: f64, tau: f64) -> f64 {
        v + (target - v) * (1.0 - (-dt / tau).exp())
    }

    /// Advances the state by `duration` ns under the current drive
    /// configuration, labeling samples with `phase`.
    fn run(&mut self, duration: f64, phase: Phase, pu_bl: bool, pu_blb: bool) {
        let dt = self.p.dt_ns;
        let steps = (duration / dt).ceil().max(1.0) as usize;
        for _ in 0..steps {
            // Sense-amplifier drive (skipping any isolated side).
            if let Some((bl_t, blb_t)) = self.sa.drive_targets() {
                let full_span = self.p.vdd * 0.95;
                let tau = if self.sa.rails().span() < full_span {
                    self.p.tau_sa_half_supply_ns()
                } else {
                    self.p.tau_sa_ns
                };
                if self.isolated_side != Some(Side::Bl) {
                    self.v_bl = Self::relax(self.v_bl, bl_t, dt, tau);
                }
                if self.isolated_side != Some(Side::BlBar) {
                    self.v_blb = Self::relax(self.v_blb, blb_t, dt, tau);
                }
            }
            // Precharge-unit drive (split EQ).
            if pu_bl {
                self.v_bl = Self::relax(self.v_bl, self.pu_half_v, dt, self.p.tau_pu_ns);
            }
            if pu_blb {
                self.v_blb = Self::relax(self.v_blb, self.pu_half_v, dt, self.p.tau_pu_ns);
            }
            // Open cells follow their bitline (restore path).
            for k in 0..self.open.len() {
                let port = self.open[k];
                let line = match port.side() {
                    Side::Bl => self.v_bl,
                    Side::BlBar => self.v_blb,
                };
                match port {
                    CellPort::Normal(i) => {
                        self.cell_v[i] = Self::relax(self.cell_v[i], line, dt, self.p.tau_sa_ns);
                    }
                    CellPort::DccTrue | CellPort::DccBar => {
                        self.dcc_v = Self::relax(self.dcc_v, line, dt, self.p.tau_sa_ns);
                    }
                }
            }
            self.t_ns += dt;
            self.record_sample(phase);
        }
    }

    /// Full precharge: both bitlines equalized to Vdd/2, SA disabled.
    pub fn precharge(&mut self) {
        self.sa.disable();
        self.run(self.p.t_precharge_ns, Phase::Precharge, true, true);
    }

    /// Split-EQ precharge of a single side (the other keeps its value).
    pub fn half_precharge(&mut self, side: Side) {
        self.sa.disable();
        let (bl, blb) = match side {
            Side::Bl => (true, false),
            Side::BlBar => (false, true),
        };
        self.run(self.p.t_precharge_ns, Phase::HalfPrecharge, bl, blb);
    }

    fn share(&mut self, port: CellPort) {
        let cb = self.p.cb_ff();
        let (cv, cc) = match port {
            CellPort::Normal(i) => (self.cell_v[i], self.cell_c[i]),
            CellPort::DccTrue | CellPort::DccBar => (self.dcc_v, self.dcc_c),
        };
        match port.side() {
            Side::Bl => {
                let v = (cb * self.v_bl + cc * cv) / (cb + cc);
                self.v_bl = v;
                match port {
                    CellPort::Normal(i) => self.cell_v[i] = v,
                    _ => self.dcc_v = v,
                }
            }
            Side::BlBar => {
                let v = (cb * self.v_blb + cc * cv) / (cb + cc);
                self.v_blb = v;
                self.dcc_v = v;
            }
        }
        self.open.push(port);
    }

    /// Opens `ports` (raises the wordlines and charge-shares) without
    /// sensing; returns the bitline voltage deviation the share produced.
    /// Used by the array simulator to inject inter-bitline coupling
    /// between the access and sense phases.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty or mixes bitline sides.
    pub fn open_multi(&mut self, ports: &[CellPort]) -> f64 {
        assert!(!ports.is_empty(), "activate requires at least one wordline");
        let side = ports[0].side();
        assert!(
            ports.iter().all(|p| p.side() == side),
            "simultaneously activated cells must share a bitline"
        );
        let before = match side {
            Side::Bl => self.v_bl,
            Side::BlBar => self.v_blb,
        };
        for &port in ports {
            self.share(port);
        }
        self.record_sample(Phase::Access);
        match side {
            Side::Bl => self.v_bl - before,
            Side::BlBar => self.v_blb - before,
        }
    }

    /// Enables the SA (decision at this instant), senses, and optionally
    /// restores. Call after [`Column::open_multi`].
    pub fn sense(&mut self, restore: bool) -> SenseOutcome {
        let raw = self.v_bl - self.v_blb;
        self.sa.enable(Rails::full(self.p.vdd), self.v_bl, self.v_blb);
        let decided_bl_high = self.sa.high_side() == Some(Side::Bl);
        let margin = if decided_bl_high { raw } else { -raw };
        self.run(self.p.t_sense_ns, Phase::Sense, false, false);
        if restore {
            self.run(self.p.t_restore_ns, Phase::Restore, false, false);
        }
        SenseOutcome { bit: decided_bl_high, margin_v: margin }
    }

    /// Activates `ports` (simultaneous wordlines — more than one models
    /// Ambit's TRA), senses, and restores. Returns the sense outcome.
    ///
    /// The wordlines stay open afterwards; call
    /// [`Column::close_wordlines`] (a precharge also implies it in real
    /// hardware, but the simulator keeps the steps explicit).
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty or mixes bitline sides.
    pub fn activate_multi(&mut self, ports: &[CellPort], restore: bool) -> SenseOutcome {
        self.open_multi(ports);
        self.sense(restore)
    }

    /// Activates a single cell port (regular access).
    pub fn activate(&mut self, port: CellPort, restore: bool) -> SenseOutcome {
        self.activate_multi(&[port], restore)
    }

    /// Enters the pseudo-precharge state: shifts one SA rail to the
    /// (possibly mismatched) Vdd/2 level while the SA stays enabled.
    ///
    /// `lift_low_rail = true` lifts Gnd to Vdd/2 (a '1' on the bitline
    /// survives at Vdd — the regular-strategy OR / alternative-strategy AND
    /// configuration); `false` drops Vdd to Vdd/2 (a '0' survives at Gnd —
    /// regular AND / alternative OR).
    ///
    /// # Panics
    ///
    /// Panics if the SA is not enabled (no preceding activation).
    pub fn pseudo_precharge(&mut self, lift_low_rail: bool) {
        let rails = if lift_low_rail {
            Rails { hi: self.p.vdd, lo: self.sa_half_v }
        } else {
            Rails { hi: self.sa_half_v, lo: 0.0 }
        };
        self.sa.shift_rails(rails);
        let t_pp = self.p.t_precharge_ns * 1.3;
        self.run(t_pp, Phase::PseudoPrecharge, false, false);
    }

    /// Overlapped pseudo-precharge (the oAPP of §4.2.1): with the
    /// row-buffer-decoupling isolation transistor, the SA regulates one
    /// bitline while the precharge unit *simultaneously* drives the other
    /// side to Vdd/2 — saving the separate precharge phase.
    ///
    /// # Panics
    ///
    /// Panics if the SA is not enabled.
    pub fn pseudo_precharge_overlapped(&mut self, lift_low_rail: bool, precharge_side: Side) {
        let rails = if lift_low_rail {
            Rails { hi: self.p.vdd, lo: self.sa_half_v }
        } else {
            Rails { hi: self.sa_half_v, lo: 0.0 }
        };
        self.sa.shift_rails(rails);
        let (pu_bl, pu_blb) = match precharge_side {
            Side::Bl => (true, false),
            Side::BlBar => (false, true),
        };
        // The isolation transistor decouples the PU-driven side from the
        // SA latch, so both proceed together for the (longer)
        // pseudo-precharge duration.
        self.isolated_side = Some(precharge_side);
        let t_pp = self.p.t_precharge_ns * 1.3;
        self.run(t_pp, Phase::PseudoPrecharge, pu_bl, pu_blb);
        self.isolated_side = None;
        self.sa.disable();
    }

    /// Closes all open wordlines (cells keep their current voltage).
    pub fn close_wordlines(&mut self) {
        self.open.clear();
    }

    /// Disables the SA without precharging (bitlines float).
    pub fn disable_sa(&mut self) {
        self.sa.disable();
    }

    /// Lets the SA keep driving for `ns` (e.g. the second activate of an
    /// AAP copy, where the latched value restores into a new row).
    pub fn hold_latched(&mut self, ns: f64) {
        self.run(ns, Phase::Latched, false, false);
    }

    /// Opens `port` while the SA is latched and lets the SA restore the
    /// latched value into that cell — the second activation of an
    /// AAP/RowClone copy.
    ///
    /// # Panics
    ///
    /// Panics if the SA is not currently enabled (nothing to copy).
    pub fn attach(&mut self, port: CellPort) {
        assert!(
            self.sa.is_enabled(),
            "attach requires a latched sense amplifier (AAP second activate)"
        );
        self.share(port);
        self.run(self.p.t_restore_ns, Phase::Latched, false, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column_with(bits: &[bool]) -> Column {
        let mut c = Column::new(CircuitParams::long_bitline());
        for (i, &b) in bits.iter().enumerate() {
            c.write_cell(i, b);
        }
        c
    }

    #[test]
    fn regular_read_senses_stored_values() {
        for bit in [false, true] {
            let mut c = column_with(&[bit]);
            c.precharge();
            let out = c.activate(CellPort::Normal(0), true);
            assert_eq!(out.bit, bit, "read of {bit}");
            assert!(out.margin_v > 0.05, "healthy margin, got {}", out.margin_v);
            // Restore drove the cell back to full rail.
            let v = c.cell_voltage(0);
            if bit {
                assert!(v > 0.9 * c.params().vdd, "restored high, v = {v}");
            } else {
                assert!(v < 0.1 * c.params().vdd, "restored low, v = {v}");
            }
        }
    }

    #[test]
    fn charge_share_moves_bitline_the_right_way() {
        let mut c = column_with(&[true]);
        c.precharge();
        let before = c.v_bl();
        c.share(CellPort::Normal(0));
        assert!(c.v_bl() > before, "a '1' cell must lift the bitline");
    }

    #[test]
    fn pseudo_precharge_or_regulates_zero_to_half() {
        // Case 2 of Fig. 4: read '0', pseudo-precharge lifts bitline to
        // Vdd/2; the '1' case keeps Vdd.
        for bit in [false, true] {
            let mut c = column_with(&[bit]);
            c.precharge();
            c.activate(CellPort::Normal(0), true);
            c.close_wordlines();
            c.pseudo_precharge(true);
            let v = c.v_bl();
            let half = c.params().half_vdd();
            if bit {
                assert!(v > 0.95 * c.params().vdd, "'1' keeps Vdd, v = {v}");
            } else {
                assert!((v - half).abs() < 0.05, "'0' regulated to Vdd/2, v = {v}");
            }
        }
    }

    #[test]
    fn pseudo_precharge_and_regulates_one_to_half() {
        for bit in [false, true] {
            let mut c = column_with(&[bit]);
            c.precharge();
            c.activate(CellPort::Normal(0), true);
            c.close_wordlines();
            c.pseudo_precharge(false);
            let v = c.v_bl();
            let half = c.params().half_vdd();
            if bit {
                assert!((v - half).abs() < 0.05, "'1' regulated to Vdd/2, v = {v}");
            } else {
                assert!(v < 0.05, "'0' keeps Gnd, v = {v}");
            }
        }
    }

    #[test]
    fn half_precharge_leaves_other_side_untouched() {
        let mut c = column_with(&[true]);
        c.precharge();
        c.activate(CellPort::Normal(0), true);
        c.close_wordlines();
        c.pseudo_precharge(true);
        c.half_precharge(Side::BlBar);
        // bl keeps Vdd ('1'), blb pulled to Vdd/2.
        assert!(c.v_bl() > 0.9 * c.params().vdd);
        assert!((c.v_blb() - c.params().half_vdd()).abs() < 0.05);
    }

    #[test]
    fn dcc_bar_port_reads_complement() {
        for bit in [false, true] {
            let mut c = Column::new(CircuitParams::long_bitline());
            c.write_dcc(bit);
            c.precharge();
            let out = c.activate(CellPort::DccBar, true);
            assert_eq!(out.bit, !bit, "DCC-bar read of {bit}");
        }
    }

    #[test]
    fn tra_computes_majority() {
        // All 8 combinations of three cells: TRA result = majority.
        for pattern in 0u8..8 {
            let bits = [(pattern & 1) != 0, (pattern & 2) != 0, (pattern & 4) != 0];
            let mut c = column_with(&bits);
            c.precharge();
            let ports = [CellPort::Normal(0), CellPort::Normal(1), CellPort::Normal(2)];
            let out = c.activate_multi(&ports, true);
            let majority = bits.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(out.bit, majority, "TRA of {bits:?}");
        }
    }

    #[test]
    fn tra_margin_is_smaller_than_regular_read() {
        let mut c1 = column_with(&[true]);
        c1.precharge();
        let regular = c1.activate(CellPort::Normal(0), true).margin_v;

        // Inconsistent '101' TRA: weak 1.
        let mut c3 = column_with(&[true, false, true]);
        c3.precharge();
        let ports = [CellPort::Normal(0), CellPort::Normal(1), CellPort::Normal(2)];
        let tra = c3.activate_multi(&ports, true).margin_v;
        assert!(tra < regular, "TRA margin {tra} !< regular {regular}");
    }

    #[test]
    fn offset_flips_marginal_sense() {
        let mut c = column_with(&[true]);
        c.set_sa_offset(-0.5); // absurd offset forces an error
        c.precharge();
        let out = c.activate(CellPort::Normal(0), true);
        assert!(!out.bit, "large negative offset must flip the read");
        assert!(out.margin_v < 0.0);
    }

    #[test]
    #[should_panic(expected = "share a bitline")]
    fn mixed_side_multi_activation_panics() {
        let mut c = column_with(&[true]);
        c.activate_multi(&[CellPort::Normal(0), CellPort::DccBar], true);
    }

    #[test]
    fn waveform_records_phases() {
        let mut c = column_with(&[true]);
        c.record();
        c.precharge();
        c.activate(CellPort::Normal(0), true);
        c.close_wordlines();
        c.pseudo_precharge(true);
        let w = c.waveform();
        assert!(!w.is_empty());
        let phases: std::collections::HashSet<_> = w.samples().iter().map(|s| s.phase).collect();
        assert!(phases.contains(&Phase::Precharge));
        assert!(phases.contains(&Phase::Sense));
        assert!(phases.contains(&Phase::PseudoPrecharge));
    }
}
