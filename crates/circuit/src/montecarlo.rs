//! Monte-Carlo reliability analysis (Fig. 11 of the paper).
//!
//! For each design we identify the worst-case sensing event (§6.1.2) and
//! evaluate its margin under drawn process variation plus coupling noise:
//!
//! * **Regular DRAM** — a single-cell read of the alternating worst-case
//!   data pattern.
//! * **ELP2IM** — the second access of an APP-AP pair whose bitline was
//!   regulated to Vdd/2: the margin is eroded by the mismatch between the
//!   SA-delivered and PU-delivered Vdd/2 levels. The regular strategy also
//!   sees aggravated coupling from neighbor regulation swings; the
//!   complementary (alternative) strategy regulates bitline-bar in a
//!   different subarray and avoids it.
//! * **Ambit** — a TRA over inconsistent values ('101'/'010'): the "weak 1 /
//!   weak 0" charge share with mismatched cell capacitors, plus coupling
//!   from "strong" TRA aggressors.
//!
//! Margins are evaluated in closed form per trial (the RC dynamics do not
//! change the decision, which is latched at sense-enable), which keeps a
//! million-trial sweep fast. The [`crate::column`] stepping simulator
//! cross-validates the same scenarios in the integration tests.
//!
//! # Chunked parallel engine
//!
//! Every `(design, mode, sigma)` point is evaluated in fixed-size trial
//! chunks of [`CHUNK_TRIALS`]. Chunk `c` draws from its own RNG stream
//! seeded by [`chunk_key`] over the point's [`stream_key`] — a SplitMix64
//! mix of `{seed, design id, PV mode, sigma bits, chunk index}` — so the
//! trial sequence is a pure function of the configuration, never of the
//! host's thread schedule. Worker threads claim chunks from an atomic
//! cursor and the integer error counts merge commutatively, which makes
//! the result bit-identical at any thread count, including 1.
//!
//! On top of the chunk grid, [`SweepPoint`] reports Wilson score
//! confidence intervals, and an optional [`EarlyStop`] rule abandons a
//! point once the interval excludes a decision threshold. Early stop is
//! only consulted at fixed wave boundaries (every [`CHUNK_TRIALS`] ×
//! `WAVE_CHUNKS` trials), so adaptively-stopped results stay
//! deterministic too.

use crate::params::CircuitParams;
use crate::variation::{CouplingModel, PvMode, VariationSample};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Residual coupling amplification seen by ELP2IM's *regular* strategy
/// during the access after a pseudo-precharge (neighbor regulation swings).
const ELP2IM_REGULAR_COUPLING_FACTOR: f64 = 1.5;

/// Design under test for the reliability sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Commodity DRAM single-cell sensing.
    RegularDram,
    /// ELP2IM pseudo-precharge sensing.
    Elp2im {
        /// Use the §4.1 complementary strategy (regulate bitline-bar).
        alternative: bool,
    },
    /// Ambit triple-row activation.
    AmbitTra,
}

impl Design {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Design::RegularDram => "DRAM",
            Design::Elp2im { alternative: false } => "ELP2IM",
            Design::Elp2im { alternative: true } => "ELP2IM-alt",
            Design::AmbitTra => "Ambit",
        }
    }

    /// Stable per-design discriminant mixed into [`stream_key`].
    ///
    /// This is part of the RNG-stream identity: it must stay distinct per
    /// variant and must never be derived from presentation strings (the
    /// old `label().len()` seed gave any two designs with same-length
    /// labels — and every design across PV modes — correlated streams).
    pub fn id(self) -> u64 {
        match self {
            Design::RegularDram => 0,
            Design::Elp2im { alternative: false } => 1,
            Design::Elp2im { alternative: true } => 2,
            Design::AmbitTra => 3,
        }
    }
}

/// Trials per deterministic RNG chunk (the parallel work unit).
pub const CHUNK_TRIALS: u64 = 4096;

/// Chunks between two early-stop evaluations. A wave is the determinism
/// barrier: stopping decisions only look at whole waves, so the trial
/// count at which a point stops cannot depend on thread scheduling.
const WAVE_CHUNKS: u64 = 16;

/// Critical value of the reported 95 % Wilson intervals.
pub const WILSON_Z95: f64 = 1.959_963_984_540_054;

pub(crate) const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer (the `mix64` of Steele et al.'s splittable RNG).
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG-stream identity of one sweep point: the base seed with the design
/// discriminant ([`Design::id`]), PV mode ([`PvMode::id`]) and the raw
/// sigma bits absorbed through one SplitMix64 step each.
///
/// Proper integer mixing (rather than XOR of ad-hoc values) guarantees
/// distinct coordinates give decorrelated streams; a regression test
/// pins pairwise-distinct keys for every design × mode pair.
pub fn stream_key(seed: u64, design: Design, mode: PvMode, sigma: f64) -> u64 {
    let mut h = seed;
    for coord in [design.id(), mode.id(), sigma.to_bits()] {
        h = mix64(h.wrapping_add(GOLDEN_GAMMA).wrapping_add(coord));
    }
    h
}

/// Seed of chunk `chunk` within the stream identified by `point_key`.
pub fn chunk_key(point_key: u64, chunk: u64) -> u64 {
    mix64(point_key.wrapping_add(GOLDEN_GAMMA).wrapping_add(chunk))
}

/// Wilson score interval for `errors` successes out of `trials` Bernoulli
/// trials at critical value `z`, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn wilson_interval(errors: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "wilson_interval needs at least one trial");
    let n = trials as f64;
    let p = errors as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = p + z2 / (2.0 * n);
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    (((center - half) / denom).max(0.0), ((center + half) / denom).min(1.0))
}

/// Result of one Monte-Carlo sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Trials whose sensing margin came out ≤ 0.
    pub errors: u64,
    /// Trials actually run (less than configured when early-stopped).
    pub trials: u64,
    /// Point estimate `errors / trials`.
    pub rate: f64,
    /// 95 % Wilson score interval around [`rate`](Self::rate).
    pub wilson_ci: (f64, f64),
}

impl SweepPoint {
    fn from_counts(errors: u64, trials: u64) -> Self {
        SweepPoint {
            errors,
            trials,
            rate: errors as f64 / trials as f64,
            wilson_ci: wilson_interval(errors, trials, WILSON_Z95),
        }
    }
}

/// Adaptive early-stop rule: abandon a point once its Wilson interval at
/// critical value [`z`](Self::z) excludes [`threshold`](Self::threshold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Decision threshold (error-rate units) the interval must exclude.
    pub threshold: f64,
    /// Critical value of the stopping interval.
    pub z: f64,
}

impl EarlyStop {
    /// Stop once the 3-sigma (≈99.7 %) interval excludes `threshold`.
    pub fn at(threshold: f64) -> Self {
        EarlyStop { threshold, z: 3.0 }
    }

    fn decided(&self, errors: u64, trials: u64) -> bool {
        let (lo, hi) = wilson_interval(errors, trials, self.z);
        lo > self.threshold || hi < self.threshold
    }
}

/// Runs `trials` Bernoulli trials of `trial` over the chunk grid of
/// stream `point_key`, fanning chunks out over `threads` scoped worker
/// threads (`0` and `1` both mean serial).
///
/// `trial` receives the chunk's own [`SmallRng`] and must consume a fixed
/// number of draws per call (see
/// [`VariationSample::draw`](crate::variation::VariationSample::draw)).
/// The returned [`SweepPoint`] is bit-identical for any `threads`: chunk
/// seeds depend only on `(point_key, chunk index)` and the per-chunk
/// error counts merge by integer addition, which is exact and
/// order-independent. With `early_stop`, the point is abandoned at the
/// first wave boundary whose interval excludes the threshold.
///
/// This is the engine under [`MonteCarlo::error_rate_point`]; it is
/// public so tests can drive it with closed-form trial functions.
///
/// # Panics
///
/// Panics if `trials` is zero, or if a worker thread panics.
pub fn run_chunked<F>(
    trials: u64,
    threads: usize,
    point_key: u64,
    early_stop: Option<EarlyStop>,
    trial: F,
) -> SweepPoint
where
    F: Fn(&mut SmallRng) -> bool + Sync,
{
    assert!(trials > 0, "Monte-Carlo trial count must be positive");
    let threads = threads.max(1);
    let total_chunks = trials.div_ceil(CHUNK_TRIALS);
    let chunk_trials = |c: u64| CHUNK_TRIALS.min(trials - c * CHUNK_TRIALS);
    let run_chunk = |c: u64| -> u64 {
        let mut rng = SmallRng::seed_from_u64(chunk_key(point_key, c));
        (0..chunk_trials(c)).filter(|_| trial(&mut rng)).count() as u64
    };

    let mut errors = 0u64;
    let mut done = 0u64;
    let mut next = 0u64;
    while next < total_chunks {
        let wave_end = match early_stop {
            Some(_) => (next + WAVE_CHUNKS).min(total_chunks),
            None => total_chunks,
        };
        if threads == 1 {
            errors += (next..wave_end).map(run_chunk).sum::<u64>();
        } else {
            let cursor = AtomicU64::new(next);
            let worker = || {
                let mut local = 0u64;
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= wave_end {
                        break;
                    }
                    local += run_chunk(c);
                }
                local
            };
            errors += std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads.min((wave_end - next) as usize))
                    .map(|_| scope.spawn(worker))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("Monte-Carlo worker thread panicked"))
                    .sum::<u64>()
            });
        }
        done += (next..wave_end).map(chunk_trials).sum::<u64>();
        next = wave_end;
        if early_stop.is_some_and(|rule| rule.decided(errors, done)) {
            break;
        }
    }
    SweepPoint::from_counts(errors, done)
}

/// Monte-Carlo reliability experiment.
///
/// ```
/// use elp2im_circuit::montecarlo::{Design, MonteCarlo};
/// use elp2im_circuit::variation::PvMode;
///
/// let mc = MonteCarlo::paper_setup().with_trials(2_000);
/// let ambit = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.08);
/// let dram = mc.error_rate(Design::RegularDram, PvMode::Random, 0.08);
/// assert!(ambit >= dram);
/// // Identical configurations are bit-identical at any thread count.
/// let point = mc.with_threads(8).error_rate_point(Design::AmbitTra, PvMode::Random, 0.08);
/// assert_eq!(point.rate, ambit);
/// assert!(point.wilson_ci.0 <= point.rate && point.rate <= point.wilson_ci.1);
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Circuit parameters.
    pub params: CircuitParams,
    /// Coupling model; `None` disables coupling noise.
    pub coupling: Option<CouplingModel>,
    /// Trials per point (must be positive).
    pub trials: usize,
    /// RNG seed (experiments are reproducible).
    pub seed: u64,
    /// Worker threads per point; `0` means one per available core.
    /// Results do not depend on this (the chunk grid does not move).
    pub threads: usize,
    /// Optional adaptive early-stop rule.
    pub early_stop: Option<EarlyStop>,
}

impl MonteCarlo {
    /// The paper's setup: long bitlines, 15 % coupling, 100 k trials.
    pub fn paper_setup() -> Self {
        MonteCarlo {
            params: CircuitParams::long_bitline(),
            coupling: Some(CouplingModel::paper_default()),
            trials: 100_000,
            seed: 0xE1F2,
            threads: 0,
            early_stop: None,
        }
    }

    /// Overrides the trial count (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `trials` is zero — a zero-trial experiment has no
    /// defined error rate, so the degenerate configuration is rejected
    /// up front instead of silently reporting `0.0`.
    pub fn with_trials(mut self, trials: usize) -> Self {
        assert!(trials > 0, "MonteCarlo trial count must be positive");
        self.trials = trials;
        self
    }

    /// Overrides the worker-thread count (`0` = one per available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Installs an adaptive early-stop rule: points whose confidence
    /// interval excludes the rule's threshold finish early.
    pub fn with_early_stop(mut self, rule: EarlyStop) -> Self {
        self.early_stop = Some(rule);
        self
    }

    fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Worst-case sensing margin (V) of one drawn trial; ≤ 0 means a
    /// sensing error.
    pub fn trial_margin(&self, design: Design, v: &VariationSample) -> f64 {
        let p = &self.params;
        let half = p.half_vdd();
        let cb = p.cb_ff() * v.cb_mult;
        let cc0 = p.cc_ff * v.cc_mult[0];
        let coupling = |aggr: f64| self.coupling.map_or(0.0, |c| c.victim_noise(aggr));
        match design {
            Design::RegularDram => {
                // Read '1' against '0'-reading neighbors.
                let dev = cc0 * (p.vdd - half) / (cb + cc0);
                let aggr = self
                    .coupling
                    .map_or(0.0, |c| c.single_cell_aggressor(p, v.cc_mult[1], v.cb_mult));
                dev + v.sa_offset_v - coupling(aggr)
            }
            Design::Elp2im { alternative } => {
                // Second access of APP-AP after a Neutral regulation:
                // bitline at (half + mismatch) from the SA path, reference
                // precharged to half by the PU. Worst read: a '0' cell
                // fighting a positive mismatch and a positive offset.
                let v_bl = (cb * (half + v.half_mismatch_v)) / (cb + cc0);
                let dev = half - v_bl; // margin toward reading '0'
                let aggr_base = self
                    .coupling
                    .map_or(0.0, |c| c.single_cell_aggressor(p, v.cc_mult[1], v.cb_mult));
                let noise = if alternative {
                    // Bitline-bar lives in a different subarray (§6.1.2).
                    0.0
                } else {
                    coupling(aggr_base * ELP2IM_REGULAR_COUPLING_FACTOR)
                };
                dev - v.sa_offset_v - noise
            }
            Design::AmbitTra => {
                // Inconsistent TRA '101': weak 1 whose margin shrinks when
                // the two '1' cells are small and the '0' cell is large.
                let cc1 = p.cc_ff * v.cc_mult[0];
                let cc2 = p.cc_ff * v.cc_mult[1];
                let cc3 = p.cc_ff * v.cc_mult[2];
                let dev = half * (cc1 + cc3 - cc2) / (cb + cc1 + cc2 + cc3);
                let aggr =
                    self.coupling.map_or(0.0, |c| c.tra_aggressor(p, v.cc_mult[1], v.cb_mult));
                dev + v.sa_offset_v - coupling(aggr)
            }
        }
    }

    /// Full statistics of `design` at PV strength `sigma` under `mode`:
    /// error count, trials run, rate, and 95 % Wilson interval.
    ///
    /// Chunks fan out over [`threads`](Self::threads) worker threads; the
    /// result is bit-identical for any thread count.
    ///
    /// # Panics
    ///
    /// Panics if [`trials`](Self::trials) is zero.
    pub fn error_rate_point(&self, design: Design, mode: PvMode, sigma: f64) -> SweepPoint {
        let key = stream_key(self.seed, design, mode, sigma);
        run_chunked(self.trials as u64, self.resolved_threads(), key, self.early_stop, |rng| {
            let v = VariationSample::draw(rng, mode, sigma, &self.params);
            self.trial_margin(design, &v) <= 0.0
        })
    }

    /// Error rate of `design` at PV strength `sigma` under `mode`.
    ///
    /// # Panics
    ///
    /// Panics if [`trials`](Self::trials) is zero.
    pub fn error_rate(&self, design: Design, mode: PvMode, sigma: f64) -> f64 {
        self.error_rate_point(design, mode, sigma).rate
    }

    /// Sweeps PV strength, returning each point's full statistics.
    pub fn sweep_points(
        &self,
        design: Design,
        mode: PvMode,
        sigmas: &[f64],
    ) -> Vec<(f64, SweepPoint)> {
        sigmas.iter().map(|&s| (s, self.error_rate_point(design, mode, s))).collect()
    }

    /// Sweeps PV strength and returns `(sigma, error_rate)` pairs.
    pub fn sweep(&self, design: Design, mode: PvMode, sigmas: &[f64]) -> Vec<(f64, f64)> {
        self.sweep_points(design, mode, sigmas).into_iter().map(|(s, p)| (s, p.rate)).collect()
    }
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo::paper_setup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MonteCarlo {
        MonteCarlo::paper_setup().with_trials(20_000)
    }

    #[test]
    fn nominal_margins_are_positive_for_all_designs() {
        let mc = mc();
        let v = VariationSample::nominal();
        for d in [
            Design::RegularDram,
            Design::Elp2im { alternative: false },
            Design::Elp2im { alternative: true },
            Design::AmbitTra,
        ] {
            assert!(mc.trial_margin(d, &v) > 0.0, "{} must work nominally", d.label());
        }
    }

    /// Fig. 11(a): under random PV the ordering is
    /// DRAM < ELP2IM < Ambit (error rate).
    #[test]
    fn fig11_random_pv_ordering() {
        let mc = mc();
        let sigma = 0.10;
        let dram = mc.error_rate(Design::RegularDram, PvMode::Random, sigma);
        let elp = mc.error_rate(Design::Elp2im { alternative: false }, PvMode::Random, sigma);
        let ambit = mc.error_rate(Design::AmbitTra, PvMode::Random, sigma);
        assert!(ambit > elp, "ambit {ambit} !> elp2im {elp}");
        assert!(elp >= dram, "elp2im {elp} !>= dram {dram}");
        assert!(ambit > 0.0, "ambit must show errors at sigma 0.10");
    }

    /// Fig. 11(b): systematic PV suppresses Ambit's TRA mismatch errors.
    #[test]
    fn fig11_systematic_pv_suppresses_ambit() {
        let mc = mc();
        let sigma = 0.10;
        let rand = mc.error_rate(Design::AmbitTra, PvMode::Random, sigma);
        let sys = mc.error_rate(Design::AmbitTra, PvMode::Systematic, sigma);
        assert!(sys < rand, "systematic {sys} !< random {rand}");
    }

    #[test]
    fn error_rate_increases_with_sigma() {
        let mc = mc();
        let lo = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.02);
        let hi = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.12);
        assert!(hi > lo, "hi {hi} !> lo {lo}");
    }

    #[test]
    fn alternative_strategy_is_at_least_as_reliable() {
        let mc = mc();
        let reg = mc.error_rate(Design::Elp2im { alternative: false }, PvMode::Random, 0.12);
        let alt = mc.error_rate(Design::Elp2im { alternative: true }, PvMode::Random, 0.12);
        assert!(alt <= reg, "alt {alt} !<= regular {reg}");
    }

    #[test]
    fn zero_sigma_zero_errors() {
        let mc = mc().with_trials(5_000);
        for d in [Design::RegularDram, Design::Elp2im { alternative: false }, Design::AmbitTra] {
            assert_eq!(mc.error_rate(d, PvMode::Random, 0.0), 0.0, "{}", d.label());
        }
    }

    #[test]
    fn sweep_returns_requested_points() {
        let mc = mc().with_trials(1_000);
        let pts = mc.sweep(Design::RegularDram, PvMode::Random, &[0.02, 0.05, 0.08]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].0, 0.02);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let a = mc().with_trials(5_000).error_rate(Design::AmbitTra, PvMode::Random, 0.1);
        let b = mc().with_trials(5_000).error_rate(Design::AmbitTra, PvMode::Random, 0.1);
        assert_eq!(a, b);
    }

    const ALL_DESIGNS: [Design; 4] = [
        Design::RegularDram,
        Design::Elp2im { alternative: false },
        Design::Elp2im { alternative: true },
        Design::AmbitTra,
    ];

    /// Regression for the `label().len()` seed: every design × PV-mode
    /// combination must own a distinct RNG stream at equal sigma, so no
    /// two Fig. 11 curves can silently correlate. Checked at the key
    /// level *and* on the actual drawn trial sequences.
    #[test]
    fn designs_and_modes_draw_pairwise_distinct_streams() {
        let sigma = 0.08;
        let p = CircuitParams::long_bitline();
        let mut streams: Vec<(String, u64, Vec<VariationSample>)> = Vec::new();
        for mode in [PvMode::Random, PvMode::Systematic] {
            for d in ALL_DESIGNS {
                let key = stream_key(0xE1F2, d, mode, sigma);
                let mut rng = SmallRng::seed_from_u64(chunk_key(key, 0));
                let draws: Vec<VariationSample> =
                    (0..4).map(|_| VariationSample::draw(&mut rng, mode, sigma, &p)).collect();
                streams.push((format!("{}/{mode:?}", d.label()), key, draws));
            }
        }
        for i in 0..streams.len() {
            for j in i + 1..streams.len() {
                assert_ne!(
                    streams[i].1, streams[j].1,
                    "stream keys collide: {} vs {}",
                    streams[i].0, streams[j].0
                );
                assert_ne!(
                    streams[i].2, streams[j].2,
                    "trial streams collide: {} vs {}",
                    streams[i].0, streams[j].0
                );
            }
        }
    }

    #[test]
    fn design_ids_are_stable_and_distinct() {
        let ids: Vec<u64> = ALL_DESIGNS.iter().map(|d| d.id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "trial count must be positive")]
    fn zero_trials_rejected_by_builder() {
        let _ = MonteCarlo::paper_setup().with_trials(0);
    }

    #[test]
    #[should_panic(expected = "trial count must be positive")]
    fn zero_trials_rejected_at_run_time() {
        // Field access bypasses the builder; the engine still refuses.
        let mut mc = MonteCarlo::paper_setup();
        mc.trials = 0;
        let _ = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.1);
    }

    #[test]
    fn parallel_point_is_bit_identical_to_serial() {
        let mc = mc().with_trials(3 * CHUNK_TRIALS as usize + 17);
        let serial =
            mc.clone().with_threads(1).error_rate_point(Design::AmbitTra, PvMode::Random, 0.1);
        for threads in [2, 4, 8] {
            let par = mc.clone().with_threads(threads).error_rate_point(
                Design::AmbitTra,
                PvMode::Random,
                0.1,
            );
            assert_eq!(serial, par, "threads {threads}");
        }
        assert_eq!(serial.trials, 3 * CHUNK_TRIALS + 17);
    }

    #[test]
    fn early_stop_finishes_early_and_stays_deterministic() {
        // True error rate ≪ 0.5: the 3-sigma interval excludes the
        // threshold after the first wave, long before 800k trials.
        let base = mc().with_trials(800_000).with_early_stop(EarlyStop::at(0.5));
        let a =
            base.clone().with_threads(1).error_rate_point(Design::AmbitTra, PvMode::Random, 0.1);
        let b =
            base.clone().with_threads(8).error_rate_point(Design::AmbitTra, PvMode::Random, 0.1);
        assert_eq!(a, b);
        assert!(a.trials < 800_000, "stopped after {} trials", a.trials);
        assert_eq!(a.trials % CHUNK_TRIALS, 0, "stops on whole waves");
    }

    #[test]
    fn wilson_interval_matches_hand_computed_case() {
        // k = 10, n = 100, z = 1.96: the textbook Wilson interval.
        let (lo, hi) = wilson_interval(10, 100, 1.96);
        assert!((lo - 0.0552).abs() < 5e-4, "lo {lo}");
        assert!((hi - 0.1744).abs() < 5e-4, "hi {hi}");
    }

    #[test]
    fn wilson_interval_edge_cases() {
        let (lo, hi) = wilson_interval(0, 1000, WILSON_Z95);
        assert!(lo < 1e-12, "lo {lo}");
        assert!(hi > 0.0 && hi < 0.01, "hi {hi}");
        let (lo, hi) = wilson_interval(1000, 1000, WILSON_Z95);
        assert!(lo > 0.99 && lo < 1.0, "lo {lo}");
        assert!(hi > 1.0 - 1e-12, "hi {hi}");
    }

    #[test]
    fn sweep_point_brackets_its_rate() {
        let p = mc().with_trials(20_000).error_rate_point(Design::AmbitTra, PvMode::Random, 0.1);
        assert!(p.wilson_ci.0 <= p.rate && p.rate <= p.wilson_ci.1);
        assert_eq!(p.rate, p.errors as f64 / p.trials as f64);
    }
}
