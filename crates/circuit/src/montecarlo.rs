//! Monte-Carlo reliability analysis (Fig. 11 of the paper).
//!
//! For each design we identify the worst-case sensing event (§6.1.2) and
//! evaluate its margin under drawn process variation plus coupling noise:
//!
//! * **Regular DRAM** — a single-cell read of the alternating worst-case
//!   data pattern.
//! * **ELP2IM** — the second access of an APP-AP pair whose bitline was
//!   regulated to Vdd/2: the margin is eroded by the mismatch between the
//!   SA-delivered and PU-delivered Vdd/2 levels. The regular strategy also
//!   sees aggravated coupling from neighbor regulation swings; the
//!   complementary (alternative) strategy regulates bitline-bar in a
//!   different subarray and avoids it.
//! * **Ambit** — a TRA over inconsistent values ('101'/'010'): the "weak 1 /
//!   weak 0" charge share with mismatched cell capacitors, plus coupling
//!   from "strong" TRA aggressors.
//!
//! Margins are evaluated in closed form per trial (the RC dynamics do not
//! change the decision, which is latched at sense-enable), which keeps a
//! million-trial sweep fast. The [`crate::column`] stepping simulator
//! cross-validates the same scenarios in the integration tests.

use crate::params::CircuitParams;
use crate::variation::{CouplingModel, PvMode, VariationSample};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Residual coupling amplification seen by ELP2IM's *regular* strategy
/// during the access after a pseudo-precharge (neighbor regulation swings).
const ELP2IM_REGULAR_COUPLING_FACTOR: f64 = 1.5;

/// Design under test for the reliability sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Commodity DRAM single-cell sensing.
    RegularDram,
    /// ELP2IM pseudo-precharge sensing.
    Elp2im {
        /// Use the §4.1 complementary strategy (regulate bitline-bar).
        alternative: bool,
    },
    /// Ambit triple-row activation.
    AmbitTra,
}

impl Design {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Design::RegularDram => "DRAM",
            Design::Elp2im { alternative: false } => "ELP2IM",
            Design::Elp2im { alternative: true } => "ELP2IM-alt",
            Design::AmbitTra => "Ambit",
        }
    }
}

/// Monte-Carlo reliability experiment.
///
/// ```
/// use elp2im_circuit::montecarlo::{Design, MonteCarlo};
/// use elp2im_circuit::variation::PvMode;
///
/// let mc = MonteCarlo::paper_setup().with_trials(2_000);
/// let ambit = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.08);
/// let dram = mc.error_rate(Design::RegularDram, PvMode::Random, 0.08);
/// assert!(ambit >= dram);
/// ```
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Circuit parameters.
    pub params: CircuitParams,
    /// Coupling model; `None` disables coupling noise.
    pub coupling: Option<CouplingModel>,
    /// Trials per point.
    pub trials: usize,
    /// RNG seed (experiments are reproducible).
    pub seed: u64,
}

impl MonteCarlo {
    /// The paper's setup: long bitlines, 15 % coupling, 100 k trials.
    pub fn paper_setup() -> Self {
        MonteCarlo {
            params: CircuitParams::long_bitline(),
            coupling: Some(CouplingModel::paper_default()),
            trials: 100_000,
            seed: 0xE1F2,
        }
    }

    /// Overrides the trial count (builder style).
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Worst-case sensing margin (V) of one drawn trial; ≤ 0 means a
    /// sensing error.
    pub fn trial_margin(&self, design: Design, v: &VariationSample) -> f64 {
        let p = &self.params;
        let half = p.half_vdd();
        let cb = p.cb_ff() * v.cb_mult;
        let cc0 = p.cc_ff * v.cc_mult[0];
        let coupling = |aggr: f64| self.coupling.map_or(0.0, |c| c.victim_noise(aggr));
        match design {
            Design::RegularDram => {
                // Read '1' against '0'-reading neighbors.
                let dev = cc0 * (p.vdd - half) / (cb + cc0);
                let aggr = self
                    .coupling
                    .map_or(0.0, |c| c.single_cell_aggressor(p, v.cc_mult[1], v.cb_mult));
                dev + v.sa_offset_v - coupling(aggr)
            }
            Design::Elp2im { alternative } => {
                // Second access of APP-AP after a Neutral regulation:
                // bitline at (half + mismatch) from the SA path, reference
                // precharged to half by the PU. Worst read: a '0' cell
                // fighting a positive mismatch and a positive offset.
                let v_bl = (cb * (half + v.half_mismatch_v)) / (cb + cc0);
                let dev = half - v_bl; // margin toward reading '0'
                let aggr_base = self
                    .coupling
                    .map_or(0.0, |c| c.single_cell_aggressor(p, v.cc_mult[1], v.cb_mult));
                let noise = if alternative {
                    // Bitline-bar lives in a different subarray (§6.1.2).
                    0.0
                } else {
                    coupling(aggr_base * ELP2IM_REGULAR_COUPLING_FACTOR)
                };
                dev - v.sa_offset_v - noise
            }
            Design::AmbitTra => {
                // Inconsistent TRA '101': weak 1 whose margin shrinks when
                // the two '1' cells are small and the '0' cell is large.
                let cc1 = p.cc_ff * v.cc_mult[0];
                let cc2 = p.cc_ff * v.cc_mult[1];
                let cc3 = p.cc_ff * v.cc_mult[2];
                let dev = half * (cc1 + cc3 - cc2) / (cb + cc1 + cc2 + cc3);
                let aggr =
                    self.coupling.map_or(0.0, |c| c.tra_aggressor(p, v.cc_mult[1], v.cb_mult));
                dev + v.sa_offset_v - coupling(aggr)
            }
        }
    }

    /// Error rate of `design` at PV strength `sigma` under `mode`.
    pub fn error_rate(&self, design: Design, mode: PvMode, sigma: f64) -> f64 {
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ (sigma.to_bits().rotate_left(17)) ^ (design.label().len() as u64),
        );
        let mut errors = 0usize;
        for _ in 0..self.trials {
            let v = VariationSample::draw(&mut rng, mode, sigma, &self.params);
            if self.trial_margin(design, &v) <= 0.0 {
                errors += 1;
            }
        }
        errors as f64 / self.trials.max(1) as f64
    }

    /// Sweeps PV strength and returns `(sigma, error_rate)` pairs.
    pub fn sweep(&self, design: Design, mode: PvMode, sigmas: &[f64]) -> Vec<(f64, f64)> {
        sigmas.iter().map(|&s| (s, self.error_rate(design, mode, s))).collect()
    }
}

impl Default for MonteCarlo {
    fn default() -> Self {
        MonteCarlo::paper_setup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MonteCarlo {
        MonteCarlo::paper_setup().with_trials(20_000)
    }

    #[test]
    fn nominal_margins_are_positive_for_all_designs() {
        let mc = mc();
        let v = VariationSample::nominal();
        for d in [
            Design::RegularDram,
            Design::Elp2im { alternative: false },
            Design::Elp2im { alternative: true },
            Design::AmbitTra,
        ] {
            assert!(mc.trial_margin(d, &v) > 0.0, "{} must work nominally", d.label());
        }
    }

    /// Fig. 11(a): under random PV the ordering is
    /// DRAM < ELP2IM < Ambit (error rate).
    #[test]
    fn fig11_random_pv_ordering() {
        let mc = mc();
        let sigma = 0.10;
        let dram = mc.error_rate(Design::RegularDram, PvMode::Random, sigma);
        let elp = mc.error_rate(Design::Elp2im { alternative: false }, PvMode::Random, sigma);
        let ambit = mc.error_rate(Design::AmbitTra, PvMode::Random, sigma);
        assert!(ambit > elp, "ambit {ambit} !> elp2im {elp}");
        assert!(elp >= dram, "elp2im {elp} !>= dram {dram}");
        assert!(ambit > 0.0, "ambit must show errors at sigma 0.10");
    }

    /// Fig. 11(b): systematic PV suppresses Ambit's TRA mismatch errors.
    #[test]
    fn fig11_systematic_pv_suppresses_ambit() {
        let mc = mc();
        let sigma = 0.10;
        let rand = mc.error_rate(Design::AmbitTra, PvMode::Random, sigma);
        let sys = mc.error_rate(Design::AmbitTra, PvMode::Systematic, sigma);
        assert!(sys < rand, "systematic {sys} !< random {rand}");
    }

    #[test]
    fn error_rate_increases_with_sigma() {
        let mc = mc();
        let lo = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.02);
        let hi = mc.error_rate(Design::AmbitTra, PvMode::Random, 0.12);
        assert!(hi > lo, "hi {hi} !> lo {lo}");
    }

    #[test]
    fn alternative_strategy_is_at_least_as_reliable() {
        let mc = mc();
        let reg = mc.error_rate(Design::Elp2im { alternative: false }, PvMode::Random, 0.12);
        let alt = mc.error_rate(Design::Elp2im { alternative: true }, PvMode::Random, 0.12);
        assert!(alt <= reg, "alt {alt} !<= regular {reg}");
    }

    #[test]
    fn zero_sigma_zero_errors() {
        let mc = mc().with_trials(5_000);
        for d in [Design::RegularDram, Design::Elp2im { alternative: false }, Design::AmbitTra] {
            assert_eq!(mc.error_rate(d, PvMode::Random, 0.0), 0.0, "{}", d.label());
        }
    }

    #[test]
    fn sweep_returns_requested_points() {
        let mc = mc().with_trials(1_000);
        let pts = mc.sweep(Design::RegularDram, PvMode::Random, &[0.02, 0.05, 0.08]);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].0, 0.02);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let a = mc().with_trials(5_000).error_rate(Design::AmbitTra, PvMode::Random, 0.1);
        let b = mc().with_trials(5_000).error_rate(Design::AmbitTra, PvMode::Random, 0.1);
        assert_eq!(a, b);
    }
}
