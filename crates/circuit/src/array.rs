//! A row of coupled columns: explicit aggressor/victim bitline coupling.
//!
//! The Monte-Carlo model in [`crate::montecarlo`] treats coupling in
//! closed form (victim noise = ratio × aggressor deviation); this module
//! simulates it structurally — N columns of one open-bitline subarray,
//! each capacitively coupled to its physical neighbors — and is used to
//! cross-validate the closed-form margins and to reproduce the §6.1.2
//! worst-case data-pattern observations:
//!
//! * the worst pattern alternates '0'/'1' along the wordline, so both
//!   neighbors swing against every victim;
//! * TRA aggressors ("strong 1"s from three '1' cells) swing harder than
//!   single-cell aggressors, which is one of the two reasons Ambit's
//!   margins collapse.

use crate::column::{CellPort, Column, SenseOutcome};
use crate::params::CircuitParams;
use crate::phase::Side;

/// A wordline-direction array of coupled columns.
#[derive(Debug, Clone)]
pub struct ColumnArray {
    columns: Vec<Column>,
    coupling_ratio: f64,
}

impl ColumnArray {
    /// Creates `n` columns with the given parameters; coupling strength is
    /// taken from `params.coupling_ratio` (a fraction of each aggressor's
    /// swing reaches its neighbors).
    pub fn new(n: usize, params: CircuitParams) -> Self {
        assert!(n >= 1, "need at least one column");
        let coupling_ratio = params.coupling_ratio;
        ColumnArray {
            columns: (0..n).map(|_| Column::new(params.clone())).collect(),
            coupling_ratio,
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the array is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Mutable access to one column (loading data, injecting variation).
    pub fn column_mut(&mut self, i: usize) -> &mut Column {
        &mut self.columns[i]
    }

    /// Writes one wordline-direction data pattern into cell `row` of every
    /// column.
    pub fn write_pattern(&mut self, row: usize, bits: &[bool]) {
        assert_eq!(bits.len(), self.columns.len(), "one bit per column");
        for (col, &b) in self.columns.iter_mut().zip(bits) {
            col.write_cell(row, b);
        }
    }

    /// Precharges every column.
    pub fn precharge_all(&mut self) {
        for c in &mut self.columns {
            c.precharge();
        }
    }

    /// Activates the same cell ports in every column simultaneously, with
    /// inter-bitline coupling applied between the charge share and the
    /// sense decision. Returns one outcome per column.
    pub fn activate_coupled(&mut self, ports: &[CellPort], restore: bool) -> Vec<SenseOutcome> {
        // Phase 1: every column shares charge; record the swings.
        let swings: Vec<f64> = self.columns.iter_mut().map(|c| c.open_multi(ports)).collect();
        // Phase 2: each victim picks up a fraction of its neighbors'
        // swings (half the coupling capacitance faces each side).
        let n = self.columns.len();
        for i in 0..n {
            let left = if i > 0 { swings[i - 1] } else { 0.0 };
            let right = if i + 1 < n { swings[i + 1] } else { 0.0 };
            let noise = self.coupling_ratio * (left + right) / 2.0;
            self.columns[i].disturb(Side::Bl, noise);
        }
        // Phase 3: sense.
        self.columns.iter_mut().map(|c| c.sense(restore)).collect()
    }

    /// Convenience: full read cycle (precharge, coupled activate, close).
    pub fn read_coupled(&mut self, row: usize) -> Vec<SenseOutcome> {
        self.precharge_all();
        let out = self.activate_coupled(&[CellPort::Normal(row)], true);
        for c in &mut self.columns {
            c.close_wordlines();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::CouplingModel;

    fn alternating(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 0).collect()
    }

    #[test]
    fn coupled_reads_are_still_correct_at_nominal_parameters() {
        let mut arr = ColumnArray::new(8, CircuitParams::long_bitline());
        let pattern = alternating(8);
        arr.write_pattern(0, &pattern);
        let out = arr.read_coupled(0);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.bit, pattern[i], "column {i}");
            assert!(o.margin_v > 0.0, "column {i} margin {}", o.margin_v);
        }
    }

    /// §6.1.2: the alternating pattern erodes margins vs a uniform one.
    #[test]
    fn alternating_pattern_erodes_margins() {
        let margin_of = |pattern: &[bool]| -> f64 {
            let mut arr = ColumnArray::new(9, CircuitParams::long_bitline());
            arr.write_pattern(0, pattern);
            let out = arr.read_coupled(0);
            // Margin of the middle victim.
            out[4].margin_v
        };
        let uniform = margin_of(&[true; 9]);
        let worst = margin_of(&alternating(9));
        assert!(worst < uniform - 0.005, "alternating {worst:.4} V !< uniform {uniform:.4} V");
    }

    /// TRA aggressors couple harder than single-cell aggressors (§6.1.2's
    /// "weak 0 driven close to Vdd/2 by neighbouring strong 1s").
    #[test]
    fn tra_aggressors_couple_harder() {
        let victim_margin = |tra: bool| -> f64 {
            let mut arr = ColumnArray::new(3, CircuitParams::long_bitline());
            // Aggressor columns: '1' in every row (strong 1s under TRA).
            // Victim (middle): inconsistent 0,1,0 — a weak 0 under TRA,
            // a plain '0' for the single-cell read of row 0.
            arr.write_pattern(0, &[true, false, true]);
            arr.write_pattern(1, &[true, true, true]);
            arr.write_pattern(2, &[true, false, true]);
            arr.precharge_all();
            let ports: Vec<CellPort> = if tra {
                (0..3).map(CellPort::Normal).collect()
            } else {
                vec![CellPort::Normal(0)]
            };
            let out = arr.activate_coupled(&ports, true);
            out[1].margin_v
        };
        let single = victim_margin(false);
        let with_tra = victim_margin(true);
        assert!(with_tra < single, "TRA-coupled victim margin {with_tra:.4} !< single {single:.4}");
    }

    /// Cross-validation: the structural victim noise matches the
    /// closed-form coupling model used by the Monte-Carlo.
    #[test]
    fn structural_coupling_matches_closed_form() {
        let p = CircuitParams::long_bitline();
        let model = CouplingModel { ratio: p.coupling_ratio };
        let expected_aggressor = model.single_cell_aggressor(&p, 1.0, 1.0);

        // Three columns: victim in the middle reads '0', aggressors read
        // '1' — both neighbors swing +expected_aggressor; victim noise =
        // ratio × aggressor (the closed form).
        let mut arr = ColumnArray::new(3, p.clone());
        arr.write_pattern(0, &[true, false, true]);
        arr.precharge_all();
        let out = arr.activate_coupled(&[CellPort::Normal(0)], true);
        // Victim margin without coupling would be expected_aggressor (its
        // own downward swing); coupling steals ratio × aggressor.
        let clean = expected_aggressor;
        let noisy = out[1].margin_v;
        let stolen = clean - noisy;
        let predicted = model.victim_noise(expected_aggressor);
        assert!(
            (stolen - predicted).abs() < predicted * 0.2 + 1e-4,
            "stolen {stolen:.4} vs closed-form {predicted:.4}"
        );
    }

    #[test]
    fn edge_columns_have_one_neighbor_only() {
        let mut arr = ColumnArray::new(3, CircuitParams::long_bitline());
        arr.write_pattern(0, &[false, true, false]);
        let out = arr.read_coupled(0);
        // The middle aggressor suffers from two victims' (small) swings;
        // edges couple only to the middle. All still read correctly.
        assert!(!out[0].bit);
        assert!(out[1].bit);
        assert!(!out[2].bit);
    }
}
