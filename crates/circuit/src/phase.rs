//! Access-phase labels, mirroring Fig. 1(b) of the paper plus the ELP2IM
//! pseudo-precharge state.

use std::fmt;

/// Which bitline of the open-bitline pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The bitline that the subarray's cells connect to.
    Bl,
    /// The complementary (reference) bitline of the neighbor subarray.
    BlBar,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Bl => Side::BlBar,
            Side::BlBar => Side::Bl,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Bl => f.write_str("bitline"),
            Side::BlBar => f.write_str("bitline-bar"),
        }
    }
}

/// The DRAM access phase a column is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Both bitlines held at Vdd/2 by the precharge unit.
    Precharge,
    /// Wordline raised; cell and bitline share charge.
    Access,
    /// Sense amplifier enabled, resolving the differential.
    Sense,
    /// SA drives bitline and cell to full rail.
    Restore,
    /// ELP2IM pseudo-precharge: one SA supply rail shifted to Vdd/2.
    PseudoPrecharge,
    /// Split-EQ precharge of a single bitline.
    HalfPrecharge,
    /// Idle with the SA latched (between the activations of an AAP).
    Latched,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Precharge => "precharge",
            Phase::Access => "access",
            Phase::Sense => "sense",
            Phase::Restore => "restore",
            Phase::PseudoPrecharge => "pseudo-precharge",
            Phase::HalfPrecharge => "half-precharge",
            Phase::Latched => "latched",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_other_is_involutive() {
        assert_eq!(Side::Bl.other(), Side::BlBar);
        assert_eq!(Side::Bl.other().other(), Side::Bl);
    }

    #[test]
    fn displays() {
        assert_eq!(Phase::PseudoPrecharge.to_string(), "pseudo-precharge");
        assert_eq!(Side::BlBar.to_string(), "bitline-bar");
    }
}
