//! Circuit parameters, derived from the Rambus DRAM power model and the
//! constants the paper quotes (§3.1.2, §6.1).

/// Parameters of one DRAM column and its sense amplifier.
///
/// Defaults model a commodity long-bitline DDR3 array: `Cb/Cc ≈ 3.5`
/// (the paper quotes 2–4×), 22 fF cells, a 1.2 V internal array voltage,
/// SA transistor threshold at 25–30 % of Vdd, and a bitline-to-bitline
/// coupling capacitance of 15 % of `Cb` (§6.1.2).
///
/// ```
/// use elp2im_circuit::params::CircuitParams;
/// let p = CircuitParams::default();
/// assert!(p.cb_ratio >= 2.0 && p.cb_ratio <= 4.0);
/// let short = CircuitParams::short_bitline();
/// assert!(short.cb_ratio < 1.0); // §4.1: Cb can drop below Cc
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitParams {
    /// Internal array supply voltage (V).
    pub vdd: f64,
    /// Cell storage capacitance (fF).
    pub cc_ff: f64,
    /// Bitline parasitic capacitance as a multiple of `cc_ff`.
    pub cb_ratio: f64,
    /// Neighbor-bitline coupling capacitance as a fraction of `Cb`.
    pub coupling_ratio: f64,
    /// SA transistor threshold voltage as a fraction of Vdd (0.25–0.30).
    pub sa_vth_frac: f64,
    /// Time constant of SA full-supply drive (ns).
    pub tau_sa_ns: f64,
    /// Time constant of precharge-unit drive (ns).
    pub tau_pu_ns: f64,
    /// Integration step (ns).
    pub dt_ns: f64,
    /// Sense phase length (ns) — activate begins with charge share + sense.
    pub t_sense_ns: f64,
    /// Restore phase length (ns).
    pub t_restore_ns: f64,
    /// Precharge phase length (ns).
    pub t_precharge_ns: f64,
}

impl CircuitParams {
    /// Commodity long-bitline array (the paper's baseline configuration).
    pub fn long_bitline() -> Self {
        CircuitParams {
            vdd: 1.2,
            cc_ff: 22.0,
            cb_ratio: 3.5,
            coupling_ratio: 0.15,
            sa_vth_frac: 0.27,
            tau_sa_ns: 2.0,
            tau_pu_ns: 2.5,
            dt_ns: 0.05,
            t_sense_ns: 4.0,
            t_restore_ns: 21.0,
            t_precharge_ns: 13.75,
        }
    }

    /// Short-bitline / low-latency array where `Cb < Cc` (§4.1): the regular
    /// pseudo-precharge strategy becomes unreliable here.
    pub fn short_bitline() -> Self {
        CircuitParams { cb_ratio: 0.8, ..CircuitParams::long_bitline() }
    }

    /// Bitline capacitance in fF.
    pub fn cb_ff(&self) -> f64 {
        self.cc_ff * self.cb_ratio
    }

    /// Half-Vdd reference level.
    pub fn half_vdd(&self) -> f64 {
        self.vdd / 2.0
    }

    /// SA drive time constant when run at suppressed supply during the
    /// pseudo-precharge state.
    ///
    /// §6.1.1: SA transistors are low-threshold (`Vth` at 25–30 % of Vdd),
    /// so the drive-strength loss when one supply rail shifts to Vdd/2 is
    /// only 11–23 %. We interpolate the loss linearly in `sa_vth_frac`
    /// across that measured bracket (0.25 → 11 %, 0.30 → 23 %).
    pub fn tau_sa_half_supply_ns(&self) -> f64 {
        let frac = ((self.sa_vth_frac - 0.25) / 0.05).clamp(0.0, 1.0);
        let loss = 0.11 + frac * (0.23 - 0.11);
        self.tau_sa_ns / (1.0 - loss)
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `sa_vth_frac` is outside
    /// `(0, 0.5)`.
    pub fn validate(&self) {
        assert!(self.vdd > 0.0, "vdd must be positive");
        assert!(self.cc_ff > 0.0, "cell capacitance must be positive");
        assert!(self.cb_ratio > 0.0, "bitline ratio must be positive");
        assert!(
            self.sa_vth_frac > 0.0 && self.sa_vth_frac < 0.5,
            "sa_vth_frac must be in (0, 0.5)"
        );
        assert!(self.dt_ns > 0.0 && self.tau_sa_ns > 0.0 && self.tau_pu_ns > 0.0);
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        CircuitParams::long_bitline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        CircuitParams::default().validate();
        CircuitParams::short_bitline().validate();
    }

    #[test]
    fn derived_capacitance() {
        let p = CircuitParams::long_bitline();
        assert!((p.cb_ff() - 77.0).abs() < 1e-9);
        assert!((p.half_vdd() - 0.6).abs() < 1e-12);
    }

    /// §6.1.1: drive strength at half supply is reduced but not disastrous,
    /// so pseudo-precharge takes 20–30 % longer than precharge.
    #[test]
    fn half_supply_drive_is_slower_but_bounded() {
        let p = CircuitParams::long_bitline();
        let ratio = p.tau_sa_half_supply_ns() / p.tau_sa_ns;
        assert!(ratio > 1.0, "half-supply must be slower");
        // §6.1.1: 11–23 % strength loss ⇒ 1.12–1.30× slower drive.
        assert!((1.10..=1.32).contains(&ratio), "half-supply slowdown out of range: {ratio}");
    }

    #[test]
    #[should_panic(expected = "vdd")]
    fn invalid_vdd_panics() {
        CircuitParams { vdd: 0.0, ..CircuitParams::default() }.validate();
    }
}
