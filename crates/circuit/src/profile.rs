//! Per-chip reliability profiles.
//!
//! Real-silicon studies of in-DRAM bitwise operation (see PAPERS.md, e.g.
//! "Functionally-Complete Boolean Logic in Real DRAM Chips") report that
//! success rates vary per chip, per bank, per column, and with the
//! operating temperature and stored data pattern. A [`ChipProfile`] models
//! one such chip: a deterministic, seed-derived offset map — how far each
//! (bank, column) cell's sense margin sits from nominal — plus temperature,
//! process-variation sigma, and data-pattern knobs that scale the margin
//! analytically.
//!
//! Design constraints, mirrored by `tests/profile_properties.rs`:
//!
//! * **Determinism.** Offsets are a pure function of `(seed, bank, column)`
//!   through the same SplitMix64 machinery as the Monte-Carlo engine
//!   ([`crate::montecarlo::stream_key`]'s mixing chain), so
//!   [`ChipProfile::sample_with_threads`] is bit-identical at any thread
//!   count, including 1.
//! * **Monotonicity.** The knobs act on the analytic margin model only —
//!   they never resample offsets — so raising `temperature_c`, `sigma`, or
//!   the pattern stress never *decreases* any column's error probability.
//! * **Portability.** Profiles import/export as `elp2im-report-v1`
//!   documents through [`elp2im_dram::json`]; the generative parameters
//!   ride in a `profile` block so a round trip is lossless.

use crate::montecarlo::{mix64, GOLDEN_GAMMA};
use elp2im_dram::json::Json;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Report schema emitted by [`ChipProfile::to_json`] (shared with the
/// bench crate's report tables).
pub const PROFILE_SCHEMA: &str = "elp2im-report-v1";

/// Experiment slug identifying profile documents.
pub const PROFILE_EXPERIMENT: &str = "chip_profile";

/// Nominal sense margin of a perfectly typical cell (normalized units).
const BASE_MARGIN: f64 = 1.0;

/// Thermal/coupling noise floor at the cold corner (normalized units).
const NOISE_FLOOR: f64 = 0.045;

/// Noise growth per degree Celsius above the -40 °C cold corner.
const TEMP_COEFF: f64 = 0.004;

/// Cells per work chunk of the parallel sampler. Small enough that modest
/// profiles still exercise the multi-chunk path, large enough to amortize
/// the atomic cursor.
const CELL_CHUNK: usize = 256;

/// Stored data pattern during operation; worse coupling patterns stress
/// the sense margin harder (§6.1 context; FCBL-2024 measures the spread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataPattern {
    /// All-zeros background: minimal bitline coupling.
    Zeros,
    /// All-ones background.
    Ones,
    /// Alternating columns: moderate coupling.
    Checkerboard,
    /// Uniform random data: worst-case aggressor mix.
    Random,
}

impl DataPattern {
    /// Multiplicative stress on the noise floor (monotone: worse patterns
    /// are strictly larger).
    pub fn stress(self) -> f64 {
        match self {
            DataPattern::Zeros => 1.0,
            DataPattern::Ones => 1.04,
            DataPattern::Checkerboard => 1.10,
            DataPattern::Random => 1.18,
        }
    }

    /// Stable label used by the JSON form.
    pub fn label(self) -> &'static str {
        match self {
            DataPattern::Zeros => "zeros",
            DataPattern::Ones => "ones",
            DataPattern::Checkerboard => "checkerboard",
            DataPattern::Random => "random",
        }
    }

    /// Parses a [`DataPattern::label`] back.
    pub fn from_label(s: &str) -> Option<DataPattern> {
        match s {
            "zeros" => Some(DataPattern::Zeros),
            "ones" => Some(DataPattern::Ones),
            "checkerboard" => Some(DataPattern::Checkerboard),
            "random" => Some(DataPattern::Random),
            _ => None,
        }
    }
}

/// Generative parameters of a [`ChipProfile`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Chip identity: the offset map is a pure function of this seed.
    pub seed: u64,
    /// Banks on the chip.
    pub banks: usize,
    /// Columns per bank (row width in bits).
    pub columns: usize,
    /// Operating temperature in Celsius (knob; higher is noisier).
    pub temperature_c: f64,
    /// Process-variation scale applied to the offset map (knob).
    pub sigma: f64,
    /// Stored data pattern (knob).
    pub pattern: DataPattern,
}

impl ProfileConfig {
    /// A "mid-grade" chip at a warm operating point: a handful of weak
    /// columns per kilo-cell, the rest effectively error-free. This is the
    /// soak-scenario default.
    pub fn mid_grade(seed: u64, banks: usize, columns: usize) -> ProfileConfig {
        ProfileConfig {
            seed,
            banks,
            columns,
            temperature_c: 45.0,
            sigma: 0.30,
            pattern: DataPattern::Random,
        }
    }
}

/// Mixing chain over the cell coordinates, exactly the
/// [`crate::montecarlo::stream_key`] construction.
fn cell_key(seed: u64, bank: u64, column: u64) -> u64 {
    let mut h = seed;
    for coord in [bank, column] {
        h = mix64(h.wrapping_add(GOLDEN_GAMMA).wrapping_add(coord));
    }
    h
}

/// Uniform in (0, 1) from 53 high bits of a mixed word.
fn unit(k: u64) -> f64 {
    ((k >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// The fixed offset magnitude of one cell: |N(0, 1)| via Box-Muller over
/// two SplitMix64-derived uniforms. Pure in the coordinates, hence
/// trivially thread-count invariant.
fn cell_offset(seed: u64, bank: u64, column: u64) -> f64 {
    let k1 = cell_key(seed, bank, column);
    let k2 = mix64(k1.wrapping_add(GOLDEN_GAMMA));
    let (u1, u2) = (unit(k1), unit(k2));
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()).abs()
}

/// A sampled per-chip reliability profile: one offset per (bank, column),
/// bank-major, plus the generative knobs.
///
/// ```
/// use elp2im_circuit::profile::{ChipProfile, ProfileConfig};
///
/// let p = ChipProfile::sample(ProfileConfig::mid_grade(7, 2, 128));
/// // Deterministic: resampling the same config is identical.
/// assert_eq!(p, ChipProfile::sample(ProfileConfig::mid_grade(7, 2, 128)));
/// // Raising the temperature never helps any column.
/// let mut hot_cfg = p.config().clone();
/// hot_cfg.temperature_c += 30.0;
/// let hot = ChipProfile::sample(hot_cfg);
/// assert!(hot.error_probability(0, 0) >= p.error_probability(0, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChipProfile {
    config: ProfileConfig,
    /// Offset magnitudes, bank-major: `offsets[bank * columns + column]`.
    offsets: Vec<f64>,
}

impl ChipProfile {
    /// Samples the profile serially.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `columns` is zero.
    pub fn sample(config: ProfileConfig) -> ChipProfile {
        ChipProfile::sample_with_threads(config, 1)
    }

    /// Samples the profile with up to `threads` host threads. Offsets are
    /// a pure function of the cell coordinates, so the result is
    /// bit-identical for every thread count; chunks are claimed through an
    /// atomic cursor and reassembled in index order.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `columns` is zero.
    pub fn sample_with_threads(config: ProfileConfig, threads: usize) -> ChipProfile {
        assert!(config.banks > 0, "profile needs at least one bank");
        assert!(config.columns > 0, "profile needs at least one column");
        let cells = config.banks * config.columns;
        let cols = config.columns as u64;
        let one = |i: usize| cell_offset(config.seed, i as u64 / cols, i as u64 % cols);
        if threads <= 1 || cells <= CELL_CHUNK {
            let offsets = (0..cells).map(one).collect();
            return ChipProfile { config, offsets };
        }
        let chunks = cells.div_ceil(CELL_CHUNK);
        let cursor = AtomicUsize::new(0);
        let mut parts: Vec<(usize, Vec<f64>)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                return mine;
                            }
                            let start = c * CELL_CHUNK;
                            let end = (start + CELL_CHUNK).min(cells);
                            mine.push((c, (start..end).map(one).collect()));
                        }
                    })
                })
                .collect();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("profile sampler thread panicked"))
                .collect()
        });
        parts.sort_unstable_by_key(|(c, _)| *c);
        let offsets = parts.into_iter().flat_map(|(_, v)| v).collect();
        ChipProfile { config, offsets }
    }

    /// The generative parameters.
    pub fn config(&self) -> &ProfileConfig {
        &self.config
    }

    /// The fixed offset magnitude of one cell (before the sigma knob).
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `column` is out of range.
    pub fn offset(&self, bank: usize, column: usize) -> f64 {
        assert!(bank < self.config.banks, "bank {bank} out of range");
        assert!(column < self.config.columns, "column {column} out of range");
        self.offsets[bank * self.config.columns + column]
    }

    /// The effective noise scale under the current knobs: strictly
    /// increasing in temperature and pattern stress.
    fn noise(&self) -> f64 {
        NOISE_FLOOR
            * (1.0 + TEMP_COEFF * (self.config.temperature_c + 40.0).max(0.0))
            * self.config.pattern.stress()
    }

    /// Per-operation bit-error probability of one cell.
    ///
    /// The margin shrinks linearly with `sigma × offset` (clamped at 0) and
    /// the failure tail falls as `0.5·exp(−z − z²/2)` of the margin-to-noise
    /// ratio `z` — a smooth Gaussian-tail-like curve that needs no `erf`.
    /// Monotone by construction: raising temperature, sigma, or pattern
    /// stress never decreases the result.
    ///
    /// # Panics
    ///
    /// Panics if `bank` or `column` is out of range.
    pub fn error_probability(&self, bank: usize, column: usize) -> f64 {
        let margin = (BASE_MARGIN - self.offset(bank, column) * self.config.sigma).max(0.0);
        let z = margin / self.noise();
        0.5 * (-z * (1.0 + 0.5 * z)).exp()
    }

    /// All per-column error probabilities of one bank, in column order.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn column_probabilities(&self, bank: usize) -> Vec<f64> {
        (0..self.config.columns).map(|c| self.error_probability(bank, c)).collect()
    }

    /// Columns of `bank` whose error probability is at least `threshold`,
    /// ascending.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn weak_columns(&self, bank: usize, threshold: f64) -> Vec<usize> {
        (0..self.config.columns).filter(|&c| self.error_probability(bank, c) >= threshold).collect()
    }

    /// Mean per-column error probability of one bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_mean_error(&self, bank: usize) -> f64 {
        let sum: f64 = (0..self.config.columns).map(|c| self.error_probability(bank, c)).sum();
        sum / self.config.columns as f64
    }

    /// Banks ordered most-reliable first (ascending mean error, ties by
    /// index) — the placement order a fault-aware executor should prefer.
    pub fn rank_banks(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.config.banks).collect();
        order.sort_by(|&a, &b| {
            self.bank_mean_error(a).total_cmp(&self.bank_mean_error(b)).then(a.cmp(&b))
        });
        order
    }

    /// Exports the profile as an `elp2im-report-v1` document: a per-bank
    /// summary table plus a `profile` block holding the generative
    /// parameters (the seed in hex so no precision is lost to f64).
    pub fn to_json(&self) -> Json {
        let c = &self.config;
        let headers = ["bank", "mean error", "max error", "weak columns (p >= 1e-3)"];
        let rows: Vec<Json> = (0..c.banks)
            .map(|b| {
                let max =
                    (0..c.columns).map(|col| self.error_probability(b, col)).fold(0.0, f64::max);
                Json::Arr(vec![
                    Json::str(format!("{b}")),
                    Json::str(format!("{:.3e}", self.bank_mean_error(b))),
                    Json::str(format!("{max:.3e}")),
                    Json::str(format!("{}", self.weak_columns(b, 1e-3).len())),
                ])
            })
            .collect();
        Json::obj()
            .with("schema", Json::str(PROFILE_SCHEMA))
            .with("experiment", Json::str(PROFILE_EXPERIMENT))
            .with(
                "title",
                Json::str(format!(
                    "Chip profile: {} banks x {} columns, seed {:#018x}",
                    c.banks, c.columns, c.seed
                )),
            )
            .with("headers", Json::Arr(headers.iter().map(|h| Json::str(*h)).collect()))
            .with("rows", Json::Arr(rows))
            .with(
                "notes",
                Json::Arr(vec![Json::str(
                    "offsets re-derive from the profile block; the table is a summary",
                )]),
            )
            .with("stats", Json::Null)
            .with(
                "profile",
                Json::obj()
                    .with("seed_hex", Json::str(format!("{:016x}", c.seed)))
                    .with("banks", Json::Num(c.banks as f64))
                    .with("columns", Json::Num(c.columns as f64))
                    .with("temperature_c", Json::Num(c.temperature_c))
                    .with("sigma", Json::Num(c.sigma))
                    .with("pattern", Json::str(c.pattern.label())),
            )
    }

    /// Imports a profile from its [`ChipProfile::to_json`] form by
    /// re-deriving the offset map from the embedded parameters.
    ///
    /// # Errors
    ///
    /// A human-readable message if the document is not a profile export.
    pub fn from_json(doc: &Json) -> Result<ChipProfile, String> {
        let field = |k: &str| doc.get(k).ok_or_else(|| format!("missing key `{k}`"));
        let schema = field("schema")?.as_str().ok_or("schema must be a string")?;
        if schema != PROFILE_SCHEMA {
            return Err(format!("unexpected schema `{schema}`"));
        }
        let experiment = field("experiment")?.as_str().ok_or("experiment must be a string")?;
        if experiment != PROFILE_EXPERIMENT {
            return Err(format!("not a chip profile: experiment `{experiment}`"));
        }
        let p = field("profile")?;
        let pf = |k: &str| p.get(k).ok_or_else(|| format!("missing profile key `{k}`"));
        let seed_hex = pf("seed_hex")?.as_str().ok_or("seed_hex must be a string")?;
        let seed = u64::from_str_radix(seed_hex, 16)
            .map_err(|e| format!("bad seed_hex `{seed_hex}`: {e}"))?;
        let dim = |k: &str| -> Result<usize, String> {
            let v = pf(k)?.as_f64().ok_or_else(|| format!("{k} must be a number"))?;
            if v < 1.0 || v.fract() != 0.0 {
                return Err(format!("{k} must be a positive integer, got {v}"));
            }
            Ok(v as usize)
        };
        let banks = dim("banks")?;
        let columns = dim("columns")?;
        let temperature_c = pf("temperature_c")?.as_f64().ok_or("temperature_c not a number")?;
        let sigma = pf("sigma")?.as_f64().ok_or("sigma not a number")?;
        let label = pf("pattern")?.as_str().ok_or("pattern must be a string")?;
        let pattern =
            DataPattern::from_label(label).ok_or_else(|| format!("unknown pattern `{label}`"))?;
        Ok(ChipProfile::sample(ProfileConfig {
            seed,
            banks,
            columns,
            temperature_c,
            sigma,
            pattern,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid() -> ChipProfile {
        ChipProfile::sample(ProfileConfig::mid_grade(0xE1F2, 4, 256))
    }

    #[test]
    fn sampling_is_deterministic() {
        assert_eq!(mid(), mid());
    }

    #[test]
    fn thread_counts_agree() {
        let cfg = ProfileConfig::mid_grade(42, 4, 512);
        let serial = ChipProfile::sample_with_threads(cfg, 1);
        for threads in [2, 3, 8] {
            assert_eq!(serial, ChipProfile::sample_with_threads(cfg, threads));
        }
    }

    #[test]
    fn probabilities_are_probabilities() {
        let p = mid();
        for b in 0..4 {
            for c in 0..256 {
                let e = p.error_probability(b, c);
                assert!((0.0..=0.5).contains(&e), "p[{b}][{c}] = {e}");
            }
        }
    }

    #[test]
    fn hotter_and_wider_is_never_better() {
        let p = mid();
        let mut hot_cfg = *p.config();
        hot_cfg.temperature_c += 40.0;
        let hot = ChipProfile::sample(hot_cfg);
        let mut wide_cfg = *p.config();
        wide_cfg.sigma += 0.1;
        let wide = ChipProfile::sample(wide_cfg);
        for b in 0..4 {
            for c in 0..256 {
                assert!(hot.error_probability(b, c) >= p.error_probability(b, c));
                assert!(wide.error_probability(b, c) >= p.error_probability(b, c));
            }
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let p = mid();
        let text = p.to_json().pretty();
        let back = ChipProfile::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        let doc = Json::obj()
            .with("schema", Json::str(PROFILE_SCHEMA))
            .with("experiment", Json::str("bench_006"));
        assert!(ChipProfile::from_json(&doc).unwrap_err().contains("not a chip profile"));
    }

    #[test]
    fn rank_banks_orders_by_mean_error() {
        let p = mid();
        let order = p.rank_banks();
        let means: Vec<f64> = order.iter().map(|&b| p.bank_mean_error(b)).collect();
        assert!(means.windows(2).all(|w| w[0] <= w[1]), "ranking not ascending: {means:?}");
    }

    #[test]
    fn mid_grade_has_a_thin_weak_tail() {
        // The soak scenario depends on the mid-grade corner having *some*
        // weak columns but mostly clean ones.
        let p = mid();
        let weak: usize = (0..4).map(|b| p.weak_columns(b, 1e-3).len()).sum();
        assert!(weak > 0, "mid-grade profile has no weak columns at all");
        assert!(weak < 64, "mid-grade profile is uniformly broken ({weak} weak cells)");
    }
}
