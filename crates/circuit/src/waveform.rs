//! Waveform recording and rendering (Fig. 10 of the paper).

use crate::phase::Phase;
use std::fmt::Write as _;

/// One recorded sample of the column state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Simulation time (ns).
    pub t_ns: f64,
    /// Bitline voltage (V).
    pub v_bl: f64,
    /// Complementary-bitline voltage (V).
    pub v_blb: f64,
    /// Phase label at this instant.
    pub phase: Phase,
}

/// A recorded voltage trace of one column.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Waveform {
    samples: Vec<Sample>,
}

impl Waveform {
    /// An empty waveform.
    pub fn new() -> Self {
        Waveform::default()
    }

    /// Appends one sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// All samples in time order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Bitline voltage at (or just after) time `t_ns`, if recorded.
    pub fn v_bl_at(&self, t_ns: f64) -> Option<f64> {
        self.samples.iter().find(|s| s.t_ns >= t_ns).map(|s| s.v_bl)
    }

    /// Renders the trace as CSV (`t_ns,v_bl,v_blb,phase`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns,v_bl,v_blb,phase\n");
        for s in &self.samples {
            let _ = writeln!(out, "{:.3},{:.4},{:.4},{}", s.t_ns, s.v_bl, s.v_blb, s.phase);
        }
        out
    }

    /// Renders a coarse ASCII plot of the bitline voltage: one row per
    /// voltage bucket (top = Vdd), one column per time bucket.
    pub fn ascii_plot(&self, vdd: f64, width: usize, height: usize) -> String {
        if self.samples.is_empty() || width == 0 || height < 2 {
            return String::new();
        }
        let t0 = self.samples.first().expect("nonempty").t_ns;
        let t1 = self.samples.last().expect("nonempty").t_ns.max(t0 + 1e-9);
        let mut grid = vec![vec![' '; width]; height];
        for s in &self.samples {
            let x = (((s.t_ns - t0) / (t1 - t0)) * (width as f64 - 1.0)).round() as usize;
            let yv = (s.v_bl / vdd).clamp(0.0, 1.0);
            let y = ((1.0 - yv) * (height as f64 - 1.0)).round() as usize;
            grid[y.min(height - 1)][x.min(width - 1)] = '*';
        }
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{vdd:>5.2}V")
            } else if i == height - 1 {
                format!("{:>5.2}V", 0.0)
            } else if i == height / 2 {
                format!("{:>5.2}V", vdd / 2.0)
            } else {
                "      ".to_string()
            };
            let _ = writeln!(out, "{label} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "       +{}", "-".repeat(width));
        let _ = writeln!(out, "        {:<10.1}ns{:>w$.1}ns", t0, t1, w = width.saturating_sub(14));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf() -> Waveform {
        let mut w = Waveform::new();
        for i in 0..10 {
            w.push(Sample {
                t_ns: i as f64,
                v_bl: 0.12 * i as f64,
                v_blb: 0.6,
                phase: Phase::Restore,
            });
        }
        w
    }

    #[test]
    fn push_and_query() {
        let w = wf();
        assert_eq!(w.len(), 10);
        assert!(!w.is_empty());
        assert!((w.v_bl_at(5.0).unwrap() - 0.6).abs() < 1e-12);
        assert_eq!(w.v_bl_at(100.0), None);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = wf().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "t_ns,v_bl,v_blb,phase");
        assert_eq!(lines.len(), 11);
        assert!(lines[1].starts_with("0.000,0.0000,0.6000,"));
    }

    #[test]
    fn ascii_plot_shape() {
        let plot = wf().ascii_plot(1.2, 40, 10);
        let lines: Vec<_> = plot.lines().collect();
        assert_eq!(lines.len(), 12); // 10 rows + axis + time labels
        assert!(lines[0].contains("1.20V"));
        assert!(plot.contains('*'));
    }

    #[test]
    fn empty_plot_is_empty() {
        assert!(Waveform::new().ascii_plot(1.2, 40, 10).is_empty());
    }
}
