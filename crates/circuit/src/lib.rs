//! Circuit-level (analog) DRAM column simulator.
//!
//! The paper verifies ELP2IM's pseudo-precharge mechanism with H-SPICE and
//! Rambus power-model parameters (§6.1). This crate substitutes a
//! discrete-time RC / charge-sharing model of one open-bitline DRAM column:
//! 1T1C cells on a parasitic bitline, a latch-type sense amplifier with
//! switchable supply rails, and a precharge unit with split EQ/EQb control —
//! exactly the circuit of Fig. 1 of the paper plus the ELP2IM modifications.
//!
//! What it reproduces:
//!
//! * **Fig. 10** — waveforms of APP-AP sequences executing OR and AND
//!   ([`primitive`], [`waveform`]).
//! * **Fig. 11** — Monte-Carlo error rates of ELP2IM vs Ambit (TRA) vs
//!   regular DRAM under random/systematic process variation with bitline
//!   coupling ([`variation`], [`montecarlo`]).
//! * **§4.1** — the small-`Cb` failure of the regular strategy and the fix
//!   via the complementary (alternative) pseudo-precharge strategy.
//!
//! # Example
//!
//! ```
//! use elp2im_circuit::column::Column;
//! use elp2im_circuit::params::CircuitParams;
//! use elp2im_circuit::primitive::{or_app_ap, Strategy};
//!
//! let p = CircuitParams::default();
//! let mut col = Column::new(p);
//! // '1' OR '0' computed in-place by the APP-AP sequence.
//! let out = or_app_ap(&mut col, true, false, Strategy::Regular).unwrap();
//! assert!(out.result);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod column;
pub mod montecarlo;
pub mod params;
pub mod phase;
pub mod primitive;
pub mod profile;
pub mod sense_amp;
pub mod variation;
pub mod waveform;

pub use column::Column;
pub use params::CircuitParams;
pub use waveform::Waveform;
