//! Circuit-level execution of the ELP2IM primitives.
//!
//! These functions drive a [`Column`] through the exact control sequences of
//! §3.2/Fig. 4 (the "two-cycle" APP-AP operation), §4.1/Fig. 6 (the
//! alternative, complementary strategy), AAP copies, and DCC-based NOT —
//! returning the sensed results so the functional engine in `elp2im-core`
//! can be cross-validated against the analog model.

use crate::column::{CellPort, Column};
use crate::phase::Side;
use std::error::Error;
use std::fmt;

/// Pseudo-precharge execution strategy (§3.2 vs §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Regulate the bitline itself; requires `Cb` comfortably above `Cc`.
    Regular,
    /// Regulate the complementary bitline (the §4.1 alternative); correct
    /// for any `Cb/Cc` ratio.
    Alternative,
}

/// The two basic charge-sharing logic operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
}

impl BasicOp {
    /// Software reference result.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            BasicOp::Or => a || b,
            BasicOp::And => a && b,
        }
    }
}

/// Outcome of a circuit-level logic operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpOutcome {
    /// The value sensed (and restored into the destination cell).
    pub result: bool,
    /// The value read during the first (APP) cycle.
    pub first_read: bool,
    /// Sense margin of the final decision (V).
    pub final_margin_v: f64,
}

/// Error raised when a circuit-level operation produces a logically wrong
/// result (e.g. the regular strategy on a short bitline, §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct LogicMismatch {
    /// The operation attempted.
    pub op: BasicOp,
    /// First operand.
    pub a: bool,
    /// Second operand.
    pub b: bool,
    /// What the circuit produced.
    pub got: bool,
}

impl fmt::Display for LogicMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit computed {:?}({}, {}) = {} (wrong)",
            self.op, self.a as u8, self.b as u8, self.got
        )
    }
}

impl Error for LogicMismatch {}

/// Drives one APP-AP sequence computing `cell1 := op(cell0, cell1)`.
///
/// The column's cells 0 and 1 are loaded with `a` and `b`, the sequence of
/// Fig. 4 (regular) or Fig. 6(b) (alternative) runs, and the result is both
/// returned and restored into cell 1.
///
/// # Errors
///
/// Returns [`LogicMismatch`] if the sensed result differs from the Boolean
/// reference — this is the expected failure mode of
/// [`Strategy::Regular`] on short-bitline arrays.
pub fn binary_app_ap(
    col: &mut Column,
    op: BasicOp,
    a: bool,
    b: bool,
    strategy: Strategy,
) -> Result<OpOutcome, LogicMismatch> {
    col.write_cell(0, a);
    col.write_cell(1, b);

    // Which rail shifts, and which side the split-EQ precharges, encode the
    // (operation, strategy) pair — see DESIGN.md §3.1 and the analysis in
    // §4.1 of the paper.
    let (lift_low_rail, precharge_side) = match (op, strategy) {
        (BasicOp::Or, Strategy::Regular) => (true, Side::BlBar),
        (BasicOp::And, Strategy::Regular) => (false, Side::BlBar),
        (BasicOp::Or, Strategy::Alternative) => (false, Side::Bl),
        (BasicOp::And, Strategy::Alternative) => (true, Side::Bl),
    };

    // Cycle 1: APP — activate, pseudo-precharge, half-precharge.
    col.precharge();
    let first = col.activate(CellPort::Normal(0), true);
    col.close_wordlines();
    col.pseudo_precharge(lift_low_rail);
    col.half_precharge(precharge_side);

    // Cycle 2: AP — the regulated bitline overwrites or the cell senses.
    let second = col.activate(CellPort::Normal(1), true);
    col.close_wordlines();
    col.precharge();

    let expected = op.eval(a, b);
    let restored = col.cell_bit(1);
    if second.bit != expected || restored != expected {
        return Err(LogicMismatch { op, a, b, got: second.bit });
    }
    Ok(OpOutcome { result: second.bit, first_read: first.bit, final_margin_v: second.margin_v })
}

/// Drives one **oAPP**-AP sequence (§4.2.1): the pseudo-precharge and the
/// split-EQ precharge overlap through the row-buffer-decoupling isolation
/// transistor, saving one phase but computing the identical result.
///
/// # Errors
///
/// Same failure modes as [`binary_app_ap`].
pub fn binary_oapp_ap(
    col: &mut Column,
    op: BasicOp,
    a: bool,
    b: bool,
    strategy: Strategy,
) -> Result<OpOutcome, LogicMismatch> {
    col.write_cell(0, a);
    col.write_cell(1, b);
    let (lift_low_rail, precharge_side) = match (op, strategy) {
        (BasicOp::Or, Strategy::Regular) => (true, Side::BlBar),
        (BasicOp::And, Strategy::Regular) => (false, Side::BlBar),
        (BasicOp::Or, Strategy::Alternative) => (false, Side::Bl),
        (BasicOp::And, Strategy::Alternative) => (true, Side::Bl),
    };
    col.precharge();
    let first = col.activate(CellPort::Normal(0), true);
    col.close_wordlines();
    // Overlapped: one combined phase instead of pseudo-precharge followed
    // by half-precharge.
    col.pseudo_precharge_overlapped(lift_low_rail, precharge_side);
    let second = col.activate(CellPort::Normal(1), true);
    col.close_wordlines();
    col.precharge();
    let expected = op.eval(a, b);
    let restored = col.cell_bit(1);
    if second.bit != expected || restored != expected {
        return Err(LogicMismatch { op, a, b, got: second.bit });
    }
    Ok(OpOutcome { result: second.bit, first_read: first.bit, final_margin_v: second.margin_v })
}

/// Convenience wrapper: OR via APP-AP.
///
/// # Errors
///
/// See [`binary_app_ap`].
pub fn or_app_ap(
    col: &mut Column,
    a: bool,
    b: bool,
    strategy: Strategy,
) -> Result<OpOutcome, LogicMismatch> {
    binary_app_ap(col, BasicOp::Or, a, b, strategy)
}

/// Convenience wrapper: AND via APP-AP.
///
/// # Errors
///
/// See [`binary_app_ap`].
pub fn and_app_ap(
    col: &mut Column,
    a: bool,
    b: bool,
    strategy: Strategy,
) -> Result<OpOutcome, LogicMismatch> {
    binary_app_ap(col, BasicOp::And, a, b, strategy)
}

/// AAP copy: `dst := src` through the latched sense amplifier (RowClone).
pub fn copy_aap(col: &mut Column, src: CellPort, dst: CellPort) -> bool {
    col.precharge();
    let out = col.activate(src, true);
    col.attach(dst);
    col.close_wordlines();
    col.disable_sa();
    out.bit
}

/// NOT through the dual-contact cell: copy `src` into the DCC via its true
/// port, then read the DCC through its complement port into `dst`.
pub fn not_via_dcc(col: &mut Column, src: CellPort, dst: CellPort) -> bool {
    copy_aap(col, src, CellPort::DccTrue);
    col.precharge();
    let out = col.activate(CellPort::DccBar, true);
    col.attach(dst);
    col.close_wordlines();
    col.disable_sa();
    out.bit
}

/// Produces the Fig. 10 waveform: two APP-AP sequences, an OR ('1'+'0')
/// followed by an AND ('0'·'1'), recorded on one column.
pub fn fig10_waveform(params: crate::params::CircuitParams) -> crate::waveform::Waveform {
    let mut col = Column::new(params);
    col.record();
    // OR: '1' + '0' — the regulated '1' overwrites the second cell.
    binary_app_ap(&mut col, BasicOp::Or, true, false, Strategy::Regular)
        .expect("nominal OR must succeed on a long bitline");
    // AND: '0' · '1' — the regulated '0' overwrites the second cell.
    binary_app_ap(&mut col, BasicOp::And, false, true, Strategy::Regular)
        .expect("nominal AND must succeed on a long bitline");
    col.waveform().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CircuitParams;

    fn long() -> Column {
        Column::new(CircuitParams::long_bitline())
    }

    fn short() -> Column {
        Column::new(CircuitParams::short_bitline())
    }

    /// §3.2: all four operand combinations of OR and AND succeed on a
    /// commodity long-bitline array with the regular strategy.
    #[test]
    fn regular_strategy_truth_tables_long_bitline() {
        for op in [BasicOp::Or, BasicOp::And] {
            for a in [false, true] {
                for b in [false, true] {
                    let mut col = long();
                    let out = binary_app_ap(&mut col, op, a, b, Strategy::Regular)
                        .unwrap_or_else(|e| panic!("{e}"));
                    assert_eq!(out.result, op.eval(a, b));
                    assert_eq!(out.first_read, a);
                }
            }
        }
    }

    /// §4.1: the regular strategy's worst cases fail when Cb < Cc…
    #[test]
    fn regular_strategy_fails_on_short_bitline_worst_case() {
        let mut col = short();
        let err = or_app_ap(&mut col, true, false, Strategy::Regular)
            .expect_err("'1'+'0' with Cb<Cc must fail");
        assert!(!err.got);

        let mut col = short();
        and_app_ap(&mut col, false, true, Strategy::Regular)
            .expect_err("'0'·'1' with Cb<Cc must fail");
    }

    /// …and the alternative (complementary) strategy fixes them.
    #[test]
    fn alternative_strategy_truth_tables_short_bitline() {
        for op in [BasicOp::Or, BasicOp::And] {
            for a in [false, true] {
                for b in [false, true] {
                    let mut col = short();
                    let out = binary_app_ap(&mut col, op, a, b, Strategy::Alternative)
                        .unwrap_or_else(|e| panic!("{op:?}({a},{b}): {e}"));
                    assert_eq!(out.result, op.eval(a, b));
                }
            }
        }
    }

    /// The alternative strategy also works on long bitlines.
    #[test]
    fn alternative_strategy_truth_tables_long_bitline() {
        for op in [BasicOp::Or, BasicOp::And] {
            for a in [false, true] {
                for b in [false, true] {
                    let mut col = long();
                    let out = binary_app_ap(&mut col, op, a, b, Strategy::Alternative).unwrap();
                    assert_eq!(out.result, op.eval(a, b));
                }
            }
        }
    }

    /// §4.2.1: the overlapped oAPP computes the same truth tables as the
    /// sequential APP on both strategies.
    #[test]
    fn overlapped_oapp_truth_tables() {
        for op in [BasicOp::Or, BasicOp::And] {
            for a in [false, true] {
                for b in [false, true] {
                    for strategy in [Strategy::Regular, Strategy::Alternative] {
                        let mut col = long();
                        let out = binary_oapp_ap(&mut col, op, a, b, strategy)
                            .unwrap_or_else(|e| panic!("{op:?}({a},{b})/{strategy:?}: {e}"));
                        assert_eq!(out.result, op.eval(a, b));
                    }
                }
            }
        }
    }

    #[test]
    fn aap_copies_both_values() {
        for bit in [false, true] {
            let mut col = long();
            col.write_cell(0, bit);
            col.write_cell(1, !bit);
            let read = copy_aap(&mut col, CellPort::Normal(0), CellPort::Normal(1));
            assert_eq!(read, bit);
            assert_eq!(col.cell_bit(1), bit, "dst must now hold the source value");
            assert_eq!(col.cell_bit(0), bit, "src must be restored");
        }
    }

    #[test]
    fn not_via_dcc_inverts() {
        for bit in [false, true] {
            let mut col = long();
            col.write_cell(0, bit);
            let read = not_via_dcc(&mut col, CellPort::Normal(0), CellPort::Normal(2));
            assert_eq!(read, !bit);
            assert_eq!(col.cell_bit(2), !bit);
        }
    }

    /// Fig. 10: the waveform covers both sequences and passes through the
    /// pseudo-precharge level.
    #[test]
    fn fig10_waveform_has_expected_shape() {
        let w = fig10_waveform(CircuitParams::long_bitline());
        assert!(w.len() > 1000, "dense trace expected, got {}", w.len());
        let vdd = CircuitParams::long_bitline().vdd;
        let max = w.samples().iter().map(|s| s.v_bl).fold(0.0f64, f64::max);
        let min = w.samples().iter().map(|s| s.v_bl).fold(f64::MAX, f64::min);
        assert!(max > 0.95 * vdd, "bitline must reach Vdd, max = {max}");
        assert!(min < 0.05 * vdd, "bitline must reach Gnd, min = {min}");
    }

    #[test]
    fn logic_mismatch_display() {
        let e = LogicMismatch { op: BasicOp::Or, a: true, b: false, got: false };
        let s = format!("{e}");
        assert!(s.contains("Or") && s.contains("wrong"), "{s}");
    }
}
