//! A Kaby-Lake-class CPU reference model (§6.3's baseline [49]).
//!
//! Bulk bitwise scans and population counts over memory-resident data are
//! bandwidth-bound on a real CPU: the cores' SIMD throughput far exceeds
//! what the memory bus can feed. The model therefore takes
//! `time = max(compute, traffic / bandwidth)` with AVX2-class compute and a
//! DDR3-1600-channel bandwidth, matching how the paper's CPU baseline is
//! dominated by data movement.

use elp2im_dram::units::Ns;

/// Analytic CPU performance model.
///
/// ```
/// use elp2im_baselines::cpu::CpuModel;
/// let cpu = CpuModel::kaby_lake();
/// // A bulk AND over two 1 Mib operands is memory-bound.
/// let t = cpu.bulk_op_time(2, 1 << 20);
/// assert!(t.as_f64() > 10_000.0); // tens of microseconds
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Physical cores.
    pub cores: usize,
    /// Sustained clock (GHz).
    pub freq_ghz: f64,
    /// SIMD width (bits), AVX2 = 256.
    pub simd_bits: usize,
    /// Sustained memory bandwidth (GB/s). One DDR3-1600 x64 channel
    /// delivers 12.8 GB/s peak.
    pub mem_bw_gbs: f64,
    /// Fraction of peak bandwidth actually sustained by streaming scans.
    pub bw_efficiency: f64,
}

impl CpuModel {
    /// The i7-7700K-class configuration of the paper's baseline.
    pub fn kaby_lake() -> Self {
        CpuModel { cores: 4, freq_ghz: 4.0, simd_bits: 256, mem_bw_gbs: 12.8, bw_efficiency: 0.8 }
    }

    /// Sustained bandwidth in bytes per nanosecond.
    pub fn effective_bw_bytes_per_ns(&self) -> f64 {
        self.mem_bw_gbs * self.bw_efficiency
    }

    /// Time for a bulk bitwise operation over `bits`-wide vectors with
    /// `inputs` operand streams (the result stream is written back).
    pub fn bulk_op_time(&self, inputs: usize, bits: usize) -> Ns {
        let bytes = (inputs + 1) as f64 * bits as f64 / 8.0;
        let mem_ns = bytes / self.effective_bw_bytes_per_ns();
        // One SIMD op per lane-word per cycle per core.
        let ops = bits as f64 / self.simd_bits as f64;
        let compute_ns = ops / (self.cores as f64 * self.freq_ghz);
        Ns(mem_ns.max(compute_ns))
    }

    /// Time to population-count `bits` bits (one input stream, scalar
    /// accumulation — still bandwidth-bound for large vectors).
    pub fn popcount_time(&self, bits: usize) -> Ns {
        let bytes = bits as f64 / 8.0;
        let mem_ns = bytes / self.effective_bw_bytes_per_ns();
        // popcnt on 64-bit words, ~1/cycle/core.
        let compute_ns = (bits as f64 / 64.0) / (self.cores as f64 * self.freq_ghz);
        Ns(mem_ns.max(compute_ns))
    }

    /// Equivalent bulk bitwise throughput in gigabits of operand per
    /// second for an `inputs`-stream operation.
    pub fn bulk_op_throughput_gbps(&self, inputs: usize) -> f64 {
        let bits = 1 << 20;
        bits as f64 / self.bulk_op_time(inputs, bits).as_f64()
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel::kaby_lake()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_scans_are_bandwidth_bound() {
        let cpu = CpuModel::kaby_lake();
        let bits = 1 << 27; // 16 MiB
        let t = cpu.bulk_op_time(2, bits);
        let bytes = 3.0 * bits as f64 / 8.0;
        let mem_only = bytes / cpu.effective_bw_bytes_per_ns();
        assert!((t.as_f64() - mem_only).abs() / mem_only < 1e-9, "memory must dominate");
    }

    #[test]
    fn more_inputs_cost_more_traffic() {
        let cpu = CpuModel::kaby_lake();
        let t2 = cpu.bulk_op_time(2, 1 << 20).as_f64();
        let t3 = cpu.bulk_op_time(3, 1 << 20).as_f64();
        assert!(t3 > t2);
        assert!((t3 / t2 - 4.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn popcount_is_cheaper_than_binary_op() {
        let cpu = CpuModel::kaby_lake();
        assert!(cpu.popcount_time(1 << 20).as_f64() < cpu.bulk_op_time(2, 1 << 20).as_f64());
    }

    #[test]
    fn throughput_is_in_plausible_range() {
        let cpu = CpuModel::kaby_lake();
        let gbps = cpu.bulk_op_throughput_gbps(2);
        // A 12.8 GB/s channel with 3 streams ⇒ ~27 Gbit/s of operand.
        assert!(gbps > 10.0 && gbps < 60.0, "got {gbps}");
    }
}
