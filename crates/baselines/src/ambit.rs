//! Ambit: in-memory bulk bitwise operations via triple-row activation.
//!
//! Structure (§2.2.2 and Fig. 2(b)/9(b) of the ELP2IM paper, after
//! Seshadri et al., MICRO 2017):
//!
//! * a **B-group** served by a special row decoder: four designated rows
//!   T0–T3 plus two dual-contact cells DCC0/DCC1 (8 physical rows), any
//!   predefined subset of which can be raised simultaneously;
//! * a **C-group** of two constant rows, C0 = all-zeros and C1 = all-ones;
//! * **TRA** — raising three B-group rows at once charge-shares their cells
//!   with the bitline, computing the majority `R = AB + BC + CA`, which is
//!   written back into *all three* activated rows (through each row's own
//!   port — a DCC bar port stores the complement).
//!
//! The command sequences below reproduce the operation latencies the
//! ELP2IM paper reports for Ambit: NOT 2 commands (~106 ns), AND/OR 4
//! (~212 ns), NAND/NOR 5 (~265 ns), XOR/XNOR 7 (~363 ns = 5 × 53 + 2 × 49).
//!
//! [`AmbitConfig`] additionally models the reduced-reserved-space
//! configurations swept in Fig. 13 (4/6/8/10 rows), where missing constant
//! rows or the second DCC cost extra staging commands.

use elp2im_core::bitvec::BitVec;
use elp2im_core::compile::LogicOp;
use elp2im_dram::command::CommandProfile;
use elp2im_dram::power::PowerModel;
use elp2im_dram::stats::RunStats;
use elp2im_dram::timing::Ddr3Timing;
use elp2im_dram::units::Ns;
use std::error::Error;
use std::fmt;

/// A row addressable by the Ambit engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmbitRow {
    /// Regular data row.
    Data(usize),
    /// Designated B-group row T0–T3.
    T(usize),
    /// Dual-contact cell through its true port.
    DccTrue(usize),
    /// Dual-contact cell through its complement port.
    DccBar(usize),
    /// Constant all-zeros row.
    C0,
    /// Constant all-ones row.
    C1,
}

impl AmbitRow {
    fn is_b_group(self) -> bool {
        matches!(self, AmbitRow::T(_) | AmbitRow::DccTrue(_) | AmbitRow::DccBar(_))
    }
}

impl fmt::Display for AmbitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmbitRow::Data(i) => write!(f, "d{i}"),
            AmbitRow::T(i) => write!(f, "T{i}"),
            AmbitRow::DccTrue(i) => write!(f, "DCC{i}"),
            AmbitRow::DccBar(i) => write!(f, "!DCC{i}"),
            AmbitRow::C0 => f.write_str("C0"),
            AmbitRow::C1 => f.write_str("C1"),
        }
    }
}

/// One Ambit command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmbitCmd {
    /// Overlapped copy `src` → every row in `dsts` (the B-group decoder can
    /// raise several destination wordlines at once).
    Aap {
        /// Source row.
        src: AmbitRow,
        /// Destination rows (at least one; more than one requires all to be
        /// B-group rows).
        dsts: Vec<AmbitRow>,
    },
    /// Triple-row activation: computes the majority of the three rows and
    /// restores it into all three (activate-precharge, no copy-out).
    Tra {
        /// The three simultaneously raised B-group rows.
        rows: [AmbitRow; 3],
    },
    /// TRA immediately copied out to `dst` (activate-activate-precharge).
    TraAap {
        /// The three simultaneously raised B-group rows.
        rows: [AmbitRow; 3],
        /// Destination of the majority result.
        dst: AmbitRow,
    },
}

impl AmbitCmd {
    /// Latency of this command.
    pub fn duration(&self, t: &Ddr3Timing) -> Ns {
        match self {
            AmbitCmd::Aap { .. } | AmbitCmd::TraAap { .. } => t.o_aap(),
            AmbitCmd::Tra { .. } => t.ap(),
        }
    }

    /// Substrate command profile (wordline counts drive power/pump cost).
    pub fn profile(&self, t: &Ddr3Timing) -> CommandProfile {
        match self {
            AmbitCmd::Aap { dsts, .. } => {
                let mut p = CommandProfile::o_aap(t);
                let wl = 1 + dsts.len() as u8;
                p.max_simultaneous_wordlines = wl;
                p.total_wordline_events = wl;
                p.restores = wl;
                p
            }
            AmbitCmd::Tra { .. } => {
                let mut p = CommandProfile::ap(t);
                p.max_simultaneous_wordlines = 3;
                p.total_wordline_events = 3;
                p.restores = 3;
                p
            }
            AmbitCmd::TraAap { .. } => CommandProfile::ambit_tra_aap(t),
        }
    }
}

impl fmt::Display for AmbitCmd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmbitCmd::Aap { src, dsts } => {
                write!(f, "AAP([")?;
                for (i, d) in dsts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{d}")?;
                }
                write!(f, "],{src})")
            }
            AmbitCmd::Tra { rows } => write!(f, "TRA({},{},{})", rows[0], rows[1], rows[2]),
            AmbitCmd::TraAap { rows, dst } => {
                write!(f, "TRA-AAP([{dst}],{},{},{})", rows[0], rows[1], rows[2])
            }
        }
    }
}

/// Errors raised by the Ambit engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AmbitError {
    /// A row index was out of range.
    RowOutOfRange(AmbitRow),
    /// A row was read before being written.
    Uninitialized(AmbitRow),
    /// A constant row was used as a destination.
    WriteToConstant(AmbitRow),
    /// A multi-destination AAP or TRA named a non-B-group row.
    RequiresBGroup(AmbitRow),
}

impl fmt::Display for AmbitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmbitError::RowOutOfRange(r) => write!(f, "row {r} out of range"),
            AmbitError::Uninitialized(r) => write!(f, "row {r} read before write"),
            AmbitError::WriteToConstant(r) => write!(f, "cannot write constant row {r}"),
            AmbitError::RequiresBGroup(r) => {
                write!(f, "simultaneous activation requires B-group rows, got {r}")
            }
        }
    }
}

impl Error for AmbitError {}

/// Functional Ambit subarray engine.
///
/// ```
/// use elp2im_baselines::ambit::{AmbitEngine, AmbitRow};
/// use elp2im_core::bitvec::BitVec;
/// use elp2im_core::compile::LogicOp;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut e = AmbitEngine::new(4, 8);
/// e.write_row(0, BitVec::from_bools(&[true, true, false, false]))?;
/// e.write_row(1, BitVec::from_bools(&[true, false, true, false]))?;
/// e.run_op(LogicOp::Xor, 0, 1, 2)?;
/// assert_eq!(e.row(AmbitRow::Data(2))?.to_bools(),
///            vec![false, true, true, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AmbitEngine {
    width: usize,
    rows: Vec<Option<BitVec>>,
    t: [Option<BitVec>; 4],
    dcc: [Option<BitVec>; 2],
    timing: Ddr3Timing,
    power: PowerModel,
    stats: RunStats,
}

impl AmbitEngine {
    /// Creates an engine with `data_rows` regular rows of `width` bits.
    pub fn new(width: usize, data_rows: usize) -> Self {
        AmbitEngine {
            width,
            rows: vec![None; data_rows],
            t: [None, None, None, None],
            dcc: [None, None],
            timing: Ddr3Timing::ddr3_1600(),
            power: PowerModel::micron_ddr3_1600(),
            stats: RunStats::new(),
        }
    }

    /// Row width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Accumulated substrate statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::new();
    }

    /// Host-side write of a data row.
    ///
    /// # Errors
    ///
    /// Out-of-range row index.
    pub fn write_row(&mut self, index: usize, value: BitVec) -> Result<(), AmbitError> {
        assert_eq!(value.len(), self.width, "row width mismatch");
        let slot =
            self.rows.get_mut(index).ok_or(AmbitError::RowOutOfRange(AmbitRow::Data(index)))?;
        *slot = Some(value);
        Ok(())
    }

    /// Reads the bitline-visible value of `row`.
    ///
    /// # Errors
    ///
    /// Out-of-range or uninitialized rows.
    pub fn row(&self, row: AmbitRow) -> Result<BitVec, AmbitError> {
        match row {
            AmbitRow::Data(i) => self
                .rows
                .get(i)
                .ok_or(AmbitError::RowOutOfRange(row))?
                .clone()
                .ok_or(AmbitError::Uninitialized(row)),
            AmbitRow::T(i) => self
                .t
                .get(i)
                .ok_or(AmbitError::RowOutOfRange(row))?
                .clone()
                .ok_or(AmbitError::Uninitialized(row)),
            AmbitRow::DccTrue(i) => self
                .dcc
                .get(i)
                .ok_or(AmbitError::RowOutOfRange(row))?
                .clone()
                .ok_or(AmbitError::Uninitialized(row)),
            AmbitRow::DccBar(i) => self
                .dcc
                .get(i)
                .ok_or(AmbitError::RowOutOfRange(row))?
                .clone()
                .map(|v| v.not())
                .ok_or(AmbitError::Uninitialized(row)),
            AmbitRow::C0 => Ok(BitVec::zeros(self.width)),
            AmbitRow::C1 => Ok(BitVec::ones(self.width)),
        }
    }

    /// Writes the bitline value into `row` through its port.
    fn restore(&mut self, row: AmbitRow, bitline: &BitVec) -> Result<(), AmbitError> {
        match row {
            AmbitRow::Data(i) => {
                if i >= self.rows.len() {
                    return Err(AmbitError::RowOutOfRange(row));
                }
                self.rows[i] = Some(bitline.clone());
            }
            AmbitRow::T(i) => {
                if i >= self.t.len() {
                    return Err(AmbitError::RowOutOfRange(row));
                }
                self.t[i] = Some(bitline.clone());
            }
            AmbitRow::DccTrue(i) => {
                if i >= self.dcc.len() {
                    return Err(AmbitError::RowOutOfRange(row));
                }
                self.dcc[i] = Some(bitline.clone());
            }
            AmbitRow::DccBar(i) => {
                if i >= self.dcc.len() {
                    return Err(AmbitError::RowOutOfRange(row));
                }
                self.dcc[i] = Some(bitline.not());
            }
            AmbitRow::C0 | AmbitRow::C1 => return Err(AmbitError::WriteToConstant(row)),
        }
        Ok(())
    }

    fn majority(a: &BitVec, b: &BitVec, c: &BitVec) -> BitVec {
        a.and(b).or(&b.and(c)).or(&a.and(c))
    }

    /// Executes one command.
    ///
    /// # Errors
    ///
    /// Addressing and domain errors; state is unchanged on error for the
    /// copy commands, and may be partially updated for failed TRAs.
    pub fn execute(&mut self, cmd: &AmbitCmd) -> Result<(), AmbitError> {
        match cmd {
            AmbitCmd::Aap { src, dsts } => {
                if dsts.len() > 1 {
                    if let Some(bad) = dsts.iter().find(|d| !d.is_b_group()) {
                        return Err(AmbitError::RequiresBGroup(*bad));
                    }
                }
                let v = self.row(*src)?;
                for d in dsts {
                    self.restore(*d, &v)?;
                }
            }
            AmbitCmd::Tra { rows } => {
                self.tra(rows)?;
            }
            AmbitCmd::TraAap { rows, dst } => {
                let r = self.tra(rows)?;
                self.restore(*dst, &r)?;
            }
        }
        let profile = cmd.profile(&self.timing);
        let energy = self.power.command_energy(&profile);
        self.stats.record(profile.class, profile.duration, profile.total_wordline_events, energy);
        Ok(())
    }

    fn tra(&mut self, rows: &[AmbitRow; 3]) -> Result<BitVec, AmbitError> {
        for r in rows {
            if !r.is_b_group() {
                return Err(AmbitError::RequiresBGroup(*r));
            }
        }
        let a = self.row(rows[0])?;
        let b = self.row(rows[1])?;
        let c = self.row(rows[2])?;
        let m = Self::majority(&a, &b, &c);
        for r in rows {
            self.restore(*r, &m)?;
        }
        Ok(m)
    }

    /// Runs a command sequence.
    ///
    /// # Errors
    ///
    /// Stops at the first failing command.
    pub fn run(&mut self, cmds: &[AmbitCmd]) -> Result<(), AmbitError> {
        for c in cmds {
            self.execute(c)?;
        }
        Ok(())
    }

    /// Compiles and runs `dst := op(a, b)` over data rows, using the full
    /// 10-row reserved configuration.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run_op(
        &mut self,
        op: LogicOp,
        a: usize,
        b: usize,
        dst: usize,
    ) -> Result<(), AmbitError> {
        let cmds = op_sequence(op, a, b, dst);
        self.run(&cmds)
    }
}

/// The Ambit command sequence for `dst := op(a, b)` with the full reserved
/// configuration (command counts per the ELP2IM paper's §6.2 comparison).
pub fn op_sequence(op: LogicOp, a: usize, b: usize, dst: usize) -> Vec<AmbitCmd> {
    use AmbitRow as R;
    let (da, db, dd) = (R::Data(a), R::Data(b), R::Data(dst));
    match op {
        LogicOp::Not => vec![
            AmbitCmd::Aap { src: da, dsts: vec![R::DccTrue(0)] },
            AmbitCmd::Aap { src: R::DccBar(0), dsts: vec![dd] },
        ],
        LogicOp::And | LogicOp::Or => {
            let c = if op == LogicOp::And { R::C0 } else { R::C1 };
            vec![
                AmbitCmd::Aap { src: da, dsts: vec![R::T(0)] },
                AmbitCmd::Aap { src: db, dsts: vec![R::T(1)] },
                AmbitCmd::Aap { src: c, dsts: vec![R::T(2)] },
                AmbitCmd::TraAap { rows: [R::T(0), R::T(1), R::T(2)], dst: dd },
            ]
        }
        LogicOp::Nand | LogicOp::Nor => {
            let c = if op == LogicOp::Nand { R::C0 } else { R::C1 };
            vec![
                AmbitCmd::Aap { src: da, dsts: vec![R::T(0)] },
                AmbitCmd::Aap { src: db, dsts: vec![R::T(1)] },
                AmbitCmd::Aap { src: c, dsts: vec![R::T(2)] },
                AmbitCmd::TraAap { rows: [R::T(0), R::T(1), R::T(2)], dst: R::DccTrue(0) },
                AmbitCmd::Aap { src: R::DccBar(0), dsts: vec![dd] },
            ]
        }
        LogicOp::Xor => vec![
            // a into T0 and DCC0 together (multi-destination B-group copy).
            AmbitCmd::Aap { src: da, dsts: vec![R::T(0), R::DccTrue(0)] },
            AmbitCmd::Aap { src: db, dsts: vec![R::T(1), R::DccTrue(1)] },
            AmbitCmd::Aap { src: R::C0, dsts: vec![R::T(2), R::T(3)] },
            // a·!b → T0 (result also lands in !DCC1 and T2).
            AmbitCmd::Tra { rows: [R::T(0), R::DccBar(1), R::T(2)] },
            // !a·b → T1.
            AmbitCmd::Tra { rows: [R::DccBar(0), R::T(1), R::T(3)] },
            AmbitCmd::Aap { src: R::C1, dsts: vec![R::T(2)] },
            AmbitCmd::TraAap { rows: [R::T(0), R::T(1), R::T(2)], dst: dd },
        ],
        LogicOp::Xnor => vec![
            AmbitCmd::Aap { src: da, dsts: vec![R::T(0), R::DccTrue(0)] },
            AmbitCmd::Aap { src: db, dsts: vec![R::T(1), R::DccTrue(1)] },
            AmbitCmd::Aap { src: R::C0, dsts: vec![R::T(2), R::T(3)] },
            // a·b → T0.
            AmbitCmd::Tra { rows: [R::T(0), R::T(1), R::T(2)] },
            // !a·!b → T3.
            AmbitCmd::Tra { rows: [R::DccBar(0), R::DccBar(1), R::T(3)] },
            AmbitCmd::Aap { src: R::C1, dsts: vec![R::T(1)] },
            AmbitCmd::TraAap { rows: [R::T(0), R::T(3), R::T(1)], dst: dd },
        ],
    }
}

/// XOR with the *reduced* reserved space of a 6-row configuration
/// (T0–T2 plus a single dual-contact cell, no second DCC, no T3): both
/// product terms are computed serially through the one DCC, spilling the
/// first into `dst`. Fourteen commands — the structural reason Fig. 13's
/// small-reserved-space Ambit configurations lose so much on compound
/// operations.
pub fn xor_sequence_single_dcc(a: usize, b: usize, dst: usize) -> Vec<AmbitCmd> {
    use AmbitRow as R;
    let (da, db, dd) = (R::Data(a), R::Data(b), R::Data(dst));
    vec![
        // dst := a · !b
        AmbitCmd::Aap { src: db, dsts: vec![R::DccTrue(0)] },
        AmbitCmd::Aap { src: R::DccBar(0), dsts: vec![R::T(1)] },
        AmbitCmd::Aap { src: da, dsts: vec![R::T(0)] },
        AmbitCmd::Aap { src: R::C0, dsts: vec![R::T(2)] },
        AmbitCmd::Tra { rows: [R::T(0), R::T(1), R::T(2)] },
        AmbitCmd::Aap { src: R::T(0), dsts: vec![dd] },
        // T0 := !a · b
        AmbitCmd::Aap { src: da, dsts: vec![R::DccTrue(0)] },
        AmbitCmd::Aap { src: R::DccBar(0), dsts: vec![R::T(0)] },
        AmbitCmd::Aap { src: db, dsts: vec![R::T(1)] },
        AmbitCmd::Aap { src: R::C0, dsts: vec![R::T(2)] },
        AmbitCmd::Tra { rows: [R::T(0), R::T(1), R::T(2)] },
        // dst := dst | T0
        AmbitCmd::Aap { src: dd, dsts: vec![R::T(1)] },
        AmbitCmd::Aap { src: R::C1, dsts: vec![R::T(2)] },
        AmbitCmd::TraAap { rows: [R::T(0), R::T(1), R::T(2)], dst: dd },
    ]
}

/// Reserved-space configuration for the Fig. 13 sweep.
///
/// With fewer reserved rows, Ambit loses its pre-initialized constant rows
/// and/or the second dual-contact cell and must stage them with extra
/// copies. The per-operation command counts are a calibrated reconstruction
/// (the paper sweeps 4–10 rows without listing the exact sequences); they
/// reproduce Fig. 13's shape — a large gain from 4 → 6 rows, diminishing
/// returns beyond.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmbitConfig {
    /// Reserved rows per subarray (4, 6, 8, or 10).
    pub reserved_rows: usize,
}

impl AmbitConfig {
    /// The full configuration (8-row B-group + 2-row C-group).
    pub fn full() -> Self {
        AmbitConfig { reserved_rows: 10 }
    }

    /// Number of commands for `op` in this configuration.
    pub fn command_count(&self, op: LogicOp) -> usize {
        let col = match op {
            LogicOp::Not => 0,
            LogicOp::And | LogicOp::Or => 1,
            LogicOp::Nand | LogicOp::Nor => 2,
            LogicOp::Xor | LogicOp::Xnor => 3,
        };
        // rows →        [not, and/or, nand/nor, xor/xnor]
        let table: [(usize, [usize; 4]); 4] =
            [(4, [3, 7, 9, 13]), (6, [2, 5, 6, 12]), (8, [2, 5, 6, 9]), (10, [2, 4, 5, 7])];
        let mut best = table[0].1[col];
        for (rows, counts) in table {
            if self.reserved_rows >= rows {
                best = counts[col];
            }
        }
        best
    }

    /// Approximate latency of `op`: commands are oAAP-class except that the
    /// full configuration's XOR/XNOR include two plain TRAs (Fig. 12's
    /// 363 ns).
    pub fn op_latency(&self, op: LogicOp, t: &Ddr3Timing) -> Ns {
        let n = self.command_count(op);
        if self.reserved_rows >= 10 && matches!(op, LogicOp::Xor | LogicOp::Xnor) {
            return t.o_aap() * 5.0 + t.ap() * 2.0;
        }
        t.o_aap() * n as f64
    }

    /// Approximate command profiles of `op` for power/pump accounting.
    pub fn op_profiles(&self, op: LogicOp, t: &Ddr3Timing) -> Vec<CommandProfile> {
        op_sequence_profiles(op, self, t)
    }
}

impl Default for AmbitConfig {
    fn default() -> Self {
        AmbitConfig::full()
    }
}

fn op_sequence_profiles(op: LogicOp, cfg: &AmbitConfig, t: &Ddr3Timing) -> Vec<CommandProfile> {
    if cfg.reserved_rows >= 10 {
        return op_sequence(op, 0, 1, 2).iter().map(|c| c.profile(t)).collect();
    }
    // Reduced configurations: model every command as an oAAP-class copy
    // except one TRA-AAP compute per AND/OR-equivalent step.
    let n = cfg.command_count(op);
    let tras = match op {
        LogicOp::Not => 0,
        LogicOp::And | LogicOp::Or | LogicOp::Nand | LogicOp::Nor => 1,
        LogicOp::Xor | LogicOp::Xnor => 3,
    };
    let mut v = Vec::with_capacity(n);
    for _ in 0..tras.min(n) {
        v.push(CommandProfile::ambit_tra_aap(t));
    }
    for _ in 0..n.saturating_sub(tras) {
        v.push(CommandProfile::o_aap(t));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        BitVec::from_bools(&bits.iter().map(|&b| b != 0).collect::<Vec<_>>())
    }

    fn engine() -> AmbitEngine {
        let mut e = AmbitEngine::new(4, 8);
        e.write_row(0, bv(&[0, 0, 1, 1])).unwrap();
        e.write_row(1, bv(&[0, 1, 0, 1])).unwrap();
        e
    }

    #[test]
    fn tra_is_majority() {
        let mut e = engine();
        e.execute(&AmbitCmd::Aap { src: AmbitRow::Data(0), dsts: vec![AmbitRow::T(0)] }).unwrap();
        e.execute(&AmbitCmd::Aap { src: AmbitRow::Data(1), dsts: vec![AmbitRow::T(1)] }).unwrap();
        e.execute(&AmbitCmd::Aap { src: AmbitRow::C1, dsts: vec![AmbitRow::T(2)] }).unwrap();
        e.execute(&AmbitCmd::Tra { rows: [AmbitRow::T(0), AmbitRow::T(1), AmbitRow::T(2)] })
            .unwrap();
        // maj(a, b, 1) = a | b; the result lands in all three rows.
        for i in 0..3 {
            assert_eq!(e.row(AmbitRow::T(i)).unwrap(), bv(&[0, 1, 1, 1]));
        }
    }

    #[test]
    fn all_ops_match_software_logic() {
        for op in LogicOp::ALL {
            let mut e = engine();
            e.run_op(op, 0, 1, 2).unwrap_or_else(|err| panic!("{op}: {err}"));
            let got = e.row(AmbitRow::Data(2)).unwrap();
            let a = [false, false, true, true];
            let b = [false, true, false, true];
            let want: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| op.eval(x, y)).collect();
            assert_eq!(got.to_bools(), want, "{op}");
            // Operands survive (they were only read).
            assert_eq!(e.row(AmbitRow::Data(0)).unwrap(), bv(&[0, 0, 1, 1]), "{op}");
            assert_eq!(e.row(AmbitRow::Data(1)).unwrap(), bv(&[0, 1, 0, 1]), "{op}");
        }
    }

    /// Fig. 12 command counts: NOT 2, AND/OR 4, NAND/NOR 5, XOR/XNOR 7.
    #[test]
    fn command_counts_match_paper() {
        let counts = |op: LogicOp| op_sequence(op, 0, 1, 2).len();
        assert_eq!(counts(LogicOp::Not), 2);
        assert_eq!(counts(LogicOp::And), 4);
        assert_eq!(counts(LogicOp::Or), 4);
        assert_eq!(counts(LogicOp::Nand), 5);
        assert_eq!(counts(LogicOp::Nor), 5);
        assert_eq!(counts(LogicOp::Xor), 7);
        assert_eq!(counts(LogicOp::Xnor), 7);
    }

    /// Latencies: AND ≈ 212 ns, XOR ≈ 363 ns (§6.2).
    #[test]
    fn op_latencies_match_paper() {
        let t = Ddr3Timing::ddr3_1600();
        let lat = |op: LogicOp| -> f64 {
            op_sequence(op, 0, 1, 2).iter().map(|c| c.duration(&t).as_f64()).sum()
        };
        assert!((lat(LogicOp::Not) - 106.0).abs() < 2.0, "not {}", lat(LogicOp::Not));
        assert!((lat(LogicOp::And) - 212.0).abs() < 2.0, "and {}", lat(LogicOp::And));
        assert!((lat(LogicOp::Nand) - 265.0).abs() < 2.0, "nand {}", lat(LogicOp::Nand));
        assert!((lat(LogicOp::Xor) - 363.0).abs() < 3.0, "xor {}", lat(LogicOp::Xor));
        assert!((lat(LogicOp::Xnor) - 363.0).abs() < 3.0, "xnor {}", lat(LogicOp::Xnor));
    }

    #[test]
    fn constants_are_read_only() {
        let mut e = engine();
        let err = e
            .execute(&AmbitCmd::Aap { src: AmbitRow::Data(0), dsts: vec![AmbitRow::C0] })
            .unwrap_err();
        assert!(matches!(err, AmbitError::WriteToConstant(_)));
    }

    #[test]
    fn tra_requires_b_group() {
        let mut e = engine();
        let err = e
            .execute(&AmbitCmd::Tra { rows: [AmbitRow::Data(0), AmbitRow::T(0), AmbitRow::T(1)] })
            .unwrap_err();
        assert!(matches!(err, AmbitError::RequiresBGroup(_)));
    }

    #[test]
    fn multi_destination_copy_requires_b_group() {
        let mut e = engine();
        let err = e
            .execute(&AmbitCmd::Aap {
                src: AmbitRow::Data(0),
                dsts: vec![AmbitRow::T(0), AmbitRow::Data(3)],
            })
            .unwrap_err();
        assert!(matches!(err, AmbitError::RequiresBGroup(_)));
    }

    #[test]
    fn dcc_ports_complement() {
        let mut e = engine();
        e.execute(&AmbitCmd::Aap { src: AmbitRow::Data(0), dsts: vec![AmbitRow::DccTrue(0)] })
            .unwrap();
        assert_eq!(e.row(AmbitRow::DccBar(0)).unwrap(), bv(&[1, 1, 0, 0]));
    }

    #[test]
    fn single_dcc_xor_is_correct_and_costlier() {
        let mut e = engine();
        let cmds = xor_sequence_single_dcc(0, 1, 2);
        e.run(&cmds).unwrap();
        assert_eq!(e.row(AmbitRow::Data(2)).unwrap(), bv(&[0, 1, 1, 0]));
        // Substantially more commands than the dual-DCC sequence (7).
        assert!(cmds.len() >= 12, "{} commands", cmds.len());
        // It never touches the second DCC or T3.
        for c in &cmds {
            let rows: Vec<AmbitRow> = match c {
                AmbitCmd::Aap { src, dsts } => {
                    let mut v = vec![*src];
                    v.extend(dsts.iter().copied());
                    v
                }
                AmbitCmd::Tra { rows } => rows.to_vec(),
                AmbitCmd::TraAap { rows, dst } => {
                    let mut v = rows.to_vec();
                    v.push(*dst);
                    v
                }
            };
            for r in rows {
                assert!(
                    !matches!(r, AmbitRow::DccTrue(1) | AmbitRow::DccBar(1) | AmbitRow::T(3)),
                    "uses forbidden row {r}"
                );
            }
        }
    }

    #[test]
    fn reduced_configs_cost_more_commands() {
        let c4 = AmbitConfig { reserved_rows: 4 };
        let c6 = AmbitConfig { reserved_rows: 6 };
        let c10 = AmbitConfig::full();
        for op in LogicOp::ALL {
            assert!(c4.command_count(op) >= c6.command_count(op), "{op}");
            assert!(c6.command_count(op) >= c10.command_count(op), "{op}");
        }
        // The 4 → 6 jump is the big one for AND (Fig. 13 shape).
        assert!(c4.command_count(LogicOp::And) - c6.command_count(LogicOp::And) >= 2);
    }

    #[test]
    fn stats_and_profiles_account_wordlines() {
        let mut e = engine();
        e.run_op(LogicOp::And, 0, 1, 2).unwrap();
        // 3 oAAP (2 wl) + 1 TRA-AAP (4 wl) = 10 wordline events (§6.2's
        // activation-count disadvantage vs ELP2IM's 5).
        assert_eq!(e.stats().wordline_activations, 10);
        assert_eq!(e.stats().total_commands(), 4);
    }
}
