//! RowClone (Seshadri et al., MICRO 2013): bulk in-DRAM copy costs.
//!
//! RowClone's intra-subarray copy is the AAP primitive (§2.2.1); with
//! Ambit/ELP2IM's dual decoder domains the two activations overlap (oAAP).
//! The application layers use this module to price the data staging that
//! precedes in-memory computation (e.g. migrating rows into a compute
//! subarray, or laying out BitWeaving columns).

use elp2im_dram::command::CommandProfile;
use elp2im_dram::timing::Ddr3Timing;
use elp2im_dram::units::Ns;

/// Copy flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// Back-to-back activations within a decoder domain (~84 ns).
    Sequential,
    /// Overlapped activations across decoder domains (~53 ns).
    Overlapped,
}

/// Cost model for bulk row copies.
#[derive(Debug, Clone, PartialEq)]
pub struct BulkCopier {
    timing: Ddr3Timing,
}

impl BulkCopier {
    /// DDR3-1600 cost model.
    pub fn new(timing: Ddr3Timing) -> Self {
        BulkCopier { timing }
    }

    /// Latency of one row copy.
    pub fn copy_latency(&self, kind: CopyKind) -> Ns {
        match kind {
            CopyKind::Sequential => self.timing.aap(),
            CopyKind::Overlapped => self.timing.o_aap(),
        }
    }

    /// Latency of copying `rows` rows back to back in one subarray.
    pub fn bulk_latency(&self, rows: usize, kind: CopyKind) -> Ns {
        self.copy_latency(kind) * rows as f64
    }

    /// Command profile of one copy (for power/pump accounting).
    pub fn profile(&self, kind: CopyKind) -> CommandProfile {
        match kind {
            CopyKind::Sequential => CommandProfile::aap(&self.timing),
            CopyKind::Overlapped => CommandProfile::o_aap(&self.timing),
        }
    }
}

impl Default for BulkCopier {
    fn default() -> Self {
        BulkCopier::new(Ddr3Timing::ddr3_1600())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_latencies_match_paper() {
        let c = BulkCopier::default();
        assert!((c.copy_latency(CopyKind::Sequential).as_f64() - 84.0).abs() < 1.0);
        assert!((c.copy_latency(CopyKind::Overlapped).as_f64() - 53.0).abs() < 1.0);
    }

    #[test]
    fn bulk_scales_linearly() {
        let c = BulkCopier::default();
        let one = c.copy_latency(CopyKind::Overlapped).as_f64();
        assert!((c.bulk_latency(100, CopyKind::Overlapped).as_f64() - 100.0 * one).abs() < 1e-6);
    }

    #[test]
    fn profiles_reflect_wordline_behaviour() {
        let c = BulkCopier::default();
        assert_eq!(c.profile(CopyKind::Sequential).max_simultaneous_wordlines, 1);
        assert_eq!(c.profile(CopyKind::Overlapped).max_simultaneous_wordlines, 2);
    }
}
