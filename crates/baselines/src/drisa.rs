//! DRISA 1T1C-NOR (Li et al., MICRO 2017) — the in-subarray logic-gate
//! baseline.
//!
//! DRISA attaches NOR gates and latches after the sense amplifiers, so
//! every activation can compute `latch := !(row | latch)`-style steps at
//! full row width. The ELP2IM paper's comparison points (§6.2, Fig. 12 and
//! the case studies) characterize DRISA-NOR as:
//!
//! * fastest on NOR itself, slower than both Ambit and ELP2IM on most
//!   compound operations (every operation is decomposed into NOR steps);
//! * no reserved rows (state lives in latches) — Fig. 14(c);
//! * ~24 % array area overhead and the highest background power (the added
//!   gates and latches), Fig. 12(b);
//! * single-wordline activations only, so it is *less* throttled than
//!   Ambit under the power constraint (Fig. 14: "the throughput of
//!   Drisa_nor outperforms Ambit").
//!
//! [`DrisaEngine`] is a functional NOR machine proving the decompositions
//! correct; [`DrisaModel`] carries the per-operation cycle counts used by
//! the latency/power comparisons. The counts assume DRISA's fused
//! load-NOR/NOR-store datapaths and multiple latch registers and are
//! calibrated to reproduce the relative bars of Fig. 12(a); the plain
//! three-step machine below needs a few more steps for AND/XOR, which is
//! noted where it matters.

use elp2im_core::bitvec::BitVec;
use elp2im_core::compile::LogicOp;
use elp2im_dram::command::CommandProfile;
use elp2im_dram::timing::Ddr3Timing;
use elp2im_dram::units::Ns;

/// Background-power multiplier of DRISA's always-on gates and latches,
/// relative to commodity DRAM.
///
/// Calibrated so the Fig. 12(b) ordering holds — "Drisa consumes more
/// power as the additional logic gates and latches greatly increase
/// background power" — i.e. DRISA's per-op power exceeds both Ambit's
/// (despite Ambit's multi-wordline activation energy) and ELP2IM's.
pub const DRISA_BACKGROUND_FACTOR: f64 = 3.2;

/// Array area overhead of the NOR design (§2.2.3: "increases 24 % area").
pub const DRISA_AREA_OVERHEAD: f64 = 0.24;

/// One step of the functional NOR machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrisaStep {
    /// `latch := row`
    Load(usize),
    /// `latch := !(latch | row)`
    NorInto(usize),
    /// `row := latch`
    Store(usize),
}

/// Functional NOR machine over a set of data rows.
///
/// ```
/// use elp2im_baselines::drisa::{DrisaEngine, DrisaStep};
/// use elp2im_core::bitvec::BitVec;
///
/// let mut e = DrisaEngine::new(2, 4);
/// e.write_row(0, BitVec::from_bools(&[true, false]));
/// e.write_row(1, BitVec::from_bools(&[true, true]));
/// // NOR: latch := !(r0 | r1) → r2
/// e.run(&[DrisaStep::Load(0), DrisaStep::NorInto(1), DrisaStep::Store(2)]);
/// assert_eq!(e.row(2).unwrap().to_bools(), vec![false, false]);
/// ```
#[derive(Debug, Clone)]
pub struct DrisaEngine {
    width: usize,
    rows: Vec<Option<BitVec>>,
    latch: Option<BitVec>,
    steps_executed: u64,
}

impl DrisaEngine {
    /// Creates an engine with `data_rows` rows of `width` bits.
    pub fn new(width: usize, data_rows: usize) -> Self {
        DrisaEngine { width, rows: vec![None; data_rows], latch: None, steps_executed: 0 }
    }

    /// Host-side row write.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or out-of-range index.
    pub fn write_row(&mut self, index: usize, value: BitVec) {
        assert_eq!(value.len(), self.width, "row width mismatch");
        self.rows[index] = Some(value);
    }

    /// Reads a row.
    pub fn row(&self, index: usize) -> Option<&BitVec> {
        self.rows.get(index).and_then(Option::as_ref)
    }

    /// Steps executed so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Executes one step.
    ///
    /// # Panics
    ///
    /// Panics on uninitialized reads or a store before any load — these are
    /// programming errors in a decomposition, not runtime conditions.
    pub fn step(&mut self, s: DrisaStep) {
        match s {
            DrisaStep::Load(r) => {
                let v = self.rows[r].clone().expect("load of uninitialized row");
                self.latch = Some(v);
            }
            DrisaStep::NorInto(r) => {
                let v = self.rows[r].clone().expect("nor of uninitialized row");
                let l = self.latch.take().expect("nor before load");
                self.latch = Some(l.or(&v).not());
            }
            DrisaStep::Store(r) => {
                let l = self.latch.clone().expect("store before load");
                self.rows[r] = Some(l);
            }
        }
        self.steps_executed += 1;
    }

    /// Runs a step sequence.
    pub fn run(&mut self, steps: &[DrisaStep]) {
        for &s in steps {
            self.step(s);
        }
    }

    /// Computes `dst := op(a, b)` via NOR decomposition, using `tmp` as a
    /// scratch row where needed. Returns the number of steps used.
    pub fn run_op(&mut self, op: LogicOp, a: usize, b: usize, dst: usize, tmp: usize) -> usize {
        use DrisaStep as S;
        let steps: Vec<DrisaStep> = match op {
            LogicOp::Not => vec![S::Load(a), S::NorInto(a), S::Store(dst)],
            LogicOp::Nor => vec![S::Load(a), S::NorInto(b), S::Store(dst)],
            LogicOp::Or => vec![
                S::Load(a),
                S::NorInto(b),
                S::Store(tmp),
                S::Load(tmp),
                S::NorInto(tmp),
                S::Store(dst),
            ],
            LogicOp::And => vec![
                S::Load(a),
                S::NorInto(a),
                S::Store(tmp), // tmp = !a
                S::Load(b),
                S::NorInto(b),
                S::NorInto(tmp), // latch = !( !b | !a ) = a·b
                S::Store(dst),
            ],
            LogicOp::Nand => vec![
                S::Load(a),
                S::NorInto(a),
                S::Store(tmp),
                S::Load(b),
                S::NorInto(b),
                S::NorInto(tmp),
                S::Store(dst), // dst = a·b
                S::Load(dst),
                S::NorInto(dst),
                S::Store(dst), // invert
            ],
            LogicOp::Xor | LogicOp::Xnor => {
                // xor = !( !(a|b) | (a·b) ): build a·b in tmp, nor with nor(a,b).
                let mut v = vec![
                    S::Load(a),
                    S::NorInto(a),
                    S::Store(dst), // dst = !a
                    S::Load(b),
                    S::NorInto(b),
                    S::NorInto(dst),
                    S::Store(tmp), // tmp = a·b
                    S::Load(a),
                    S::NorInto(b),   // latch = !(a|b)
                    S::NorInto(tmp), // latch = (a|b)·!(a·b) = xor
                ];
                if op == LogicOp::Xnor {
                    v.extend([S::Store(dst), S::Load(dst), S::NorInto(dst)]);
                }
                v.push(S::Store(dst));
                v
            }
        };
        self.run(&steps);
        steps.len()
    }
}

/// The DRISA-NOR latency/power model used by the Fig. 12 comparison and
/// the application case studies.
#[derive(Debug, Clone, PartialEq)]
pub struct DrisaModel {
    /// Timing parameters.
    pub timing: Ddr3Timing,
}

impl DrisaModel {
    /// DDR3-1600 configuration.
    pub fn ddr3_1600() -> Self {
        DrisaModel { timing: Ddr3Timing::ddr3_1600() }
    }

    /// Compute cycles per operation (calibrated; see module docs).
    pub fn cycle_count(&self, op: LogicOp) -> usize {
        match op {
            LogicOp::Not => 3,
            LogicOp::And => 5,
            LogicOp::Or => 4,
            LogicOp::Nand => 4,
            LogicOp::Nor => 2,
            LogicOp::Xor => 7,
            LogicOp::Xnor => 7,
        }
    }

    /// Duration of one NOR compute step.
    pub fn step_duration(&self) -> Ns {
        self.timing.o_aap()
    }

    /// Operation latency.
    pub fn op_latency(&self, op: LogicOp) -> Ns {
        self.step_duration() * self.cycle_count(op) as f64
    }

    /// Command profiles for power/pump accounting (single-wordline steps).
    pub fn op_profiles(&self, op: LogicOp) -> Vec<CommandProfile> {
        vec![CommandProfile::drisa_step(&self.timing); self.cycle_count(op)]
    }
}

impl Default for DrisaModel {
    fn default() -> Self {
        DrisaModel::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DrisaEngine {
        let mut e = DrisaEngine::new(4, 8);
        e.write_row(0, BitVec::from_bools(&[false, false, true, true]));
        e.write_row(1, BitVec::from_bools(&[false, true, false, true]));
        e
    }

    #[test]
    fn nor_decompositions_are_correct() {
        for op in LogicOp::ALL {
            let mut e = engine();
            e.run_op(op, 0, 1, 2, 3);
            let a = [false, false, true, true];
            let b = [false, true, false, true];
            let want: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| op.eval(x, y)).collect();
            assert_eq!(e.row(2).unwrap().to_bools(), want, "{op}");
        }
    }

    #[test]
    fn model_latencies_relative_shape() {
        let m = DrisaModel::ddr3_1600();
        let t = &m.timing;
        // Fastest op is NOR — faster than Ambit's 5-command NOR (~265 ns).
        assert!(m.op_latency(LogicOp::Nor).as_f64() < 120.0);
        // Compound ops are slower than Ambit's AND (~212 ns).
        assert!(m.op_latency(LogicOp::Xor).as_f64() > 363.0);
        // Every step is a single-wordline activation.
        for p in m.op_profiles(LogicOp::Xor) {
            assert_eq!(p.max_simultaneous_wordlines, 1);
        }
        let _ = t;
    }

    #[test]
    fn cycle_counts_cover_all_ops() {
        let m = DrisaModel::default();
        for op in LogicOp::ALL {
            assert!(m.cycle_count(op) >= 2, "{op}");
            assert_eq!(m.op_profiles(op).len(), m.cycle_count(op), "{op}");
        }
    }

    #[test]
    fn step_counter_advances() {
        let mut e = engine();
        let n = e.run_op(LogicOp::And, 0, 1, 2, 3);
        assert_eq!(e.steps_executed(), n as u64);
    }

    #[test]
    #[should_panic(expected = "nor before load")]
    fn nor_without_load_panics() {
        let mut e = engine();
        e.step(DrisaStep::NorInto(0));
    }

    #[test]
    fn constants_exposed() {
        assert!((DRISA_AREA_OVERHEAD - 0.24).abs() < 1e-12);
        const { assert!(DRISA_BACKGROUND_FACTOR > 1.0) }
    }
}
