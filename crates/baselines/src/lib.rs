//! Baseline designs the ELP2IM evaluation compares against.
//!
//! * [`ambit`] — Ambit (Seshadri et al., MICRO 2017): triple-row activation
//!   over a reserved B-group with dual-contact cells and a C-group of
//!   constant rows. Includes both a functional TRA engine (property-tested
//!   majority semantics) and the command sequences whose latencies Fig. 12
//!   charts, plus the reserved-space configurations swept in Fig. 13.
//! * [`drisa`] — DRISA 1T1C-NOR (Li et al., MICRO 2017): a latency/power
//!   model over NOR-gate compute steps, plus a functional NOR machine.
//! * [`rowclone`] — RowClone (Seshadri et al., MICRO 2013) bulk-copy costs.
//! * [`cpu`] — a Kaby-Lake-class, memory-bandwidth-bound CPU reference.
//! * [`area`] — the §5.2 array-overhead comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod ambit;
pub mod ambit_device;
pub mod area;
pub mod cpu;
pub mod drisa;
pub mod rowclone;

pub use ambit::{AmbitConfig, AmbitEngine};
pub use cpu::CpuModel;
pub use drisa::DrisaModel;
