//! A handle-based bulk bitwise device over the Ambit engine — the same
//! user-facing surface as
//! [`Elp2imDevice`](elp2im_core::device::Elp2imDevice), so workloads can
//! run functionally on either design and their substrate statistics can be
//! compared one-to-one (the cross-design checks live in the workspace
//! integration tests).

use crate::ambit::{AmbitEngine, AmbitError};
use elp2im_core::bitvec::BitVec;
use elp2im_core::compile::LogicOp;
use elp2im_dram::stats::RunStats;
use std::collections::HashMap;

/// Handle to a stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AmbitRowHandle(usize);

/// Configuration of an [`AmbitDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmbitDeviceConfig {
    /// Row width in bits.
    pub width: usize,
    /// Data rows in the subarray (the B-/C-groups are extra).
    pub data_rows: usize,
}

impl Default for AmbitDeviceConfig {
    fn default() -> Self {
        AmbitDeviceConfig { width: 8192, data_rows: 512 }
    }
}

/// A bulk bitwise device in the Ambit design (full 10-row reserved
/// configuration).
///
/// ```
/// use elp2im_baselines::ambit_device::{AmbitDevice, AmbitDeviceConfig};
/// use elp2im_core::bitvec::BitVec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = AmbitDevice::new(AmbitDeviceConfig { width: 8, data_rows: 16 });
/// let a = dev.store(&BitVec::from_bools(&[true, false]))?;
/// let b = dev.store(&BitVec::from_bools(&[true, true]))?;
/// let c = dev.and(a, b)?;
/// assert_eq!(dev.load(c)?.to_bools(), vec![true, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AmbitDevice {
    config: AmbitDeviceConfig,
    engine: AmbitEngine,
    free: Vec<usize>,
    handles: HashMap<usize, (usize, usize)>,
    next_handle: usize,
}

impl AmbitDevice {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics on a zero-width or zero-row configuration.
    pub fn new(config: AmbitDeviceConfig) -> Self {
        assert!(config.width > 0 && config.data_rows > 0, "degenerate configuration");
        AmbitDevice {
            engine: AmbitEngine::new(config.width, config.data_rows),
            free: (0..config.data_rows).rev().collect(),
            handles: HashMap::new(),
            next_handle: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AmbitDeviceConfig {
        &self.config
    }

    /// Accumulated substrate statistics.
    pub fn stats(&self) -> &RunStats {
        self.engine.stats()
    }

    fn lookup(&self, h: AmbitRowHandle) -> Result<(usize, usize), AmbitError> {
        self.handles
            .get(&h.0)
            .copied()
            .ok_or(AmbitError::Uninitialized(crate::ambit::AmbitRow::Data(h.0)))
    }

    fn pad(&self, value: &BitVec) -> BitVec {
        assert!(value.len() <= self.config.width, "vector wider than a row");
        let mut padded = BitVec::zeros(self.config.width);
        for i in 0..value.len() {
            padded.set(i, value.get(i));
        }
        padded
    }

    /// Stores a bit vector into a fresh row.
    ///
    /// # Errors
    ///
    /// Returns an uninitialized-row error when the subarray is full.
    pub fn store(&mut self, value: &BitVec) -> Result<AmbitRowHandle, AmbitError> {
        let row = self
            .free
            .pop()
            .ok_or(AmbitError::RowOutOfRange(crate::ambit::AmbitRow::Data(usize::MAX)))?;
        self.engine.write_row(row, self.pad(value))?;
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (row, value.len()));
        Ok(AmbitRowHandle(h))
    }

    /// Loads a row back, trimmed to its original length.
    ///
    /// # Errors
    ///
    /// Dead handles are errors.
    pub fn load(&self, h: AmbitRowHandle) -> Result<BitVec, AmbitError> {
        let (row, len) = self.lookup(h)?;
        let full = self.engine.row(crate::ambit::AmbitRow::Data(row))?;
        Ok((0..len).map(|i| full.get(i)).collect())
    }

    /// Releases a row.
    ///
    /// # Errors
    ///
    /// Dead handles are errors.
    pub fn release(&mut self, h: AmbitRowHandle) -> Result<(), AmbitError> {
        let (row, _) = self.lookup(h)?;
        self.handles.remove(&h.0);
        self.free.push(row);
        Ok(())
    }

    /// Executes `op` into a fresh row via the Ambit command sequences.
    ///
    /// # Errors
    ///
    /// Handle and capacity errors propagate.
    pub fn binary(
        &mut self,
        op: LogicOp,
        a: AmbitRowHandle,
        b: AmbitRowHandle,
    ) -> Result<AmbitRowHandle, AmbitError> {
        let (ra, la) = self.lookup(a)?;
        let (rb, _) = self.lookup(b)?;
        let dst = self
            .free
            .pop()
            .ok_or(AmbitError::RowOutOfRange(crate::ambit::AmbitRow::Data(usize::MAX)))?;
        if let Err(e) = self.engine.run_op(op, ra, rb, dst) {
            self.free.push(dst);
            return Err(e);
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (dst, la));
        Ok(AmbitRowHandle(h))
    }

    /// Bulk AND.
    ///
    /// # Errors
    ///
    /// See [`AmbitDevice::binary`].
    pub fn and(
        &mut self,
        a: AmbitRowHandle,
        b: AmbitRowHandle,
    ) -> Result<AmbitRowHandle, AmbitError> {
        self.binary(LogicOp::And, a, b)
    }

    /// Bulk OR.
    ///
    /// # Errors
    ///
    /// See [`AmbitDevice::binary`].
    pub fn or(
        &mut self,
        a: AmbitRowHandle,
        b: AmbitRowHandle,
    ) -> Result<AmbitRowHandle, AmbitError> {
        self.binary(LogicOp::Or, a, b)
    }

    /// Bulk XOR.
    ///
    /// # Errors
    ///
    /// See [`AmbitDevice::binary`].
    pub fn xor(
        &mut self,
        a: AmbitRowHandle,
        b: AmbitRowHandle,
    ) -> Result<AmbitRowHandle, AmbitError> {
        self.binary(LogicOp::Xor, a, b)
    }

    /// Bulk NOT.
    ///
    /// # Errors
    ///
    /// Handle and capacity errors propagate.
    pub fn not(&mut self, a: AmbitRowHandle) -> Result<AmbitRowHandle, AmbitError> {
        let (ra, la) = self.lookup(a)?;
        let dst = self
            .free
            .pop()
            .ok_or(AmbitError::RowOutOfRange(crate::ambit::AmbitRow::Data(usize::MAX)))?;
        if let Err(e) = self.engine.run_op(LogicOp::Not, ra, ra, dst) {
            self.free.push(dst);
            return Err(e);
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (dst, la));
        Ok(AmbitRowHandle(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> AmbitDevice {
        AmbitDevice::new(AmbitDeviceConfig { width: 16, data_rows: 16 })
    }

    #[test]
    fn store_load_roundtrip() {
        let mut d = dev();
        let v = BitVec::from_bools(&[true, false, true]);
        let h = d.store(&v).unwrap();
        assert_eq!(d.load(h).unwrap(), v);
    }

    #[test]
    fn all_ops_match_software() {
        let a_bits = [false, false, true, true];
        let b_bits = [false, true, false, true];
        for op in LogicOp::ALL {
            let mut d = dev();
            let a = d.store(&BitVec::from_bools(&a_bits)).unwrap();
            let b = d.store(&BitVec::from_bools(&b_bits)).unwrap();
            let c = if op.is_unary() { d.not(a).unwrap() } else { d.binary(op, a, b).unwrap() };
            let got = d.load(c).unwrap();
            let want: Vec<bool> =
                a_bits.iter().zip(&b_bits).map(|(&x, &y)| op.eval(x, y)).collect();
            assert_eq!(got.to_bools(), want, "{op}");
        }
    }

    #[test]
    fn release_recycles() {
        let mut d = AmbitDevice::new(AmbitDeviceConfig { width: 8, data_rows: 2 });
        let h1 = d.store(&BitVec::ones(4)).unwrap();
        let _h2 = d.store(&BitVec::ones(4)).unwrap();
        assert!(d.store(&BitVec::ones(4)).is_err(), "full subarray");
        d.release(h1).unwrap();
        assert!(d.store(&BitVec::ones(4)).is_ok());
    }

    #[test]
    fn stats_show_the_wordline_disadvantage() {
        let mut d = dev();
        let a = d.store(&BitVec::ones(8)).unwrap();
        let b = d.store(&BitVec::zeros(8)).unwrap();
        let _ = d.and(a, b).unwrap();
        // Ambit AND: 10 wordline events (vs ELP2IM's 5 / in-place 2).
        assert_eq!(d.stats().wordline_activations, 10);
    }
}
