//! Array-overhead comparison (§5.2, Fig. 9).
//!
//! The costs are expressed in *row-equivalents per open-bitline subarray
//! pair* (two facing 512-row subarrays sharing sense amplifiers):
//!
//! * **Ambit** — the B-group's 6 logical rows occupy 8 physical rows
//!   (two dual-contact pairs) and halve the cell density of their region
//!   (Fig. 9(b): "half of the allocated region will be empty"), costing
//!   16 row-equivalents, plus the 2-row C-group: 18 total.
//! * **ELP2IM** — one dual-contact row (2 physical rows) on each side of
//!   the open-bitline pair, the per-bitline isolation transistor
//!   (~0.8 % of the array, [31]), and the split-EQ metal rework: ~14
//!   row-equivalents, i.e. **22 % less than Ambit** (§5.2).
//! * **DRISA-NOR** — no reserved rows, but +24 % die area for gates and
//!   latches (≈123 row-equivalents per 512-row pair).

use crate::drisa::DRISA_AREA_OVERHEAD;

/// Rows per subarray used for the normalization.
pub const ROWS_PER_SUBARRAY: usize = 512;

/// Designs compared by the overhead analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Unmodified commodity DRAM.
    RegularDram,
    /// Ambit with the full B-group + C-group.
    Ambit,
    /// ELP2IM with one reserved dual-contact row.
    Elp2im,
    /// DRISA 1T1C-NOR.
    DrisaNor,
}

impl Design {
    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Design::RegularDram => "DRAM",
            Design::Ambit => "Ambit",
            Design::Elp2im => "ELP2IM",
            Design::DrisaNor => "Drisa_nor",
        }
    }
}

/// Reserved rows visible to software (Fig. 13(c)/14(c)).
pub fn reserved_rows(design: Design) -> usize {
    match design {
        Design::RegularDram => 0,
        Design::Ambit => 8,
        Design::Elp2im => 1,
        Design::DrisaNor => 0,
    }
}

/// Array overhead in row-equivalents per open-bitline subarray pair.
pub fn array_overhead_rows(design: Design) -> f64 {
    match design {
        Design::RegularDram => 0.0,
        // 8 physical B-group rows at half density (16) + 2 C-group rows.
        Design::Ambit => 16.0 + 2.0,
        // One DCC row (2 physical) per side (4) + isolation transistors
        // (0.8 % of 2 × 512 rows ≈ 8.2) + split-EQ rework (~1.8).
        Design::Elp2im => 4.0 + 0.008 * (2.0 * ROWS_PER_SUBARRAY as f64) + 1.8,
        // +24 % of the 2 × 512-row pair.
        Design::DrisaNor => DRISA_AREA_OVERHEAD * 2.0 * ROWS_PER_SUBARRAY as f64,
    }
}

/// Fractional overhead relative to the subarray pair's cell area.
pub fn relative_overhead(design: Design) -> f64 {
    array_overhead_rows(design) / (2.0 * ROWS_PER_SUBARRAY as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.2: "the total array overhead of ELP2IM is still 22 % less than
    /// Ambit under open-bitline architecture."
    #[test]
    fn elp2im_is_about_22_percent_below_ambit() {
        let ratio = array_overhead_rows(Design::Elp2im) / array_overhead_rows(Design::Ambit);
        assert!(
            (0.74..=0.82).contains(&ratio),
            "ELP2IM/Ambit overhead ratio = {ratio:.3} (expect ~0.78)"
        );
    }

    #[test]
    fn drisa_has_the_largest_area_overhead() {
        assert!(array_overhead_rows(Design::DrisaNor) > array_overhead_rows(Design::Ambit));
        assert!((relative_overhead(Design::DrisaNor) - 0.24).abs() < 1e-9);
    }

    #[test]
    fn reserved_row_counts_match_fig13_and_fig14() {
        assert_eq!(reserved_rows(Design::Ambit), 8);
        assert_eq!(reserved_rows(Design::Elp2im), 1);
        assert_eq!(reserved_rows(Design::DrisaNor), 0);
        assert_eq!(reserved_rows(Design::RegularDram), 0);
    }

    #[test]
    fn regular_dram_has_zero_overhead() {
        assert_eq!(array_overhead_rows(Design::RegularDram), 0.0);
        assert_eq!(relative_overhead(Design::RegularDram), 0.0);
    }
}
