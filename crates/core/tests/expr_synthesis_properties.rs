//! Property-based tests of the expression compilers over random,
//! heavily-shared DAGs: both the synthesis-first front-end and the greedy
//! structural lowering must compute the exact truth table, and the greedy
//! temp free-list must never exhaust when `temps.len()` matches the
//! analytical live-set bound ([`temp_bound`]).

use elp2im_core::bitvec::BitVec;
use elp2im_core::compile::CompileMode;
use elp2im_core::engine::SubarrayEngine;
use elp2im_core::expr::{compile_expr, compile_expr_greedy, temp_bound, Expr, ExprOperands};
use elp2im_core::isa::Program;
use elp2im_core::primitive::RowRef;
use proptest::prelude::*;
use std::rc::Rc;

/// Builds an expression DAG from a pool: every new node picks operands
/// from {variables} ∪ {all previous nodes} by index, so subterms are
/// shared aggressively (including degenerate `x & x` / `x ^ x` shapes),
/// and the shared operands are literally the same `Rc`.
fn build_dag(n_vars: usize, ops: &[(u8, usize, usize, usize)]) -> Expr {
    let mut pool: Vec<Rc<Expr>> = (0..n_vars).map(|i| Rc::new(Expr::Var(i))).collect();
    for &(kind, a, b, c) in ops {
        let pick = |i: usize| Rc::clone(&pool[i % pool.len()]);
        let node = match kind % 6 {
            0 => Expr::Not(pick(a)),
            1 => Expr::And(pick(a), pick(b)),
            2 => Expr::Or(pick(a), pick(b)),
            3 => Expr::Xor(pick(a), pick(b)),
            4 => Expr::Maj(pick(a), pick(b), pick(c)),
            _ => Expr::Ite(pick(a), pick(b), pick(c)),
        };
        pool.push(Rc::new(node));
    }
    pool.last().expect("at least one variable").as_ref().clone()
}

/// Runs `prog` over the full truth table of `n_vars` variables and checks
/// the destination row against `expr.eval_bitvec`.
fn assert_computes(expr: &Expr, prog: &Program, rows: &ExprOperands, n_vars: usize) {
    let width = 1usize << n_vars;
    let inputs: Vec<BitVec> =
        (0..n_vars).map(|v| (0..width).map(|row| (row >> v) & 1 == 1).collect()).collect();
    let data_rows = 1 + rows
        .inputs
        .iter()
        .chain(std::iter::once(&rows.dst))
        .chain(&rows.temps)
        .max()
        .copied()
        .unwrap_or(0);
    let mut e = SubarrayEngine::new(width, data_rows, 2);
    for (i, v) in inputs.iter().enumerate() {
        e.write_row(i, v.clone()).unwrap();
    }
    e.write_row(rows.dst, BitVec::zeros(width)).unwrap();
    for &t in &rows.temps {
        e.write_row(t, BitVec::zeros(width)).unwrap();
    }
    e.run(prog.primitives()).unwrap_or_else(|err| panic!("{expr}: {err}"));
    let got = e.row(RowRef::Data(rows.dst)).unwrap();
    assert_eq!(got, expr.eval_bitvec(&inputs), "{expr}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The synthesis-first front-end computes the exact truth table of any
    /// random shared DAG (generous temp pool).
    #[test]
    fn compile_expr_matches_eval_bitvec(
        n_vars in 1usize..=6,
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0usize..64, 0usize..64), 1..14),
    ) {
        let expr = build_dag(n_vars, &ops);
        let rows = ExprOperands {
            inputs: (0..n_vars).collect(),
            dst: n_vars,
            temps: (n_vars + 1..n_vars + 13).collect(),
        };
        let prog = compile_expr(&expr, &rows, CompileMode::LowLatency, 2).unwrap();
        assert_computes(&expr, &prog, &rows, n_vars);
    }

    /// The greedy lowering with EXACTLY `temp_bound(expr)` temporaries
    /// never exhausts the free list — the bound is a faithful simulation
    /// of the allocator — and still computes the right function.
    #[test]
    fn greedy_never_exhausts_at_the_analytical_bound(
        n_vars in 1usize..=6,
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0usize..64, 0usize..64), 1..14),
    ) {
        let expr = build_dag(n_vars, &ops);
        let bound = temp_bound(&expr);
        let rows = ExprOperands {
            inputs: (0..n_vars).collect(),
            dst: n_vars,
            temps: (n_vars + 1..n_vars + 1 + bound).collect(),
        };
        let prog = compile_expr_greedy(&expr, &rows, CompileMode::LowLatency, 2)
            .unwrap_or_else(|e| panic!("bound {bound} insufficient for {expr}: {e}"));
        assert_computes(&expr, &prog, &rows, n_vars);
    }

    /// The high-throughput strategy obeys the same contracts (no reserved
    /// rows beyond one, no overlapped commands are legal there).
    #[test]
    fn high_throughput_greedy_matches_eval_bitvec(
        n_vars in 1usize..=4,
        ops in proptest::collection::vec((0u8..6, 0usize..64, 0usize..64, 0usize..64), 1..8),
    ) {
        let expr = build_dag(n_vars, &ops);
        let bound = temp_bound(&expr);
        let rows = ExprOperands {
            inputs: (0..n_vars).collect(),
            dst: n_vars,
            temps: (n_vars + 1..n_vars + 1 + bound).collect(),
        };
        let prog = compile_expr_greedy(&expr, &rows, CompileMode::HighThroughput, 1).unwrap();
        assert_computes(&expr, &prog, &rows, n_vars);
    }
}
