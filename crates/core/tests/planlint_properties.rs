//! Differential property tests of the plan-level static verifier.
//!
//! Two directions: every plan a [`DeviceArray`] prepares must certify
//! clean, execute without error, agree with a bit-level software model,
//! and carry a proven makespan identical to the scheduler's; and seeded
//! mutations of legal plans (claim swaps, pump overdraws, cross-stream
//! sharing) must be rejected with a concrete counterexample naming the
//! offending instants or rows.

use elp2im_core::batch::{BatchConfig, DeviceArray};
use elp2im_core::bitvec::BitVec;
use elp2im_core::compile::{CompileMode, LogicOp};
use elp2im_core::isa::Program;
use elp2im_core::optimizer::PhysRow;
use elp2im_core::planlint::{certify, BatchPlan, HazardKind, PlanDiagnosticKind, PlanStep};
use elp2im_core::primitive::{Primitive, RowRef};
use elp2im_core::validate::SubarrayShape;
use elp2im_dram::constraint::PumpBudget;
use elp2im_dram::geometry::{Geometry, Topology};
use elp2im_dram::units::Ps;
use elp2im_dram::verify::{ClaimedCommand, TimingViolation};
use proptest::prelude::*;
use std::sync::Arc;

fn geometry(banks: usize) -> Geometry {
    Geometry { banks, subarrays_per_bank: 2, rows_per_subarray: 8, row_bytes: 8 }
}

fn pattern(bits: usize, modulus: usize) -> BitVec {
    (0..bits).map(|i| i % modulus == 0).collect()
}

/// A one-command `AP` plan over `banks` single-subarray streams, with an
/// explicit claimed schedule attached by the caller.
fn ap_plan(banks: usize, budget: PumpBudget) -> BatchPlan {
    let topology = Topology::module(geometry(banks));
    let mut plan =
        BatchPlan::new(topology.clone(), budget, SubarrayShape { data_rows: 8, dcc_rows: 2 });
    for unit in 0..banks {
        plan.live_in.insert((unit, 0), [PhysRow::Data(0)].into_iter().collect());
        plan.steps.push(PlanStep {
            unit,
            subarray: 0,
            stream: topology.path(unit),
            program: Arc::new(Program::new("ap", vec![Primitive::Ap { row: RowRef::Data(0) }])),
        });
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Differential acceptance: random op chains over random topologies
    /// prepare plans that certify clean, match a software model bit for
    /// bit, and whose statically proven makespan equals the scheduler's.
    #[test]
    fn certified_plans_execute_cleanly_and_match_the_model(
        channels in 1usize..=2,
        ranks in 1usize..=2,
        banks in 1usize..=2,
        jedec in any::<bool>(),
        high_throughput in any::<bool>(),
        ops in proptest::collection::vec((0usize..7, 0usize..8, 0usize..8), 1..=4),
        ma in 2usize..9,
        mb in 2usize..9,
    ) {
        let mut array = DeviceArray::new(BatchConfig {
            topology: Topology::new(channels, ranks, geometry(banks)),
            budget: if jedec { PumpBudget::jedec_ddr3_1600() } else { PumpBudget::unconstrained() },
            mode: if high_throughput { CompileMode::HighThroughput } else { CompileMode::LowLatency },
            ..BatchConfig::default()
        });
        let bits = array.row_bits() * channels * ranks * banks;
        let a = pattern(bits, ma);
        let b = pattern(bits, mb);
        let mut handles = vec![array.store(&a).unwrap(), array.store(&b).unwrap()];
        let mut models = vec![a, b];
        for &(op_idx, ia, ib) in &ops {
            let op = LogicOp::ALL[op_idx];
            let (xa, xb) = (ia % handles.len(), ib % handles.len());
            let (h, run) = if op.is_unary() {
                array.not(handles[xa]).unwrap()
            } else {
                array.binary(op, handles[xa], handles[xb]).unwrap()
            };
            // The prepared plan certifies clean and proves the same
            // makespan the scheduler produced.
            let report = certify(array.last_plan().unwrap());
            prop_assert!(
                report.is_accepted(),
                "prepared plan rejected: {:?}",
                report.first_error().map(|d| d.to_string())
            );
            let proven = report.makespan().unwrap().as_f64();
            let scheduled = run.stats().makespan.as_f64();
            prop_assert!(
                (proven - scheduled).abs() < 1e-9,
                "proven makespan {proven} != scheduled {scheduled}"
            );
            handles.push(h);
            models.push(
                (0..bits).map(|i| op.eval(models[xa].get(i), models[xb].get(i))).collect(),
            );
        }
        for (h, model) in handles.iter().zip(&models) {
            prop_assert!(array.load(*h).unwrap() == *model, "device result diverges from model");
        }
    }

    /// Mutation rejection: a legally spaced claimed schedule verifies
    /// clean; swapping two adjacent same-channel issue instants is
    /// rejected with a bus-order counterexample naming both instants.
    #[test]
    fn swapped_claim_instants_are_rejected_with_the_instants_named(
        banks in 2usize..=5,
        jitters in proptest::collection::vec(0u64..5_000, 5),
        swap in 0usize..4,
    ) {
        let mut plan = ap_plan(banks, PumpBudget::unconstrained());
        let dur = plan.steps[0].program.profiles(&plan.timing)[0].duration.to_ps();
        let mut starts = Vec::new();
        let mut t = Ps::ZERO;
        for &jitter in jitters.iter().take(banks) {
            starts.push(t);
            t = t + dur + Ps(1 + jitter);
        }
        plan.claims =
            Some((0..banks).map(|u| ClaimedCommand { path: plan.topology.path(u), start: starts[u] }).collect());
        let report = certify(&plan);
        prop_assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));

        let swap = swap % (banks - 1);
        let claims = plan.claims.as_mut().unwrap();
        let (s0, s1) = (claims[swap].start, claims[swap + 1].start);
        claims[swap].start = s1;
        claims[swap + 1].start = s0;
        let report = certify(&plan);
        prop_assert!(!report.is_accepted());
        match &report.first_error().unwrap().kind {
            PlanDiagnosticKind::Timing(TimingViolation::BusOrderViolation {
                channel, start, prev_start, ..
            }) => {
                prop_assert_eq!(*channel, 0);
                prop_assert_eq!(*start, s0);
                prop_assert_eq!(*prev_start, s1);
            }
            other => prop_assert!(false, "expected a bus-order violation, got {other:?}"),
        }
    }

    /// Mutation rejection: five activations claimed inside one tFAW
    /// window under the JEDEC budget overdraw the charge pump, and the
    /// counterexample's deferral instant lies past the claimed one.
    #[test]
    fn overdrawn_pump_claims_are_rejected_with_a_deferral_instant(
        banks in 5usize..=8,
        spacing in 0u64..10_000,
    ) {
        let mut plan = ap_plan(banks, PumpBudget::jedec_ddr3_1600());
        plan.claims = Some(
            (0..banks)
                .map(|u| ClaimedCommand { path: plan.topology.path(u), start: Ps(u as u64 * spacing) })
                .collect(),
        );
        let report = certify(&plan);
        prop_assert!(!report.is_accepted());
        let overrun = report.diagnostics().iter().find_map(|d| match &d.kind {
            PlanDiagnosticKind::Timing(TimingViolation::PumpOverrun { start, earliest, .. }) => {
                Some((*start, *earliest))
            }
            _ => None,
        });
        let (start, earliest) = overrun.expect("a pump overrun must be reported");
        prop_assert!(earliest > start, "deferral {earliest} must lie past the claim {start}");
    }

    /// Mutation rejection: routing one of two subarray-sharing steps onto
    /// a foreign stream is rejected as a RAW hazard whose witness is the
    /// actually shared row; the same plan on one stream certifies clean.
    #[test]
    fn cross_stream_sharing_is_rejected_with_the_shared_row(
        perm in 0usize..336,
        unit in 0usize..4,
        other in 0usize..4,
    ) {
        prop_assume!(unit != other);
        // Decode `perm` into three distinct rows of 0..8 (8 * 7 * 6 = 336).
        let mut pool: Vec<usize> = (0..8).collect();
        let ra = pool.remove(perm % 8);
        let rm = pool.remove(perm / 8 % 7);
        let rc = pool.remove(perm / 56 % 6);
        let topology = Topology::module(geometry(4));
        let producer = Arc::new(Program::new(
            "produce",
            vec![Primitive::Aap { src: RowRef::Data(ra), dst: RowRef::Data(rm) }],
        ));
        let consumer = Arc::new(Program::new(
            "consume",
            vec![Primitive::Aap { src: RowRef::Data(rm), dst: RowRef::Data(rc) }],
        ));
        let step = |stream_unit: usize, program: &Arc<Program>| PlanStep {
            unit,
            subarray: 0,
            stream: topology.path(stream_unit),
            program: Arc::clone(program),
        };
        let mut plan = BatchPlan::new(
            topology.clone(),
            PumpBudget::unconstrained(),
            SubarrayShape { data_rows: 8, dcc_rows: 2 },
        );
        plan.live_in.insert((unit, 0), [PhysRow::Data(ra)].into_iter().collect());
        plan.steps = vec![step(unit, &producer), step(other, &consumer)];
        let report = certify(&plan);
        prop_assert!(!report.is_accepted());
        match &report.first_error().unwrap().kind {
            PlanDiagnosticKind::CrossStreamHazard { kind, row, first, second, .. } => {
                prop_assert_eq!(*kind, HazardKind::Raw);
                prop_assert_eq!(*row, PhysRow::Data(rm));
                prop_assert_eq!((*first, *second), (0, 1));
            }
            other => prop_assert!(false, "expected a cross-stream hazard, got {other:?}"),
        }

        plan.steps = vec![step(unit, &producer), step(unit, &consumer)];
        let report = certify(&plan);
        prop_assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));
        prop_assert!(report.makespan().unwrap().as_f64() > 0.0);
    }
}
