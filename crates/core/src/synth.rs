//! Logic synthesis: arbitrary multi-input/multi-output boolean networks →
//! minimum-latency primitive programs, self-checked end to end.
//!
//! The pipeline has four stages:
//!
//! 1. **Ingest** — one or more [`Expr`]s (including the MAJ/MUX/ITE
//!    extensions) become a shared logic network in the [`EGraph`], with
//!    structurally equal subterms hashconsed into one class.
//! 2. **Rewrite** — equality saturation under the boolean rule set of
//!    [`crate::egraph`] (De Morgan both ways, absorption, factoring, XOR
//!    recognition/decomposition, MAJ identities, constant folding) grows
//!    the space of equivalent implementations.
//! 3. **Extract** — a per-class min-cost fixpoint picks the cheapest gate
//!    per class under the Table-1 latency cost model
//!    ([`crate::compile::gate_latency`]), with NAND/NOR/XNOR *fused*
//!    through `Not` classes so De-Morgan'd forms cost one gate, not three.
//!    The chosen gates are scheduled onto rows with last-use temp
//!    recycling and every output root steered directly into its
//!    destination row.
//! 4. **Validate** — the extracted program is translation-validated with
//!    the [`crate::analysis`] truth-table oracle: the abstract interpreter
//!    recovers each destination row's exact truth table, which must equal
//!    the network's reference table (and the program must be statically
//!    clean and leave no pending regulation). A synthesis result is never
//!    handed out unproven.
//!
//! [`crate::expr::compile_expr`] is a thin front-end over this module: it
//! tries synthesis first and falls back to greedy lowering past the
//! [`MAX_VARS`] exhaustive-analysis budget (or when synthesis cannot place
//! the network in the provided rows).

use crate::analysis::{analyze, TruthTable, MAX_VARS};
use crate::compile::{compile, gate_latency, CompileMode, LogicOp, Operands};
use crate::egraph::{EGraph, Id, Node, SaturationLimits, SaturationStats};
use crate::error::CoreError;
use crate::expr::Expr;
use crate::isa::Program;
use crate::optimizer::{optimize, PhysRow};
use crate::primitive::{Primitive, RowRef};
use crate::validate::SubarrayShape;
use elp2im_dram::timing::Ddr3Timing;
use std::collections::HashMap;

/// Row assignment for a multi-output synthesis.
#[derive(Debug, Clone)]
pub struct SynthOperands {
    /// Data-row index of each input variable (variable `j` lives in
    /// `inputs[j]`).
    pub inputs: Vec<usize>,
    /// Destination row of each output, in `outputs` order. Must be
    /// distinct from the inputs and temps.
    pub dsts: Vec<usize>,
    /// Temporary rows the scheduler may use (distinct from inputs/dsts).
    pub temps: Vec<usize>,
}

/// A successful synthesis: the validated program plus pipeline statistics.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The extracted, optimized, truth-table-validated program.
    pub program: Program,
    /// Saturation statistics of the rewrite stage.
    pub saturation: SaturationStats,
    /// Gates the extraction chose (before cross-gate optimization).
    pub gates: usize,
    /// The extraction cost estimate in nanoseconds (tree cost; the real
    /// program is never slower than `gates` compiled independently).
    pub estimated_ns: f64,
}

/// Per-gate latency costs for the extraction, measured from the compiler
/// itself so the model can never drift from what `compile()` emits.
#[derive(Debug, Clone, Copy)]
struct GateCosts {
    not: f64,
    and: f64,
    or: f64,
    nand: f64,
    nor: f64,
    xor: f64,
    xnor: f64,
    constant: f64,
}

impl GateCosts {
    fn measure(mode: CompileMode, reserved_rows: usize) -> Result<Self, CoreError> {
        let t = Ddr3Timing::ddr3_1600();
        let g = |op: LogicOp| -> Result<f64, CoreError> {
            gate_latency(op, mode, reserved_rows, &t).map(|ns| ns.as_f64()).ok_or_else(|| {
                CoreError::SynthesisFailed(format!(
                    "{op} has no compiled form under {mode:?} with {reserved_rows} reserved rows"
                ))
            })
        };
        let not = g(LogicOp::Not)?;
        // Constants are materialized as `dst := !x; dst := dst OP x`.
        let inplace = gate_latency(LogicOp::And, CompileMode::InPlace, reserved_rows, &t)
            .map_or(f64::INFINITY, |ns| ns.as_f64());
        Ok(GateCosts {
            not,
            and: g(LogicOp::And)?,
            or: g(LogicOp::Or)?,
            nand: g(LogicOp::Nand)?,
            nor: g(LogicOp::Nor)?,
            xor: g(LogicOp::Xor)?,
            xnor: g(LogicOp::Xnor)?,
            constant: not + inplace,
        })
    }

    fn of(&self, op: LogicOp) -> f64 {
        match op {
            LogicOp::Not => self.not,
            LogicOp::And => self.and,
            LogicOp::Or => self.or,
            LogicOp::Nand => self.nand,
            LogicOp::Nor => self.nor,
            LogicOp::Xor => self.xor,
            LogicOp::Xnor => self.xnor,
        }
    }
}

/// The implementation the extraction chose for one equivalence class.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Gate {
    /// The class is input variable `i` — free.
    Input(usize),
    /// A boolean constant (materialized only when it reaches a root).
    Constant(bool),
    /// A compiled one- or two-operand gate over other classes (`b == a`
    /// for the unary NOT).
    Op(LogicOp, Id, Id),
}

impl Gate {
    fn children(self) -> Vec<Id> {
        match self {
            Gate::Input(_) | Gate::Constant(_) => Vec::new(),
            Gate::Op(op, a, b) => {
                if op.is_unary() {
                    vec![a]
                } else {
                    vec![a, b]
                }
            }
        }
    }
}

/// Synthesizes one program computing every expression of `outputs` into
/// the corresponding `rows.dsts` row, sharing subterms across outputs.
///
/// The result is validated before being returned: the static analyzer must
/// accept the program, each destination row's recovered truth table must
/// equal the network's reference table exactly, and no pseudo-precharge
/// regulation may dangle.
///
/// # Errors
///
/// * [`CoreError::InvalidHandle`] — an expression names a variable with no
///   input row, or `outputs`/`rows.dsts` lengths differ.
/// * [`CoreError::SynthesisFailed`] — more than [`MAX_VARS`] inputs (the
///   exhaustive oracle budget), no compiled gate forms under `mode`, or a
///   constant output with no input row to materialize from.
/// * [`CoreError::CapacityExceeded`] — `rows.temps` cannot hold the chosen
///   network's live set.
/// * Compilation errors of individual gates propagate.
pub fn synthesize(
    outputs: &[Expr],
    rows: &SynthOperands,
    mode: CompileMode,
    reserved_rows: usize,
) -> Result<Synthesis, CoreError> {
    if outputs.len() != rows.dsts.len() {
        return Err(CoreError::InvalidHandle(rows.dsts.len()));
    }
    if outputs.is_empty() {
        return Err(CoreError::SynthesisFailed("no outputs requested".into()));
    }
    if rows.inputs.len() > MAX_VARS {
        return Err(CoreError::SynthesisFailed(format!(
            "{} inputs exceed the {MAX_VARS}-variable exhaustive-validation budget",
            rows.inputs.len()
        )));
    }
    for e in outputs {
        if let Some(max) = e.max_var() {
            if max >= rows.inputs.len() {
                return Err(CoreError::InvalidHandle(max));
            }
        }
    }
    let costs = GateCosts::measure(mode, reserved_rows)?;

    // Stage 1: ingest the network.
    let mut g = EGraph::new();
    let mut memo: HashMap<Expr, Id> = HashMap::new();
    let roots: Vec<Id> = outputs.iter().map(|e| ingest(e, &mut g, &mut memo)).collect();

    // Stage 2: equality saturation.
    let saturation = g.saturate(SaturationLimits::default());

    // Stage 3: extraction + scheduling.
    let choices = extract(&g, &costs);
    let mut sched = Scheduler {
        g: &g,
        choices: &choices,
        rows,
        mode,
        reserved_rows,
        free: rows.temps.iter().rev().copied().collect(),
        row_of: HashMap::new(),
        remaining: HashMap::new(),
        prims: Vec::new(),
        gates: 0,
    };
    let mut estimated_ns = 0.0;
    for (k, &root) in roots.iter().enumerate() {
        let root = g.find(root);
        let choice = choices.get(&root).ok_or_else(|| {
            CoreError::SynthesisFailed("extraction found no implementation".into())
        })?;
        estimated_ns += choice.0;
        sched.count_uses(root);
        sched.schedule_root(root, rows.dsts[k])?;
        let _ = k;
    }
    let gates = sched.gates;
    let name = match outputs {
        [single] => format!("synth({single})"),
        many => format!("synth[{} outputs]", many.len()),
    };
    let prog = Program::new(name, sched.prims);

    // Cross-gate optimization (merge/trim/overlap), preserving operands
    // and results. Overlap is only legal when the isolation transistor is
    // assumed — the low-latency strategy; high-throughput programs must
    // keep single-wordline commands.
    let mut preserve: Vec<PhysRow> = rows.inputs.iter().map(|&r| PhysRow::Data(r)).collect();
    preserve.extend(rows.dsts.iter().map(|&r| PhysRow::Data(r)));
    let prog = optimize(&prog, &preserve, mode == CompileMode::LowLatency);

    // Stage 4: exhaustive truth-table validation (the verify_transform
    // oracle applied to the final program against the source network).
    validate(&prog, outputs, rows, reserved_rows)?;

    Ok(Synthesis { program: prog, saturation, gates, estimated_ns })
}

/// Recursively adds `e` to the graph; ITE/MUX is decomposed at ingest
/// (`c·t + !c·f`), every other variant maps to one node.
fn ingest(e: &Expr, g: &mut EGraph, memo: &mut HashMap<Expr, Id>) -> Id {
    if let Some(&id) = memo.get(e) {
        return g.find(id);
    }
    let id = match e {
        Expr::Var(i) => g.add(Node::Var(*i as u32)),
        Expr::Not(x) => {
            let x = ingest(x, g, memo);
            g.add(Node::Not(x))
        }
        Expr::And(a, b) => {
            let (a, b) = (ingest(a, g, memo), ingest(b, g, memo));
            g.add(Node::And(a, b))
        }
        Expr::Or(a, b) => {
            let (a, b) = (ingest(a, g, memo), ingest(b, g, memo));
            g.add(Node::Or(a, b))
        }
        Expr::Xor(a, b) => {
            let (a, b) = (ingest(a, g, memo), ingest(b, g, memo));
            g.add(Node::Xor(a, b))
        }
        Expr::Maj(a, b, c) => {
            let (a, b, c) = (ingest(a, g, memo), ingest(b, g, memo), ingest(c, g, memo));
            g.add(Node::Maj(a, b, c))
        }
        Expr::Ite(c, t, f) => {
            let (c, t, f) = (ingest(c, g, memo), ingest(t, g, memo), ingest(f, g, memo));
            let nc = g.add(Node::Not(c));
            let then_arm = g.add(Node::And(c, t));
            let else_arm = g.add(Node::And(nc, f));
            g.add(Node::Or(then_arm, else_arm))
        }
    };
    memo.insert(e.clone(), id);
    id
}

/// Per-class min-cost fixpoint over the saturated graph. Tree cost (shared
/// classes are charged per reference, then deduplicated by the scheduler),
/// with fused NAND/NOR/XNOR candidates looked up through `Not` classes.
/// All gate costs are strictly positive, so every chosen gate's operands
/// have strictly smaller best cost and the chosen network is acyclic.
fn extract(g: &EGraph, costs: &GateCosts) -> HashMap<Id, (f64, Gate)> {
    let mut best: HashMap<Id, (f64, Gate)> = HashMap::new();
    let ids = g.class_ids();
    loop {
        let mut changed = false;
        for &id in &ids {
            let mut candidate: Option<(f64, Gate)> = best.get(&id).copied();
            for node in g.nodes(id) {
                for (cost, gate) in node_candidates(g, costs, node, &best) {
                    if candidate.is_none_or(|(c, _)| cost < c) {
                        candidate = Some((cost, gate));
                    }
                }
            }
            if let Some((cost, gate)) = candidate {
                let prev = best.insert(id, (cost, gate));
                if prev.is_none_or(|(c, _)| cost < c) {
                    changed = true;
                } else if let Some(prev) = prev {
                    best.insert(id, prev); // keep the earlier, equal-or-better pick
                }
            }
        }
        if !changed {
            break;
        }
    }
    best
}

fn node_candidates(
    g: &EGraph,
    costs: &GateCosts,
    node: &Node,
    best: &HashMap<Id, (f64, Gate)>,
) -> Vec<(f64, Gate)> {
    let cost_of = |id: Id| best.get(&g.find(id)).map(|&(c, _)| c);
    let mut out = Vec::new();
    match *node {
        Node::Var(i) => out.push((0.0, Gate::Input(i as usize))),
        Node::Const(v) => out.push((costs.constant, Gate::Constant(v))),
        Node::Not(a) => {
            if let Some(ca) = cost_of(a) {
                out.push((costs.not + ca, Gate::Op(LogicOp::Not, g.find(a), g.find(a))));
            }
            // Fused complements: !(x·y) = NAND, !(x+y) = NOR, !(x⊕y) = XNOR.
            for inner in g.nodes(a) {
                let (op, x, y) = match *inner {
                    Node::And(x, y) => (LogicOp::Nand, x, y),
                    Node::Or(x, y) => (LogicOp::Nor, x, y),
                    Node::Xor(x, y) => (LogicOp::Xnor, x, y),
                    _ => continue,
                };
                if let (Some(cx), Some(cy)) = (cost_of(x), cost_of(y)) {
                    out.push((costs.of(op) + cx + cy, Gate::Op(op, g.find(x), g.find(y))));
                }
            }
        }
        Node::And(a, b) | Node::Or(a, b) | Node::Xor(a, b) => {
            let op = match node {
                Node::And(..) => LogicOp::And,
                Node::Or(..) => LogicOp::Or,
                _ => LogicOp::Xor,
            };
            if let (Some(ca), Some(cb)) = (cost_of(a), cost_of(b)) {
                out.push((costs.of(op) + ca + cb, Gate::Op(op, g.find(a), g.find(b))));
            }
        }
        // MAJ has no direct primitive sequence; the saturation rules always
        // provide a decomposed alternative in the same class.
        Node::Maj(..) => {}
    }
    out
}

struct Scheduler<'a> {
    g: &'a EGraph,
    choices: &'a HashMap<Id, (f64, Gate)>,
    rows: &'a SynthOperands,
    mode: CompileMode,
    reserved_rows: usize,
    free: Vec<usize>,
    /// Class → row currently holding its value.
    row_of: HashMap<Id, usize>,
    /// Class → references not yet consumed (roots + gate operands).
    remaining: HashMap<Id, usize>,
    prims: Vec<Primitive>,
    gates: usize,
}

impl Scheduler<'_> {
    fn gate_of(&self, id: Id) -> Gate {
        self.choices[&self.g.find(id)].1
    }

    /// Adds this root's references (itself plus, for first visits, the
    /// whole chosen cone) to the pending-use counts.
    fn count_uses(&mut self, root: Id) {
        let root = self.g.find(root);
        let n = self.remaining.entry(root).or_insert(0);
        *n += 1;
        let first_visit = *n == 1 && !self.row_of.contains_key(&root);
        // Re-walk children only the first time the class is referenced;
        // later references reuse the already-computed row.
        if first_visit {
            for child in self.gate_of(root).children() {
                self.count_uses(child);
            }
        }
    }

    fn alloc(&mut self) -> Result<usize, CoreError> {
        self.free.pop().ok_or(CoreError::CapacityExceeded { rows: self.rows.temps.len() })
    }

    /// Consumes one reference to `id`, recycling its temp at the last use.
    fn release(&mut self, id: Id) {
        let id = self.g.find(id);
        if matches!(self.gate_of(id), Gate::Input(_)) {
            return; // inputs are the caller's rows
        }
        if let Some(n) = self.remaining.get_mut(&id) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                if let Some(row) = self.row_of.get(&id).copied() {
                    if self.rows.temps.contains(&row) {
                        self.row_of.remove(&id);
                        self.free.push(row);
                    }
                }
            }
        }
    }

    /// Computes the class into a row (a temp unless steered), memoized.
    fn compute(&mut self, id: Id, steer: Option<usize>) -> Result<usize, CoreError> {
        let id = self.g.find(id);
        match self.gate_of(id) {
            Gate::Input(i) => Ok(self.rows.inputs[i]),
            Gate::Constant(v) => {
                if let Some(&row) = self.row_of.get(&id) {
                    return Ok(row);
                }
                let dst = match steer {
                    Some(d) => d,
                    None => self.alloc()?,
                };
                self.materialize_const(v, dst)?;
                self.row_of.insert(id, dst);
                Ok(dst)
            }
            Gate::Op(op, a, b) => {
                if let Some(&row) = self.row_of.get(&id) {
                    return Ok(row);
                }
                let row_a = self.compute(a, None)?;
                let row_b = if op.is_unary() { row_a } else { self.compute(b, None)? };
                // Steer into the requested destination when it is not an
                // operand of this gate; otherwise fall back to a temp
                // (the caller copies afterwards).
                let dst = match steer {
                    Some(d) if d != row_a && d != row_b => d,
                    _ => self.alloc()?,
                };
                let operands = Operands { a: row_a, b: row_b, dst, scratch: None };
                let gate = compile(op, self.mode, operands, self.reserved_rows)?;
                self.prims.extend(gate.primitives().iter().copied());
                self.gates += 1;
                self.row_of.insert(id, dst);
                self.release(a);
                if !op.is_unary() {
                    self.release(b);
                }
                Ok(dst)
            }
        }
    }

    /// Computes one output root into its destination row.
    fn schedule_root(&mut self, root: Id, dst: usize) -> Result<(), CoreError> {
        let root = self.g.find(root);
        let row = self.compute(root, Some(dst))?;
        if row != dst {
            // Var roots, roots whose value already lives elsewhere (shared
            // with an earlier output), or a steering conflict: copy.
            self.prims.push(Primitive::Aap { src: RowRef::Data(row), dst: RowRef::Data(dst) });
        }
        self.release(root);
        Ok(())
    }

    /// `dst := v` from whole cloth: `dst := !x; dst := dst OP x` with
    /// `OP = AND` for 0 (x·!x) and `OP = OR` for 1 (x + !x).
    fn materialize_const(&mut self, v: bool, dst: usize) -> Result<(), CoreError> {
        let &x = self.rows.inputs.first().ok_or_else(|| {
            CoreError::SynthesisFailed("constant output needs at least one input row".into())
        })?;
        let not = compile(
            LogicOp::Not,
            self.mode,
            Operands { a: x, b: x, dst, scratch: None },
            self.reserved_rows,
        )?;
        self.prims.extend(not.primitives().iter().copied());
        let op = if v { LogicOp::Or } else { LogicOp::And };
        let fold = compile(
            op,
            CompileMode::InPlace,
            Operands { a: x, b: dst, dst, scratch: None },
            self.reserved_rows,
        )?;
        self.prims.extend(fold.primitives().iter().copied());
        self.gates += 2;
        Ok(())
    }
}

/// The exhaustive oracle: recover each destination row's truth table from
/// the final program via the abstract interpreter and compare against the
/// network reference. Also demands static cleanliness and no dangling
/// regulation.
fn validate(
    prog: &Program,
    outputs: &[Expr],
    rows: &SynthOperands,
    reserved_rows: usize,
) -> Result<(), CoreError> {
    let vars = rows.inputs.len();
    let live_in: Vec<PhysRow> = rows.inputs.iter().map(|&r| PhysRow::Data(r)).collect();
    let max_row =
        rows.inputs.iter().chain(&rows.dsts).chain(&rows.temps).fold(0usize, |m, &r| m.max(r));
    let inferred = crate::analysis::infer_shape(prog);
    let shape = SubarrayShape {
        data_rows: inferred.data_rows.max(max_row + 1),
        dcc_rows: inferred.dcc_rows.max(reserved_rows),
    };
    let report = analyze(prog, shape, &live_in);
    if let Some(v) = report.to_violations().into_iter().next() {
        return Err(CoreError::StaticViolation(v));
    }
    if report.has_pending_regulation() {
        return Err(CoreError::SynthesisFailed(
            "synthesized program leaves a pending regulation".into(),
        ));
    }
    let mut memo: HashMap<Expr, TruthTable> = HashMap::new();
    for (e, &dst) in outputs.iter().zip(&rows.dsts) {
        let want = reference_table(e, vars, &mut memo);
        match report.row_value(PhysRow::Data(dst)) {
            Some(got) if *got == want => {}
            Some(got) => {
                let m = got.first_difference(&want).unwrap_or(0);
                return Err(CoreError::SynthesisFailed(format!(
                    "extraction disproved: row r{dst} disagrees with the network under \
                     assignment {m:#b} (program: {}, network: {})",
                    u8::from(got.eval(m)),
                    u8::from(want.eval(m)),
                )));
            }
            None => {
                return Err(CoreError::SynthesisFailed(format!(
                    "destination row r{dst} does not hold a tracked value"
                )));
            }
        }
    }
    Ok(())
}

/// The network's exact truth table, memoized over structurally shared
/// subterms.
pub(crate) fn reference_table(
    e: &Expr,
    vars: usize,
    memo: &mut HashMap<Expr, TruthTable>,
) -> TruthTable {
    if let Some(t) = memo.get(e) {
        return t.clone();
    }
    let t = match e {
        Expr::Var(i) => TruthTable::var(vars, *i),
        Expr::Not(x) => reference_table(x, vars, memo).not(),
        Expr::And(a, b) => reference_table(a, vars, memo).and(&reference_table(b, vars, memo)),
        Expr::Or(a, b) => reference_table(a, vars, memo).or(&reference_table(b, vars, memo)),
        Expr::Xor(a, b) => reference_table(a, vars, memo).xor(&reference_table(b, vars, memo)),
        Expr::Maj(a, b, c) => {
            let (ta, tb, tc) = (
                reference_table(a, vars, memo),
                reference_table(b, vars, memo),
                reference_table(c, vars, memo),
            );
            ta.and(&tb).or(&ta.and(&tc)).or(&tb.and(&tc))
        }
        Expr::Ite(c, t, f) => {
            let tc = reference_table(c, vars, memo);
            tc.and(&reference_table(t, vars, memo))
                .or(&tc.not().and(&reference_table(f, vars, memo)))
        }
    };
    memo.insert(e.clone(), t.clone());
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;
    use crate::engine::SubarrayEngine;
    use crate::expr::{compile_expr_greedy, ExprOperands};
    use elp2im_dram::timing::Ddr3Timing;

    fn ops(n_vars: usize, n_out: usize, n_temps: usize) -> SynthOperands {
        SynthOperands {
            inputs: (0..n_vars).collect(),
            dsts: (n_vars..n_vars + n_out).collect(),
            temps: (n_vars + n_out..n_vars + n_out + n_temps).collect(),
        }
    }

    /// Runs a synthesized program over the full truth table and checks
    /// every output column against `Expr::eval`.
    fn run_and_check(outputs: &[Expr], rows: &SynthOperands, prog: &Program, reserved: usize) {
        let n = rows.inputs.len();
        let width = 1usize << n;
        let total_rows = 1 + rows.inputs.iter().chain(&rows.dsts).chain(&rows.temps).max().unwrap();
        let mut e = SubarrayEngine::new(width, total_rows, reserved.max(1));
        for (j, &r) in rows.inputs.iter().enumerate() {
            let col: BitVec = (0..width).map(|m| (m >> j) & 1 == 1).collect();
            e.write_row(r, col).unwrap();
        }
        for &r in rows.dsts.iter().chain(&rows.temps) {
            e.write_row(r, BitVec::zeros(width)).unwrap();
        }
        e.run(prog.primitives()).unwrap_or_else(|err| panic!("{}: {err}", prog.name()));
        for (expr, &dst) in outputs.iter().zip(&rows.dsts) {
            let got = e.row(RowRef::Data(dst)).unwrap().to_bools();
            for (m, &bit) in got.iter().enumerate() {
                let assignment: Vec<bool> = (0..n).map(|j| (m >> j) & 1 == 1).collect();
                assert_eq!(bit, expr.eval(&assignment), "{expr} at {m:#b}");
            }
        }
    }

    #[test]
    fn synthesis_rediscovers_the_fig8_xor_latency() {
        let t = Ddr3Timing::ddr3_1600();
        let v = Expr::var;
        // Hand the synthesizer the *sum-of-products* form — it must
        // recognize XOR and land on the Fig. 8 seq6 cost.
        let sop = (v(0) & !v(1)) | (!v(0) & v(1));
        let rows = ops(2, 1, 2);
        let s = synthesize(std::slice::from_ref(&sop), &rows, CompileMode::LowLatency, 2).unwrap();
        let ns = s.program.latency(&t).as_f64();
        assert!(ns <= 297.0, "auto XOR {ns:.1} ns must match/beat hand seq6 (297 ns)");
        run_and_check(&[sop], &rows, &s.program, 2);
    }

    #[test]
    fn xor_written_directly_also_hits_seq6() {
        let t = Ddr3Timing::ddr3_1600();
        let e = Expr::var(0) ^ Expr::var(1);
        let rows = ops(2, 1, 2);
        let s = synthesize(std::slice::from_ref(&e), &rows, CompileMode::LowLatency, 2).unwrap();
        assert!(s.program.latency(&t).as_f64() <= 297.0);
        run_and_check(&[e], &rows, &s.program, 2);
    }

    #[test]
    fn maj3_compiles_and_beats_the_naive_sop() {
        let t = Ddr3Timing::ddr3_1600();
        let m = Expr::maj(Expr::var(0), Expr::var(1), Expr::var(2));
        let rows = ops(3, 1, 4);
        let s = synthesize(std::slice::from_ref(&m), &rows, CompileMode::LowLatency, 2).unwrap();
        run_and_check(&[m], &rows, &s.program, 2);
        // Naive SOP is 5 gates (3 AND + 2 OR ≈ 795 ns); factoring gives 4.
        assert!(s.gates <= 4, "MAJ3 should extract to ≤4 gates, got {}", s.gates);
        assert!(s.program.latency(&t).as_f64() < 795.0);
    }

    #[test]
    fn mux_compiles_and_verifies() {
        let m = Expr::mux(Expr::var(0), Expr::var(1), Expr::var(2));
        let rows = ops(3, 1, 4);
        let s = synthesize(std::slice::from_ref(&m), &rows, CompileMode::LowLatency, 2).unwrap();
        run_and_check(&[m], &rows, &s.program, 2);
    }

    #[test]
    fn wide_functions_compile() {
        let v = Expr::var;
        // A 5-input function the fixed op menu never had.
        let e = (v(0) & v(1)) ^ Expr::maj(v(2), v(3), v(4)) | !v(0);
        let rows = ops(5, 1, 6);
        let s = synthesize(std::slice::from_ref(&e), &rows, CompileMode::LowLatency, 2).unwrap();
        run_and_check(&[e], &rows, &s.program, 2);
    }

    #[test]
    fn multi_output_full_adder_shares_subterms() {
        let v = Expr::var;
        let sum = v(0) ^ v(1) ^ v(2);
        let carry = Expr::maj(v(0), v(1), v(2));
        let rows = ops(3, 2, 4);
        let s =
            synthesize(&[sum.clone(), carry.clone()], &rows, CompileMode::LowLatency, 2).unwrap();
        run_and_check(&[sum, carry], &rows, &s.program, 2);
    }

    /// A bit-serial ripple-carry adder micro-program: every column is an
    /// independent addition; per-bit full-adder programs are concatenated
    /// with the carry row chaining into the next bit.
    #[test]
    fn bit_serial_adder_micro_program() {
        const BITS: usize = 4;
        let v = Expr::var;
        // Row layout: a_k = 3k, b_k = 3k+1, sum_k = 3k+2; carries and temps
        // after the per-bit block.
        let carry_base = 3 * BITS;
        let temps: Vec<usize> = (carry_base + BITS..carry_base + BITS + 4).collect();
        let mut prog = Program::new("ripple-adder", vec![]);
        for k in 0..BITS {
            let (a, b, s) = (3 * k, 3 * k + 1, 3 * k + 2);
            let cin = carry_base + k; // carry_base+0 is the zero row for bit 0
            let cout = carry_base + k + 1;
            let (sum, carry) = if k == 0 {
                (v(0) ^ v(1), v(0) & v(1)) // half adder
            } else {
                (v(0) ^ v(1) ^ v(2), Expr::maj(v(0), v(1), v(2)))
            };
            let inputs = if k == 0 { vec![a, b] } else { vec![a, b, cin] };
            let rows = SynthOperands { inputs, dsts: vec![s, cout], temps: temps.clone() };
            let stage = synthesize(&[sum, carry], &rows, CompileMode::LowLatency, 2).unwrap();
            prog = prog.then(stage.program);
        }
        // Drive it: width-16 columns = 16 independent (a, b) pairs.
        let width = 16;
        let total_rows = carry_base + BITS + 1 + 4;
        let mut e = SubarrayEngine::new(width, total_rows, 2);
        let pairs: Vec<(u64, u64)> =
            (0..width as u64).map(|i| (i % 13, (i * 7 + 3) % 16)).collect();
        for k in 0..BITS {
            let a_col: BitVec = pairs.iter().map(|&(a, _)| (a >> k) & 1 == 1).collect();
            let b_col: BitVec = pairs.iter().map(|&(_, b)| (b >> k) & 1 == 1).collect();
            e.write_row(3 * k, a_col).unwrap();
            e.write_row(3 * k + 1, b_col).unwrap();
            e.write_row(3 * k + 2, BitVec::zeros(width)).unwrap();
        }
        for r in carry_base..total_rows {
            e.write_row(r, BitVec::zeros(width)).unwrap();
        }
        e.run(prog.primitives()).unwrap();
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let want = (a + b) % (1 << BITS); // sum bits mod 2^BITS
            for k in 0..BITS {
                let got = e.row(RowRef::Data(3 * k + 2)).unwrap().to_bools()[i];
                assert_eq!(got, (want >> k) & 1 == 1, "column {i}: {a}+{b} bit {k}");
            }
        }
    }

    #[test]
    fn constant_outputs_materialize() {
        let v = Expr::var;
        // x ^ x = 0 and x | !x = 1: both fold to constants.
        let zero = v(0) ^ v(0);
        let one = v(0) | !v(0);
        let rows = ops(1, 2, 2);
        let s =
            synthesize(&[zero.clone(), one.clone()], &rows, CompileMode::LowLatency, 2).unwrap();
        run_and_check(&[zero, one], &rows, &s.program, 2);
    }

    #[test]
    fn var_passthrough_copies() {
        let e = Expr::var(1);
        let rows = ops(2, 1, 1);
        let s = synthesize(std::slice::from_ref(&e), &rows, CompileMode::LowLatency, 1).unwrap();
        run_and_check(&[e], &rows, &s.program, 1);
    }

    #[test]
    fn temp_exhaustion_is_reported() {
        let v = Expr::var;
        let e = (v(0) & v(1)) ^ (v(2) | v(3));
        let rows = SynthOperands { inputs: vec![0, 1, 2, 3], dsts: vec![4], temps: vec![5] };
        let err = synthesize(&[e], &rows, CompileMode::LowLatency, 2).unwrap_err();
        assert!(matches!(err, CoreError::CapacityExceeded { .. }), "{err}");
    }

    #[test]
    fn too_many_inputs_refused() {
        let v = Expr::var;
        let mut e = v(0);
        for i in 1..=MAX_VARS {
            e = e ^ v(i);
        }
        let rows = ops(MAX_VARS + 1, 1, 8);
        let err = synthesize(&[e], &rows, CompileMode::LowLatency, 2).unwrap_err();
        assert!(matches!(err, CoreError::SynthesisFailed(_)), "{err}");
    }

    #[test]
    fn high_throughput_mode_keeps_single_wordline_commands() {
        let v = Expr::var;
        let e = !(v(0) & v(1)) ^ v(2);
        let rows = ops(3, 1, 3);
        let s =
            synthesize(std::slice::from_ref(&e), &rows, CompileMode::HighThroughput, 1).unwrap();
        run_and_check(&[e], &rows, &s.program, 1);
        for p in s.program.primitives() {
            assert!(
                !matches!(
                    p,
                    Primitive::OAap { .. }
                        | Primitive::OApp { .. }
                        | Primitive::OtApp { .. }
                        | Primitive::OAppCopy { .. }
                ),
                "high-throughput synthesis must not emit overlapped commands: {p}"
            );
        }
    }

    #[test]
    fn synthesis_agrees_with_greedy_by_verify_transform() {
        use crate::analysis::verify_transform;
        let v = Expr::var;
        for expr in [
            v(0) ^ v(1),
            Expr::majority(v(0), v(1), v(2)),
            (v(0) & v(1)) | (!v(2) ^ v(0)),
            !(v(0) | (v(1) & v(2))),
        ] {
            let n = expr.max_var().unwrap() + 1;
            let rows = ops(n, 1, 6);
            let s =
                synthesize(std::slice::from_ref(&expr), &rows, CompileMode::LowLatency, 2).unwrap();
            let greedy_rows = ExprOperands {
                inputs: rows.inputs.clone(),
                dst: rows.dsts[0],
                temps: rows.temps.clone(),
            };
            let greedy =
                compile_expr_greedy(&expr, &greedy_rows, CompileMode::LowLatency, 2).unwrap();
            verify_transform(&greedy, &s.program, Some(&[PhysRow::Data(rows.dsts[0])]))
                .unwrap_or_else(|e| panic!("{expr}: {e}"));
        }
    }
}
