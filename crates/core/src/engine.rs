//! The functional subarray engine.
//!
//! Executes primitive programs over whole rows ([`BitVec`]s) with the exact
//! pseudo-precharge semantics of §3.2:
//!
//! * After an APP-class primitive, every bitline column is either
//!   **overwriting** (it kept the full-rail surviving value — Vdd for OR,
//!   Gnd for AND) or **neutral** (regulated to Vdd/2). The engine tracks
//!   this as a per-column keep-mask.
//! * The next activation applies the pending regulation: overwritten
//!   columns take the surviving value; neutral columns sense the stored
//!   cell — which is precisely `dst := dst OP src`.
//! * Trimmed primitives (tAPP/otAPP) skip the restore and *destroy* the
//!   accessed row; reading a destroyed row is an error.
//! * Dual-contact rows read and restore complemented values through their
//!   bar port, implementing NOT.
//!
//! Every executed primitive is accounted against the DDR3 substrate
//! (latency, energy, wordline events) via its command profile.

use crate::bitvec::BitVec;
use crate::error::CoreError;
use crate::primitive::{Primitive, RegulateMode, RowRef};
use elp2im_dram::power::PowerModel;
use elp2im_dram::stats::RunStats;
use elp2im_dram::timing::Ddr3Timing;

/// Pending bitline regulation left by an APP-class primitive.
#[derive(Debug, Clone, PartialEq)]
struct Regulation {
    /// Columns holding the full-rail surviving value (will overwrite).
    keep: BitVec,
    /// Which mode produced it.
    mode: RegulateMode,
}

/// One entry of an execution trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Position in the executed stream.
    pub index: usize,
    /// The primitive executed.
    pub primitive: Primitive,
    /// Start time (cumulative busy time before this primitive).
    pub start: elp2im_dram::units::Ns,
    /// Duration.
    pub duration: elp2im_dram::units::Ns,
}

/// The functional model of one ELP2IM subarray.
///
/// ```
/// use elp2im_core::engine::SubarrayEngine;
/// use elp2im_core::bitvec::BitVec;
/// use elp2im_core::primitive::{Primitive, RegulateMode, RowRef};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut e = SubarrayEngine::new(8, 16, 1);
/// e.write_row(0, BitVec::from_bools(&[true, true, false, false, true, false, true, false]))?;
/// e.write_row(1, BitVec::from_bools(&[true, false, true, false, false, false, true, true]))?;
/// // In-place OR: APP(r0) then AP(r1) computes r1 := r0 | r1.
/// e.execute(&Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or })?;
/// e.execute(&Primitive::Ap { row: RowRef::Data(1) })?;
/// assert_eq!(e.row(RowRef::Data(1))?.to_bools(),
///            vec![true, true, true, false, true, false, true, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SubarrayEngine {
    width: usize,
    rows: Vec<Option<BitVec>>,
    dcc: Vec<Option<BitVec>>,
    regulation: Option<Regulation>,
    timing: Ddr3Timing,
    power: PowerModel,
    stats: RunStats,
    trace: Option<Vec<TraceEntry>>,
    /// Wordline-raise counts per physical row: `[data rows..., dcc rows...]`.
    /// Reserved rows absorb most of a PIM workload's activations (they are
    /// touched by nearly every operation), which matters for disturbance
    /// budgets (row-hammer-style neighbor disturb).
    activation_counts: Vec<u64>,
}

impl SubarrayEngine {
    /// Creates an engine with `data_rows` regular rows of `width` bits and
    /// `dcc_rows` reserved dual-contact rows (the paper's base design has
    /// one; the accelerator configuration of §6.3.3 has two).
    pub fn new(width: usize, data_rows: usize, dcc_rows: usize) -> Self {
        SubarrayEngine {
            width,
            rows: vec![None; data_rows],
            dcc: vec![None; dcc_rows],
            regulation: None,
            timing: Ddr3Timing::ddr3_1600(),
            power: PowerModel::micron_ddr3_1600(),
            stats: RunStats::new(),
            trace: None,
            activation_counts: vec![0; data_rows + dcc_rows],
        }
    }

    /// Wordline-raise count of one physical row.
    pub fn activation_count(&self, row: RowRef) -> u64 {
        let idx = match row {
            RowRef::Data(i) => i,
            RowRef::DccTrue(i) | RowRef::DccBar(i) => self.rows.len() + i,
        };
        self.activation_counts.get(idx).copied().unwrap_or(0)
    }

    /// The most-activated row and its count — the disturbance hot spot.
    pub fn hottest_row(&self) -> (RowRef, u64) {
        let (idx, &count) = self
            .activation_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .expect("at least one row");
        let row = if idx < self.rows.len() {
            RowRef::Data(idx)
        } else {
            RowRef::DccTrue(idx - self.rows.len())
        };
        (row, count)
    }

    /// Enables primitive-level execution tracing (start time, duration
    /// per command) — the view a logic analyzer on the command bus would
    /// give.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Row width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of regular data rows.
    pub fn data_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of reserved dual-contact rows.
    pub fn dcc_rows(&self) -> usize {
        self.dcc.len()
    }

    /// Accumulated substrate statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Resets the statistics counters (rows keep their contents).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::new();
    }

    /// The timing parameter set in use.
    pub fn timing(&self) -> &Ddr3Timing {
        &self.timing
    }

    /// Whether a regulation is pending (a well-formed program ends with
    /// none).
    pub fn has_pending_regulation(&self) -> bool {
        self.regulation.is_some()
    }

    /// Writes a data row directly (host-side store, outside PIM timing).
    ///
    /// # Errors
    ///
    /// [`CoreError::WidthMismatch`] or [`CoreError::RowOutOfRange`].
    pub fn write_row(&mut self, index: usize, value: BitVec) -> Result<(), CoreError> {
        if value.len() != self.width {
            return Err(CoreError::WidthMismatch { expected: self.width, got: value.len() });
        }
        let (rows, dcc_rows) = (self.rows.len(), self.dcc.len());
        let slot = self.rows.get_mut(index).ok_or(CoreError::RowOutOfRange {
            row: RowRef::Data(index),
            rows,
            dcc_rows,
        })?;
        *slot = Some(value);
        Ok(())
    }

    fn out_of_range(&self, row: RowRef) -> CoreError {
        CoreError::RowOutOfRange { row, rows: self.rows.len(), dcc_rows: self.dcc.len() }
    }

    /// Reads the stored content of a row (through the referenced port).
    ///
    /// # Errors
    ///
    /// Out-of-range, destroyed, or uninitialized rows are errors.
    pub fn row(&self, row: RowRef) -> Result<BitVec, CoreError> {
        match row {
            RowRef::Data(i) => {
                let slot = self.rows.get(i).ok_or_else(|| self.out_of_range(row))?;
                slot.clone().ok_or(CoreError::UninitializedRow(row))
            }
            RowRef::DccTrue(i) => {
                let slot = self.dcc.get(i).ok_or_else(|| self.out_of_range(row))?;
                slot.clone().ok_or(CoreError::UninitializedRow(row))
            }
            RowRef::DccBar(i) => {
                let slot = self.dcc.get(i).ok_or_else(|| self.out_of_range(row))?;
                slot.clone().map(|v| v.not()).ok_or(CoreError::UninitializedRow(row))
            }
        }
    }

    /// Whether the row currently holds valid data.
    pub fn is_live(&self, row: RowRef) -> bool {
        match row {
            RowRef::Data(i) => self.rows.get(i).is_some_and(Option::is_some),
            RowRef::DccTrue(i) | RowRef::DccBar(i) => self.dcc.get(i).is_some_and(Option::is_some),
        }
    }

    /// Stores `value` through `row`'s port (bar port stores the
    /// complement of what the bitline carries — the cell keeps `!value`).
    fn restore(&mut self, row: RowRef, bitline_value: &BitVec) -> Result<(), CoreError> {
        match row {
            RowRef::Data(i) => {
                if i >= self.rows.len() {
                    return Err(self.out_of_range(row));
                }
                self.rows[i] = Some(bitline_value.clone());
            }
            RowRef::DccTrue(i) => {
                if i >= self.dcc.len() {
                    return Err(self.out_of_range(row));
                }
                self.dcc[i] = Some(bitline_value.clone());
            }
            RowRef::DccBar(i) => {
                if i >= self.dcc.len() {
                    return Err(self.out_of_range(row));
                }
                self.dcc[i] = Some(bitline_value.not());
            }
        }
        Ok(())
    }

    fn destroy(&mut self, row: RowRef) -> Result<(), CoreError> {
        match row {
            RowRef::Data(i) => {
                if i >= self.rows.len() {
                    return Err(self.out_of_range(row));
                }
                self.rows[i] = None;
            }
            RowRef::DccTrue(i) | RowRef::DccBar(i) => {
                if i >= self.dcc.len() {
                    return Err(self.out_of_range(row));
                }
                self.dcc[i] = None;
            }
        }
        Ok(())
    }

    /// Activates `row`: applies any pending regulation and returns the
    /// value latched on the bitline.
    fn activate(&mut self, row: RowRef) -> Result<BitVec, CoreError> {
        let stored = match self.row(row) {
            Ok(v) => v,
            Err(CoreError::UninitializedRow(r)) => {
                // Distinguish "never written" from "destroyed by a trim":
                // both are unreadable; report destroyed reads specially when
                // regulation would not fully overwrite them. For simplicity
                // and safety, any read of an invalid row is an error.
                return Err(CoreError::DestroyedRowRead(r));
            }
            Err(e) => return Err(e),
        };
        let value = match self.regulation.take() {
            None => stored,
            Some(reg) => {
                let surviving = BitVec::splat(reg.mode.surviving_bit(), self.width);
                stored.merge(&reg.keep, &surviving)
            }
        };
        Ok(value)
    }

    fn check_dual_decoder(&self, p: &Primitive, a: RowRef, b: RowRef) -> Result<(), CoreError> {
        if p.requires_dual_decoder() && a.is_reserved() == b.is_reserved() {
            return Err(CoreError::DualDecoderViolation { a, b });
        }
        Ok(())
    }

    fn account(&mut self, p: &Primitive) {
        for row in p.rows() {
            let idx = match row {
                RowRef::Data(i) => i,
                RowRef::DccTrue(i) | RowRef::DccBar(i) => self.rows.len() + i,
            };
            if let Some(c) = self.activation_counts.get_mut(idx) {
                *c += 1;
            }
        }
        let profile = p.profile(&self.timing);
        let energy = self.power.command_energy(&profile);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                index: trace.len(),
                primitive: *p,
                start: self.stats.busy_time,
                duration: profile.duration,
            });
        }
        self.stats.record(profile.class, profile.duration, profile.total_wordline_events, energy);
        // A single subarray executes strictly serially, so the wall clock
        // equals the busy time; stamping it here keeps serial runs from
        // reporting a zero makespan. Background (standby) energy accrues
        // over that same window.
        self.stats.makespan = self.stats.busy_time;
        self.stats.background_energy = self.power.background_energy(self.stats.busy_time, 1.0);
    }

    /// Executes one primitive.
    ///
    /// # Errors
    ///
    /// Propagates addressing, destroyed-row, and decoder-domain errors; on
    /// error the engine state is unchanged except that a consumed
    /// regulation is not reinstated (matching hardware, where the charge is
    /// gone).
    pub fn execute(&mut self, p: &Primitive) -> Result<(), CoreError> {
        match *p {
            Primitive::Ap { row } => {
                let v = self.activate(row)?;
                self.restore(row, &v)?;
            }
            Primitive::Aap { src, dst } | Primitive::OAap { src, dst } => {
                self.check_dual_decoder(p, src, dst)?;
                let v = self.activate(src)?;
                self.restore(src, &v)?;
                self.restore(dst, &v)?;
            }
            Primitive::App { row, mode } | Primitive::OApp { row, mode } => {
                let v = self.activate(row)?;
                self.restore(row, &v)?;
                self.set_regulation(mode, &v);
            }
            Primitive::TApp { row, mode } | Primitive::OtApp { row, mode } => {
                let v = self.activate(row)?;
                self.destroy(row)?;
                self.set_regulation(mode, &v);
            }
            Primitive::OAppCopy { src, dst, mode } => {
                self.check_dual_decoder(p, src, dst)?;
                let v = self.activate(src)?;
                self.restore(src, &v)?;
                self.restore(dst, &v)?;
                self.set_regulation(mode, &v);
            }
        }
        self.account(p);
        Ok(())
    }

    fn set_regulation(&mut self, mode: RegulateMode, bitline: &BitVec) {
        let keep = match mode {
            RegulateMode::Or => bitline.clone(),
            RegulateMode::And => bitline.not(),
        };
        self.regulation = Some(Regulation { keep, mode });
    }

    /// Executes a sequence of primitives in order.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failing primitive.
    pub fn run(&mut self, program: &[Primitive]) -> Result<(), CoreError> {
        for p in program {
            self.execute(p)?;
        }
        Ok(())
    }

    /// Statically verifies `program` against the engine's current state
    /// (the §5.1 memory-controller check on a buffered sequence), then
    /// executes it — the program is rejected *before* any primitive issues,
    /// so an invalid sequence cannot partially corrupt row state.
    ///
    /// Debug builds additionally assert the sanitizer cross-check: a
    /// program the analyzer accepted must execute without an engine error
    /// (static and dynamic semantics agree).
    ///
    /// # Errors
    ///
    /// [`CoreError::StaticViolation`] when the analyzer rejects the
    /// program; engine errors otherwise (which the cross-check makes
    /// unreachable for accepted programs).
    ///
    /// # Panics
    ///
    /// Debug builds panic if an analyzer-accepted program still trips an
    /// engine error — a static/dynamic divergence bug.
    pub fn run_verified(&mut self, program: &crate::isa::Program) -> Result<(), CoreError> {
        use crate::optimizer::PhysRow;
        use crate::validate::SubarrayShape;
        let shape = SubarrayShape { data_rows: self.rows.len(), dcc_rows: self.dcc.len() };
        let mut live_in: Vec<PhysRow> = Vec::new();
        live_in.extend(
            self.rows
                .iter()
                .enumerate()
                .filter(|(_, r)| r.is_some())
                .map(|(i, _)| PhysRow::Data(i)),
        );
        live_in.extend(
            self.dcc.iter().enumerate().filter(|(_, r)| r.is_some()).map(|(i, _)| PhysRow::Dcc(i)),
        );
        let report = crate::analysis::analyze(program, shape, &live_in);
        if let Some(v) = report.to_violations().into_iter().next() {
            return Err(v.into());
        }
        for p in program.primitives() {
            if let Err(e) = self.execute(p) {
                debug_assert!(
                    false,
                    "sanitizer: analyzer accepted '{}' but '{p}' failed: {e}",
                    program.name()
                );
                return Err(e);
            }
        }
        Ok(())
    }

    /// Failure injection: flips one stored bit, modeling a sensing error
    /// of the kind the Fig. 11 Monte-Carlo quantifies (e.g. a TRA margin
    /// collapse or a Vdd/2 mismatch flip). Subsequent operations propagate
    /// the corruption, which is how the §6.1.2 ECC discussion manifests:
    /// bitwise PIM results carry no error-correction.
    ///
    /// # Errors
    ///
    /// The target row must be live; `column` must be in range.
    pub fn inject_bit_error(&mut self, row: RowRef, column: usize) -> Result<(), CoreError> {
        if column >= self.width {
            return Err(CoreError::WidthMismatch { expected: self.width, got: column + 1 });
        }
        let mut value = self.row(row)?;
        value.set(column, !value.get(column));
        // Store through the same port semantics as a restore.
        self.restore(row, &value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        BitVec::from_bools(&bits.iter().map(|&b| b != 0).collect::<Vec<_>>())
    }

    fn engine() -> SubarrayEngine {
        let mut e = SubarrayEngine::new(4, 8, 2);
        e.write_row(0, bv(&[1, 1, 0, 0])).unwrap();
        e.write_row(1, bv(&[1, 0, 1, 0])).unwrap();
        e
    }

    #[test]
    fn in_place_or_and_truth_tables() {
        // APP(r0)·or ; AP(r1) → r1 := r0 | r1 across all column combos.
        let mut e = engine();
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 1, 1, 0]));
        // Source must be restored intact.
        assert_eq!(e.row(RowRef::Data(0)).unwrap(), bv(&[1, 1, 0, 0]));

        let mut e = engine();
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::And },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 0, 0, 0]));
    }

    #[test]
    fn aap_copies() {
        let mut e = engine();
        e.execute(&Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(2) }).unwrap();
        assert_eq!(e.row(RowRef::Data(2)).unwrap(), bv(&[1, 1, 0, 0]));
    }

    #[test]
    fn oaap_requires_different_domains() {
        let mut e = engine();
        let err =
            e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::Data(2) }).unwrap_err();
        assert!(matches!(err, CoreError::DualDecoderViolation { .. }));
        // Data ↔ reserved is fine.
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[1, 1, 0, 0]));
    }

    #[test]
    fn dcc_bar_reads_complement_and_restores_complement() {
        let mut e = engine();
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        assert_eq!(e.row(RowRef::DccBar(0)).unwrap(), bv(&[0, 0, 1, 1]));
        // NOT: copy the bar-port readout into a data row.
        e.execute(&Primitive::OAap { src: RowRef::DccBar(0), dst: RowRef::Data(3) }).unwrap();
        assert_eq!(e.row(RowRef::Data(3)).unwrap(), bv(&[0, 0, 1, 1]));
        // The DCC itself must be unchanged (restored through the bar port).
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[1, 1, 0, 0]));
    }

    #[test]
    fn trimmed_app_destroys_row() {
        let mut e = engine();
        e.execute(&Primitive::TApp { row: RowRef::Data(0), mode: RegulateMode::Or }).unwrap();
        // Regulation is pending; consume it into r1.
        e.execute(&Primitive::Ap { row: RowRef::Data(1) }).unwrap();
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 1, 1, 0]));
        // r0 is now unreadable.
        let err = e.row(RowRef::Data(0)).unwrap_err();
        assert!(matches!(err, CoreError::UninitializedRow(_)));
        let err = e.execute(&Primitive::Ap { row: RowRef::Data(0) }).unwrap_err();
        assert!(matches!(err, CoreError::DestroyedRowRead(_)));
        // Rewriting revives it.
        e.write_row(0, bv(&[0, 1, 0, 1])).unwrap();
        assert_eq!(e.row(RowRef::Data(0)).unwrap(), bv(&[0, 1, 0, 1]));
    }

    #[test]
    fn regulated_overwrite_through_bar_port() {
        // AND-regulate by r1 = 1010, then activate the DCC bar port:
        // columns where r1=0 read 0; else they read !dcc.
        let mut e = engine();
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        // dcc = 1100, bar readout = 0011
        e.execute(&Primitive::App { row: RowRef::Data(1), mode: RegulateMode::And }).unwrap();
        e.execute(&Primitive::Ap { row: RowRef::DccBar(0) }).unwrap();
        // value = r1 AND !dcc = 1010 & 0011 = 0010
        assert_eq!(e.row(RowRef::DccBar(0)).unwrap(), bv(&[0, 0, 1, 0]));
        // And the stored cell is the complement of that bitline value.
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[1, 1, 0, 1]));
    }

    #[test]
    fn stats_accumulate_commands_and_time() {
        let mut e = engine();
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        let s = e.stats();
        assert_eq!(s.total_commands(), 2);
        // APP (67) + AP (49) ≈ 115.4 ns of busy time.
        assert!((s.busy_time.as_f64() - 115.35).abs() < 1.0, "busy = {}", s.busy_time);
        assert!(s.energy.as_f64() > 0.0);
        assert_eq!(s.wordline_activations, 2);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut e = SubarrayEngine::new(4, 2, 1);
        let err = e.write_row(0, BitVec::zeros(5)).unwrap_err();
        assert_eq!(err, CoreError::WidthMismatch { expected: 4, got: 5 });
    }

    #[test]
    fn out_of_range_rows_rejected() {
        let mut e = engine();
        assert!(matches!(
            e.execute(&Primitive::Ap { row: RowRef::Data(99) }),
            Err(CoreError::RowOutOfRange { .. })
        ));
        assert!(matches!(e.row(RowRef::DccTrue(5)), Err(CoreError::RowOutOfRange { .. })));
    }

    #[test]
    fn uninitialized_read_is_an_error() {
        let e = SubarrayEngine::new(4, 2, 1);
        assert!(matches!(e.row(RowRef::Data(0)), Err(CoreError::UninitializedRow(_))));
    }

    #[test]
    fn activation_counts_identify_the_reserved_row_hot_spot() {
        use crate::compile::{compile, CompileMode, LogicOp, Operands};
        let mut e = SubarrayEngine::new(4, 8, 1);
        e.write_row(0, bv(&[1, 1, 0, 0])).unwrap();
        e.write_row(1, bv(&[1, 0, 1, 0])).unwrap();
        e.write_row(2, bv(&[0, 0, 0, 0])).unwrap();
        // Run 10 XORs: every one hammers the single reserved row.
        let prog = compile(LogicOp::Xor, CompileMode::LowLatency, Operands::standard(), 1).unwrap();
        for _ in 0..10 {
            e.run(prog.primitives()).unwrap();
        }
        let (hottest, count) = e.hottest_row();
        assert_eq!(hottest, RowRef::DccTrue(0), "the DCC absorbs the workload");
        // seq5 raises the DCC wordline 4 times per XOR (two copies in,
        // one compute-out, one trimmed read).
        assert_eq!(count, 40);
        assert_eq!(e.activation_count(RowRef::Data(0)), 20); // a read twice/op
        assert_eq!(e.activation_count(RowRef::Data(7)), 0);
    }

    #[test]
    fn trace_records_primitives_with_cumulative_times() {
        let mut e = engine();
        e.enable_trace();
        assert!(e.trace().is_empty());
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        let tr = e.trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].index, 0);
        assert_eq!(tr[0].start.as_f64(), 0.0);
        assert!((tr[0].duration.as_f64() - 66.6).abs() < 1.0);
        // Second primitive starts where the first ended.
        assert!((tr[1].start.as_f64() - tr[0].duration.as_f64()).abs() < 1e-9);
        assert!(matches!(tr[1].primitive, Primitive::Ap { .. }));
    }

    #[test]
    fn injected_errors_propagate_through_operations() {
        let mut e = engine();
        // Corrupt one bit of r0, then compute r1 := r0 | r1 in place.
        e.inject_bit_error(RowRef::Data(0), 3).unwrap();
        assert_eq!(e.row(RowRef::Data(0)).unwrap(), bv(&[1, 1, 0, 1]));
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        // Without the fault the result would be 1110; the fault makes
        // column 3 overwrite to '1'.
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 1, 1, 1]));

        // Injection through a DCC bar port flips the stored complement.
        let mut e = engine();
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        e.inject_bit_error(RowRef::DccBar(0), 0).unwrap();
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[0, 1, 0, 0]));

        // Errors on dead rows / bad columns are rejected.
        assert!(e.inject_bit_error(RowRef::Data(7), 0).is_err());
        assert!(e.inject_bit_error(RowRef::Data(0), 99).is_err());
    }

    #[test]
    fn pending_regulation_is_tracked() {
        let mut e = engine();
        assert!(!e.has_pending_regulation());
        e.execute(&Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or }).unwrap();
        assert!(e.has_pending_regulation());
        e.execute(&Primitive::Ap { row: RowRef::Data(1) }).unwrap();
        assert!(!e.has_pending_regulation());
    }
}
