//! The functional subarray engine.
//!
//! Executes primitive programs over whole rows with the exact
//! pseudo-precharge semantics of §3.2:
//!
//! * After an APP-class primitive, every bitline column is either
//!   **overwriting** (it kept the full-rail surviving value — Vdd for OR,
//!   Gnd for AND) or **neutral** (regulated to Vdd/2). The engine tracks
//!   this as a per-column keep-mask.
//! * The next activation applies the pending regulation: overwritten
//!   columns take the surviving value; neutral columns sense the stored
//!   cell — which is precisely `dst := dst OP src`.
//! * Trimmed primitives (tAPP/otAPP) skip the restore and *destroy* the
//!   accessed row; reading a destroyed row is an error.
//! * Dual-contact rows read and restore complemented values through their
//!   bar port, implementing NOT.
//!
//! Row storage is a single arena: one contiguous `Vec<u64>` holding every
//! data and DCC row at a fixed stride, with a parallel liveness bitmap.
//! The bitline and the regulation keep-mask are pre-sized scratch buffers,
//! so the steady-state execute loop performs **zero heap allocations per
//! primitive** — each primitive is a handful of word loops over the arena.
//!
//! Every executed primitive is accounted against the DDR3 substrate
//! (latency, energy, wordline events) via its command profile.

use crate::analysis::AnalysisCache;
use crate::bitvec::{copy_bits, BitVec, WORD_BITS};
use crate::error::CoreError;
use crate::optimizer::PhysRow;
use crate::primitive::{Primitive, RegulateMode, RowRef};
use elp2im_dram::power::PowerModel;
use elp2im_dram::stats::RunStats;
use elp2im_dram::timing::Ddr3Timing;

/// One entry of an execution trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Position in the executed stream.
    pub index: usize,
    /// The primitive executed.
    pub primitive: Primitive,
    /// Start time (cumulative busy time before this primitive).
    pub start: elp2im_dram::units::Ns,
    /// Duration.
    pub duration: elp2im_dram::units::Ns,
}

/// Zeroes the bits beyond `len_bits` in the last word of `words`.
fn mask_slice_tail(words: &mut [u64], len_bits: usize) {
    let tail = len_bits % WORD_BITS;
    if tail != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

/// The functional model of one ELP2IM subarray.
///
/// ```
/// use elp2im_core::engine::SubarrayEngine;
/// use elp2im_core::bitvec::BitVec;
/// use elp2im_core::primitive::{Primitive, RegulateMode, RowRef};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut e = SubarrayEngine::new(8, 16, 1);
/// e.write_row(0, BitVec::from_bools(&[true, true, false, false, true, false, true, false]))?;
/// e.write_row(1, BitVec::from_bools(&[true, false, true, false, false, false, true, true]))?;
/// // In-place OR: APP(r0) then AP(r1) computes r1 := r0 | r1.
/// e.execute(&Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or })?;
/// e.execute(&Primitive::Ap { row: RowRef::Data(1) })?;
/// assert_eq!(e.row(RowRef::Data(1))?.to_bools(),
///            vec![true, true, true, false, true, false, true, true]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SubarrayEngine {
    width: usize,
    /// Arena stride: words per physical row.
    words_per_row: usize,
    data_rows: usize,
    dcc_rows: usize,
    /// All row contents, `[dcc rows..., data rows...]`, one stride each
    /// (reserved rows first: they are touched by nearly every program, so
    /// keeping them at low indices lets the lazy zero-fill stop at the
    /// highest *data* row actually used). DCC rows store the true-port
    /// value; the bar port complements on the fly. Allocated lazily on the first write: a module or device array
    /// constructs one engine per subarray, but a given workload usually
    /// touches only a few, and an untouched engine must not pay for (or
    /// zero) row storage. Every reader is liveness-gated, and rows only
    /// become live through the writing paths, which allocate first.
    arena: Vec<u64>,
    /// Per physical row: does it currently hold valid data?
    live: Vec<bool>,
    /// Pending regulation mode left by an APP-class primitive, if any.
    reg_mode: Option<RegulateMode>,
    /// Scratch: columns holding the full-rail surviving value (overwrite).
    /// Sized with the arena on first write; empty until then.
    reg_keep: Vec<u64>,
    /// Scratch: the value latched on the bitline by the last activation.
    /// Sized with the arena on first write; empty until then.
    bitline: Vec<u64>,
    timing: Ddr3Timing,
    power: PowerModel,
    stats: RunStats,
    trace: Option<Vec<TraceEntry>>,
    /// Wordline-raise counts per physical row: `[dcc rows..., data rows...]`.
    /// Reserved rows absorb most of a PIM workload's activations (they are
    /// touched by nearly every operation), which matters for disturbance
    /// budgets (row-hammer-style neighbor disturb).
    activation_counts: Vec<u64>,
}

impl SubarrayEngine {
    /// Creates an engine with `data_rows` regular rows of `width` bits and
    /// `dcc_rows` reserved dual-contact rows (the paper's base design has
    /// one; the accelerator configuration of §6.3.3 has two).
    pub fn new(width: usize, data_rows: usize, dcc_rows: usize) -> Self {
        let words_per_row = width.div_ceil(WORD_BITS);
        let rows = data_rows + dcc_rows;
        SubarrayEngine {
            width,
            words_per_row,
            data_rows,
            dcc_rows,
            arena: Vec::new(),
            live: vec![false; rows],
            reg_mode: None,
            reg_keep: Vec::new(),
            bitline: Vec::new(),
            timing: Ddr3Timing::ddr3_1600(),
            power: PowerModel::micron_ddr3_1600(),
            stats: RunStats::new(),
            trace: None,
            activation_counts: vec![0; rows],
        }
    }

    /// Wordline-raise count of one physical row.
    pub fn activation_count(&self, row: RowRef) -> u64 {
        let idx = match row {
            RowRef::Data(i) => self.dcc_rows + i,
            RowRef::DccTrue(i) | RowRef::DccBar(i) => i,
        };
        self.activation_counts.get(idx).copied().unwrap_or(0)
    }

    /// The most-activated row and its count — the disturbance hot spot.
    /// `None` for an engine with no rows at all.
    pub fn hottest_row(&self) -> Option<(RowRef, u64)> {
        let (idx, &count) = self.activation_counts.iter().enumerate().max_by_key(|&(_, c)| c)?;
        let row = if idx < self.dcc_rows {
            RowRef::DccTrue(idx)
        } else {
            RowRef::Data(idx - self.dcc_rows)
        };
        Some((row, count))
    }

    /// Enables primitive-level execution tracing (start time, duration
    /// per command) — the view a logic analyzer on the command bus would
    /// give.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> &[TraceEntry] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Row width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of regular data rows.
    pub fn data_rows(&self) -> usize {
        self.data_rows
    }

    /// Number of reserved dual-contact rows.
    pub fn dcc_rows(&self) -> usize {
        self.dcc_rows
    }

    /// Accumulated substrate statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Resets the statistics counters (rows keep their contents).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::new();
    }

    /// The timing parameter set in use.
    pub fn timing(&self) -> &Ddr3Timing {
        &self.timing
    }

    /// Whether a regulation is pending (a well-formed program ends with
    /// none).
    pub fn has_pending_regulation(&self) -> bool {
        self.reg_mode.is_some()
    }

    fn out_of_range(&self, row: RowRef) -> CoreError {
        CoreError::RowOutOfRange { row, rows: self.data_rows, dcc_rows: self.dcc_rows }
    }

    /// Arena index of a physical row, or an out-of-range error.
    fn phys_index(&self, row: RowRef) -> Result<usize, CoreError> {
        match row {
            RowRef::Data(i) if i < self.data_rows => Ok(self.dcc_rows + i),
            RowRef::DccTrue(i) | RowRef::DccBar(i) if i < self.dcc_rows => Ok(i),
            _ => Err(self.out_of_range(row)),
        }
    }

    /// Makes the arena stride for physical row `idx` addressable. Must be
    /// called before any path that writes `self.arena`; readers never need
    /// it because they are liveness-gated and liveness implies a prior
    /// write.
    ///
    /// The first call reserves the full arena capacity in one allocation
    /// (so later growth never reallocates or moves row data) but only
    /// *zeroes* strides up to the highest row actually written: a workload
    /// that touches four rows of a 512-row subarray initializes four
    /// strides, not 512.
    fn ensure_row(&mut self, idx: usize) {
        if self.bitline.is_empty() && self.words_per_row > 0 {
            self.arena.reserve_exact((self.data_rows + self.dcc_rows) * self.words_per_row);
            // The bitline/keep-mask scratch rows ride along: primitives can
            // only touch engines that hold at least one live row.
            self.reg_keep = vec![0; self.words_per_row];
            self.bitline = vec![0; self.words_per_row];
        }
        let need = (idx + 1) * self.words_per_row;
        if self.arena.len() < need {
            self.arena.resize(need, 0);
        }
    }

    /// Whether a physical row (analyzer addressing) holds data.
    fn phys_row_live(&self, row: PhysRow) -> bool {
        match row {
            PhysRow::Data(i) => i < self.data_rows && self.live[self.dcc_rows + i],
            PhysRow::Dcc(i) => i < self.dcc_rows && self.live[i],
        }
    }

    /// Snapshot of every physical row currently holding data, in analyzer
    /// addressing (data rows first, then reserved rows). This is the
    /// live-in set the static analyzers assume, so the plan-level verifier
    /// seeds its borrow checker from it.
    pub fn live_rows(&self) -> Vec<PhysRow> {
        let mut out = Vec::new();
        for i in 0..self.data_rows {
            if self.live[self.dcc_rows + i] {
                out.push(PhysRow::Data(i));
            }
        }
        for i in 0..self.dcc_rows {
            if self.live[i] {
                out.push(PhysRow::Dcc(i));
            }
        }
        out
    }

    /// Writes a data row directly (host-side store, outside PIM timing).
    ///
    /// # Errors
    ///
    /// [`CoreError::WidthMismatch`] or [`CoreError::RowOutOfRange`].
    pub fn write_row(&mut self, index: usize, value: BitVec) -> Result<(), CoreError> {
        if value.len() != self.width {
            return Err(CoreError::WidthMismatch { expected: self.width, got: value.len() });
        }
        if index >= self.data_rows {
            return Err(self.out_of_range(RowRef::Data(index)));
        }
        let idx = self.dcc_rows + index;
        self.ensure_row(idx);
        let wpr = self.words_per_row;
        self.arena[idx * wpr..(idx + 1) * wpr].copy_from_slice(value.words());
        self.live[idx] = true;
        Ok(())
    }

    /// Writes a window of `src` into data row `index` with no intermediate
    /// row-sized allocation: bits `src_start..` of `src` (as many as fit
    /// the row, clamped to what `src` holds) land in columns `0..`, any
    /// remaining columns are zero-filled, and the row becomes live. This
    /// is the zero-copy striping path used by the batch store.
    ///
    /// # Errors
    ///
    /// [`CoreError::RowOutOfRange`] for a bad row index.
    pub fn write_row_from(
        &mut self,
        index: usize,
        src: &BitVec,
        src_start: usize,
    ) -> Result<(), CoreError> {
        if index >= self.data_rows {
            return Err(self.out_of_range(RowRef::Data(index)));
        }
        let idx = self.dcc_rows + index;
        self.ensure_row(idx);
        let n = self.width.min(src.len().saturating_sub(src_start));
        let wpr = self.words_per_row;
        let dst = &mut self.arena[idx * wpr..(idx + 1) * wpr];
        dst.fill(0);
        copy_bits(dst, 0, src.words(), src_start, n);
        self.live[idx] = true;
        Ok(())
    }

    /// Reads data row `index` into `dst` starting at bit `dst_start`
    /// (zero-copy host load path). Copies `min(width, dst.len() -
    /// dst_start)` bits; the rest of `dst` is preserved.
    ///
    /// # Errors
    ///
    /// Out-of-range or non-live rows are errors.
    pub fn read_row_into(
        &self,
        index: usize,
        dst: &mut BitVec,
        dst_start: usize,
    ) -> Result<(), CoreError> {
        if index >= self.data_rows {
            return Err(self.out_of_range(RowRef::Data(index)));
        }
        let idx = self.dcc_rows + index;
        if !self.live[idx] {
            return Err(CoreError::UninitializedRow(RowRef::Data(index)));
        }
        let n = self.width.min(dst.len().saturating_sub(dst_start));
        let wpr = self.words_per_row;
        copy_bits(dst.words_mut(), dst_start, &self.arena[idx * wpr..(idx + 1) * wpr], 0, n);
        Ok(())
    }

    /// Reads the stored content of a row (through the referenced port).
    ///
    /// # Errors
    ///
    /// Out-of-range, destroyed, or uninitialized rows are errors.
    pub fn row(&self, row: RowRef) -> Result<BitVec, CoreError> {
        let idx = self.phys_index(row)?;
        if !self.live[idx] {
            return Err(CoreError::UninitializedRow(row));
        }
        let wpr = self.words_per_row;
        let mut v = BitVec::from_words(&self.arena[idx * wpr..(idx + 1) * wpr], self.width);
        if matches!(row, RowRef::DccBar(_)) {
            v.not_assign();
        }
        Ok(v)
    }

    /// Reads one bit of a row through the referenced port, without
    /// materializing the whole row.
    ///
    /// # Errors
    ///
    /// Out-of-range columns or rows and non-live rows are errors.
    pub fn bit(&self, row: RowRef, column: usize) -> Result<bool, CoreError> {
        if column >= self.width {
            return Err(CoreError::WidthMismatch { expected: self.width, got: column + 1 });
        }
        let idx = self.phys_index(row)?;
        if !self.live[idx] {
            return Err(CoreError::UninitializedRow(row));
        }
        let w = self.arena[idx * self.words_per_row + column / WORD_BITS];
        let bit = (w >> (column % WORD_BITS)) & 1 == 1;
        Ok(if matches!(row, RowRef::DccBar(_)) { !bit } else { bit })
    }

    /// Whether the row currently holds valid data.
    pub fn is_live(&self, row: RowRef) -> bool {
        self.phys_index(row).is_ok_and(|idx| self.live[idx])
    }

    /// Stores the bitline through `row`'s port (bar port stores the
    /// complement of what the bitline carries — the cell keeps `!value`).
    fn restore(&mut self, row: RowRef) -> Result<(), CoreError> {
        let idx = self.phys_index(row)?;
        self.ensure_row(idx);
        let wpr = self.words_per_row;
        let dst = &mut self.arena[idx * wpr..(idx + 1) * wpr];
        if matches!(row, RowRef::DccBar(_)) {
            for (d, &s) in dst.iter_mut().zip(&self.bitline) {
                *d = !s;
            }
            mask_slice_tail(dst, self.width);
        } else {
            dst.copy_from_slice(&self.bitline);
        }
        self.live[idx] = true;
        Ok(())
    }

    fn destroy(&mut self, row: RowRef) -> Result<(), CoreError> {
        let idx = self.phys_index(row)?;
        self.live[idx] = false;
        Ok(())
    }

    /// Activates `row`: senses the stored value through the referenced
    /// port, applies any pending regulation, and leaves the result latched
    /// in the bitline scratch buffer.
    fn activate(&mut self, row: RowRef) -> Result<(), CoreError> {
        let idx = self.phys_index(row)?;
        if !self.live[idx] {
            // The row was never written or was destroyed by a trim; either
            // way sensing it is undefined. (Errors here leave the pending
            // regulation in place — no charge has moved yet.)
            return Err(CoreError::DestroyedRowRead(row));
        }
        let wpr = self.words_per_row;
        let stored = &self.arena[idx * wpr..(idx + 1) * wpr];
        let bar = matches!(row, RowRef::DccBar(_));
        match self.reg_mode.take() {
            None => {
                for (d, &s) in self.bitline.iter_mut().zip(stored) {
                    *d = if bar { !s } else { s };
                }
            }
            // Overwriting columns snap to the surviving rail (Vdd for OR,
            // Gnd for AND); neutral columns sense the cell. The keep-mask
            // is the regulating bitline itself: OR keeps 1-columns, so the
            // merge collapses to `v | keep`; AND keeps (overwrites to 0)
            // the complement's columns, so it collapses to `v & keep`.
            Some(RegulateMode::Or) => {
                for ((d, &s), &k) in self.bitline.iter_mut().zip(stored).zip(&self.reg_keep) {
                    *d = if bar { !s } else { s } | k;
                }
            }
            Some(RegulateMode::And) => {
                for ((d, &s), &k) in self.bitline.iter_mut().zip(stored).zip(&self.reg_keep) {
                    *d = (if bar { !s } else { s }) & k;
                }
            }
        }
        if bar {
            mask_slice_tail(&mut self.bitline, self.width);
        }
        Ok(())
    }

    /// Latches the post-activation bitline as a pending regulation. Both
    /// modes keep the bitline verbatim: for OR the 1-columns overwrite
    /// with Vdd (`v | bitline` on apply); for AND the 0-columns overwrite
    /// with Gnd, and `(v & !(!bitline))` collapses to `v & bitline`.
    fn set_regulation(&mut self, mode: RegulateMode) {
        self.reg_keep.copy_from_slice(&self.bitline);
        self.reg_mode = Some(mode);
    }

    fn check_dual_decoder(&self, p: &Primitive, a: RowRef, b: RowRef) -> Result<(), CoreError> {
        if p.requires_dual_decoder() && a.is_reserved() == b.is_reserved() {
            return Err(CoreError::DualDecoderViolation { a, b });
        }
        Ok(())
    }

    fn account(&mut self, p: &Primitive) {
        for row in p.rows() {
            let idx = match row {
                RowRef::Data(i) => self.dcc_rows + i,
                RowRef::DccTrue(i) | RowRef::DccBar(i) => i,
            };
            if let Some(c) = self.activation_counts.get_mut(idx) {
                *c += 1;
            }
        }
        let profile = p.profile(&self.timing);
        let energy = self.power.command_energy(&profile);
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEntry {
                index: trace.len(),
                primitive: *p,
                start: self.stats.busy_time,
                duration: profile.duration,
            });
        }
        self.stats.record(profile.class, profile.duration, profile.total_wordline_events, energy);
        // A single subarray executes strictly serially, so the wall clock
        // equals the busy time; stamping it here keeps serial runs from
        // reporting a zero makespan. Background (standby) energy accrues
        // over that same window.
        self.stats.makespan = self.stats.busy_time;
        self.stats.background_energy = self.power.background_energy(self.stats.busy_time, 1.0);
    }

    /// Executes one primitive.
    ///
    /// # Errors
    ///
    /// Propagates addressing, destroyed-row, and decoder-domain errors; on
    /// error the engine state is unchanged except that a consumed
    /// regulation is not reinstated (matching hardware, where the charge is
    /// gone).
    pub fn execute(&mut self, p: &Primitive) -> Result<(), CoreError> {
        match *p {
            Primitive::Ap { row } => {
                self.activate(row)?;
                self.restore(row)?;
            }
            Primitive::Aap { src, dst } | Primitive::OAap { src, dst } => {
                self.check_dual_decoder(p, src, dst)?;
                self.activate(src)?;
                self.restore(src)?;
                self.restore(dst)?;
            }
            Primitive::App { row, mode } | Primitive::OApp { row, mode } => {
                self.activate(row)?;
                self.restore(row)?;
                self.set_regulation(mode);
            }
            Primitive::TApp { row, mode } | Primitive::OtApp { row, mode } => {
                self.activate(row)?;
                self.destroy(row)?;
                self.set_regulation(mode);
            }
            Primitive::OAppCopy { src, dst, mode } => {
                self.check_dual_decoder(p, src, dst)?;
                self.activate(src)?;
                self.restore(src)?;
                self.restore(dst)?;
                self.set_regulation(mode);
            }
        }
        self.account(p);
        Ok(())
    }

    /// Executes a sequence of primitives in order.
    ///
    /// # Errors
    ///
    /// Stops at (and returns) the first failing primitive.
    pub fn run(&mut self, program: &[Primitive]) -> Result<(), CoreError> {
        for p in program {
            self.execute(p)?;
        }
        Ok(())
    }

    /// Statically verifies `program` against the engine's current state
    /// (the §5.1 memory-controller check on a buffered sequence), then
    /// executes it — the program is rejected *before* any primitive issues,
    /// so an invalid sequence cannot partially corrupt row state.
    ///
    /// Debug builds additionally assert the sanitizer cross-check: a
    /// program the analyzer accepted must execute without an engine error
    /// (static and dynamic semantics agree).
    ///
    /// # Errors
    ///
    /// [`CoreError::StaticViolation`] when the analyzer rejects the
    /// program; engine errors otherwise (which the cross-check makes
    /// unreachable for accepted programs).
    ///
    /// # Panics
    ///
    /// Debug builds panic if an analyzer-accepted program still trips an
    /// engine error — a static/dynamic divergence bug.
    pub fn run_verified(&mut self, program: &crate::isa::Program) -> Result<(), CoreError> {
        self.run_verified_inner(program, None)
    }

    /// Like [`SubarrayEngine::run_verified`], memoizing the analyzer
    /// verdict in `cache` so a program striped across many subarrays in
    /// equivalent states is analyzed once, not once per stripe.
    pub fn run_verified_cached(
        &mut self,
        program: &crate::isa::Program,
        cache: &AnalysisCache,
    ) -> Result<(), CoreError> {
        self.run_verified_inner(program, Some(cache))
    }

    fn run_verified_inner(
        &mut self,
        program: &crate::isa::Program,
        cache: Option<&AnalysisCache>,
    ) -> Result<(), CoreError> {
        use crate::validate::SubarrayShape;
        let shape = SubarrayShape { data_rows: self.data_rows, dcc_rows: self.dcc_rows };
        let verdict = match cache {
            Some(cache) => cache.first_violation(program, shape, |r| self.phys_row_live(r)),
            None => {
                let mut live_in: Vec<PhysRow> = Vec::new();
                for i in 0..self.data_rows {
                    if self.live[self.dcc_rows + i] {
                        live_in.push(PhysRow::Data(i));
                    }
                }
                for i in 0..self.dcc_rows {
                    if self.live[i] {
                        live_in.push(PhysRow::Dcc(i));
                    }
                }
                let report = crate::analysis::analyze(program, shape, &live_in);
                report.to_violations().into_iter().next()
            }
        };
        if let Some(v) = verdict {
            return Err(v.into());
        }
        for p in program.primitives() {
            if let Err(e) = self.execute(p) {
                debug_assert!(
                    false,
                    "sanitizer: analyzer accepted '{}' but '{p}' failed: {e}",
                    program.name()
                );
                return Err(e);
            }
        }
        Ok(())
    }

    /// Failure injection: flips one stored bit, modeling a sensing error
    /// of the kind the Fig. 11 Monte-Carlo quantifies (e.g. a TRA margin
    /// collapse or a Vdd/2 mismatch flip). Subsequent operations propagate
    /// the corruption, which is how the §6.1.2 ECC discussion manifests:
    /// bitwise PIM results carry no error-correction. (Flipping the stored
    /// cell flips the readout on both ports of a DCC row.)
    ///
    /// # Errors
    ///
    /// The target row must be live; `column` must be in range.
    pub fn inject_bit_error(&mut self, row: RowRef, column: usize) -> Result<(), CoreError> {
        if column >= self.width {
            return Err(CoreError::WidthMismatch { expected: self.width, got: column + 1 });
        }
        let idx = self.phys_index(row)?;
        if !self.live[idx] {
            return Err(CoreError::UninitializedRow(row));
        }
        self.arena[idx * self.words_per_row + column / WORD_BITS] ^= 1 << (column % WORD_BITS);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        BitVec::from_bools(&bits.iter().map(|&b| b != 0).collect::<Vec<_>>())
    }

    fn engine() -> SubarrayEngine {
        let mut e = SubarrayEngine::new(4, 8, 2);
        e.write_row(0, bv(&[1, 1, 0, 0])).unwrap();
        e.write_row(1, bv(&[1, 0, 1, 0])).unwrap();
        e
    }

    #[test]
    fn in_place_or_and_truth_tables() {
        // APP(r0)·or ; AP(r1) → r1 := r0 | r1 across all column combos.
        let mut e = engine();
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 1, 1, 0]));
        // Source must be restored intact.
        assert_eq!(e.row(RowRef::Data(0)).unwrap(), bv(&[1, 1, 0, 0]));

        let mut e = engine();
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::And },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 0, 0, 0]));
    }

    #[test]
    fn aap_copies() {
        let mut e = engine();
        e.execute(&Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(2) }).unwrap();
        assert_eq!(e.row(RowRef::Data(2)).unwrap(), bv(&[1, 1, 0, 0]));
    }

    #[test]
    fn oaap_requires_different_domains() {
        let mut e = engine();
        let err =
            e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::Data(2) }).unwrap_err();
        assert!(matches!(err, CoreError::DualDecoderViolation { .. }));
        // Data ↔ reserved is fine.
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[1, 1, 0, 0]));
    }

    #[test]
    fn dcc_bar_reads_complement_and_restores_complement() {
        let mut e = engine();
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        assert_eq!(e.row(RowRef::DccBar(0)).unwrap(), bv(&[0, 0, 1, 1]));
        // NOT: copy the bar-port readout into a data row.
        e.execute(&Primitive::OAap { src: RowRef::DccBar(0), dst: RowRef::Data(3) }).unwrap();
        assert_eq!(e.row(RowRef::Data(3)).unwrap(), bv(&[0, 0, 1, 1]));
        // The DCC itself must be unchanged (restored through the bar port).
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[1, 1, 0, 0]));
    }

    #[test]
    fn trimmed_app_destroys_row() {
        let mut e = engine();
        e.execute(&Primitive::TApp { row: RowRef::Data(0), mode: RegulateMode::Or }).unwrap();
        // Regulation is pending; consume it into r1.
        e.execute(&Primitive::Ap { row: RowRef::Data(1) }).unwrap();
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 1, 1, 0]));
        // r0 is now unreadable.
        let err = e.row(RowRef::Data(0)).unwrap_err();
        assert!(matches!(err, CoreError::UninitializedRow(_)));
        let err = e.execute(&Primitive::Ap { row: RowRef::Data(0) }).unwrap_err();
        assert!(matches!(err, CoreError::DestroyedRowRead(_)));
        // Rewriting revives it.
        e.write_row(0, bv(&[0, 1, 0, 1])).unwrap();
        assert_eq!(e.row(RowRef::Data(0)).unwrap(), bv(&[0, 1, 0, 1]));
    }

    #[test]
    fn regulated_overwrite_through_bar_port() {
        // AND-regulate by r1 = 1010, then activate the DCC bar port:
        // columns where r1=0 read 0; else they read !dcc.
        let mut e = engine();
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        // dcc = 1100, bar readout = 0011
        e.execute(&Primitive::App { row: RowRef::Data(1), mode: RegulateMode::And }).unwrap();
        e.execute(&Primitive::Ap { row: RowRef::DccBar(0) }).unwrap();
        // value = r1 AND !dcc = 1010 & 0011 = 0010
        assert_eq!(e.row(RowRef::DccBar(0)).unwrap(), bv(&[0, 0, 1, 0]));
        // And the stored cell is the complement of that bitline value.
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[1, 1, 0, 1]));
    }

    #[test]
    fn stats_accumulate_commands_and_time() {
        let mut e = engine();
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        let s = e.stats();
        assert_eq!(s.total_commands(), 2);
        // APP (67) + AP (49) ≈ 115.4 ns of busy time.
        assert!((s.busy_time.as_f64() - 115.35).abs() < 1.0, "busy = {}", s.busy_time);
        assert!(s.energy.as_f64() > 0.0);
        assert_eq!(s.wordline_activations, 2);
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut e = SubarrayEngine::new(4, 2, 1);
        let err = e.write_row(0, BitVec::zeros(5)).unwrap_err();
        assert_eq!(err, CoreError::WidthMismatch { expected: 4, got: 5 });
    }

    #[test]
    fn out_of_range_rows_rejected() {
        let mut e = engine();
        assert!(matches!(
            e.execute(&Primitive::Ap { row: RowRef::Data(99) }),
            Err(CoreError::RowOutOfRange { .. })
        ));
        assert!(matches!(e.row(RowRef::DccTrue(5)), Err(CoreError::RowOutOfRange { .. })));
    }

    #[test]
    fn uninitialized_read_is_an_error() {
        let e = SubarrayEngine::new(4, 2, 1);
        assert!(matches!(e.row(RowRef::Data(0)), Err(CoreError::UninitializedRow(_))));
    }

    #[test]
    fn write_read_windows_roundtrip() {
        // Striping helpers: unaligned windows in and out of rows.
        let mut e = SubarrayEngine::new(64, 4, 1);
        let src: BitVec = (0..150).map(|i| i % 3 == 0).collect();
        e.write_row_from(0, &src, 0).unwrap();
        e.write_row_from(1, &src, 64).unwrap();
        e.write_row_from(2, &src, 128).unwrap(); // partial: 22 bits + zero fill
        e.write_row_from(3, &src, 7).unwrap(); // unaligned window
        for c in 0..64 {
            assert_eq!(e.bit(RowRef::Data(0), c).unwrap(), src.get(c));
            assert_eq!(e.bit(RowRef::Data(1), c).unwrap(), src.get(64 + c));
            let expect = if c < 22 { src.get(128 + c) } else { false };
            assert_eq!(e.bit(RowRef::Data(2), c).unwrap(), expect);
            assert_eq!(e.bit(RowRef::Data(3), c).unwrap(), src.get(7 + c));
        }
        let mut out = BitVec::zeros(150);
        e.read_row_into(0, &mut out, 0).unwrap();
        e.read_row_into(1, &mut out, 64).unwrap();
        e.read_row_into(2, &mut out, 128).unwrap();
        assert_eq!(out.to_bools()[..128], src.to_bools()[..128]);
        assert_eq!(out.to_bools()[128..150], src.to_bools()[128..150]);
        // Errors: bad index, dead row, bad column.
        assert!(e.write_row_from(9, &src, 0).is_err());
        assert!(e.read_row_into(9, &mut out, 0).is_err());
        let dead = SubarrayEngine::new(64, 1, 0);
        assert!(dead.read_row_into(0, &mut out, 0).is_err());
        assert!(e.bit(RowRef::Data(0), 64).is_err());
    }

    #[test]
    fn bit_reads_through_ports() {
        let mut e = engine();
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        for c in 0..4 {
            assert_eq!(e.bit(RowRef::Data(0), c).unwrap(), e.row(RowRef::Data(0)).unwrap().get(c));
            assert_eq!(
                e.bit(RowRef::DccBar(0), c).unwrap(),
                e.row(RowRef::DccBar(0)).unwrap().get(c)
            );
        }
        assert!(matches!(e.bit(RowRef::Data(7), 0), Err(CoreError::UninitializedRow(_))));
    }

    #[test]
    fn activation_counts_identify_the_reserved_row_hot_spot() {
        use crate::compile::{compile, CompileMode, LogicOp, Operands};
        let mut e = SubarrayEngine::new(4, 8, 1);
        e.write_row(0, bv(&[1, 1, 0, 0])).unwrap();
        e.write_row(1, bv(&[1, 0, 1, 0])).unwrap();
        e.write_row(2, bv(&[0, 0, 0, 0])).unwrap();
        // Run 10 XORs: every one hammers the single reserved row.
        let prog = compile(LogicOp::Xor, CompileMode::LowLatency, Operands::standard(), 1).unwrap();
        for _ in 0..10 {
            e.run(prog.primitives()).unwrap();
        }
        let (hottest, count) = e.hottest_row().expect("engine has rows");
        assert_eq!(hottest, RowRef::DccTrue(0), "the DCC absorbs the workload");
        // seq5 raises the DCC wordline 4 times per XOR (two copies in,
        // one compute-out, one trimmed read).
        assert_eq!(count, 40);
        assert_eq!(e.activation_count(RowRef::Data(0)), 20); // a read twice/op
        assert_eq!(e.activation_count(RowRef::Data(7)), 0);
    }

    #[test]
    fn hottest_row_of_empty_engine_is_none() {
        let e = SubarrayEngine::new(4, 0, 0);
        assert!(e.hottest_row().is_none());
    }

    #[test]
    fn trace_records_primitives_with_cumulative_times() {
        let mut e = engine();
        e.enable_trace();
        assert!(e.trace().is_empty());
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        let tr = e.trace();
        assert_eq!(tr.len(), 2);
        assert_eq!(tr[0].index, 0);
        assert_eq!(tr[0].start.as_f64(), 0.0);
        assert!((tr[0].duration.as_f64() - 66.6).abs() < 1.0);
        // Second primitive starts where the first ended.
        assert!((tr[1].start.as_f64() - tr[0].duration.as_f64()).abs() < 1e-9);
        assert!(matches!(tr[1].primitive, Primitive::Ap { .. }));
    }

    #[test]
    fn injected_errors_propagate_through_operations() {
        let mut e = engine();
        // Corrupt one bit of r0, then compute r1 := r0 | r1 in place.
        e.inject_bit_error(RowRef::Data(0), 3).unwrap();
        assert_eq!(e.row(RowRef::Data(0)).unwrap(), bv(&[1, 1, 0, 1]));
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        // Without the fault the result would be 1110; the fault makes
        // column 3 overwrite to '1'.
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), bv(&[1, 1, 1, 1]));

        // Injection through a DCC bar port flips the stored complement.
        let mut e = engine();
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        e.inject_bit_error(RowRef::DccBar(0), 0).unwrap();
        assert_eq!(e.row(RowRef::DccTrue(0)).unwrap(), bv(&[0, 1, 0, 0]));

        // Errors on dead rows / bad columns are rejected.
        assert!(e.inject_bit_error(RowRef::Data(7), 0).is_err());
        assert!(e.inject_bit_error(RowRef::Data(0), 99).is_err());
    }

    #[test]
    fn pending_regulation_is_tracked() {
        let mut e = engine();
        assert!(!e.has_pending_regulation());
        e.execute(&Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or }).unwrap();
        assert!(e.has_pending_regulation());
        e.execute(&Primitive::Ap { row: RowRef::Data(1) }).unwrap();
        assert!(!e.has_pending_regulation());
    }

    #[test]
    fn wide_rows_keep_tail_columns_clean() {
        // A 70-bit row exercises the tail-masking of the bar-port
        // complement and the regulation kernels.
        let mut e = SubarrayEngine::new(70, 4, 1);
        let a: BitVec = (0..70).map(|i| i % 3 == 0).collect();
        let b: BitVec = (0..70).map(|i| i % 5 == 0).collect();
        e.write_row(0, a.clone()).unwrap();
        e.write_row(1, b.clone()).unwrap();
        // NOT via the DCC: dcc := a, then read the bar port back out.
        e.execute(&Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) }).unwrap();
        e.execute(&Primitive::OAap { src: RowRef::DccBar(0), dst: RowRef::Data(2) }).unwrap();
        assert_eq!(e.row(RowRef::Data(2)).unwrap(), a.not());
        // AND through the regulation path.
        e.run(&[
            Primitive::App { row: RowRef::Data(0), mode: RegulateMode::And },
            Primitive::Ap { row: RowRef::Data(1) },
        ])
        .unwrap();
        assert_eq!(e.row(RowRef::Data(1)).unwrap(), a.and(&b));
        // Internal invariant: no stored word carries bits past column 69.
        for r in [RowRef::Data(0), RowRef::Data(1), RowRef::Data(2)] {
            let v = e.row(r).unwrap();
            assert_eq!(v.words()[1] >> 6, 0, "{r:?} tail dirty");
        }
    }
}
