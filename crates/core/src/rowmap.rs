//! Data-row allocation within a subarray.
//!
//! ELP2IM's headline capacity advantage (§5.2, Fig. 9) is that only one
//! physical row per subarray is reserved (the dual-contact row), versus
//! Ambit's 8-row B-group + 2-row C-group; the allocator tracks how many
//! rows are usable for data.

use crate::error::CoreError;

/// A free-list allocator over a subarray's data rows.
///
/// ```
/// use elp2im_core::rowmap::RowAllocator;
/// let mut alloc = RowAllocator::new(4);
/// let r0 = alloc.alloc().unwrap();
/// let r1 = alloc.alloc().unwrap();
/// assert_ne!(r0, r1);
/// alloc.free(r0).unwrap();
/// assert_eq!(alloc.live(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RowAllocator {
    total: usize,
    free: Vec<usize>,
    allocated: Vec<bool>,
}

impl RowAllocator {
    /// An allocator over `rows` data rows, all initially free.
    pub fn new(rows: usize) -> Self {
        RowAllocator { total: rows, free: (0..rows).rev().collect(), allocated: vec![false; rows] }
    }

    /// Total data rows managed.
    pub fn capacity(&self) -> usize {
        self.total
    }

    /// Currently allocated row count.
    pub fn live(&self) -> usize {
        self.total - self.free.len()
    }

    /// Whether `row` is currently allocated.
    pub fn is_allocated(&self, row: usize) -> bool {
        self.allocated.get(row).copied().unwrap_or(false)
    }

    /// Allocates a free row.
    ///
    /// # Errors
    ///
    /// [`CoreError::CapacityExceeded`] when every row is in use.
    pub fn alloc(&mut self) -> Result<usize, CoreError> {
        let row = self.free.pop().ok_or(CoreError::CapacityExceeded { rows: self.total })?;
        self.allocated[row] = true;
        Ok(row)
    }

    /// Frees a previously allocated row.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] if the row is not currently allocated.
    pub fn free(&mut self, row: usize) -> Result<(), CoreError> {
        if !self.is_allocated(row) {
            return Err(CoreError::InvalidHandle(row));
        }
        self.allocated[row] = false;
        self.free.push(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhaustion() {
        let mut a = RowAllocator::new(3);
        let rows: Vec<_> = (0..3).map(|_| a.alloc().unwrap()).collect();
        assert_eq!(a.live(), 3);
        assert!(matches!(a.alloc(), Err(CoreError::CapacityExceeded { rows: 3 })));
        // All distinct.
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn free_and_reuse() {
        let mut a = RowAllocator::new(2);
        let r = a.alloc().unwrap();
        a.free(r).unwrap();
        assert!(!a.is_allocated(r));
        let r2 = a.alloc().unwrap();
        let _ = a.alloc().unwrap();
        assert!(a.is_allocated(r2));
        assert_eq!(a.live(), 2);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = RowAllocator::new(2);
        let r = a.alloc().unwrap();
        a.free(r).unwrap();
        assert!(matches!(a.free(r), Err(CoreError::InvalidHandle(_))));
        assert!(matches!(a.free(99), Err(CoreError::InvalidHandle(99))));
    }
}
