//! A whole-module device: bulk bitwise operations over vectors wider than
//! one row, chunked across subarrays and banks.
//!
//! [`Elp2imModule`] combines the functional subarray engines with the
//! event-driven controller of `elp2im-dram`: a stored vector is split into
//! row-sized chunks placed round-robin over the module's subarrays
//! (operand chunks stay co-located, as in-DRAM computation requires), and
//! every bulk operation both
//!
//! * executes functionally on each chunk's [`SubarrayEngine`], and
//! * is scheduled on the multi-bank [`Controller`] under the charge-pump
//!   budget, yielding the wall-clock makespan — so the §6.3 bank-level
//!   parallelism effects are observable on real data, not just in the
//!   analytic model.

use crate::analysis::AnalysisCache;
use crate::bitvec::BitVec;
use crate::compile::{compile, CompileMode, LogicOp, Operands};
use crate::engine::SubarrayEngine;
use crate::error::CoreError;
use crate::rowmap::RowAllocator;
use elp2im_dram::constraint::PumpBudget;
use elp2im_dram::controller::Controller;
use elp2im_dram::geometry::Geometry;
use elp2im_dram::stats::RunStats;

/// Per-bank command streams handed to the controller.
type BankStreams = Vec<(usize, Vec<elp2im_dram::command::CommandProfile>)>;

/// Module configuration.
#[derive(Debug, Clone)]
pub struct ModuleConfig {
    /// Bank/subarray/row geometry.
    pub geometry: Geometry,
    /// Reserved dual-contact rows per subarray.
    pub reserved_rows: usize,
    /// Compilation strategy.
    pub mode: CompileMode,
    /// Charge-pump budget enforced by the controller.
    pub budget: PumpBudget,
}

impl Default for ModuleConfig {
    fn default() -> Self {
        ModuleConfig {
            geometry: Geometry::tiny(),
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
            budget: PumpBudget::jedec_ddr3_1600(),
        }
    }
}

/// Handle to a vector stored across the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecHandle(usize);

#[derive(Debug, Clone)]
struct VecEntry {
    len: usize,
    /// `(global subarray index, row index)` per chunk, in order.
    chunks: Vec<(usize, usize)>,
}

/// A multi-bank, multi-subarray ELP2IM module.
///
/// ```
/// use elp2im_core::module::{Elp2imModule, ModuleConfig};
/// use elp2im_core::bitvec::BitVec;
/// use elp2im_core::compile::LogicOp;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Elp2imModule::new(ModuleConfig::default());
/// // A vector four times wider than one row.
/// let bits = m.row_bits() * 4;
/// let a = m.store(&BitVec::ones(bits))?;
/// let b = m.store(&BitVec::zeros(bits))?;
/// let (c, stats) = m.binary(LogicOp::Or, a, b)?;
/// assert_eq!(m.load(c)?.count_ones(), bits);
/// assert!(stats.makespan.as_f64() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Elp2imModule {
    config: ModuleConfig,
    engines: Vec<SubarrayEngine>,
    allocs: Vec<RowAllocator>,
    vectors: Vec<Option<VecEntry>>,
    controller: Controller,
    /// Memoizes static-analysis verdicts across chunks (a compiled program
    /// is analyzed once per distinct shape/liveness, not once per chunk).
    analysis_cache: AnalysisCache,
}

impl Elp2imModule {
    /// Creates a module with every subarray empty.
    pub fn new(config: ModuleConfig) -> Self {
        let g = &config.geometry;
        let subarrays = g.total_subarrays();
        let engines = (0..subarrays)
            .map(|_| SubarrayEngine::new(g.row_bits(), g.rows_per_subarray, config.reserved_rows))
            .collect();
        let allocs = (0..subarrays).map(|_| RowAllocator::new(g.rows_per_subarray)).collect();
        let controller = Controller::new(g.banks, config.budget.clone());
        Elp2imModule {
            config,
            engines,
            allocs,
            vectors: Vec::new(),
            controller,
            analysis_cache: AnalysisCache::new(),
        }
    }

    /// Bits per row (chunk granularity).
    pub fn row_bits(&self) -> usize {
        self.config.geometry.row_bits()
    }

    /// The module's configuration.
    pub fn config(&self) -> &ModuleConfig {
        &self.config
    }

    /// Cumulative controller statistics over every operation so far.
    pub fn stats(&self) -> &RunStats {
        self.controller.stats()
    }

    fn bank_of(&self, subarray: usize) -> usize {
        subarray / self.config.geometry.subarrays_per_bank
    }

    fn entry(&self, h: VecHandle) -> Result<&VecEntry, CoreError> {
        self.vectors.get(h.0).and_then(Option::as_ref).ok_or(CoreError::InvalidHandle(h.0))
    }

    /// Stores a vector of any length, chunked round-robin over subarrays.
    ///
    /// # Errors
    ///
    /// [`CoreError::CapacityExceeded`] if any target subarray is full.
    pub fn store(&mut self, value: &BitVec) -> Result<VecHandle, CoreError> {
        let rb = self.row_bits();
        let n_chunks = value.len().div_ceil(rb).max(1);
        let mut chunks = Vec::with_capacity(n_chunks);
        for c in 0..n_chunks {
            let sub = c % self.engines.len();
            let row = self.allocs[sub].alloc()?;
            // Word-level zero-copy chunking straight into the row arena.
            self.engines[sub].write_row_from(row, value, c * rb)?;
            chunks.push((sub, row));
        }
        let id = self.vectors.len();
        self.vectors.push(Some(VecEntry { len: value.len(), chunks }));
        Ok(VecHandle(id))
    }

    /// Loads a vector back.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for dead handles.
    pub fn load(&self, h: VecHandle) -> Result<BitVec, CoreError> {
        let entry = self.entry(h)?;
        let rb = self.row_bits();
        let mut out = BitVec::zeros(entry.len);
        for (c, &(sub, row)) in entry.chunks.iter().enumerate() {
            self.engines[sub].read_row_into(row, &mut out, c * rb)?;
        }
        Ok(out)
    }

    /// Releases a vector's rows.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for dead handles.
    pub fn release(&mut self, h: VecHandle) -> Result<(), CoreError> {
        let entry = self
            .vectors
            .get_mut(h.0)
            .and_then(Option::take)
            .ok_or(CoreError::InvalidHandle(h.0))?;
        for (sub, row) in entry.chunks {
            self.allocs[sub].free(row)?;
        }
        Ok(())
    }

    /// Functionally executes a unary/binary op over every chunk and
    /// returns the new handle plus the per-bank command streams — without
    /// running the controller (the caller decides what overlaps).
    fn prepare_op(
        &mut self,
        op: LogicOp,
        a: VecHandle,
        b: Option<VecHandle>,
    ) -> Result<(VecHandle, BankStreams), CoreError> {
        let ea = self.entry(a)?.clone();
        let eb = match b {
            Some(b) => {
                let eb = self.entry(b)?.clone();
                if ea.len != eb.len {
                    return Err(CoreError::WidthMismatch { expected: ea.len, got: eb.len });
                }
                Some(eb)
            }
            None => None,
        };
        let mut chunks = Vec::with_capacity(ea.chunks.len());
        let mut streams: Vec<(usize, Vec<elp2im_dram::command::CommandProfile>)> = Vec::new();
        for (ci, &(sa, ra)) in ea.chunks.iter().enumerate() {
            let rb = match &eb {
                Some(eb) => {
                    let (sb, rb) = eb.chunks[ci];
                    debug_assert_eq!(sa, sb, "round-robin placement keeps operands co-located");
                    rb
                }
                None => ra,
            };
            let dst = self.allocs[sa].alloc()?;
            let rows = Operands { a: ra, b: rb, dst, scratch: None };
            let prog = compile(op, self.config.mode, rows, self.config.reserved_rows)?;
            self.engines[sa].run_verified_cached(&prog, &self.analysis_cache)?;
            let bank = self.bank_of(sa);
            let profiles = prog.profiles(self.engines[sa].timing());
            match streams.iter_mut().find(|(bk, _)| *bk == bank) {
                Some((_, v)) => v.extend(profiles),
                None => streams.push((bank, profiles)),
            }
            chunks.push((sa, dst));
        }
        let id = self.vectors.len();
        self.vectors.push(Some(VecEntry { len: ea.len, chunks }));
        Ok((VecHandle(id), streams))
    }

    /// Executes `dst := !a` over a whole vector.
    ///
    /// # Errors
    ///
    /// Handle, capacity, and compilation errors.
    pub fn not(&mut self, a: VecHandle) -> Result<(VecHandle, RunStats), CoreError> {
        let (h, streams) = self.prepare_op(LogicOp::Not, a, None)?;
        let stats = self
            .controller
            .run_streams(&streams)
            .map_err(|_| CoreError::InvalidHandle(usize::MAX))?;
        Ok((h, stats))
    }

    /// Evaluates a Boolean [`Expr`](crate::expr::Expr) over stored
    /// vectors, reusing common subexpressions and releasing intermediates.
    /// Returns the result handle and the aggregate run statistics (the
    /// makespan sums over the sequentially executed operations).
    ///
    /// # Errors
    ///
    /// Variable indices beyond `inputs` report as
    /// [`CoreError::InvalidHandle`]; all operation errors propagate.
    pub fn eval_expr(
        &mut self,
        expr: &crate::expr::Expr,
        inputs: &[VecHandle],
    ) -> Result<(VecHandle, RunStats), CoreError> {
        use crate::expr::Expr;
        use std::collections::HashMap;

        if let Some(max) = expr.max_var() {
            if max >= inputs.len() {
                return Err(CoreError::InvalidHandle(max));
            }
        }
        // MAJ/ITE nodes lower through their AND/OR/NOT expansion here (the
        // module works gate-at-a-time; the synthesizer handles them natively).
        let expr = expr.expand();
        let mut total = RunStats::new();
        let mut cache: HashMap<Expr, VecHandle> = HashMap::new();

        fn walk(
            m: &mut Elp2imModule,
            e: &crate::expr::Expr,
            inputs: &[VecHandle],
            cache: &mut HashMap<crate::expr::Expr, VecHandle>,
            total: &mut RunStats,
        ) -> Result<VecHandle, CoreError> {
            if let Expr::Var(i) = e {
                return Ok(inputs[*i]);
            }
            if let Some(&h) = cache.get(e) {
                return Ok(h);
            }
            let (h, stats) = match e {
                Expr::Var(_) => unreachable!(),
                Expr::Not(x) => {
                    let hx = walk(m, x, inputs, cache, total)?;
                    m.not(hx)?
                }
                Expr::And(x, y) | Expr::Or(x, y) | Expr::Xor(x, y) => {
                    let op = match e {
                        Expr::And(..) => LogicOp::And,
                        Expr::Or(..) => LogicOp::Or,
                        _ => LogicOp::Xor,
                    };
                    let hx = walk(m, x, inputs, cache, total)?;
                    let hy = walk(m, y, inputs, cache, total)?;
                    m.binary(op, hx, hy)?
                }
                Expr::Maj(..) | Expr::Ite(..) => unreachable!("expanded at entry"),
            };
            // Sequential composition: makespans add (merge_parallel would
            // take the max, which models parallel composition).
            total.merge_sequential(&stats);
            cache.insert(e.clone(), h);
            Ok(h)
        }

        let result = walk(self, &expr, inputs, &mut cache, &mut total)?;
        // Release intermediates other than the result (inputs are callers').
        for (_, h) in cache {
            if h != result {
                self.release(h)?;
            }
        }
        Ok((result, total))
    }

    /// Executes `dst := op(a, b)` over whole vectors: functionally on every
    /// chunk, and scheduled on the controller for timing. Returns the new
    /// handle and this operation's run statistics (makespan included).
    ///
    /// # Errors
    ///
    /// Handle, co-location (equal lengths required), capacity, and
    /// compilation errors.
    pub fn binary(
        &mut self,
        op: LogicOp,
        a: VecHandle,
        b: VecHandle,
    ) -> Result<(VecHandle, RunStats), CoreError> {
        let (h, streams) = self.prepare_op(op, a, Some(b))?;
        let stats = self
            .controller
            .run_streams(&streams)
            .map_err(|_| CoreError::InvalidHandle(usize::MAX))?;
        Ok((h, stats))
    }

    /// Evaluates an expression like [`Elp2imModule::eval_expr`], but
    /// overlaps *independent* subexpressions: the expression DAG is
    /// processed level by level, and every operation within a level is
    /// handed to the controller in one batch, so operations on different
    /// banks execute concurrently (subject to the pump budget).
    ///
    /// # Errors
    ///
    /// Same as [`Elp2imModule::eval_expr`].
    pub fn eval_expr_parallel(
        &mut self,
        expr: &crate::expr::Expr,
        inputs: &[VecHandle],
    ) -> Result<(VecHandle, RunStats), CoreError> {
        use crate::expr::Expr;
        use std::collections::HashMap;

        if let Some(max) = expr.max_var() {
            if max >= inputs.len() {
                return Err(CoreError::InvalidHandle(max));
            }
        }
        // MAJ/ITE nodes lower through their AND/OR/NOT expansion here (the
        // module works gate-at-a-time; the synthesizer handles them natively).
        let expr = expr.expand();
        // Assign each distinct subexpression a DAG depth.
        fn depth_of(e: &Expr, depths: &mut HashMap<Expr, usize>) -> usize {
            if let Some(&d) = depths.get(e) {
                return d;
            }
            let d = match e {
                Expr::Var(_) => 0,
                Expr::Not(x) => depth_of(x, depths) + 1,
                Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                    depth_of(a, depths).max(depth_of(b, depths)) + 1
                }
                Expr::Maj(..) | Expr::Ite(..) => unreachable!("expanded at entry"),
            };
            depths.insert(e.clone(), d);
            d
        }
        let mut depths = HashMap::new();
        let max_depth = depth_of(&expr, &mut depths);

        let mut handles: HashMap<Expr, VecHandle> = HashMap::new();
        let mut total = RunStats::new();
        for level in 1..=max_depth {
            // All distinct nodes at this level are mutually independent.
            let nodes: Vec<Expr> =
                depths.iter().filter(|&(_, &d)| d == level).map(|(e, _)| e.clone()).collect();
            let mut level_streams: Vec<(usize, Vec<elp2im_dram::command::CommandProfile>)> =
                Vec::new();
            for node in nodes {
                let resolve = |e: &Expr, handles: &HashMap<Expr, VecHandle>| -> VecHandle {
                    match e {
                        Expr::Var(i) => inputs[*i],
                        other => handles[other],
                    }
                };
                let (h, streams) = match &node {
                    Expr::Var(_) => continue,
                    Expr::Not(x) => {
                        let hx = resolve(x, &handles);
                        self.prepare_op(LogicOp::Not, hx, None)?
                    }
                    Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                        let op = match &node {
                            Expr::And(..) => LogicOp::And,
                            Expr::Or(..) => LogicOp::Or,
                            _ => LogicOp::Xor,
                        };
                        let ha = resolve(a, &handles);
                        let hb = resolve(b, &handles);
                        self.prepare_op(op, ha, Some(hb))?
                    }
                    Expr::Maj(..) | Expr::Ite(..) => unreachable!("expanded at entry"),
                };
                for (bank, profiles) in streams {
                    match level_streams.iter_mut().find(|(bk, _)| *bk == bank) {
                        Some((_, v)) => v.extend(profiles),
                        None => level_streams.push((bank, profiles)),
                    }
                }
                handles.insert(node, h);
            }
            let stats = self
                .controller
                .run_streams(&level_streams)
                .map_err(|_| CoreError::InvalidHandle(usize::MAX))?;
            // Levels execute one after another: sequential composition.
            total.merge_sequential(&stats);
        }
        let result = match &expr {
            Expr::Var(i) => inputs[*i],
            other => handles[other],
        };
        for (_, h) in handles {
            if h != result {
                self.release(h)?;
            }
        }
        Ok((result, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elp2im_dram::units::Ns;

    fn module() -> Elp2imModule {
        Elp2imModule::new(ModuleConfig::default())
    }

    fn pattern(bits: usize, period: usize) -> BitVec {
        (0..bits).map(|i| i % period == 0).collect()
    }

    #[test]
    fn store_load_roundtrip_across_chunks() {
        let mut m = module();
        let bits = m.row_bits() * 3 + 17; // uneven tail chunk
        let v = pattern(bits, 3);
        let h = m.store(&v).unwrap();
        assert_eq!(m.load(h).unwrap(), v);
    }

    #[test]
    fn binary_ops_match_software_over_wide_vectors() {
        for op in [LogicOp::And, LogicOp::Or, LogicOp::Xor, LogicOp::Nor] {
            let mut m = module();
            let bits = m.row_bits() * 5;
            let a = pattern(bits, 2);
            let b = pattern(bits, 3);
            let ha = m.store(&a).unwrap();
            let hb = m.store(&b).unwrap();
            let (hc, _) = m.binary(op, ha, hb).unwrap();
            let got = m.load(hc).unwrap();
            let want: BitVec = (0..bits).map(|i| op.eval(a.get(i), b.get(i))).collect();
            assert_eq!(got, want, "{op}");
        }
    }

    #[test]
    fn makespan_benefits_from_bank_parallelism() {
        // Two banks (tiny geometry): chunks spread across banks should
        // finish in less than the serial time.
        let mut m = Elp2imModule::new(ModuleConfig {
            budget: PumpBudget::unconstrained(),
            ..ModuleConfig::default()
        });
        let bits = m.row_bits() * 4; // 4 chunks over 2x2 subarrays = both banks
        let a = m.store(&BitVec::ones(bits)).unwrap();
        let b = m.store(&BitVec::zeros(bits)).unwrap();
        let (_, stats) = m.binary(LogicOp::And, a, b).unwrap();
        let serial = stats.busy_time.as_f64();
        let makespan = stats.makespan.as_f64();
        assert!(
            makespan < serial * 0.75,
            "banks must overlap: makespan {makespan} vs serial {serial}"
        );
    }

    #[test]
    fn pump_constraint_stretches_makespan() {
        // 8 single-subarray banks all computing: enough concurrent demand
        // for the JEDEC four-activate window to bite.
        let geometry = elp2im_dram::geometry::Geometry {
            banks: 8,
            subarrays_per_bank: 1,
            rows_per_subarray: 32,
            row_bytes: 32,
        };
        let run = |budget: PumpBudget| -> Ns {
            let mut m =
                Elp2imModule::new(ModuleConfig { geometry, budget, ..ModuleConfig::default() });
            let bits = m.row_bits() * 8;
            let a = m.store(&BitVec::ones(bits)).unwrap();
            let b = m.store(&BitVec::ones(bits)).unwrap();
            let (_, stats) = m.binary(LogicOp::Xor, a, b).unwrap();
            stats.makespan
        };
        let free = run(PumpBudget::unconstrained());
        let tight = run(PumpBudget::jedec_ddr3_1600());
        assert!(tight.as_f64() > free.as_f64() * 1.2, "constrained {tight} vs free {free}");
    }

    #[test]
    fn eval_expr_computes_and_releases_intermediates() {
        use crate::expr::Expr;
        let mut m = module();
        let bits = m.row_bits() * 3;
        let a = pattern(bits, 2);
        let b = pattern(bits, 3);
        let c = pattern(bits, 5);
        let ha = m.store(&a).unwrap();
        let hb = m.store(&b).unwrap();
        let hc = m.store(&c).unwrap();

        // majority(a, b, c) with a shared subterm.
        let expr = Expr::majority(Expr::var(0), Expr::var(1), Expr::var(2));
        let (result, stats) = m.eval_expr(&expr, &[ha, hb, hc]).unwrap();
        let got = m.load(result).unwrap();
        let want: BitVec = (0..bits)
            .map(|i| {
                let (x, y, z) = (a.get(i), b.get(i), c.get(i));
                [x, y, z].into_iter().filter(|&v| v).count() >= 2
            })
            .collect();
        assert_eq!(got, want);
        assert!(stats.makespan.as_f64() > 0.0);
        // 5 operations (3 AND + 2 OR) over 3 chunks each.
        assert_eq!(stats.total_commands() % 5, 0);

        // Inputs must still be loadable (not released).
        assert_eq!(m.load(ha).unwrap(), a);
        // Releasing the result works; intermediates were already freed, so
        // the allocator count drops back to the three inputs.
        m.release(result).unwrap();
    }

    #[test]
    fn parallel_eval_matches_sequential_and_never_loses() {
        use crate::expr::Expr;
        // Four independent ANDs feeding a balanced OR tree over 8 inputs.
        let v = Expr::var;
        let expr = ((v(0) & v(1)) | (v(2) & v(3))) | ((v(4) & v(5)) | (v(6) & v(7)));

        let mk = || {
            Elp2imModule::new(ModuleConfig {
                budget: PumpBudget::unconstrained(),
                ..ModuleConfig::default()
            })
        };
        let mut seq = mk();
        let mut par = mk();
        let bits = seq.row_bits() * 4;
        let inputs: Vec<BitVec> = (2..10).map(|p| pattern(bits, p)).collect();
        let hs: Vec<_> = inputs.iter().map(|x| seq.store(x).unwrap()).collect();
        let hp: Vec<_> = inputs.iter().map(|x| par.store(x).unwrap()).collect();

        let (rs, stats_seq) = seq.eval_expr(&expr, &hs).unwrap();
        let (rp, stats_par) = par.eval_expr_parallel(&expr, &hp).unwrap();
        assert_eq!(seq.load(rs).unwrap(), par.load(rp).unwrap());
        assert_eq!(stats_seq.total_commands(), stats_par.total_commands());
        // With the round-robin placement every operand spans the same
        // banks, so the bottleneck bank is saturated either way: level
        // batching must never be slower, and here the wall clocks tie.
        // (Earlier accounting summed cumulative end timestamps per op,
        // which inflated the sequential figure and faked a speedup.)
        assert!(
            stats_par.makespan.as_f64() <= stats_seq.makespan.as_f64() + 1e-9,
            "parallel {} must not exceed sequential {}",
            stats_par.makespan,
            stats_seq.makespan
        );
        assert!(stats_par.makespan.as_f64() > 0.0);
    }

    #[test]
    fn eval_expr_rejects_unknown_variables() {
        use crate::expr::Expr;
        let mut m = module();
        let ha = m.store(&BitVec::ones(8)).unwrap();
        assert!(matches!(m.eval_expr(&Expr::var(3), &[ha]), Err(CoreError::InvalidHandle(3))));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut m = module();
        let a = m.store(&BitVec::ones(10)).unwrap();
        let b = m.store(&BitVec::ones(20)).unwrap();
        assert!(matches!(m.binary(LogicOp::And, a, b), Err(CoreError::WidthMismatch { .. })));
    }

    #[test]
    fn release_frees_rows_for_reuse() {
        let mut m = module();
        let bits = m.row_bits();
        // tiny geometry: 4 subarrays x 32 rows; chunk 0 always lands in
        // subarray 0, so 32 single-chunk vectors fill it.
        let handles: Vec<_> = (0..8).map(|_| m.store(&BitVec::ones(bits)).unwrap()).collect();
        for h in handles {
            m.release(h).unwrap();
        }
        for _ in 0..8 {
            let h = m.store(&BitVec::ones(bits)).unwrap();
            m.release(h).unwrap();
        }
    }

    #[test]
    fn dead_handle_errors() {
        let mut m = module();
        let h = m.store(&BitVec::ones(4)).unwrap();
        m.release(h).unwrap();
        assert!(matches!(m.load(h), Err(CoreError::InvalidHandle(_))));
        assert!(matches!(m.release(h), Err(CoreError::InvalidHandle(_))));
    }
}
