//! ELP2IM core: the paper's primary contribution.
//!
//! * [`bitvec`] — the bulk bit-vector type rows are made of.
//! * [`primitive`] — the six-plus-one ELP2IM primitives (AP, AAP, oAAP,
//!   APP, oAPP, tAPP, otAPP) with Table-1 timing and command profiles.
//! * [`engine`] — the functional subarray engine: executes primitive
//!   programs over whole rows with exact pseudo-precharge/overwrite
//!   semantics (validated against the analog model in `elp2im-circuit`).
//! * [`isa`] — primitive programs in the paper's `prmt([dst],src)` form,
//!   with latency/energy/pump accounting.
//! * [`compile`] — the logic-operation compiler: NOT/AND/OR/NAND/NOR/XOR/
//!   XNOR to primitive sequences under the three execution strategies of
//!   Fig. 5, including all six XOR sequences of Fig. 8.
//! * [`optimizer`] — the §4.2/§4.3 sequence optimizations (AP+APP merging,
//!   row-buffer-decoupling overlap, restore truncation) as rewrite passes,
//!   each translation-validated by exhaustive truth-table equivalence.
//! * [`analysis`] — the static sequence verifier: an abstract interpreter
//!   over the pseudo-precharge state machine (the §5.1 memory-controller
//!   check) plus the optimizer translation-validation obligations.
//! * [`egraph`] — a small hand-rolled equality-saturation e-graph over
//!   boolean networks (De Morgan, absorption, factoring, XOR and MAJ
//!   identities), the rewrite stage of the synthesizer.
//! * [`synth`] — the logic-synthesis compiler: expression networks →
//!   e-graph saturation → minimum-latency extraction under the Table-1
//!   cost model → truth-table translation validation.
//! * [`rowmap`] — subarray row allocation with reserved-row bookkeeping.
//! * [`device`] — [`device::Elp2imDevice`], the user-facing bulk bitwise
//!   device.
//! * [`batch`] — [`batch::DeviceArray`], the bank-parallel batch
//!   execution engine: bank-major striping across the whole module, with
//!   per-bank host-parallel functional simulation and interleaved
//!   scheduling under the charge-pump budget.
//! * [`planlint`] — the plan-level static verifier: interprocedural row
//!   borrow checking, cross-stream hazard analysis, and static timing
//!   proofs over whole batch plans before anything executes.
//!
//! # Example
//!
//! ```
//! use elp2im_core::device::{DeviceConfig, Elp2imDevice};
//! use elp2im_core::bitvec::BitVec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dev = Elp2imDevice::new(DeviceConfig::default());
//! let a = dev.store(&BitVec::from_bools(&[true, true, false, false]))?;
//! let b = dev.store(&BitVec::from_bools(&[true, false, true, false]))?;
//! let x = dev.xor(a, b)?;
//! assert_eq!(dev.load(x)?.to_bools(), vec![false, true, true, false]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod batch;
pub mod bitvec;
pub mod compile;
pub mod device;
pub mod egraph;
pub mod engine;
pub mod error;
pub mod expr;
pub mod faulty;
pub mod isa;
pub mod module;
pub mod optimizer;
pub mod parse;
pub mod planlint;
pub mod primitive;
pub mod rowmap;
pub mod synth;
pub mod validate;

pub use analysis::{analyze, verify_transform, AnalysisReport, Diagnostic, Severity};
pub use batch::{BatchConfig, BatchHandle, BatchRun, CheckedRun, DeviceArray, Stripe};
pub use bitvec::BitVec;
pub use compile::{CompileMode, LogicOp};
pub use device::{CheckedOp, DeviceConfig, Elp2imDevice};
pub use engine::SubarrayEngine;
pub use error::CoreError;
pub use expr::{compile_expr, compile_expr_greedy, Expr, ExprOperands};
pub use faulty::{ColumnFaultModel, FaultPolicy, FaultyEngine};
pub use isa::Program;
pub use planlint::{certify, BatchPlan, PlanDiagnostic, PlanDiagnosticKind, PlanReport, PlanStep};
pub use primitive::{Primitive, RegulateMode, RowRef};
pub use synth::{synthesize, SynthOperands, Synthesis};
