//! A hand-rolled e-graph with equality saturation for boolean logic
//! networks (no external dependencies).
//!
//! The synthesis pipeline ([`crate::synth`]) ingests an
//! [`Expr`](crate::expr::Expr) into this graph, saturates it under a small
//! rule set (De Morgan, absorption/factoring, XOR recognition and
//! decomposition, MAJ identities, constant folding), and then extracts the
//! cheapest implementation per equivalence class under the Table-1 latency
//! cost model. The design follows the classic egg recipe — hashcons +
//! union-find + congruence-closure `rebuild` — sized for boolean networks
//! of at most [`crate::analysis::MAX_VARS`] inputs.

use std::collections::HashMap;
use std::fmt;

/// An equivalence-class identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(u32);

impl Id {
    /// The class index (stable once canonical).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// One operator node whose operands are equivalence classes.
///
/// Commutative operands are kept sorted, so hashconsing identifies
/// `And(a, b)` with `And(b, a)` for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Node {
    /// Input variable `i`.
    Var(u32),
    /// A boolean constant.
    Const(bool),
    /// Negation.
    Not(Id),
    /// Conjunction.
    And(Id, Id),
    /// Disjunction.
    Or(Id, Id),
    /// Exclusive or.
    Xor(Id, Id),
    /// Three-input majority.
    Maj(Id, Id, Id),
}

impl Node {
    /// Operand classes, in order.
    pub fn children(&self) -> Vec<Id> {
        match *self {
            Node::Var(_) | Node::Const(_) => Vec::new(),
            Node::Not(a) => vec![a],
            Node::And(a, b) | Node::Or(a, b) | Node::Xor(a, b) => vec![a, b],
            Node::Maj(a, b, c) => vec![a, b, c],
        }
    }
}

/// A right-hand-side template for a rewrite: instantiated with
/// [`EGraph::add_template`] after the immutable matching scan.
#[derive(Debug, Clone)]
enum Rhs {
    Class(Id),
    Const(bool),
    Not(Box<Rhs>),
    And(Box<Rhs>, Box<Rhs>),
    Or(Box<Rhs>, Box<Rhs>),
    Xor(Box<Rhs>, Box<Rhs>),
}

impl Rhs {
    fn class(id: Id) -> Rhs {
        Rhs::Class(id)
    }
    fn not(a: Rhs) -> Rhs {
        Rhs::Not(Box::new(a))
    }
    fn and(a: Rhs, b: Rhs) -> Rhs {
        Rhs::And(Box::new(a), Box::new(b))
    }
    fn or(a: Rhs, b: Rhs) -> Rhs {
        Rhs::Or(Box::new(a), Box::new(b))
    }
    fn xor(a: Rhs, b: Rhs) -> Rhs {
        Rhs::Xor(Box::new(a), Box::new(b))
    }
}

/// Saturation statistics (for reports and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturationStats {
    /// Rewrite iterations performed.
    pub iterations: usize,
    /// Total hashconsed nodes after saturation.
    pub nodes: usize,
    /// Canonical equivalence classes after saturation.
    pub classes: usize,
    /// Whether saturation reached a fixpoint (vs hitting the node budget).
    pub saturated: bool,
}

/// Growth limits for [`EGraph::saturate`]. Boolean networks over ≤16
/// inputs stay small; the limits are a backstop against rule blowup.
#[derive(Debug, Clone, Copy)]
pub struct SaturationLimits {
    /// Stop growing once this many hashconsed nodes exist.
    pub max_nodes: usize,
    /// Maximum rewrite iterations.
    pub max_iterations: usize,
}

impl Default for SaturationLimits {
    fn default() -> Self {
        SaturationLimits { max_nodes: 6_000, max_iterations: 12 }
    }
}

/// The e-graph: a union-find over equivalence classes, each holding a set
/// of hashconsed operator nodes.
#[derive(Debug, Default)]
pub struct EGraph {
    /// Union-find parent pointers (indexed by raw id).
    parent: Vec<u32>,
    /// Nodes per class, indexed by raw id (empty for non-canonical ids).
    classes: Vec<Vec<Node>>,
    /// Canonical node → canonical class.
    memo: HashMap<Node, Id>,
}

impl EGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total nodes across all classes.
    pub fn node_count(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Number of canonical classes.
    pub fn class_count(&self) -> usize {
        (0..self.parent.len()).filter(|&i| self.parent[i] as usize == i).count()
    }

    /// Canonical representative of `id`.
    pub fn find(&self, id: Id) -> Id {
        let mut i = id.0;
        while self.parent[i as usize] != i {
            i = self.parent[i as usize];
        }
        Id(i)
    }

    fn canonicalize(&self, node: Node) -> Node {
        match node {
            Node::Var(_) | Node::Const(_) => node,
            Node::Not(a) => Node::Not(self.find(a)),
            Node::And(a, b) => {
                let (a, b) = sort2(self.find(a), self.find(b));
                Node::And(a, b)
            }
            Node::Or(a, b) => {
                let (a, b) = sort2(self.find(a), self.find(b));
                Node::Or(a, b)
            }
            Node::Xor(a, b) => {
                let (a, b) = sort2(self.find(a), self.find(b));
                Node::Xor(a, b)
            }
            Node::Maj(a, b, c) => {
                let mut v = [self.find(a), self.find(b), self.find(c)];
                v.sort_unstable();
                Node::Maj(v[0], v[1], v[2])
            }
        }
    }

    /// Adds (or finds) a node, returning its class.
    pub fn add(&mut self, node: Node) -> Id {
        let node = self.canonicalize(node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find(id);
        }
        let id = Id(self.parent.len() as u32);
        self.parent.push(id.0);
        self.classes.push(vec![node]);
        self.memo.insert(node, id);
        id
    }

    /// Nodes of the (canonical) class containing `id`.
    pub fn nodes(&self, id: Id) -> &[Node] {
        &self.classes[self.find(id).index()]
    }

    /// The class holding `Not(a)`, if one exists.
    pub fn negation_of(&self, a: Id) -> Option<Id> {
        self.memo.get(&Node::Not(self.find(a))).map(|&id| self.find(id))
    }

    /// Whether classes `a` and `b` are known complements of one another.
    pub fn complementary(&self, a: Id, b: Id) -> bool {
        let (a, b) = (self.find(a), self.find(b));
        self.negation_of(a) == Some(b) || self.negation_of(b) == Some(a)
    }

    /// Merges the classes of `a` and `b`; returns `true` if they were
    /// distinct. Callers must [`EGraph::rebuild`] before further matching.
    pub fn union(&mut self, a: Id, b: Id) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Merge the smaller node set into the larger.
        let (keep, merge) = if self.classes[ra.index()].len() >= self.classes[rb.index()].len() {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[merge.index()] = keep.0;
        let moved = std::mem::take(&mut self.classes[merge.index()]);
        self.classes[keep.index()].extend(moved);
        true
    }

    /// Restores the hashcons + congruence invariants after unions: nodes
    /// are re-canonicalized, duplicate nodes inside a class deduplicated,
    /// and congruent nodes (equal after canonicalization) force their
    /// classes to merge, to a fixpoint.
    pub fn rebuild(&mut self) {
        loop {
            let mut pending: Vec<(Id, Id)> = Vec::new();
            let mut memo: HashMap<Node, Id> = HashMap::new();
            for i in 0..self.classes.len() {
                if self.parent[i] as usize != i {
                    continue;
                }
                let id = Id(i as u32);
                let nodes = std::mem::take(&mut self.classes[i]);
                let mut rebuilt: Vec<Node> = Vec::with_capacity(nodes.len());
                for n in nodes {
                    let n = self.canonicalize(n);
                    if !rebuilt.contains(&n) {
                        rebuilt.push(n);
                    }
                    match memo.get(&n) {
                        Some(&other) if self.find(other) != id => {
                            pending.push((other, id));
                        }
                        Some(_) => {}
                        None => {
                            memo.insert(n, id);
                        }
                    }
                }
                self.classes[i] = rebuilt;
            }
            self.memo = memo;
            if pending.is_empty() {
                break;
            }
            for (a, b) in pending {
                self.union(a, b);
            }
        }
    }

    /// Canonical class ids, ascending.
    pub fn class_ids(&self) -> Vec<Id> {
        (0..self.parent.len())
            .filter(|&i| self.parent[i] as usize == i)
            .map(|i| Id(i as u32))
            .collect()
    }

    fn add_template(&mut self, rhs: &Rhs) -> Id {
        match rhs {
            Rhs::Class(id) => self.find(*id),
            Rhs::Const(v) => self.add(Node::Const(*v)),
            Rhs::Not(a) => {
                let a = self.add_template(a);
                self.add(Node::Not(a))
            }
            Rhs::And(a, b) => {
                let (a, b) = (self.add_template(a), self.add_template(b));
                self.add(Node::And(a, b))
            }
            Rhs::Or(a, b) => {
                let (a, b) = (self.add_template(a), self.add_template(b));
                self.add(Node::Or(a, b))
            }
            Rhs::Xor(a, b) => {
                let (a, b) = (self.add_template(a), self.add_template(b));
                self.add(Node::Xor(a, b))
            }
        }
    }

    /// Runs equality saturation under the boolean rule set until fixpoint
    /// or `limits` are hit. Returns the run statistics.
    pub fn saturate(&mut self, limits: SaturationLimits) -> SaturationStats {
        let mut iterations = 0;
        let mut saturated = false;
        while iterations < limits.max_iterations {
            iterations += 1;
            let matches = self.scan_rules();
            let mut changed = false;
            for (class, rhs) in &matches {
                if self.node_count() > limits.max_nodes {
                    break;
                }
                let new = self.add_template(rhs);
                changed |= self.union(*class, new);
            }
            self.rebuild();
            if !changed {
                saturated = true;
                break;
            }
            if self.node_count() > limits.max_nodes {
                break;
            }
        }
        SaturationStats {
            iterations,
            nodes: self.node_count(),
            classes: self.class_count(),
            saturated,
        }
    }

    /// Immutable matching pass: every rule instance as `(class, rhs)` pairs
    /// to union after instantiation.
    #[allow(clippy::too_many_lines)]
    fn scan_rules(&self) -> Vec<(Id, Rhs)> {
        let mut out: Vec<(Id, Rhs)> = Vec::new();
        for id in self.class_ids() {
            for node in self.nodes(id) {
                self.match_node(id, node, &mut out);
            }
        }
        out
    }

    fn const_of(&self, id: Id) -> Option<bool> {
        self.nodes(id).iter().find_map(|n| match n {
            Node::Const(v) => Some(*v),
            _ => None,
        })
    }

    fn match_node(&self, id: Id, node: &Node, out: &mut Vec<(Id, Rhs)>) {
        let c = Rhs::class;
        match *node {
            Node::Var(_) | Node::Const(_) => {}
            Node::Not(a) => {
                // Double negation: !!x = x.
                for inner in self.nodes(a) {
                    match *inner {
                        Node::Not(x) => out.push((id, c(x))),
                        // De Morgan (forward): !(x·y) = !x + !y, dual.
                        Node::And(x, y) => {
                            out.push((id, Rhs::or(Rhs::not(c(x)), Rhs::not(c(y)))));
                        }
                        Node::Or(x, y) => {
                            out.push((id, Rhs::and(Rhs::not(c(x)), Rhs::not(c(y)))));
                        }
                        // Push the negation into one XOR operand.
                        Node::Xor(x, y) => out.push((id, Rhs::xor(Rhs::not(c(x)), c(y)))),
                        Node::Const(v) => out.push((id, Rhs::Const(!v))),
                        Node::Var(_) | Node::Maj(..) => {}
                    }
                }
            }
            Node::And(a, b) => {
                if a == b {
                    out.push((id, c(a))); // idempotence
                }
                if self.complementary(a, b) {
                    out.push((id, Rhs::Const(false))); // x·!x = 0
                }
                for (x, y) in [(a, b), (b, a)] {
                    match self.const_of(x) {
                        Some(true) => out.push((id, c(y))),               // 1·y = y
                        Some(false) => out.push((id, Rhs::Const(false))), // 0·y = 0
                        None => {}
                    }
                    for inner in self.nodes(y) {
                        match *inner {
                            // Absorption: x·(x + z) = x.
                            Node::Or(p, q) if p == x || q == x => out.push((id, c(x))),
                            // Associativity rotation: (p·q)·x = p·(q·x).
                            Node::And(p, q) => {
                                out.push((id, Rhs::and(c(p), Rhs::and(c(q), c(x)))));
                            }
                            _ => {}
                        }
                    }
                }
                // De Morgan (reverse): !p·!q = !(p + q) — a NOR, one fused
                // gate at extraction instead of three.
                if let (Some(an), Some(bn)) = (self.not_operand(a), self.not_operand(b)) {
                    out.push((id, Rhs::not(Rhs::or(c(an), c(bn)))));
                }
            }
            Node::Or(a, b) => {
                if a == b {
                    out.push((id, c(a)));
                }
                if self.complementary(a, b) {
                    out.push((id, Rhs::Const(true))); // x + !x = 1
                }
                for (x, y) in [(a, b), (b, a)] {
                    match self.const_of(x) {
                        Some(false) => out.push((id, c(y))),            // 0 + y = y
                        Some(true) => out.push((id, Rhs::Const(true))), // 1 + y = 1
                        None => {}
                    }
                    for inner in self.nodes(y) {
                        match *inner {
                            // Absorption: x + x·z = x.
                            Node::And(p, q) if p == x || q == x => out.push((id, c(x))),
                            // Associativity rotation.
                            Node::Or(p, q) => {
                                out.push((id, Rhs::or(c(p), Rhs::or(c(q), c(x)))));
                            }
                            _ => {}
                        }
                    }
                }
                if let (Some(an), Some(bn)) = (self.not_operand(a), self.not_operand(b)) {
                    // !p + !q = !(p·q) — a NAND.
                    out.push((id, Rhs::not(Rhs::and(c(an), c(bn)))));
                }
                // Factoring and XOR/XNOR recognition over sums of products.
                for left in self.nodes(a) {
                    let Node::And(p, q) = *left else { continue };
                    for right in self.nodes(b) {
                        let Node::And(r, s) = *right else { continue };
                        // Shared-factor extraction: p·q + p·s = p·(q + s).
                        for (f, rest_l, rest_r) in [
                            (p, q, if r == p { Some(s) } else { None }),
                            (p, q, if s == p { Some(r) } else { None }),
                            (q, p, if r == q { Some(s) } else { None }),
                            (q, p, if s == q { Some(r) } else { None }),
                        ] {
                            if let Some(rr) = rest_r {
                                out.push((id, Rhs::and(c(f), Rhs::or(c(rest_l), c(rr)))));
                            }
                        }
                        // p·q + !p·!q = XNOR(p, q); the complementary
                        // pairing p·!y + !p·y arrives as the same pattern
                        // with q = !y, and the Not-push rules normalize it
                        // to a plain XOR.
                        for (r2, s2) in [(r, s), (s, r)] {
                            if self.complementary(p, r2) && self.complementary(q, s2) {
                                out.push((id, Rhs::not(Rhs::xor(c(p), c(q)))));
                            }
                        }
                    }
                }
            }
            Node::Xor(a, b) => {
                if a == b {
                    out.push((id, Rhs::Const(false))); // x ⊕ x = 0
                }
                if self.complementary(a, b) {
                    out.push((id, Rhs::Const(true))); // x ⊕ !x = 1
                }
                for (x, y) in [(a, b), (b, a)] {
                    match self.const_of(x) {
                        Some(false) => out.push((id, c(y))),          // 0 ⊕ y = y
                        Some(true) => out.push((id, Rhs::not(c(y)))), // 1 ⊕ y = !y
                        None => {}
                    }
                    // Pull negations out: !x ⊕ y = !(x ⊕ y).
                    if let Some(xn) = self.not_operand(x) {
                        out.push((id, Rhs::not(Rhs::xor(c(xn), c(y)))));
                    }
                }
                // XOR decomposition into a sum of products (lets the
                // saturation discover sharing with existing product terms).
                out.push((
                    id,
                    Rhs::or(Rhs::and(c(a), Rhs::not(c(b))), Rhs::and(Rhs::not(c(a)), c(b))),
                ));
            }
            Node::Maj(a, b, x) => {
                // Pairs collapse: MAJ(a, a, c) = a; MAJ(a, !a, c) = c.
                for (p, q, r) in [(a, b, x), (a, x, b), (b, x, a)] {
                    if p == q {
                        out.push((id, c(p)));
                    }
                    if self.complementary(p, q) {
                        out.push((id, c(r)));
                    }
                    match self.const_of(p) {
                        Some(false) => out.push((id, Rhs::and(c(q), c(r)))),
                        Some(true) => out.push((id, Rhs::or(c(q), c(r)))),
                        None => {}
                    }
                }
                // 4-gate decomposition: MAJ(a,b,c) = a·b + c·(a + b).
                out.push((id, Rhs::or(Rhs::and(c(a), c(b)), Rhs::and(c(x), Rhs::or(c(a), c(b))))));
            }
        }
    }

    /// If class `x` contains a `Not(y)` node, the inner class `y`.
    fn not_operand(&self, x: Id) -> Option<Id> {
        self.nodes(x).iter().find_map(|n| match n {
            Node::Not(y) => Some(self.find(*y)),
            _ => None,
        })
    }
}

fn sort2(a: Id, b: Id) -> (Id, Id) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(g: &mut EGraph, n: u32) -> Vec<Id> {
        (0..n).map(|i| g.add(Node::Var(i))).collect()
    }

    #[test]
    fn hashconsing_identifies_commuted_operands() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 2);
        let ab = g.add(Node::And(v[0], v[1]));
        let ba = g.add(Node::And(v[1], v[0]));
        assert_eq!(ab, ba);
    }

    #[test]
    fn double_negation_saturates_to_identity() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 1);
        let n = g.add(Node::Not(v[0]));
        let nn = g.add(Node::Not(n));
        g.saturate(SaturationLimits::default());
        assert_eq!(g.find(nn), g.find(v[0]));
    }

    #[test]
    fn complement_folds_to_constants() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 1);
        let n = g.add(Node::Not(v[0]));
        let and = g.add(Node::And(v[0], n));
        let or = g.add(Node::Or(v[0], n));
        g.saturate(SaturationLimits::default());
        let f = g.add(Node::Const(false));
        let t = g.add(Node::Const(true));
        assert_eq!(g.find(and), g.find(f));
        assert_eq!(g.find(or), g.find(t));
    }

    #[test]
    fn de_morgan_joins_both_forms() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 2);
        let and = g.add(Node::And(v[0], v[1]));
        let nand = g.add(Node::Not(and));
        let na = g.add(Node::Not(v[0]));
        let nb = g.add(Node::Not(v[1]));
        let or_form = g.add(Node::Or(na, nb));
        g.saturate(SaturationLimits::default());
        assert_eq!(g.find(nand), g.find(or_form));
    }

    #[test]
    fn sop_form_of_xor_is_recognized() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 2);
        let na = g.add(Node::Not(v[0]));
        let nb = g.add(Node::Not(v[1]));
        let l = g.add(Node::And(v[0], nb));
        let r = g.add(Node::And(na, v[1]));
        let sop = g.add(Node::Or(l, r));
        let stats = g.saturate(SaturationLimits::default());
        let xor = g.add(Node::Xor(v[0], v[1]));
        assert_eq!(g.find(sop), g.find(xor), "after {stats:?}");
    }

    #[test]
    fn maj_with_constant_becomes_and_or() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 2);
        let f = g.add(Node::Const(false));
        let t = g.add(Node::Const(true));
        let maj0 = g.add(Node::Maj(v[0], v[1], f));
        let maj1 = g.add(Node::Maj(v[0], v[1], t));
        g.saturate(SaturationLimits::default());
        let and = g.add(Node::And(v[0], v[1]));
        let or = g.add(Node::Or(v[0], v[1]));
        assert_eq!(g.find(maj0), g.find(and));
        assert_eq!(g.find(maj1), g.find(or));
    }

    #[test]
    fn absorption_collapses() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 2);
        let or = g.add(Node::Or(v[0], v[1]));
        let and = g.add(Node::And(v[0], or));
        g.saturate(SaturationLimits::default());
        assert_eq!(g.find(and), g.find(v[0]));
    }

    #[test]
    fn saturation_respects_node_budget() {
        let mut g = EGraph::new();
        let v = vars(&mut g, 6);
        let mut acc = v[0];
        for &x in &v[1..] {
            let l = g.add(Node::Xor(acc, x));
            acc = l;
        }
        let stats = g.saturate(SaturationLimits { max_nodes: 40, max_iterations: 50 });
        assert!(stats.nodes <= 40 + 64, "budget roughly respected: {stats:?}");
    }
}
