//! The user-facing bulk bitwise device.
//!
//! [`Elp2imDevice`] wraps one functional subarray with a row allocator and
//! the operation compiler: `store` bit vectors, combine them with
//! `and`/`or`/`xor`/…, `load` results, and read the accumulated substrate
//! statistics (commands, latency, energy, wordline activations).

use crate::bitvec::BitVec;
use crate::compile::{compile, CompileMode, LogicOp, Operands};
use crate::error::CoreError;
use crate::faulty::{ColumnFaultModel, FaultPolicy, FaultyEngine};
#[cfg(debug_assertions)]
use crate::primitive::RowRef;
use crate::rowmap::RowAllocator;
use elp2im_dram::stats::RunStats;
use elp2im_dram::telemetry::MetricsRegistry;
use std::collections::HashMap;

/// Configuration of an [`Elp2imDevice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Row width in bits (stored vectors may be shorter; they are padded).
    pub width: usize,
    /// Number of data rows in the subarray.
    pub data_rows: usize,
    /// Reserved dual-contact rows (1 = the paper's base design,
    /// 2 = the accelerator configuration of §6.3.3).
    pub reserved_rows: usize,
    /// Compilation strategy for operations.
    pub mode: CompileMode,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            width: 8192,
            data_rows: 512,
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
        }
    }
}

/// Handle to a stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowHandle(usize);

/// A bulk bitwise processing-in-memory device.
///
/// ```
/// use elp2im_core::device::{DeviceConfig, Elp2imDevice};
/// use elp2im_core::bitvec::BitVec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = Elp2imDevice::new(DeviceConfig::default());
/// let a = dev.store(&BitVec::from_bools(&[true, false]))?;
/// let n = dev.not(a)?;
/// assert_eq!(dev.load(n)?.to_bools(), vec![false, true]);
/// // Substrate accounting is live: a NOT is two oAAP commands.
/// assert_eq!(dev.stats().total_commands(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Elp2imDevice {
    config: DeviceConfig,
    /// Fault-injection capable engine; a pass-through wrapper over
    /// [`SubarrayEngine`](crate::engine::SubarrayEngine) until
    /// [`Elp2imDevice::set_fault_model`] installs a model.
    engine: FaultyEngine,
    alloc: RowAllocator,
    /// Handle → (row index, logical bit length).
    handles: HashMap<usize, (usize, usize)>,
    next_handle: usize,
    /// One data row kept aside as compiler scratch (XOR sequence 1 only).
    scratch_row: usize,
    /// Memoizes static-analysis verdicts for repeated op/row patterns.
    analysis_cache: crate::analysis::AnalysisCache,
    /// Retry/verify accounting of [`Elp2imDevice::binary_checked`].
    reliability: MetricsRegistry,
}

/// The outcome of a fault-aware checked operation
/// ([`Elp2imDevice::binary_checked`]).
#[derive(Debug, Clone, Copy)]
pub struct CheckedOp {
    /// Handle of the delivered result.
    pub handle: RowHandle,
    /// Verify rounds spent (1 = first try agreed, or verification was
    /// skipped).
    pub attempts: u32,
    /// Whether an agreeing recompute confirmed the result.
    pub verified: bool,
}

impl Elp2imDevice {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero width or fewer than two data
    /// rows (one is reserved for compiler scratch).
    pub fn new(config: DeviceConfig) -> Self {
        assert!(config.width > 0, "row width must be positive");
        assert!(config.data_rows >= 2, "need at least two data rows");
        let engine = FaultyEngine::new(config.width, config.data_rows, config.reserved_rows);
        // The last data row is the compiler's scratch.
        let scratch_row = config.data_rows - 1;
        let alloc = RowAllocator::new(config.data_rows - 1);
        Elp2imDevice {
            config,
            engine,
            alloc,
            handles: HashMap::new(),
            next_handle: 0,
            scratch_row,
            analysis_cache: crate::analysis::AnalysisCache::new(),
            reliability: MetricsRegistry::new(),
        }
    }

    /// Installs (or clears) a per-column fault model: computed result rows
    /// pick up bit flips per the model from now on (see
    /// [`FaultyEngine`]).
    pub fn set_fault_model(&mut self, model: Option<ColumnFaultModel>) {
        self.engine.set_fault_model(model);
    }

    /// The installed fault model, if any.
    pub fn fault_model(&self) -> Option<&ColumnFaultModel> {
        self.engine.fault_model()
    }

    /// Bits flipped by fault injection so far.
    pub fn injected_flips(&self) -> u64 {
        self.engine.injected_flips()
    }

    /// Retry/verify counters of [`Elp2imDevice::binary_checked`]:
    /// `checked_ops`, `verify_recomputes`, `verify_mismatches`, `retries`,
    /// `retries_exhausted`.
    pub fn reliability_metrics(&self) -> &MetricsRegistry {
        &self.reliability
    }

    /// Fault-aware `op(a, b)`: like [`Elp2imDevice::binary`], but when a
    /// nontrivial fault model is installed and `policy.verify` is set, the
    /// result is verified by recomputing and comparing, retrying up to
    /// `policy.max_retries` rounds on mismatch. With a clean engine the
    /// verification is skipped — the selective half of the fault-aware
    /// policy. Recompute/retry time accrues in [`Elp2imDevice::stats`].
    ///
    /// # Errors
    ///
    /// Handle, width, capacity, and compilation errors.
    pub fn binary_checked(
        &mut self,
        op: LogicOp,
        a: RowHandle,
        b: RowHandle,
        policy: &FaultPolicy,
    ) -> Result<CheckedOp, CoreError> {
        self.reliability.bump("checked_ops", 1);
        let at_risk = self.engine.fault_model().is_some_and(|m| !m.is_trivial());
        if !policy.verify || !at_risk {
            let handle = self.binary(op, a, b)?;
            return Ok(CheckedOp { handle, attempts: 1, verified: false });
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let h1 = self.binary(op, a, b)?;
            let h2 = self.binary(op, a, b)?;
            self.reliability.bump("verify_recomputes", 1);
            let agree = self.load(h1)? == self.load(h2)?;
            self.release(h2)?;
            if agree {
                return Ok(CheckedOp { handle: h1, attempts, verified: true });
            }
            self.reliability.bump("verify_mismatches", 1);
            self.release(h1)?;
            if attempts > policy.max_retries {
                self.reliability.bump("retries_exhausted", 1);
                let handle = self.binary(op, a, b)?;
                return Ok(CheckedOp { handle, attempts: attempts + 1, verified: false });
            }
            self.reliability.bump("retries", 1);
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Accumulated substrate statistics (PIM commands only; host stores and
    /// loads are free).
    pub fn stats(&self) -> &RunStats {
        self.engine.stats()
    }

    /// Clears the statistics counters.
    pub fn reset_stats(&mut self) {
        self.engine.reset_stats();
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.alloc.live()
    }

    fn lookup(&self, h: RowHandle) -> Result<(usize, usize), CoreError> {
        self.handles.get(&h.0).copied().ok_or(CoreError::InvalidHandle(h.0))
    }

    /// Stores a bit vector into a fresh row.
    ///
    /// # Errors
    ///
    /// [`CoreError::WidthMismatch`] if the vector is wider than a row;
    /// [`CoreError::CapacityExceeded`] if no rows are free.
    pub fn store(&mut self, value: &BitVec) -> Result<RowHandle, CoreError> {
        if value.len() > self.config.width {
            return Err(CoreError::WidthMismatch { expected: self.config.width, got: value.len() });
        }
        let row = self.alloc.alloc()?;
        // Zero-pads the tail columns in the row arena directly.
        self.engine.write_row_from(row, value, 0)?;
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (row, value.len()));
        Ok(RowHandle(h))
    }

    /// Logical bit length of a stored row.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for a dead handle.
    pub fn length(&self, h: RowHandle) -> Result<usize, CoreError> {
        self.lookup(h).map(|(_, len)| len)
    }

    /// Loads a row back, trimmed to its original length.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for a dead handle.
    pub fn load(&self, h: RowHandle) -> Result<BitVec, CoreError> {
        let (row, len) = self.lookup(h)?;
        let mut out = BitVec::zeros(len);
        self.engine.read_row_into(row, &mut out, 0)?;
        Ok(out)
    }

    /// Frees a row.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for a dead handle.
    pub fn release(&mut self, h: RowHandle) -> Result<(), CoreError> {
        let (row, _) = self.lookup(h)?;
        self.handles.remove(&h.0);
        self.alloc.free(row)
    }

    /// Executes `op` over `a` and `b` into a fresh destination row.
    ///
    /// # Errors
    ///
    /// Handle, capacity, and compilation errors propagate.
    pub fn binary(
        &mut self,
        op: LogicOp,
        a: RowHandle,
        b: RowHandle,
    ) -> Result<RowHandle, CoreError> {
        let (ra, la) = self.lookup(a)?;
        let (rb, lb) = self.lookup(b)?;
        if la != lb {
            return Err(CoreError::WidthMismatch { expected: la, got: lb });
        }
        let dst = self.alloc.alloc()?;
        let rows = Operands { a: ra, b: rb, dst, scratch: Some(self.scratch_row) };
        let prog = match compile(op, self.config.mode, rows, self.config.reserved_rows) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.alloc.free(dst);
                return Err(e);
            }
        };
        // Debug builds run the plan-level verifier over the one-step plan
        // this operation forms, with the handle map as the live set — the
        // same borrow-checking the batch layer gets, at device scope.
        #[cfg(debug_assertions)]
        if let Some(err) = self.certify_one_step(&prog) {
            let _ = self.alloc.free(dst);
            return Err(CoreError::PlanRejected(err));
        }
        if let Err(e) = self.engine.run_verified_cached(&prog, &self.analysis_cache) {
            let _ = self.alloc.free(dst);
            return Err(e);
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (dst, la));
        Ok(RowHandle(h))
    }

    /// Lifts `prog` into a one-step [`crate::planlint::BatchPlan`] over a
    /// single-bank topology, with the handle map as the live row set, and
    /// returns the first error the plan-level verifier finds (if any).
    #[cfg(debug_assertions)]
    fn certify_one_step(&self, prog: &crate::isa::Program) -> Option<String> {
        use crate::optimizer::PhysRow;
        use crate::planlint::{certify, BatchPlan, PlanStep};
        use crate::validate::SubarrayShape;
        use elp2im_dram::constraint::PumpBudget;
        use elp2im_dram::geometry::{Geometry, Topology};

        let topology = Topology::module(Geometry {
            banks: 1,
            subarrays_per_bank: 1,
            rows_per_subarray: self.config.data_rows,
            row_bytes: self.config.width.div_ceil(8),
        });
        let shape =
            SubarrayShape { data_rows: self.config.data_rows, dcc_rows: self.config.reserved_rows };
        let mut plan = BatchPlan::new(topology, PumpBudget::unconstrained(), shape);
        plan.timing = self.engine.timing().clone();
        // Allocated handles that hold data are the live rows; the scratch
        // row's residue is deliberately excluded (programs overwrite it).
        let live: std::collections::BTreeSet<PhysRow> = self
            .handles
            .values()
            .filter(|(row, _)| self.engine.is_live(RowRef::Data(*row)))
            .map(|(row, _)| PhysRow::Data(*row))
            .chain(self.engine.live_rows().into_iter().filter(|r| matches!(r, PhysRow::Dcc(_))))
            .collect();
        plan.live_in.insert((0, 0), live);
        plan.steps.push(PlanStep {
            unit: 0,
            subarray: 0,
            stream: plan.topology.path(0),
            program: std::sync::Arc::new(prog.clone()),
        });
        certify(&plan).first_error().map(|d| d.to_string())
    }

    /// Bulk AND into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn and(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::And, a, b)
    }

    /// Bulk OR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn or(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Or, a, b)
    }

    /// Bulk XOR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn xor(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Xor, a, b)
    }

    /// Bulk NAND into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn nand(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Nand, a, b)
    }

    /// Bulk NOR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn nor(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Nor, a, b)
    }

    /// Bulk XNOR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn xnor(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Xnor, a, b)
    }

    /// Failure injection: flips one bit of a stored row (see
    /// [`SubarrayEngine::inject_bit_error`]).
    ///
    /// # Errors
    ///
    /// Invalid handles and out-of-range columns are errors.
    pub fn inject_bit_error(&mut self, h: RowHandle, column: usize) -> Result<(), CoreError> {
        let (row, len) = self.lookup(h)?;
        if column >= len {
            return Err(CoreError::WidthMismatch { expected: len, got: column + 1 });
        }
        self.engine.inject_bit_error(crate::primitive::RowRef::Data(row), column)
    }

    /// Bulk NOT into a fresh row.
    ///
    /// # Errors
    ///
    /// Handle and capacity errors propagate.
    pub fn not(&mut self, a: RowHandle) -> Result<RowHandle, CoreError> {
        let (ra, la) = self.lookup(a)?;
        let dst = self.alloc.alloc()?;
        let rows = Operands { a: ra, b: ra, dst, scratch: Some(self.scratch_row) };
        let prog = match compile(LogicOp::Not, self.config.mode, rows, self.config.reserved_rows) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.alloc.free(dst);
                return Err(e);
            }
        };
        if let Err(e) = self.engine.run_verified_cached(&prog, &self.analysis_cache) {
            let _ = self.alloc.free(dst);
            return Err(e);
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (dst, la));
        Ok(RowHandle(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Elp2imDevice {
        Elp2imDevice::new(DeviceConfig {
            width: 64,
            data_rows: 16,
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
        })
    }

    fn bools(n: u64, len: usize) -> BitVec {
        BitVec::from_words(&[n], len)
    }

    #[test]
    fn store_load_roundtrip() {
        let mut d = dev();
        let v = bools(0b1011, 4);
        let h = d.store(&v).unwrap();
        assert_eq!(d.load(h).unwrap(), v);
        assert_eq!(d.live_rows(), 1);
    }

    #[test]
    fn all_binary_ops_match_software() {
        let a_val = 0b1100u64;
        let b_val = 0b1010u64;
        for op in
            [LogicOp::And, LogicOp::Or, LogicOp::Nand, LogicOp::Nor, LogicOp::Xor, LogicOp::Xnor]
        {
            let mut d = dev();
            let a = d.store(&bools(a_val, 4)).unwrap();
            let b = d.store(&bools(b_val, 4)).unwrap();
            let c = d.binary(op, a, b).unwrap();
            let got = d.load(c).unwrap();
            let want: BitVec =
                (0..4).map(|i| op.eval((a_val >> i) & 1 == 1, (b_val >> i) & 1 == 1)).collect();
            assert_eq!(got, want, "{op}");
            // Operands must survive the operation.
            assert_eq!(d.load(a).unwrap(), bools(a_val, 4), "{op} clobbered a");
            assert_eq!(d.load(b).unwrap(), bools(b_val, 4), "{op} clobbered b");
        }
    }

    #[test]
    fn not_inverts() {
        let mut d = dev();
        let a = d.store(&bools(0b10, 2)).unwrap();
        let n = d.not(a).unwrap();
        assert_eq!(d.load(n).unwrap(), bools(0b01, 2));
    }

    #[test]
    fn release_recycles_rows() {
        let mut d = dev();
        let before = d.live_rows();
        let h = d.store(&bools(1, 1)).unwrap();
        d.release(h).unwrap();
        assert_eq!(d.live_rows(), before);
        assert!(matches!(d.load(h), Err(CoreError::InvalidHandle(_))));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut d = dev();
        let a = d.store(&bools(1, 3)).unwrap();
        let b = d.store(&bools(1, 4)).unwrap();
        assert!(matches!(d.and(a, b), Err(CoreError::WidthMismatch { .. })));
    }

    #[test]
    fn too_wide_vector_rejected() {
        let mut d = dev();
        let wide = BitVec::ones(65);
        assert!(matches!(d.store(&wide), Err(CoreError::WidthMismatch { .. })));
    }

    #[test]
    fn capacity_exhaustion_reported() {
        let mut d = Elp2imDevice::new(DeviceConfig {
            width: 8,
            data_rows: 3, // minus scratch = 2 usable
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
        });
        let _ = d.store(&bools(1, 1)).unwrap();
        let _ = d.store(&bools(1, 1)).unwrap();
        assert!(matches!(d.store(&bools(1, 1)), Err(CoreError::CapacityExceeded { .. })));
    }

    #[test]
    fn failed_op_frees_destination_row() {
        // High-throughput XOR with zero reserved rows fails to compile; the
        // speculatively allocated dst must be released.
        let mut d = Elp2imDevice::new(DeviceConfig {
            width: 8,
            data_rows: 8,
            reserved_rows: 0,
            mode: CompileMode::LowLatency,
        });
        let a = d.store(&bools(1, 2)).unwrap();
        let b = d.store(&bools(2, 2)).unwrap();
        let live = d.live_rows();
        assert!(d.xor(a, b).is_err());
        assert_eq!(d.live_rows(), live);
    }

    #[test]
    fn stats_track_command_mix() {
        let mut d = dev();
        let a = d.store(&bools(0b01, 2)).unwrap();
        let b = d.store(&bools(0b11, 2)).unwrap();
        let _ = d.and(a, b).unwrap();
        let s = d.stats();
        // LowLatency AND = oAAP, oAPP, oAAP.
        assert_eq!(s.total_commands(), 3);
        assert_eq!(s.commands.get("oAAP"), Some(&2));
        assert_eq!(s.commands.get("oAPP"), Some(&1));
        assert!(s.busy_time.as_f64() > 150.0);
    }

    #[test]
    fn checked_op_on_clean_device_skips_verification() {
        let mut d = dev();
        let a = d.store(&bools(0b0011, 4)).unwrap();
        let b = d.store(&bools(0b0101, 4)).unwrap();
        let checked = d.binary_checked(LogicOp::Xor, a, b, &FaultPolicy::default()).unwrap();
        assert!(!checked.verified);
        assert_eq!(checked.attempts, 1);
        assert_eq!(d.load(checked.handle).unwrap(), bools(0b0110, 4));
        assert_eq!(d.reliability_metrics().counter("checked_ops"), 1);
        assert_eq!(d.reliability_metrics().counter("verify_recomputes"), 0);
    }

    #[test]
    fn checked_op_recovers_intermittent_device_fault() {
        let mut d = dev();
        // Intermittent single-column fault: recompute-verify should converge
        // on the clean answer within the retry budget.
        d.set_fault_model(Some(ColumnFaultModel::new(0xFA17, 0, vec![0.0, 0.0, 0.0, 0.15])));
        let a = d.store(&bools(0b0011, 4)).unwrap();
        let b = d.store(&bools(0b0101, 4)).unwrap();
        let policy = FaultPolicy { verify: true, max_retries: 16 };
        let mut clean = 0;
        for _ in 0..10 {
            let checked = d.binary_checked(LogicOp::Xor, a, b, &policy).unwrap();
            if checked.verified && d.load(checked.handle).unwrap() == bools(0b0110, 4) {
                clean += 1;
            }
            d.release(checked.handle).unwrap();
        }
        assert!(clean >= 8, "only {clean}/10 verified clean");
        assert!(d.reliability_metrics().counter("verify_recomputes") >= 10);
        assert!(d.injected_flips() > 0, "fault model never fired");
    }

    #[test]
    fn two_buffer_device_uses_seq6_for_xor() {
        let mut d = Elp2imDevice::new(DeviceConfig {
            width: 16,
            data_rows: 8,
            reserved_rows: 2,
            mode: CompileMode::LowLatency,
        });
        let a = d.store(&bools(0b0011, 4)).unwrap();
        let b = d.store(&bools(0b0101, 4)).unwrap();
        let x = d.xor(a, b).unwrap();
        assert_eq!(d.load(x).unwrap(), bools(0b0110, 4));
        // seq6 = 6 primitives.
        assert_eq!(d.stats().total_commands(), 6);
    }
}
