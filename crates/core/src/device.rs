//! The user-facing bulk bitwise device.
//!
//! [`Elp2imDevice`] wraps one functional subarray with a row allocator and
//! the operation compiler: `store` bit vectors, combine them with
//! `and`/`or`/`xor`/…, `load` results, and read the accumulated substrate
//! statistics (commands, latency, energy, wordline activations).

use crate::bitvec::BitVec;
use crate::compile::{compile, CompileMode, LogicOp, Operands};
use crate::engine::SubarrayEngine;
use crate::error::CoreError;
use crate::rowmap::RowAllocator;
use elp2im_dram::stats::RunStats;
use std::collections::HashMap;

/// Configuration of an [`Elp2imDevice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Row width in bits (stored vectors may be shorter; they are padded).
    pub width: usize,
    /// Number of data rows in the subarray.
    pub data_rows: usize,
    /// Reserved dual-contact rows (1 = the paper's base design,
    /// 2 = the accelerator configuration of §6.3.3).
    pub reserved_rows: usize,
    /// Compilation strategy for operations.
    pub mode: CompileMode,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            width: 8192,
            data_rows: 512,
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
        }
    }
}

/// Handle to a stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowHandle(usize);

/// A bulk bitwise processing-in-memory device.
///
/// ```
/// use elp2im_core::device::{DeviceConfig, Elp2imDevice};
/// use elp2im_core::bitvec::BitVec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = Elp2imDevice::new(DeviceConfig::default());
/// let a = dev.store(&BitVec::from_bools(&[true, false]))?;
/// let n = dev.not(a)?;
/// assert_eq!(dev.load(n)?.to_bools(), vec![false, true]);
/// // Substrate accounting is live: a NOT is two oAAP commands.
/// assert_eq!(dev.stats().total_commands(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Elp2imDevice {
    config: DeviceConfig,
    engine: SubarrayEngine,
    alloc: RowAllocator,
    /// Handle → (row index, logical bit length).
    handles: HashMap<usize, (usize, usize)>,
    next_handle: usize,
    /// One data row kept aside as compiler scratch (XOR sequence 1 only).
    scratch_row: usize,
    /// Memoizes static-analysis verdicts for repeated op/row patterns.
    analysis_cache: crate::analysis::AnalysisCache,
}

impl Elp2imDevice {
    /// Creates a device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero width or fewer than two data
    /// rows (one is reserved for compiler scratch).
    pub fn new(config: DeviceConfig) -> Self {
        assert!(config.width > 0, "row width must be positive");
        assert!(config.data_rows >= 2, "need at least two data rows");
        let engine = SubarrayEngine::new(config.width, config.data_rows, config.reserved_rows);
        // The last data row is the compiler's scratch.
        let scratch_row = config.data_rows - 1;
        let alloc = RowAllocator::new(config.data_rows - 1);
        Elp2imDevice {
            config,
            engine,
            alloc,
            handles: HashMap::new(),
            next_handle: 0,
            scratch_row,
            analysis_cache: crate::analysis::AnalysisCache::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Accumulated substrate statistics (PIM commands only; host stores and
    /// loads are free).
    pub fn stats(&self) -> &RunStats {
        self.engine.stats()
    }

    /// Clears the statistics counters.
    pub fn reset_stats(&mut self) {
        self.engine.reset_stats();
    }

    /// Number of live rows.
    pub fn live_rows(&self) -> usize {
        self.alloc.live()
    }

    fn lookup(&self, h: RowHandle) -> Result<(usize, usize), CoreError> {
        self.handles.get(&h.0).copied().ok_or(CoreError::InvalidHandle(h.0))
    }

    /// Stores a bit vector into a fresh row.
    ///
    /// # Errors
    ///
    /// [`CoreError::WidthMismatch`] if the vector is wider than a row;
    /// [`CoreError::CapacityExceeded`] if no rows are free.
    pub fn store(&mut self, value: &BitVec) -> Result<RowHandle, CoreError> {
        if value.len() > self.config.width {
            return Err(CoreError::WidthMismatch { expected: self.config.width, got: value.len() });
        }
        let row = self.alloc.alloc()?;
        // Zero-pads the tail columns in the row arena directly.
        self.engine.write_row_from(row, value, 0)?;
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (row, value.len()));
        Ok(RowHandle(h))
    }

    /// Logical bit length of a stored row.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for a dead handle.
    pub fn length(&self, h: RowHandle) -> Result<usize, CoreError> {
        self.lookup(h).map(|(_, len)| len)
    }

    /// Loads a row back, trimmed to its original length.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for a dead handle.
    pub fn load(&self, h: RowHandle) -> Result<BitVec, CoreError> {
        let (row, len) = self.lookup(h)?;
        let mut out = BitVec::zeros(len);
        self.engine.read_row_into(row, &mut out, 0)?;
        Ok(out)
    }

    /// Frees a row.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for a dead handle.
    pub fn release(&mut self, h: RowHandle) -> Result<(), CoreError> {
        let (row, _) = self.lookup(h)?;
        self.handles.remove(&h.0);
        self.alloc.free(row)
    }

    /// Executes `op` over `a` and `b` into a fresh destination row.
    ///
    /// # Errors
    ///
    /// Handle, capacity, and compilation errors propagate.
    pub fn binary(
        &mut self,
        op: LogicOp,
        a: RowHandle,
        b: RowHandle,
    ) -> Result<RowHandle, CoreError> {
        let (ra, la) = self.lookup(a)?;
        let (rb, lb) = self.lookup(b)?;
        if la != lb {
            return Err(CoreError::WidthMismatch { expected: la, got: lb });
        }
        let dst = self.alloc.alloc()?;
        let rows = Operands { a: ra, b: rb, dst, scratch: Some(self.scratch_row) };
        let prog = match compile(op, self.config.mode, rows, self.config.reserved_rows) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.alloc.free(dst);
                return Err(e);
            }
        };
        if let Err(e) = self.engine.run_verified_cached(&prog, &self.analysis_cache) {
            let _ = self.alloc.free(dst);
            return Err(e);
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (dst, la));
        Ok(RowHandle(h))
    }

    /// Bulk AND into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn and(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::And, a, b)
    }

    /// Bulk OR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn or(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Or, a, b)
    }

    /// Bulk XOR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn xor(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Xor, a, b)
    }

    /// Bulk NAND into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn nand(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Nand, a, b)
    }

    /// Bulk NOR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn nor(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Nor, a, b)
    }

    /// Bulk XNOR into a fresh row.
    ///
    /// # Errors
    ///
    /// See [`Elp2imDevice::binary`].
    pub fn xnor(&mut self, a: RowHandle, b: RowHandle) -> Result<RowHandle, CoreError> {
        self.binary(LogicOp::Xnor, a, b)
    }

    /// Failure injection: flips one bit of a stored row (see
    /// [`SubarrayEngine::inject_bit_error`]).
    ///
    /// # Errors
    ///
    /// Invalid handles and out-of-range columns are errors.
    pub fn inject_bit_error(&mut self, h: RowHandle, column: usize) -> Result<(), CoreError> {
        let (row, len) = self.lookup(h)?;
        if column >= len {
            return Err(CoreError::WidthMismatch { expected: len, got: column + 1 });
        }
        self.engine.inject_bit_error(crate::primitive::RowRef::Data(row), column)
    }

    /// Bulk NOT into a fresh row.
    ///
    /// # Errors
    ///
    /// Handle and capacity errors propagate.
    pub fn not(&mut self, a: RowHandle) -> Result<RowHandle, CoreError> {
        let (ra, la) = self.lookup(a)?;
        let dst = self.alloc.alloc()?;
        let rows = Operands { a: ra, b: ra, dst, scratch: Some(self.scratch_row) };
        let prog = match compile(LogicOp::Not, self.config.mode, rows, self.config.reserved_rows) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.alloc.free(dst);
                return Err(e);
            }
        };
        if let Err(e) = self.engine.run_verified_cached(&prog, &self.analysis_cache) {
            let _ = self.alloc.free(dst);
            return Err(e);
        }
        let h = self.next_handle;
        self.next_handle += 1;
        self.handles.insert(h, (dst, la));
        Ok(RowHandle(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Elp2imDevice {
        Elp2imDevice::new(DeviceConfig {
            width: 64,
            data_rows: 16,
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
        })
    }

    fn bools(n: u64, len: usize) -> BitVec {
        BitVec::from_words(&[n], len)
    }

    #[test]
    fn store_load_roundtrip() {
        let mut d = dev();
        let v = bools(0b1011, 4);
        let h = d.store(&v).unwrap();
        assert_eq!(d.load(h).unwrap(), v);
        assert_eq!(d.live_rows(), 1);
    }

    #[test]
    fn all_binary_ops_match_software() {
        let a_val = 0b1100u64;
        let b_val = 0b1010u64;
        for op in
            [LogicOp::And, LogicOp::Or, LogicOp::Nand, LogicOp::Nor, LogicOp::Xor, LogicOp::Xnor]
        {
            let mut d = dev();
            let a = d.store(&bools(a_val, 4)).unwrap();
            let b = d.store(&bools(b_val, 4)).unwrap();
            let c = d.binary(op, a, b).unwrap();
            let got = d.load(c).unwrap();
            let want: BitVec =
                (0..4).map(|i| op.eval((a_val >> i) & 1 == 1, (b_val >> i) & 1 == 1)).collect();
            assert_eq!(got, want, "{op}");
            // Operands must survive the operation.
            assert_eq!(d.load(a).unwrap(), bools(a_val, 4), "{op} clobbered a");
            assert_eq!(d.load(b).unwrap(), bools(b_val, 4), "{op} clobbered b");
        }
    }

    #[test]
    fn not_inverts() {
        let mut d = dev();
        let a = d.store(&bools(0b10, 2)).unwrap();
        let n = d.not(a).unwrap();
        assert_eq!(d.load(n).unwrap(), bools(0b01, 2));
    }

    #[test]
    fn release_recycles_rows() {
        let mut d = dev();
        let before = d.live_rows();
        let h = d.store(&bools(1, 1)).unwrap();
        d.release(h).unwrap();
        assert_eq!(d.live_rows(), before);
        assert!(matches!(d.load(h), Err(CoreError::InvalidHandle(_))));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut d = dev();
        let a = d.store(&bools(1, 3)).unwrap();
        let b = d.store(&bools(1, 4)).unwrap();
        assert!(matches!(d.and(a, b), Err(CoreError::WidthMismatch { .. })));
    }

    #[test]
    fn too_wide_vector_rejected() {
        let mut d = dev();
        let wide = BitVec::ones(65);
        assert!(matches!(d.store(&wide), Err(CoreError::WidthMismatch { .. })));
    }

    #[test]
    fn capacity_exhaustion_reported() {
        let mut d = Elp2imDevice::new(DeviceConfig {
            width: 8,
            data_rows: 3, // minus scratch = 2 usable
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
        });
        let _ = d.store(&bools(1, 1)).unwrap();
        let _ = d.store(&bools(1, 1)).unwrap();
        assert!(matches!(d.store(&bools(1, 1)), Err(CoreError::CapacityExceeded { .. })));
    }

    #[test]
    fn failed_op_frees_destination_row() {
        // High-throughput XOR with zero reserved rows fails to compile; the
        // speculatively allocated dst must be released.
        let mut d = Elp2imDevice::new(DeviceConfig {
            width: 8,
            data_rows: 8,
            reserved_rows: 0,
            mode: CompileMode::LowLatency,
        });
        let a = d.store(&bools(1, 2)).unwrap();
        let b = d.store(&bools(2, 2)).unwrap();
        let live = d.live_rows();
        assert!(d.xor(a, b).is_err());
        assert_eq!(d.live_rows(), live);
    }

    #[test]
    fn stats_track_command_mix() {
        let mut d = dev();
        let a = d.store(&bools(0b01, 2)).unwrap();
        let b = d.store(&bools(0b11, 2)).unwrap();
        let _ = d.and(a, b).unwrap();
        let s = d.stats();
        // LowLatency AND = oAAP, oAPP, oAAP.
        assert_eq!(s.total_commands(), 3);
        assert_eq!(s.commands.get("oAAP"), Some(&2));
        assert_eq!(s.commands.get("oAPP"), Some(&1));
        assert!(s.busy_time.as_f64() > 150.0);
    }

    #[test]
    fn two_buffer_device_uses_seq6_for_xor() {
        let mut d = Elp2imDevice::new(DeviceConfig {
            width: 16,
            data_rows: 8,
            reserved_rows: 2,
            mode: CompileMode::LowLatency,
        });
        let a = d.store(&bools(0b0011, 4)).unwrap();
        let b = d.store(&bools(0b0101, 4)).unwrap();
        let x = d.xor(a, b).unwrap();
        assert_eq!(d.load(x).unwrap(), bools(0b0110, 4));
        // seq6 = 6 primitives.
        assert_eq!(d.stats().total_commands(), 6);
    }
}
