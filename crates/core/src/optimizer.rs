//! Sequence-optimization passes (§4.2 and §4.3 of the paper).
//!
//! The paper derives its optimized XOR sequence by hand in Fig. 8; this
//! module implements the same three transformations as general rewrite
//! passes so any compiled program benefits:
//!
//! 1. [`merge_ap_app`] — an `AP(r)` immediately followed by an `APP(r)` on
//!    the same row reference performs a redundant precharge/re-activate
//!    pair; the APP alone computes, restores, and regulates (Fig. 8,
//!    sequence 1 → 2).
//! 2. [`trim_restores`] — an APP whose accessed row is dead afterwards can
//!    skip the restore (tAPP; restore truncation [32], sequence 2 → 3).
//! 3. [`overlap`] — with the row-buffer-decoupling isolation transistor
//!    (§4.2.1, [31]), APP → oAPP and tAPP → otAPP (sequence 4 → 5).

use crate::analysis::{verify_transform, EquivalenceError};
use crate::isa::Program;
use crate::primitive::{Primitive, RowRef};
use std::collections::HashSet;
use std::fmt;

/// Per-thread pass-invocation counters, pinning the "each pass runs exactly
/// once per [`optimize`] call" contract (the TV obligation re-used to run
/// the whole pipeline a second time in debug builds).
#[cfg(test)]
pub(crate) mod pass_counters {
    use std::cell::Cell;

    thread_local! {
        static MERGE: Cell<usize> = const { Cell::new(0) };
        static TRIM: Cell<usize> = const { Cell::new(0) };
        static OVERLAP: Cell<usize> = const { Cell::new(0) };
    }

    pub(crate) fn bump_merge() {
        MERGE.with(|c| c.set(c.get() + 1));
    }
    pub(crate) fn bump_trim() {
        TRIM.with(|c| c.set(c.get() + 1));
    }
    pub(crate) fn bump_overlap() {
        OVERLAP.with(|c| c.set(c.get() + 1));
    }

    /// (merge, trim, overlap) invocation counts on this thread.
    pub(crate) fn snapshot() -> (usize, usize, usize) {
        (MERGE.with(Cell::get), TRIM.with(Cell::get), OVERLAP.with(Cell::get))
    }
}

/// Physical row identity (ignores which DCC port is used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhysRow {
    /// Regular data row.
    Data(usize),
    /// Reserved dual-contact row.
    Dcc(usize),
}

impl fmt::Display for PhysRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysRow::Data(i) => write!(f, "r{i}"),
            PhysRow::Dcc(i) => write!(f, "R{i}"),
        }
    }
}

impl From<RowRef> for PhysRow {
    fn from(r: RowRef) -> Self {
        match r {
            RowRef::Data(i) => PhysRow::Data(i),
            RowRef::DccTrue(i) | RowRef::DccBar(i) => PhysRow::Dcc(i),
        }
    }
}

/// Merges adjacent `AP(r)`/`APP(r)` pairs into a single APP (Fig. 8,
/// sequence 1 → 2: "they can be merged to one APP").
pub fn merge_ap_app(prog: &Program) -> Program {
    #[cfg(test)]
    pass_counters::bump_merge();
    let prims = prog.primitives();
    let mut out: Vec<Primitive> = Vec::with_capacity(prims.len());
    let mut i = 0;
    while i < prims.len() {
        if i + 1 < prims.len() {
            if let (Primitive::Ap { row: r1 }, Primitive::App { row: r2, mode }) =
                (prims[i], prims[i + 1])
            {
                if r1 == r2 {
                    out.push(Primitive::App { row: r2, mode });
                    i += 2;
                    continue;
                }
            }
        }
        out.push(prims[i]);
        i += 1;
    }
    Program::new(format!("{}+merge", prog.name()), out)
}

/// Rows a primitive *reads* (activates with the stored value mattering).
fn reads(p: &Primitive) -> Vec<PhysRow> {
    match *p {
        Primitive::Ap { row }
        | Primitive::App { row, .. }
        | Primitive::OApp { row, .. }
        | Primitive::TApp { row, .. }
        | Primitive::OtApp { row, .. } => vec![row.into()],
        Primitive::Aap { src, .. }
        | Primitive::OAap { src, .. }
        | Primitive::OAppCopy { src, .. } => vec![src.into()],
    }
}

/// Rows a primitive fully overwrites (their prior content is irrelevant).
fn overwrites(p: &Primitive) -> Vec<PhysRow> {
    match *p {
        Primitive::Aap { dst, .. }
        | Primitive::OAap { dst, .. }
        | Primitive::OAppCopy { dst, .. } => vec![dst.into()],
        _ => Vec::new(),
    }
}

/// Converts APP/oAPP into their trimmed forms when the accessed row's value
/// is dead afterwards — not read again before being fully overwritten, and
/// not in `preserve` (rows whose content must survive the program, i.e.
/// operands and results).
pub fn trim_restores(prog: &Program, preserve: &[PhysRow]) -> Program {
    #[cfg(test)]
    pass_counters::bump_trim();
    let prims = prog.primitives();
    let preserve: HashSet<PhysRow> = preserve.iter().copied().collect();
    let mut out: Vec<Primitive> = Vec::with_capacity(prims.len());
    for (i, p) in prims.iter().enumerate() {
        let trimmed = match *p {
            Primitive::App { row, mode } if row_is_dead(prims, i, row, &preserve) => {
                Some(Primitive::TApp { row, mode })
            }
            Primitive::OApp { row, mode } if row_is_dead(prims, i, row, &preserve) => {
                Some(Primitive::OtApp { row, mode })
            }
            _ => None,
        };
        out.push(trimmed.unwrap_or(*p));
    }
    Program::new(format!("{}+trim", prog.name()), out)
}

fn row_is_dead(prims: &[Primitive], at: usize, row: RowRef, preserve: &HashSet<PhysRow>) -> bool {
    let phys: PhysRow = row.into();
    if preserve.contains(&phys) {
        return false;
    }
    for p in &prims[at + 1..] {
        if reads(p).contains(&phys) {
            return false;
        }
        if overwrites(p).contains(&phys) {
            return true; // fully rewritten before any read
        }
    }
    true // never touched again
}

/// Substitutes overlapped variants (APP → oAPP, tAPP → otAPP); legal when
/// the isolation transistor of [31] is present (§4.2.1).
pub fn overlap(prog: &Program) -> Program {
    #[cfg(test)]
    pass_counters::bump_overlap();
    let out = prog
        .primitives()
        .iter()
        .map(|p| match *p {
            Primitive::App { row, mode } => Primitive::OApp { row, mode },
            Primitive::TApp { row, mode } => Primitive::OtApp { row, mode },
            other => other,
        })
        .collect();
    Program::new(format!("{}+overlap", prog.name()), out)
}

/// Runs the §4.2 pipeline exactly once, optionally discharging the
/// per-stage translation-validation obligation *on the stage outputs that
/// are already in hand* — no pass is ever re-run for verification.
///
/// Returns the optimized program (named by its stage trail) and the TV
/// verdict. Once a stage obligation fails (or is vacuous — `InputInvalid`,
/// `TooManyLiveIns`), later obligations are skipped: nothing further can be
/// proved from an unproven intermediate.
fn run_pipeline(
    prog: &Program,
    preserve: &[PhysRow],
    isolation: bool,
    verify: bool,
) -> (Program, Result<(), EquivalenceError>) {
    let merged = merge_ap_app(prog);
    let mut verdict = if verify { verify_transform(prog, &merged, None) } else { Ok(()) };
    let trimmed = trim_restores(&merged, preserve);
    if verify && verdict.is_ok() {
        verdict = verify_transform(&merged, &trimmed, Some(preserve));
    }
    if isolation {
        let overlapped = overlap(&trimmed);
        if verify && verdict.is_ok() {
            verdict = verify_transform(&trimmed, &overlapped, None);
        }
        (overlapped, verdict)
    } else {
        (trimmed, verdict)
    }
}

/// Applies the full §4.2 pipeline: merge, then trim (given rows to
/// preserve), then overlap if `isolation` is available.
///
/// In debug builds every stage is translation-validated against its input
/// by exhaustive truth-table equivalence, checking the stage outputs the
/// pipeline just computed (each pass runs exactly once); a failed
/// obligation is a proven miscompile and panics. Release builds skip the
/// check — use [`optimize_validated`] to demand it explicitly.
///
/// # Panics
///
/// Debug builds panic if a stage fails its equivalence proof.
pub fn optimize(prog: &Program, preserve: &[PhysRow], isolation: bool) -> Program {
    let (out, verdict) = run_pipeline(prog, preserve, isolation, cfg!(debug_assertions));
    match verdict {
        // A statically invalid input carries no equivalence obligation.
        Ok(())
        | Err(EquivalenceError::InputInvalid { .. })
        | Err(EquivalenceError::TooManyLiveIns { .. }) => {}
        Err(e) => panic!("translation validation failed for '{}': {e}", prog.name()),
    }
    Program::new(format!("{}+opt", prog.name()), out.into_primitives())
}

/// [`optimize`] with the per-stage translation-validation obligation
/// discharged unconditionally (debug and release alike).
///
/// # Errors
///
/// The first stage whose output is not provably equivalent to its input —
/// see [`EquivalenceError`]. `InputInvalid` means the *original* program is
/// statically broken and nothing could be proved.
pub fn optimize_validated(
    prog: &Program,
    preserve: &[PhysRow],
    isolation: bool,
) -> Result<Program, EquivalenceError> {
    let (out, verdict) = run_pipeline(prog, preserve, isolation, true);
    verdict?;
    Ok(Program::new(format!("{}+opt", prog.name()), out.into_primitives()))
}

/// Discharges the translation-validation obligation for each stage of the
/// [`optimize`] pipeline: `merge_ap_app` and `overlap` must preserve every
/// row's final value, `trim_restores` must preserve the `preserve` set (its
/// contract — trimmed rows are dead by definition).
///
/// # Errors
///
/// The first failed per-stage obligation, with a concrete counterexample
/// assignment for value disagreements.
pub fn verify_optimize(
    prog: &Program,
    preserve: &[PhysRow],
    isolation: bool,
) -> Result<(), EquivalenceError> {
    run_pipeline(prog, preserve, isolation, true).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitvec::BitVec;
    use crate::compile::{xor_sequence, Operands};
    use crate::engine::SubarrayEngine;
    use crate::primitive::RegulateMode;
    use elp2im_dram::timing::Ddr3Timing;

    const R0T: RowRef = RowRef::DccTrue(0);
    const R0B: RowRef = RowRef::DccBar(0);

    /// The *naive* XOR before the Fig. 8 merging: step 2 ends with AP(R0B)
    /// and step 3 begins with APP(R0B).
    fn naive_xor() -> Program {
        let (a, b, dst) = (RowRef::Data(0), RowRef::Data(1), RowRef::Data(2));
        Program::new(
            "xor-naive",
            vec![
                Primitive::OAap { src: b, dst: R0T },
                Primitive::App { row: a, mode: RegulateMode::And },
                Primitive::OAap { src: R0B, dst },
                Primitive::OAap { src: a, dst: R0T },
                Primitive::App { row: b, mode: RegulateMode::And },
                Primitive::Ap { row: R0B },
                Primitive::App { row: R0B, mode: RegulateMode::Or },
                Primitive::Ap { row: dst },
            ],
        )
    }

    fn run_xor(prog: &Program) -> Vec<bool> {
        let a = [false, false, true, true];
        let b = [false, true, false, true];
        let mut e = SubarrayEngine::new(4, 8, 2);
        e.write_row(0, BitVec::from_bools(&a)).unwrap();
        e.write_row(1, BitVec::from_bools(&b)).unwrap();
        e.write_row(2, BitVec::zeros(4)).unwrap();
        e.run(prog.primitives()).unwrap_or_else(|err| panic!("{}: {err}", prog.name()));
        e.row(RowRef::Data(2)).unwrap().to_bools()
    }

    const XOR_TRUTH: [bool; 4] = [false, true, true, false];

    #[test]
    fn naive_xor_is_correct_but_slow() {
        let t = Ddr3Timing::ddr3_1600();
        let naive = naive_xor();
        assert_eq!(run_xor(&naive), XOR_TRUTH);
        assert!(naive.latency(&t).as_f64() > 440.0);
    }

    /// Fig. 8 sequence 1 → 2: merging reproduces the 409 ns / 7-primitive
    /// program, still correct.
    #[test]
    fn merge_reproduces_seq2() {
        let t = Ddr3Timing::ddr3_1600();
        let merged = merge_ap_app(&naive_xor());
        assert_eq!(merged.len(), 7);
        assert!((merged.latency(&t).as_f64() - 409.0).abs() < 3.0);
        assert_eq!(run_xor(&merged), XOR_TRUTH);
        // Matches the hand-written sequence 2 latency.
        let seq2 = xor_sequence(2, Operands::standard(), 1).unwrap();
        assert_eq!(merged.latency(&t), seq2.latency(&t));
    }

    /// Sequence 2 → 3: trimming the dead intermediate in R0 gives 388 ns.
    #[test]
    fn trim_reproduces_seq3() {
        let t = Ddr3Timing::ddr3_1600();
        let merged = merge_ap_app(&naive_xor());
        let preserve = [PhysRow::Data(0), PhysRow::Data(1), PhysRow::Data(2)];
        let trimmed = trim_restores(&merged, &preserve);
        assert!((trimmed.latency(&t).as_f64() - 388.0).abs() < 3.0);
        assert_eq!(run_xor(&trimmed), XOR_TRUTH);
    }

    /// Sequence 4 → 5: overlapping brings the program to 346 ns.
    #[test]
    fn full_pipeline_reproduces_seq5_latency() {
        let t = Ddr3Timing::ddr3_1600();
        let preserve = [PhysRow::Data(0), PhysRow::Data(1), PhysRow::Data(2)];
        let optimized = optimize(&naive_xor(), &preserve, true);
        assert!(
            (optimized.latency(&t).as_f64() - 346.0).abs() < 3.0,
            "got {}",
            optimized.latency(&t)
        );
        assert_eq!(run_xor(&optimized), XOR_TRUTH);
        let seq5 = xor_sequence(5, Operands::standard(), 1).unwrap();
        assert_eq!(optimized.latency(&t), seq5.latency(&t));
    }

    #[test]
    fn trim_never_destroys_preserved_or_live_rows() {
        // APP on a data row that is read later must NOT be trimmed even if
        // unlisted; APP on a row read later stays.
        let a = RowRef::Data(0);
        let prog = Program::new(
            "live",
            vec![
                Primitive::App { row: a, mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
                Primitive::Ap { row: a }, // a is read again afterwards
            ],
        );
        let trimmed = trim_restores(&prog, &[]);
        assert_eq!(trimmed.primitives()[0], prog.primitives()[0]);

        // Same program without the later read: now trimmable…
        let prog2 = Program::new(
            "dead",
            vec![
                Primitive::App { row: a, mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
            ],
        );
        let trimmed2 = trim_restores(&prog2, &[]);
        assert!(matches!(trimmed2.primitives()[0], Primitive::TApp { .. }));
        // …unless preserved.
        let kept = trim_restores(&prog2, &[PhysRow::Data(0)]);
        assert!(matches!(kept.primitives()[0], Primitive::App { .. }));
    }

    #[test]
    fn trim_allows_rows_that_are_overwritten_before_reading() {
        let a = RowRef::Data(0);
        let prog = Program::new(
            "overwritten",
            vec![
                Primitive::App { row: a, mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
                // a is fully rewritten before any read: dead at the APP.
                Primitive::Aap { src: RowRef::Data(1), dst: a },
                Primitive::Ap { row: a },
            ],
        );
        let trimmed = trim_restores(&prog, &[]);
        assert!(matches!(trimmed.primitives()[0], Primitive::TApp { .. }));
    }

    #[test]
    fn merge_requires_same_row_reference() {
        let prog = Program::new(
            "no-merge",
            vec![
                Primitive::Ap { row: RowRef::Data(0) },
                Primitive::App { row: RowRef::Data(1), mode: RegulateMode::Or },
            ],
        );
        assert_eq!(merge_ap_app(&prog).len(), 2);
    }

    #[test]
    fn overlap_converts_all_app_variants() {
        let prog = Program::new(
            "x",
            vec![
                Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
                Primitive::TApp { row: RowRef::Data(1), mode: RegulateMode::And },
                Primitive::Ap { row: RowRef::Data(2) },
            ],
        );
        let o = overlap(&prog);
        assert!(matches!(o.primitives()[0], Primitive::OApp { .. }));
        assert!(matches!(o.primitives()[1], Primitive::OtApp { .. }));
        assert!(matches!(o.primitives()[2], Primitive::Ap { .. }));
    }

    /// Pin the satellite-1 fix: one `optimize()` call runs each rewrite
    /// pass exactly once (the TV obligation checks the stage outputs the
    /// pipeline already computed, instead of re-running every pass).
    #[test]
    fn optimize_runs_each_pass_exactly_once() {
        let preserve = [PhysRow::Data(0), PhysRow::Data(1), PhysRow::Data(2)];
        let base = pass_counters::snapshot();
        let _ = optimize(&naive_xor(), &preserve, true);
        let after = pass_counters::snapshot();
        assert_eq!(
            (after.0 - base.0, after.1 - base.1, after.2 - base.2),
            (1, 1, 1),
            "optimize must invoke (merge, trim, overlap) exactly once each"
        );

        // Without isolation the overlap pass must not run at all.
        let base = pass_counters::snapshot();
        let _ = optimize(&naive_xor(), &preserve, false);
        let after = pass_counters::snapshot();
        assert_eq!((after.0 - base.0, after.1 - base.1, after.2 - base.2), (1, 1, 0));

        // The explicit-validation entry point has the same once-per-pass
        // shape, and still proves equivalence.
        let base = pass_counters::snapshot();
        optimize_validated(&naive_xor(), &preserve, true).unwrap();
        let after = pass_counters::snapshot();
        assert_eq!((after.0 - base.0, after.1 - base.1, after.2 - base.2), (1, 1, 1));
    }

    #[test]
    fn phys_row_identity_merges_ports() {
        assert_eq!(PhysRow::from(RowRef::DccTrue(1)), PhysRow::from(RowRef::DccBar(1)));
        assert_ne!(PhysRow::from(RowRef::Data(1)), PhysRow::from(RowRef::DccTrue(1)));
    }
}
