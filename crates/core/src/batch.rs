//! Bank-parallel batch execution over a whole module.
//!
//! [`DeviceArray`] is the batch counterpart of
//! [`Elp2imModule`](crate::module::Elp2imModule): it shards bulk bitwise
//! operations across the module's banks so their primitive streams overlap
//! on the rank. The differences are deliberate:
//!
//! * **Placement is channel-major.** A vector's row-sized stripes walk
//!   the topology's parallelism hierarchy most-independent-level first:
//!   stripe `i` lands on channel `i % channels` (channels share nothing),
//!   then rank (`(i / channels) % ranks` — own pump window, shared bus),
//!   then bank, then subarray — so a wide operand engages *every* channel
//!   before it reuses one, every rank before reusing a rank, and so on.
//!   On the single-module [`Topology`] this reduces exactly to the
//!   original bank-major striping (§6.2 of the paper evaluates that
//!   configuration: a bulk operand spread over all eight banks of a
//!   DDR3-1600 module).
//! * **Scheduling is batch-at-once.** Each operation hands the complete
//!   per-bank command streams, keyed by [`TopoPath`], to the stateless
//!   [`HierarchicalScheduler`](elp2im_dram::hierarchy::HierarchicalScheduler),
//!   which reports the true wall-clock [`makespan`](RunStats::makespan)
//!   and [`pump_stall`](RunStats::pump_stall) under per-rank charge-pump
//!   windows and per-channel buses, alongside the serial
//!   [`busy_time`](RunStats::busy_time) — plus the exact bus trace for
//!   inspection.
//! * **Functional simulation is host-parallel.** Banks are
//!   architecturally independent, so each bank's stripes execute on its
//!   [`SubarrayEngine`](crate::engine::SubarrayEngine)s in a scoped thread
//!   ([`std::thread::scope`]); results merge deterministically in bank
//!   order, so outputs are bit-identical to a serial run. Small batches
//!   (less total word-work than a thread spawn costs) run serially on the
//!   calling thread instead — same results, no fixed overhead.
//! * **Striping is word-level and zero-copy.** `store`/`load` move whole
//!   64-bit word runs between host vectors and the engines' row arenas
//!   ([`write_row_from`](crate::engine::SubarrayEngine::write_row_from)/
//!   [`read_row_into`](crate::engine::SubarrayEngine::read_row_into)),
//!   and each compiled program's static analysis is memoized in a shared
//!   [`AnalysisCache`], so a program is verified once per (program, shape,
//!   liveness) rather than once per stripe per bank.

use crate::analysis::AnalysisCache;
use crate::bitvec::BitVec;
use crate::compile::{compile, CompileMode, LogicOp, Operands};
use crate::error::CoreError;
use crate::faulty::{ColumnFaultModel, FaultPolicy, FaultyEngine};
use crate::isa::Program;
use crate::optimizer::PhysRow;
use crate::planlint::{BatchPlan, PlanStep};
use crate::primitive::RowRef;
use crate::rowmap::RowAllocator;
use crate::validate::SubarrayShape;
use elp2im_dram::command::CommandProfile;
use elp2im_dram::constraint::PumpBudget;
use elp2im_dram::geometry::{Geometry, TopoPath, Topology};
use elp2im_dram::hierarchy::HierarchicalScheduler;
use elp2im_dram::interleave::Schedule;
use elp2im_dram::stats::RunStats;
use elp2im_dram::telemetry::{MetricsRegistry, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Batch-layer configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Channel/rank/bank topology (with the per-rank bank/subarray/row
    /// geometry inside it).
    pub topology: Topology,
    /// Reserved dual-contact rows per subarray.
    pub reserved_rows: usize,
    /// Compilation strategy.
    pub mode: CompileMode,
    /// Charge-pump budget enforced per rank by the scheduler.
    pub budget: PumpBudget,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            topology: Topology::module(Geometry::ddr3_module()),
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
            budget: PumpBudget::jedec_ddr3_1600(),
        }
    }
}

impl BatchConfig {
    /// The default single-module configuration shrunk to `banks` banks
    /// (same per-bank shape), for serial-vs-parallel comparisons.
    pub fn with_banks(banks: usize) -> Self {
        let mut c = BatchConfig::default();
        c.topology.geometry.banks = banks;
        c
    }

    /// The default configuration scaled out to `channels` ×
    /// `ranks_per_channel` DDR3 ranks (8 banks each).
    pub fn with_topology(channels: usize, ranks_per_channel: usize) -> Self {
        BatchConfig {
            topology: Topology::new(channels, ranks_per_channel, Geometry::ddr3_module()),
            ..BatchConfig::default()
        }
    }

    /// The per-rank geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.topology.geometry
    }
}

/// Handle to a vector striped across the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BatchHandle(usize);

/// Location of one row-sized stripe of a stored vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stripe {
    /// Flat unit index of the bank holding the stripe
    /// (per [`Topology::flat_index`]; equal to the plain bank index on a
    /// single-module topology).
    pub bank: usize,
    /// Subarray within the bank.
    pub subarray: usize,
    /// Data-row index within the subarray.
    pub row: usize,
}

#[derive(Debug, Clone)]
struct BatchEntry {
    len: usize,
    stripes: Vec<Stripe>,
}

impl BatchEntry {
    /// Shared bit addressing: the stripe holding logical `bit` and the
    /// column within it. Every per-bit accessor (element reads, fault
    /// injection) goes through this one bounds-checked mapping.
    fn locate(&self, bit: usize, row_bits: usize) -> Result<(Stripe, usize), CoreError> {
        if bit >= self.len {
            return Err(CoreError::InvalidHandle(bit));
        }
        let stripe =
            self.stripes.get(bit / row_bits).copied().ok_or(CoreError::InvalidHandle(bit))?;
        Ok((stripe, bit % row_bits))
    }
}

/// One bank: its subarray engines (fault-injection capable; a clean bank
/// is a pass-through wrapper over its [`SubarrayEngine`]s) and row
/// allocators.
#[derive(Debug)]
struct BankUnit {
    engines: Vec<FaultyEngine>,
    allocs: Vec<RowAllocator>,
}

/// The outcome of a fault-aware checked operation
/// ([`DeviceArray::binary_checked`]).
#[derive(Debug, Clone)]
pub struct CheckedRun {
    /// Handle of the delivered result.
    pub handle: BatchHandle,
    /// Schedule of the final (delivered) run; recompute and retry costs
    /// accrue in [`DeviceArray::stats`].
    pub run: BatchRun,
    /// Verify rounds spent (1 = first try agreed, or verification was
    /// skipped).
    pub attempts: u32,
    /// Whether the delivered result was confirmed by an agreeing
    /// recompute. `false` means verification was skipped (no at-risk bank,
    /// or disabled by policy) or retries were exhausted.
    pub verified: bool,
}

/// The outcome of one batch operation: scheduling plus placement info.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Exact interleaved schedule of the operation's command streams.
    pub schedule: Schedule,
    /// Banks (across every channel and rank) that carried at least one
    /// stripe of this operation.
    pub banks_used: usize,
    /// Channels that carried at least one stripe of this operation.
    pub channels_used: usize,
}

impl BatchRun {
    /// Aggregate statistics: `busy_time` is the serial sum, `makespan`
    /// the scheduled wall clock, `pump_stall` the summed deferrals.
    pub fn stats(&self) -> &RunStats {
        &self.schedule.stats
    }
}

/// A bank-parallel batch execution engine over a multi-bank module.
///
/// ```
/// use elp2im_core::batch::{BatchConfig, DeviceArray};
/// use elp2im_core::bitvec::BitVec;
/// use elp2im_core::compile::LogicOp;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut array = DeviceArray::new(BatchConfig::default());
/// // One stripe per bank: the whole module works on one bulk AND.
/// let bits = array.row_bits() * array.banks();
/// let a = array.store(&BitVec::ones(bits))?;
/// let b = array.store(&BitVec::zeros(bits))?;
/// let (c, run) = array.binary(LogicOp::And, a, b)?;
/// assert!(array.load(c)?.is_zero());
/// assert_eq!(run.banks_used, array.banks());
/// // Eight overlapping banks: wall clock beats the serial sum.
/// assert!(run.stats().makespan < run.stats().busy_time);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeviceArray {
    config: BatchConfig,
    banks: Vec<BankUnit>,
    vectors: Vec<Option<BatchEntry>>,
    scheduler: HierarchicalScheduler,
    totals: RunStats,
    /// Optional per-command trace receiver shared by every scheduled
    /// operation; `None` keeps scheduling on the untraced fast path.
    sink: Option<Box<dyn TraceSink>>,
    /// Shared static-analysis verdict cache: a compiled program striped
    /// across banks/subarrays in equivalent states is analyzed once.
    analysis_cache: AnalysisCache,
    /// Placement order over flat bank units: channel-major (every channel
    /// before reusing one, then ranks, then banks) until
    /// [`DeviceArray::set_fault_models`] re-sorts it most-reliable-first.
    /// On a single-module topology the channel-major order is the
    /// identity, i.e. plain bank-major.
    bank_rank: Vec<usize>,
    /// Retry/verify accounting of the fault-aware executor
    /// ([`DeviceArray::binary_checked`]).
    reliability: MetricsRegistry,
    /// The batch plan of the most recent prepared operation, as handed to
    /// the plan-level static verifier ([`crate::planlint::certify`]).
    last_plan: Option<BatchPlan>,
}

/// Minimum total word-work (primitives × words per row) before
/// [`DeviceArray`] spawns per-bank threads; below this the serial path
/// wins, since a thread spawn costs more than executing a few small
/// word-loop programs.
const PARALLEL_MIN_WORDS: usize = 1 << 14;

/// The channel-major placement order over flat bank units: slot `i` maps
/// channel-fastest, then rank, then bank, so consecutive stripes land on
/// the most independent hardware available. On a 1 × 1 topology this is
/// the identity (plain bank-major).
fn channel_major_order(t: &Topology) -> Vec<usize> {
    let (nc, nr) = (t.channels, t.ranks_per_channel);
    (0..t.total_banks())
        .map(|slot| {
            t.flat_index(TopoPath {
                channel: slot % nc,
                rank: (slot / nc) % nr,
                bank: slot / (nc * nr),
            })
        })
        .collect()
}

impl DeviceArray {
    /// Creates an array with every subarray empty.
    pub fn new(config: BatchConfig) -> Self {
        let g = config.topology.geometry;
        let banks: Vec<BankUnit> = (0..config.topology.total_banks())
            .map(|_| BankUnit {
                engines: (0..g.subarrays_per_bank)
                    .map(|_| {
                        FaultyEngine::new(g.row_bits(), g.rows_per_subarray, config.reserved_rows)
                    })
                    .collect(),
                allocs: (0..g.subarrays_per_bank)
                    .map(|_| RowAllocator::new(g.rows_per_subarray))
                    .collect(),
            })
            .collect();
        let scheduler = HierarchicalScheduler::new(config.budget.clone());
        let bank_rank = channel_major_order(&config.topology);
        DeviceArray {
            config,
            banks,
            vectors: Vec::new(),
            scheduler,
            totals: RunStats::new(),
            sink: None,
            analysis_cache: AnalysisCache::new(),
            bank_rank,
            reliability: MetricsRegistry::new(),
            last_plan: None,
        }
    }

    /// Installs (or replaces) a trace sink observing every command the
    /// batch scheduler issues from now on.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Removes and returns the trace sink, if one was installed.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Bits per row (stripe granularity).
    pub fn row_bits(&self) -> usize {
        self.config.topology.geometry.row_bits()
    }

    /// Total number of bank units in the array, across every channel and
    /// rank.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// The array's channel/rank/bank topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topology
    }

    /// The topology path of a flat bank-unit index (as found in
    /// [`Stripe::bank`]).
    ///
    /// # Panics
    ///
    /// Panics if `unit` is out of range.
    pub fn unit_path(&self, unit: usize) -> TopoPath {
        self.config.topology.path(unit)
    }

    /// The array's configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Cumulative statistics over every operation so far (makespans add:
    /// operations are sequentially dependent at this layer).
    pub fn stats(&self) -> &RunStats {
        &self.totals
    }

    /// The stripe placement of a stored vector, in stripe order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for dead handles.
    pub fn placement(&self, h: BatchHandle) -> Result<Vec<Stripe>, CoreError> {
        Ok(self.entry(h)?.stripes.clone())
    }

    fn entry(&self, h: BatchHandle) -> Result<&BatchEntry, CoreError> {
        self.vectors.get(h.0).and_then(Option::as_ref).ok_or(CoreError::InvalidHandle(h.0))
    }

    /// Channel-major stripe placement: stripe `i` lands on the `i %
    /// banks`-th unit of the placement ranking — channel-major order
    /// (every channel, then every rank, then every bank before reuse)
    /// re-sorted most-reliable-first once fault models are installed. The
    /// allocator picks the row; the subarray advances only after every
    /// unit has taken a stripe, so wide operands span the whole topology
    /// first.
    fn place(&mut self, stripe: usize) -> Result<Stripe, CoreError> {
        let nbanks = self.banks.len();
        let nsubs = self.config.topology.geometry.subarrays_per_bank;
        let bank = self.bank_rank[stripe % nbanks];
        let subarray = (stripe / nbanks) % nsubs;
        let row = self.banks[bank].allocs[subarray].alloc()?;
        Ok(Stripe { bank, subarray, row })
    }

    /// Installs per-unit fault models (index = flat bank unit; `None` =
    /// clean) and re-ranks placement so the most reliable units fill
    /// first; units of equal reliability keep their channel-major order.
    /// Models apply to every subarray engine of their bank.
    ///
    /// Install models *before* storing operands: ranking only affects
    /// future placements, and operands stored under different rankings
    /// lose the co-location guarantee binary ops rely on.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one entry per bank unit is supplied.
    pub fn set_fault_models(&mut self, models: Vec<Option<ColumnFaultModel>>) {
        assert_eq!(models.len(), self.banks.len(), "one fault model slot per bank unit");
        let mut rank = channel_major_order(&self.config.topology);
        let mut pos = vec![0usize; rank.len()];
        for (i, &unit) in rank.iter().enumerate() {
            pos[unit] = i;
        }
        rank.sort_by(|&x, &y| {
            let mx = models[x].as_ref().map_or(0.0, ColumnFaultModel::mean_error);
            let my = models[y].as_ref().map_or(0.0, ColumnFaultModel::mean_error);
            mx.total_cmp(&my).then(pos[x].cmp(&pos[y]))
        });
        self.bank_rank = rank;
        for (unit, model) in self.banks.iter_mut().zip(models) {
            for engine in &mut unit.engines {
                engine.set_fault_model(model.clone());
            }
        }
    }

    /// The current placement order over flat bank units, most reliable
    /// first (channel-major — the identity on a single module — until
    /// fault models are installed).
    pub fn bank_ranking(&self) -> &[usize] {
        &self.bank_rank
    }

    /// The fault model of one bank unit (flat index), if installed.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn fault_model(&self, bank: usize) -> Option<&ColumnFaultModel> {
        self.banks[bank].engines.first().and_then(FaultyEngine::fault_model)
    }

    /// Total bits flipped by fault injection across every engine.
    pub fn injected_flips(&self) -> u64 {
        self.banks.iter().flat_map(|u| u.engines.iter()).map(FaultyEngine::injected_flips).sum()
    }

    /// Retry/verify counters of the fault-aware executor: `checked_ops`,
    /// `verify_recomputes`, `verify_mismatches`, `retries`,
    /// `retries_exhausted`.
    pub fn reliability_metrics(&self) -> &MetricsRegistry {
        &self.reliability
    }

    /// Whether any bank holding a stripe of `h` carries a nontrivial fault
    /// model — the selectivity test of [`DeviceArray::binary_checked`].
    fn at_risk(&self, h: BatchHandle) -> Result<bool, CoreError> {
        Ok(self
            .entry(h)?
            .stripes
            .iter()
            .any(|s| self.fault_model(s.bank).is_some_and(|m| !m.is_trivial())))
    }

    /// Fault-aware `dst := op(a, b)`: like [`DeviceArray::binary`], but
    /// when a stripe lands on an at-risk bank (nontrivial fault model) and
    /// `policy.verify` is set, the result is verified by recomputing and
    /// comparing, retrying up to `policy.max_retries` rounds on mismatch.
    /// Operations over clean banks skip verification entirely — that
    /// selectivity is what beats blanket protection on latency. All
    /// recompute/retry makespan accrues in [`DeviceArray::stats`];
    /// counters land in [`DeviceArray::reliability_metrics`].
    ///
    /// # Errors
    ///
    /// Handle, width, capacity, and compilation errors.
    pub fn binary_checked(
        &mut self,
        op: LogicOp,
        a: BatchHandle,
        b: BatchHandle,
        policy: &FaultPolicy,
    ) -> Result<CheckedRun, CoreError> {
        self.reliability.bump("checked_ops", 1);
        if !policy.verify || !(self.at_risk(a)? || self.at_risk(b)?) {
            let (handle, run) = self.binary(op, a, b)?;
            return Ok(CheckedRun { handle, run, attempts: 1, verified: false });
        }
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let (h1, run) = self.binary(op, a, b)?;
            let (h2, _) = self.binary(op, a, b)?;
            self.reliability.bump("verify_recomputes", 1);
            let agree = self.load(h1)? == self.load(h2)?;
            self.release(h2)?;
            if agree {
                return Ok(CheckedRun { handle: h1, run, attempts, verified: true });
            }
            self.reliability.bump("verify_mismatches", 1);
            self.release(h1)?;
            if attempts > policy.max_retries {
                // Exhausted: deliver a best-effort single run, flagged
                // unverified.
                self.reliability.bump("retries_exhausted", 1);
                let (handle, run) = self.binary(op, a, b)?;
                return Ok(CheckedRun { handle, run, attempts: attempts + 1, verified: false });
            }
            self.reliability.bump("retries", 1);
        }
    }

    /// Stores a vector of any length, striped channel-major across the
    /// array (plain bank-major on a single-module topology).
    ///
    /// # Errors
    ///
    /// [`CoreError::CapacityExceeded`] if a target subarray is full.
    pub fn store(&mut self, value: &BitVec) -> Result<BatchHandle, CoreError> {
        let rb = self.row_bits();
        let n = value.len().div_ceil(rb).max(1);
        let mut stripes = Vec::with_capacity(n);
        for c in 0..n {
            let stripe = self.place(c)?;
            // Word-level zero-copy striping: the row window of `value`
            // lands straight in the engine's arena (short/tail stripes
            // zero-fill the remainder).
            self.banks[stripe.bank].engines[stripe.subarray].write_row_from(
                stripe.row,
                value,
                c * rb,
            )?;
            stripes.push(stripe);
        }
        let id = self.vectors.len();
        self.vectors.push(Some(BatchEntry { len: value.len(), stripes }));
        Ok(BatchHandle(id))
    }

    /// Loads a vector back, merging stripes in placement order.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for dead handles.
    pub fn load(&self, h: BatchHandle) -> Result<BitVec, CoreError> {
        let entry = self.entry(h)?;
        let rb = self.row_bits();
        let mut out = BitVec::zeros(entry.len);
        for (c, s) in entry.stripes.iter().enumerate() {
            self.banks[s.bank].engines[s.subarray].read_row_into(s.row, &mut out, c * rb)?;
        }
        Ok(out)
    }

    /// Reads one logical bit of a stored vector without materializing any
    /// stripe.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for dead handles or a `bit` beyond the
    /// vector's length.
    pub fn element(&self, h: BatchHandle, bit: usize) -> Result<bool, CoreError> {
        let (s, column) = self.entry(h)?.locate(bit, self.row_bits())?;
        self.banks[s.bank].engines[s.subarray].bit(RowRef::Data(s.row), column)
    }

    /// The shared analysis-verdict cache (one entry per distinct compiled
    /// program × shape × live-in state verified so far).
    pub fn analysis_cache(&self) -> &AnalysisCache {
        &self.analysis_cache
    }

    /// Releases a vector's rows.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for dead handles.
    pub fn release(&mut self, h: BatchHandle) -> Result<(), CoreError> {
        let entry = self
            .vectors
            .get_mut(h.0)
            .and_then(Option::take)
            .ok_or(CoreError::InvalidHandle(h.0))?;
        for s in entry.stripes {
            self.banks[s.bank].allocs[s.subarray].free(s.row)?;
        }
        Ok(())
    }

    /// Flips one stored bit in place (fault-injection hook): the error
    /// lands in exactly one stripe of one bank, so cross-bank isolation is
    /// testable end to end.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidHandle`] for dead handles or a `bit` beyond the
    /// vector's length.
    pub fn inject_bit_error(&mut self, h: BatchHandle, bit: usize) -> Result<Stripe, CoreError> {
        let (s, column) = self.entry(h)?.locate(bit, self.row_bits())?;
        self.banks[s.bank].engines[s.subarray].inject_bit_error(RowRef::Data(s.row), column)?;
        Ok(s)
    }

    /// Compiles `op` over every stripe of `a` (and `b`), allocating
    /// destination rows with the same channel-major placement. Returns
    /// the new entry plus per-unit work (programs to execute) and
    /// per-unit command streams (profiles to schedule), keyed by
    /// [`TopoPath`].
    #[allow(clippy::type_complexity)]
    fn prepare(
        &mut self,
        op: LogicOp,
        a: BatchHandle,
        b: Option<BatchHandle>,
    ) -> Result<
        (BatchEntry, Vec<Vec<(usize, Arc<Program>)>>, Vec<(TopoPath, Vec<CommandProfile>)>),
        CoreError,
    > {
        let ea = self.entry(a)?.clone();
        if let Some(b) = b {
            let eb = self.entry(b)?;
            if ea.len != eb.len {
                return Err(CoreError::WidthMismatch { expected: ea.len, got: eb.len });
            }
        }
        let eb = b.map(|b| self.entry(b).cloned()).transpose()?;

        let mut stripes = Vec::with_capacity(ea.stripes.len());
        let mut work: Vec<Vec<(usize, Arc<Program>)>> =
            (0..self.banks.len()).map(|_| Vec::new()).collect();
        // Streams merge per flat unit in O(log units) — keyed by index,
        // converted to paths once at the end.
        let mut streams: BTreeMap<usize, Vec<CommandProfile>> = BTreeMap::new();
        // Channel-major placement gives co-located stripes identical allocator
        // trajectories, so consecutive stripes almost always compile to the
        // same program; memoizing the last (rows -> program) pair turns the
        // per-stripe compile into an Arc bump.
        let mut compiled: Option<(Operands, Arc<Program>)> = None;
        // The plan handed to the static verifier: same steps, same
        // streams, plus a per-subarray live-in snapshot taken at first
        // touch (before this operation's own destination allocations).
        let mut plan = BatchPlan::new(
            self.config.topology.clone(),
            self.config.budget.clone(),
            SubarrayShape {
                data_rows: self.config.geometry().rows_per_subarray,
                dcc_rows: self.config.reserved_rows,
            },
        );
        if let Some(e) = self.banks.first().and_then(|b| b.engines.first()) {
            plan.timing = e.timing().clone();
        }
        for (ci, sa) in ea.stripes.iter().enumerate() {
            let rb = match &eb {
                Some(eb) => {
                    let sb = eb.stripes[ci];
                    debug_assert_eq!(
                        (sa.bank, sa.subarray),
                        (sb.bank, sb.subarray),
                        "channel-major placement keeps operand stripes co-located"
                    );
                    sb.row
                }
                None => sa.row,
            };
            // Live-in snapshot at first touch: a data row is live iff the
            // allocator owns it AND the engine has real data in it (the
            // engine's live bits overapproximate — they stay set for
            // released rows); reserved rows carry scratch residue and
            // count as live whenever written.
            plan.live_in.entry((sa.bank, sa.subarray)).or_insert_with(|| {
                self.banks[sa.bank].engines[sa.subarray]
                    .live_rows()
                    .into_iter()
                    .filter(|r| match r {
                        PhysRow::Data(i) => {
                            self.banks[sa.bank].allocs[sa.subarray].is_allocated(*i)
                        }
                        PhysRow::Dcc(_) => true,
                    })
                    .collect()
            });
            let dst = self.banks[sa.bank].allocs[sa.subarray].alloc()?;
            let rows = Operands { a: sa.row, b: rb, dst, scratch: None };
            let prog = match &compiled {
                Some((r, p)) if *r == rows => Arc::clone(p),
                _ => {
                    let p =
                        Arc::new(compile(op, self.config.mode, rows, self.config.reserved_rows)?);
                    compiled = Some((rows, Arc::clone(&p)));
                    p
                }
            };
            let timing = self.banks[sa.bank].engines[sa.subarray].timing();
            let profiles = prog.profiles(timing);
            streams.entry(sa.bank).or_default().extend(profiles);
            plan.steps.push(PlanStep {
                unit: sa.bank,
                subarray: sa.subarray,
                stream: self.config.topology.path(sa.bank),
                program: Arc::clone(&prog),
            });
            work[sa.bank].push((sa.subarray, prog));
            stripes.push(Stripe { bank: sa.bank, subarray: sa.subarray, row: dst });
        }
        self.last_plan = Some(plan);
        let streams = streams
            .into_iter()
            .map(|(unit, profiles)| (self.config.topology.path(unit), profiles))
            .collect();
        Ok((BatchEntry { len: ea.len, stripes }, work, streams))
    }

    /// Executes every bank's programs on its engines — one scoped thread
    /// per bank with work when there is enough of it to amortize the
    /// spawns, serially on the calling thread otherwise. Banks touch
    /// disjoint state, and results are collected in bank order, so the
    /// outcome is identical either way.
    fn run_banks(&mut self, work: Vec<Vec<(usize, Arc<Program>)>>) -> Result<(), CoreError> {
        let cache = &self.analysis_cache;
        let words_per_row = self.config.topology.geometry.row_bits().div_ceil(64);
        let total_primitives: usize =
            work.iter().flatten().map(|(_, prog)| prog.primitives().len()).sum();
        let busy_banks = work.iter().filter(|programs| !programs.is_empty()).count();
        if busy_banks <= 1 || total_primitives * words_per_row < PARALLEL_MIN_WORDS {
            // Serial fast path; banks still run in ascending order, so the
            // first error reported matches the parallel path's.
            for (unit, programs) in self.banks.iter_mut().zip(&work) {
                for (subarray, prog) in programs {
                    unit.engines[*subarray].run_verified_cached(prog.as_ref(), cache)?;
                }
            }
            return Ok(());
        }
        let results: Vec<Result<(), CoreError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .banks
                .iter_mut()
                .zip(work.iter())
                .map(|(unit, programs)| {
                    if programs.is_empty() {
                        None
                    } else {
                        Some(scope.spawn(move || -> Result<(), CoreError> {
                            for (subarray, prog) in programs {
                                unit.engines[*subarray]
                                    .run_verified_cached(prog.as_ref(), cache)?;
                            }
                            Ok(())
                        }))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h {
                    // A panicking engine thread is a bug in the functional
                    // model itself; propagate the panic.
                    Some(h) => h.join().expect("bank engine thread panicked"),
                    None => Ok(()),
                })
                .collect()
        });
        // Deterministic error reporting: the lowest failing bank wins.
        results.into_iter().collect()
    }

    fn run_op(
        &mut self,
        op: LogicOp,
        a: BatchHandle,
        b: Option<BatchHandle>,
    ) -> Result<(BatchHandle, BatchRun), CoreError> {
        let (entry, work, streams) = self.prepare(op, a, b)?;
        // Debug builds certify every prepared plan before anything runs:
        // the borrow checker, hazard analysis, and timing proofs must all
        // accept what the batch layer is about to execute. A rejection
        // here is a batch-layer bug surfacing, not a user error.
        #[cfg(debug_assertions)]
        if let Some(err) =
            self.last_plan.as_ref().and_then(|p| crate::planlint::certify(p).first_error().cloned())
        {
            return Err(CoreError::PlanRejected(err.to_string()));
        }
        self.run_banks(work)?;
        let schedule = match self.sink.as_mut() {
            Some(sink) => self.scheduler.schedule_traced(&streams, sink.as_mut()),
            None => self.scheduler.schedule(&streams),
        }
        .map_err(|_| CoreError::InvalidHandle(usize::MAX))?;
        let banks_used = streams.len();
        let channels_used = {
            let mut channels: Vec<usize> = streams.iter().map(|(p, _)| p.channel).collect();
            channels.dedup(); // streams are path-sorted, so dedup suffices
            channels.len()
        };
        // Operations are sequentially dependent at this layer: makespans
        // (and the background energy accrued over them) add.
        self.totals.merge_sequential(&schedule.stats);
        let id = self.vectors.len();
        self.vectors.push(Some(entry));
        Ok((BatchHandle(id), BatchRun { schedule, banks_used, channels_used }))
    }

    /// Executes `dst := op(a, b)` over whole vectors: functionally on
    /// every stripe (banks in parallel on the host), and scheduled as one
    /// interleaved batch for timing.
    ///
    /// # Errors
    ///
    /// Handle, width, capacity, and compilation errors.
    pub fn binary(
        &mut self,
        op: LogicOp,
        a: BatchHandle,
        b: BatchHandle,
    ) -> Result<(BatchHandle, BatchRun), CoreError> {
        self.run_op(op, a, Some(b))
    }

    /// Executes `dst := !a` over a whole vector.
    ///
    /// # Errors
    ///
    /// Handle, capacity, and compilation errors.
    pub fn not(&mut self, a: BatchHandle) -> Result<(BatchHandle, BatchRun), CoreError> {
        self.run_op(LogicOp::Not, a, None)
    }

    /// Prepares `op(a, b)` exactly as [`DeviceArray::binary`] would —
    /// placement, destination allocation, compilation, live-in snapshots —
    /// and returns the resulting [`BatchPlan`] **without executing it**.
    /// Rows allocated during preparation are released again, so the array
    /// is left unchanged; hand the plan to
    /// [`certify`](crate::planlint::certify) for a static verdict.
    ///
    /// # Errors
    ///
    /// Handle, width, capacity, and compilation errors.
    pub fn plan(
        &mut self,
        op: LogicOp,
        a: BatchHandle,
        b: Option<BatchHandle>,
    ) -> Result<BatchPlan, CoreError> {
        let (entry, _work, _streams) = self.prepare(op, a, b)?;
        for s in entry.stripes {
            self.banks[s.bank].allocs[s.subarray].free(s.row)?;
        }
        Ok(self.last_plan.clone().expect("prepare always records a plan"))
    }

    /// The plan of the most recently prepared operation (what the debug
    /// self-check certified), if any operation has been prepared.
    pub fn last_plan(&self) -> Option<&BatchPlan> {
        self.last_plan.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(bits: usize, period: usize) -> BitVec {
        (0..bits).map(|i| i % period == 0).collect()
    }

    fn tiny_geometry(banks: usize) -> Geometry {
        Geometry { banks, subarrays_per_bank: 2, rows_per_subarray: 32, row_bytes: 32 }
    }

    fn small(banks: usize) -> DeviceArray {
        DeviceArray::new(BatchConfig {
            topology: Topology::module(tiny_geometry(banks)),
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
            budget: PumpBudget::unconstrained(),
        })
    }

    fn small_topo(channels: usize, ranks: usize, banks: usize) -> DeviceArray {
        DeviceArray::new(BatchConfig {
            topology: Topology::new(channels, ranks, tiny_geometry(banks)),
            reserved_rows: 1,
            mode: CompileMode::LowLatency,
            budget: PumpBudget::unconstrained(),
        })
    }

    #[test]
    fn placement_is_bank_major() {
        let mut a = small(4);
        let bits = a.row_bits() * 6;
        let h = a.store(&BitVec::ones(bits)).unwrap();
        let p = a.placement(h).unwrap();
        let banks: Vec<usize> = p.iter().map(|s| s.bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 0, 1]);
        // Subarray advances only after all banks took a stripe.
        let subs: Vec<usize> = p.iter().map(|s| s.subarray).collect();
        assert_eq!(subs, vec![0, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn placement_engages_every_channel_first() {
        let mut m = small_topo(2, 2, 2);
        let bits = m.row_bits() * 8;
        let h = m.store(&BitVec::ones(bits)).unwrap();
        let p = m.placement(h).unwrap();
        // Channel varies fastest, then rank, then bank:
        // flat = (channel * ranks + rank) * banks + bank.
        let units: Vec<usize> = p.iter().map(|s| s.bank).collect();
        assert_eq!(units, vec![0, 4, 2, 6, 1, 5, 3, 7]);
        let chans: Vec<usize> = units.iter().map(|&u| m.unit_path(u).channel).collect();
        assert_eq!(chans, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn prepared_plans_are_certified_and_dry_runs_leave_no_trace() {
        let mut m = small_topo(2, 1, 2);
        let bits = m.row_bits() * 4;
        let a = m.store(&pattern(bits, 3)).unwrap();
        let b = m.store(&pattern(bits, 5)).unwrap();
        let live_before: Vec<usize> =
            m.banks.iter().flat_map(|u| u.allocs.iter().map(RowAllocator::live)).collect();
        // A dry-run plan certifies clean and releases everything it took.
        let plan = m.plan(LogicOp::Xor, a, Some(b)).unwrap();
        assert_eq!(plan.steps.len(), 4);
        assert!(plan.live_in.values().all(|rows| !rows.is_empty()));
        let report = crate::planlint::certify(&plan);
        assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));
        assert!(report.makespan().unwrap().as_f64() > 0.0);
        let live_after: Vec<usize> =
            m.banks.iter().flat_map(|u| u.allocs.iter().map(RowAllocator::live)).collect();
        assert_eq!(live_before, live_after);
        // The executed op records the same kind of plan, and its proven
        // makespan matches the scheduler's.
        let (_, run) = m.binary(LogicOp::Xor, a, b).unwrap();
        let last = m.last_plan().unwrap();
        let report = crate::planlint::certify(last);
        assert!(report.is_accepted());
        assert!((report.makespan().unwrap().as_f64() - run.stats().makespan.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn multichannel_results_match_single_module() {
        let mut topo = small_topo(2, 2, 2);
        let mut flat = small(1);
        let bits = topo.row_bits() * 5 + 9; // 6 stripes
        let a = pattern(bits, 3);
        let b = pattern(bits, 5);
        let (ta, tb) = (topo.store(&a).unwrap(), topo.store(&b).unwrap());
        let (fa, fb) = (flat.store(&a).unwrap(), flat.store(&b).unwrap());
        let (th, trun) = topo.binary(LogicOp::Xor, ta, tb).unwrap();
        let (fh, _) = flat.binary(LogicOp::Xor, fa, fb).unwrap();
        assert_eq!(topo.load(th).unwrap(), flat.load(fh).unwrap());
        assert_eq!(trun.banks_used, 6);
        assert_eq!(trun.channels_used, 2);
    }

    #[test]
    fn extra_channels_relieve_pump_pressure() {
        // Same total work and per-bank shape, but the four-channel array
        // spreads it over four pump windows and four buses.
        let jedec = |t: Topology| {
            DeviceArray::new(BatchConfig {
                topology: t,
                reserved_rows: 1,
                mode: CompileMode::LowLatency,
                budget: PumpBudget::jedec_ddr3_1600(),
            })
        };
        let mut one = jedec(Topology::module(tiny_geometry(8)));
        let mut four = jedec(Topology::new(4, 1, tiny_geometry(2)));
        let bits = one.row_bits() * 8;
        let run_of = |m: &mut DeviceArray| {
            let a = m.store(&BitVec::ones(bits)).unwrap();
            let b = m.store(&pattern(bits, 2)).unwrap();
            let (_, run) = m.binary(LogicOp::And, a, b).unwrap();
            run
        };
        let r1 = run_of(&mut one);
        let r4 = run_of(&mut four);
        assert_eq!((r1.channels_used, r4.channels_used), (1, 4));
        assert_eq!((r1.banks_used, r4.banks_used), (8, 8));
        assert!(r1.stats().pump_stall.as_f64() > 0.0, "8 banks on one window must stall");
        assert!(
            r4.stats().pump_stall.as_f64() < r1.stats().pump_stall.as_f64(),
            "four windows must stall less: {} vs {}",
            r4.stats().pump_stall,
            r1.stats().pump_stall
        );
        assert!(
            r4.stats().makespan.as_f64() < r1.stats().makespan.as_f64(),
            "four channels must finish sooner: {} vs {}",
            r4.stats().makespan,
            r1.stats().makespan
        );
    }

    #[test]
    fn fault_ranking_preserves_channel_major_order_on_ties() {
        let mut m = small_topo(2, 1, 2);
        // Channel-major over 2ch × 1r × 2b enumerates flat units 0,2,1,3.
        assert_eq!(m.bank_ranking(), &[0, 2, 1, 3]);
        m.set_fault_models(vec![None; 4]);
        assert_eq!(m.bank_ranking(), &[0, 2, 1, 3], "all-clean ties keep channel-major order");
        let mut probs = vec![0.0; m.row_bits()];
        probs[0] = 0.9;
        let mut models = vec![None; 4];
        models[2] = Some(ColumnFaultModel::new(0xFA17, 2, probs));
        m.set_fault_models(models);
        assert_eq!(m.bank_ranking(), &[0, 1, 3, 2], "the unreliable unit sinks to last");
    }

    #[test]
    fn store_load_roundtrip_with_uneven_tail() {
        let mut a = small(4);
        let bits = a.row_bits() * 5 + 13;
        let v = pattern(bits, 7);
        let h = a.store(&v).unwrap();
        assert_eq!(a.load(h).unwrap(), v);
    }

    #[test]
    fn binary_ops_match_software() {
        for op in [LogicOp::And, LogicOp::Or, LogicOp::Xor, LogicOp::Nand, LogicOp::Nor] {
            let mut m = small(4);
            let bits = m.row_bits() * 7 + 5;
            let a = pattern(bits, 2);
            let b = pattern(bits, 3);
            let ha = m.store(&a).unwrap();
            let hb = m.store(&b).unwrap();
            let (hc, _) = m.binary(op, ha, hb).unwrap();
            let got = m.load(hc).unwrap();
            let want: BitVec = (0..bits).map(|i| op.eval(a.get(i), b.get(i))).collect();
            assert_eq!(got, want, "{op}");
        }
    }

    #[test]
    fn not_matches_software() {
        let mut m = small(2);
        let bits = m.row_bits() * 3 + 1;
        let a = pattern(bits, 3);
        let ha = m.store(&a).unwrap();
        let (hc, run) = m.not(ha).unwrap();
        let want: BitVec = (0..bits).map(|i| !a.get(i)).collect();
        assert_eq!(m.load(hc).unwrap(), want);
        assert_eq!(run.banks_used, 2);
    }

    #[test]
    fn makespan_beats_serial_busy_time_across_banks() {
        let mut m = small(8);
        let bits = m.row_bits() * 8;
        let a = m.store(&BitVec::ones(bits)).unwrap();
        let b = m.store(&pattern(bits, 2)).unwrap();
        let (_, run) = m.binary(LogicOp::And, a, b).unwrap();
        let s = run.stats();
        assert_eq!(run.banks_used, 8);
        assert!(
            s.makespan.as_f64() < s.busy_time.as_f64() * 0.2,
            "8 banks must overlap: makespan {} vs busy {}",
            s.makespan,
            s.busy_time
        );
    }

    #[test]
    fn single_bank_makespan_equals_busy_time() {
        let mut m = small(1);
        let bits = m.row_bits() * 2;
        let a = m.store(&BitVec::ones(bits)).unwrap();
        let b = m.store(&BitVec::ones(bits)).unwrap();
        let (_, run) = m.binary(LogicOp::Xor, a, b).unwrap();
        let s = run.stats();
        assert!((s.makespan.as_f64() - s.busy_time.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn sharded_result_matches_single_bank_array() {
        let bits = 32 * 8 * 6 + 11;
        let a = pattern(bits, 5);
        let b = pattern(bits, 3);
        let mut wide = small(8);
        let mut narrow = small(1);
        for op in [LogicOp::And, LogicOp::Or, LogicOp::Xor] {
            let (wx, wy) = (wide.store(&a).unwrap(), wide.store(&b).unwrap());
            let (hw, _) = wide.binary(op, wx, wy).unwrap();
            let (nx, ny) = (narrow.store(&a).unwrap(), narrow.store(&b).unwrap());
            let (hn, _) = narrow.binary(op, nx, ny).unwrap();
            assert_eq!(wide.load(hw).unwrap(), narrow.load(hn).unwrap(), "{op}");
            for h in [wx, wy, hw] {
                wide.release(h).unwrap();
            }
            for h in [nx, ny, hn] {
                narrow.release(h).unwrap();
            }
        }
    }

    #[test]
    fn injected_error_corrupts_exactly_one_stripe() {
        let mut m = small(4);
        let bits = m.row_bits() * 4;
        let v = BitVec::zeros(bits);
        let h = m.store(&v).unwrap();
        let flipped = m.row_bits() + 3; // second stripe → bank 1
        let s = m.inject_bit_error(h, flipped).unwrap();
        assert_eq!(s.bank, 1);
        let got = m.load(h).unwrap();
        for i in 0..bits {
            assert_eq!(got.get(i), i == flipped, "bit {i}");
        }
    }

    #[test]
    fn release_frees_rows_for_reuse() {
        let mut m = small(2);
        let bits = m.row_bits() * 4;
        for _ in 0..40 {
            let h = m.store(&BitVec::ones(bits)).unwrap();
            m.release(h).unwrap();
        }
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut m = small(2);
        let a = m.store(&BitVec::ones(10)).unwrap();
        let b = m.store(&BitVec::ones(20)).unwrap();
        assert!(matches!(m.binary(LogicOp::And, a, b), Err(CoreError::WidthMismatch { .. })));
    }

    #[test]
    fn dead_handle_errors() {
        let mut m = small(2);
        let h = m.store(&BitVec::ones(4)).unwrap();
        m.release(h).unwrap();
        assert!(matches!(m.load(h), Err(CoreError::InvalidHandle(_))));
        assert!(matches!(m.inject_bit_error(h, 0), Err(CoreError::InvalidHandle(_))));
    }

    #[test]
    fn element_reads_match_load() {
        let mut m = small(4);
        let bits = m.row_bits() * 3 + 17;
        let v = pattern(bits, 5);
        let h = m.store(&v).unwrap();
        let loaded = m.load(h).unwrap();
        for i in 0..bits {
            assert_eq!(m.element(h, i).unwrap(), loaded.get(i), "bit {i}");
        }
        assert!(matches!(m.element(h, bits), Err(CoreError::InvalidHandle(_))));
        m.release(h).unwrap();
        assert!(matches!(m.element(h, 0), Err(CoreError::InvalidHandle(_))));
    }

    #[test]
    fn analysis_verdicts_are_cached_across_stripes_and_ops() {
        let mut m = small(8);
        let bits = m.row_bits() * 16; // 2 stripes per bank
        let a = m.store(&pattern(bits, 2)).unwrap();
        let b = m.store(&pattern(bits, 3)).unwrap();
        assert!(m.analysis_cache().is_empty());
        let (c, _) = m.binary(LogicOp::And, a, b).unwrap();
        let after_first = m.analysis_cache().len();
        // 16 stripes executed, but row allocation is identical in every
        // subarray, so only a handful of distinct verdicts exist.
        assert!(after_first <= 2, "cache holds {after_first} verdicts for one op");
        let (_, _) = m.binary(LogicOp::And, a, b).unwrap();
        // Identical second op (same rows freed? no — new dst rows) may add
        // a verdict, but never one per stripe.
        assert!(m.analysis_cache().len() <= after_first + 2);
        m.release(c).unwrap();
    }

    /// Mostly-clean banks with one certain-fail column on bank 2.
    fn faulted(banks: usize, bad_bank: usize, bad_col: usize, p: f64) -> DeviceArray {
        let mut m = small(banks);
        let rb = m.row_bits();
        let models = (0..banks)
            .map(|b| {
                let mut probs = vec![0.0; rb];
                if b == bad_bank {
                    probs[bad_col] = p;
                }
                Some(ColumnFaultModel::new(0xFA17, b, probs))
            })
            .collect();
        m.set_fault_models(models);
        m
    }

    #[test]
    fn ranking_prefers_clean_banks_for_placement() {
        let m = faulted(4, 2, 7, 0.5);
        // Bank 2 is the only unreliable one: it must be ranked last.
        assert_eq!(m.bank_ranking()[3], 2);
        let mut m = m;
        let h = m.store(&BitVec::ones(m.row_bits())).unwrap();
        let p = m.placement(h).unwrap();
        assert_ne!(p[0].bank, 2, "single stripe must land on a reliable bank");
    }

    #[test]
    fn certain_fault_agrees_on_wrong_and_evades_recompute() {
        // A column that *always* fails corrupts every recompute the same
        // way, so verify-by-recompute confirms the wrong answer. This is
        // the documented blind spot that selective ParityGuard protection
        // (apps::ecc) exists for: persistent weak columns need redundancy,
        // not retries.
        let mut m = faulted(2, 0, 3, 1.0);
        let bits = m.row_bits() * 2; // one stripe per bank
        let a = m.store(&BitVec::ones(bits)).unwrap();
        let b = m.store(&BitVec::ones(bits)).unwrap();
        let checked = m.binary_checked(LogicOp::And, a, b, &FaultPolicy::default()).unwrap();
        assert!(checked.verified, "identical corruption must agree");
        assert_eq!(checked.attempts, 1);
        assert_ne!(m.load(checked.handle).unwrap(), BitVec::ones(bits));
        assert!(m.injected_flips() >= 2);
    }

    #[test]
    fn checked_op_skips_verification_on_clean_banks() {
        let mut m = small(2);
        m.set_fault_models(vec![None, None]);
        let bits = m.row_bits() * 2;
        let a = m.store(&BitVec::ones(bits)).unwrap();
        let b = m.store(&BitVec::ones(bits)).unwrap();
        let checked = m.binary_checked(LogicOp::And, a, b, &FaultPolicy::default()).unwrap();
        assert_eq!(checked.attempts, 1);
        assert!(!checked.verified);
        assert_eq!(m.load(checked.handle).unwrap(), BitVec::ones(bits));
        assert_eq!(m.reliability_metrics().counter("verify_recomputes"), 0);
        assert_eq!(m.injected_flips(), 0);
    }

    #[test]
    fn checked_op_verifies_and_recovers_intermittent_fault() {
        // Intermittent faults (p = 0.15) disagree between recomputes, so
        // verification converges to a clean result within a few retries:
        // agreeing-on-wrong needs the same column to flip in both runs of
        // a round (p² against (1-p)² for agreeing-clean).
        let mut m = faulted(2, 0, 5, 0.15);
        let bits = m.row_bits() * 2;
        let a = m.store(&BitVec::ones(bits)).unwrap();
        let b = m.store(&BitVec::ones(bits)).unwrap();
        let policy = FaultPolicy { verify: true, max_retries: 16 };
        let mut delivered_clean = 0;
        for _ in 0..10 {
            let checked = m.binary_checked(LogicOp::And, a, b, &policy).unwrap();
            if checked.verified && m.load(checked.handle).unwrap() == BitVec::ones(bits) {
                delivered_clean += 1;
            }
            m.release(checked.handle).unwrap();
        }
        assert!(delivered_clean >= 8, "only {delivered_clean}/10 verified clean");
        assert!(m.reliability_metrics().counter("retries") > 0, "p=0.15 never mismatched");
    }

    #[test]
    fn cumulative_stats_accumulate_makespan() {
        let mut m = small(2);
        let bits = m.row_bits() * 2;
        let a = m.store(&BitVec::ones(bits)).unwrap();
        let b = m.store(&BitVec::ones(bits)).unwrap();
        let (_, r1) = m.binary(LogicOp::And, a, b).unwrap();
        let (_, r2) = m.binary(LogicOp::Or, a, b).unwrap();
        let expect = r1.stats().makespan.as_f64() + r2.stats().makespan.as_f64();
        assert!((m.stats().makespan.as_f64() - expect).abs() < 1e-9);
    }
}
