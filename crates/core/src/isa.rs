//! Primitive programs in the paper's `prmt([dst],src)` form (§5.1), with
//! substrate accounting.

use crate::primitive::Primitive;
use elp2im_dram::command::CommandProfile;
use elp2im_dram::constraint::PumpBudget;
use elp2im_dram::power::PowerModel;
use elp2im_dram::timing::Ddr3Timing;
use elp2im_dram::units::{Ns, Picojoules};
use std::fmt;

/// A named sequence of ELP2IM primitives.
///
/// ```
/// use elp2im_core::isa::Program;
/// use elp2im_core::primitive::{Primitive, RegulateMode, RowRef};
/// use elp2im_dram::timing::Ddr3Timing;
///
/// let p = Program::new("or-in-place", vec![
///     Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
///     Primitive::Ap { row: RowRef::Data(1) },
/// ]);
/// let t = Ddr3Timing::ddr3_1600();
/// assert!((p.latency(&t).as_f64() - 115.35).abs() < 1.0);
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    primitives: Vec<Primitive>,
}

impl Program {
    /// Creates a named program.
    pub fn new(name: impl Into<String>, primitives: Vec<Primitive>) -> Self {
        Program { name: name.into(), primitives }
    }

    /// The program's name (e.g. `"xor-seq5"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primitive sequence.
    pub fn primitives(&self) -> &[Primitive] {
        &self.primitives
    }

    /// Consumes the program, yielding its primitive sequence without
    /// copying (for callers that rename or rewrap an owned program).
    pub fn into_primitives(self) -> Vec<Primitive> {
        self.primitives
    }

    /// Number of primitives (the paper's "commands"/"cycles" count).
    pub fn len(&self) -> usize {
        self.primitives.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.primitives.is_empty()
    }

    /// Total latency under `t`.
    pub fn latency(&self, t: &Ddr3Timing) -> Ns {
        self.primitives.iter().map(|p| p.duration(t)).sum()
    }

    /// The substrate command profiles, in order.
    pub fn profiles(&self, t: &Ddr3Timing) -> Vec<CommandProfile> {
        self.primitives.iter().map(|p| p.profile(t)).collect()
    }

    /// Total wordline-raise events.
    pub fn wordline_events(&self, t: &Ddr3Timing) -> u64 {
        self.profiles(t).iter().map(|p| u64::from(p.total_wordline_events)).sum()
    }

    /// Total dynamic energy under `power`.
    pub fn energy(&self, t: &Ddr3Timing, power: &PowerModel) -> Picojoules {
        self.profiles(t).iter().map(|p| power.command_energy(p)).sum()
    }

    /// Total charge-pump token cost under `budget`.
    pub fn pump_cost(&self, t: &Ddr3Timing, budget: &PumpBudget) -> f64 {
        self.profiles(t).iter().map(|p| budget.command_cost(p)).sum()
    }

    /// Steady-state bank parallelism when this program repeats back to back
    /// in every bank (§6.3's power-constraint analysis).
    pub fn parallel_banks(&self, t: &Ddr3Timing, budget: &PumpBudget, banks: usize) -> f64 {
        budget.max_parallel_banks(&self.profiles(t), banks)
    }

    /// Concatenates another program after this one.
    pub fn then(mut self, other: Program) -> Program {
        self.primitives.extend(other.primitives);
        self
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.name)?;
        for (i, p) in self.primitives.iter().enumerate() {
            if i > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::{RegulateMode, RowRef};

    fn prog() -> Program {
        Program::new(
            "demo",
            vec![
                Primitive::OAap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) },
                Primitive::OApp { row: RowRef::Data(1), mode: RegulateMode::And },
                Primitive::OAap { src: RowRef::DccTrue(0), dst: RowRef::Data(2) },
            ],
        )
    }

    #[test]
    fn latency_is_sum_of_durations() {
        let t = Ddr3Timing::ddr3_1600();
        let p = prog();
        let expect: f64 = p.primitives().iter().map(|x| x.duration(&t).as_f64()).sum();
        assert!((p.latency(&t).as_f64() - expect).abs() < 1e-9);
        // oAAP + oAPP + oAAP ≈ 159 ns (the paper's optimized 3-command op).
        assert!((p.latency(&t).as_f64() - 158.45).abs() < 1.5);
    }

    #[test]
    fn accounting_is_positive_and_consistent() {
        let t = Ddr3Timing::ddr3_1600();
        let power = PowerModel::micron_ddr3_1600();
        let budget = PumpBudget::jedec_ddr3_1600();
        let p = prog();
        assert_eq!(p.wordline_events(&t), 5); // 2 + 1 + 2
        assert!(p.energy(&t, &power).as_f64() > 0.0);
        assert!(p.pump_cost(&t, &budget) > 4.0);
        let banks = p.parallel_banks(&t, &budget, 8);
        assert!(banks > 0.5 && banks <= 8.0, "banks = {banks}");
    }

    #[test]
    fn then_concatenates() {
        let t = Ddr3Timing::ddr3_1600();
        let a = prog();
        let lat_a = a.latency(&t);
        let combined = a.clone().then(prog());
        assert_eq!(combined.len(), 6);
        assert!((combined.latency(&t).as_f64() - 2.0 * lat_a.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn display_joins_primitives() {
        let s = prog().to_string();
        assert!(s.starts_with("demo: "));
        assert!(s.contains(" ; "), "{s}");
        assert!(s.contains("oAAP([R0],r0)"), "{s}");
    }
}
