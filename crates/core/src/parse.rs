//! Parsing the paper's `prmt([dst],src)` command form (§5.1).
//!
//! The memory controller of §5.1 buffers configurable primitive sequences
//! expressed as `prmt([dst],src)` — `prmt` the primitive mnemonic, `dst`
//! the destination row, `src` the source. This module parses exactly the
//! textual form that [`Primitive`]'s `Display` implementation prints, so
//! programs round-trip:
//!
//! ```
//! use elp2im_core::parse::parse_program;
//! let p = parse_program("xor", "oAAP([R0],r0) ; oAPP(r1)·and ; oAAP([r2],R0)").unwrap();
//! assert_eq!(p.len(), 3);
//! assert_eq!(p.to_string(), "xor: oAAP([R0],r0) ; oAPP(r1)·and ; oAAP([r2],R0)");
//! ```

use crate::isa::Program;
use crate::primitive::{Primitive, RegulateMode, RowRef};
use std::error::Error;
use std::fmt;

/// A parse failure, with the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePrmtError {
    /// What failed to parse.
    pub token: String,
    /// Why.
    pub reason: &'static str,
}

impl fmt::Display for ParsePrmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse {:?}: {}", self.token, self.reason)
    }
}

impl Error for ParsePrmtError {}

fn err(token: &str, reason: &'static str) -> ParsePrmtError {
    ParsePrmtError { token: token.to_string(), reason }
}

fn parse_row(s: &str) -> Result<RowRef, ParsePrmtError> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("!R") {
        return rest.parse().map(RowRef::DccBar).map_err(|_| err(s, "bad reserved-row index"));
    }
    if let Some(rest) = s.strip_prefix('R') {
        return rest.parse().map(RowRef::DccTrue).map_err(|_| err(s, "bad reserved-row index"));
    }
    if let Some(rest) = s.strip_prefix('r') {
        return rest.parse().map(RowRef::Data).map_err(|_| err(s, "bad data-row index"));
    }
    Err(err(s, "rows are rN (data), RN, or !RN (reserved)"))
}

fn parse_mode(s: &str) -> Result<RegulateMode, ParsePrmtError> {
    match s.trim() {
        "or" => Ok(RegulateMode::Or),
        "and" => Ok(RegulateMode::And),
        other => Err(err(other, "regulation mode is ·or or ·and")),
    }
}

/// Parses one `prmt([dst],src)` command.
///
/// # Errors
///
/// Returns [`ParsePrmtError`] on any malformed token.
pub fn parse_primitive(s: &str) -> Result<Primitive, ParsePrmtError> {
    let s = s.trim();
    // Split the optional ·mode suffix (accept ASCII '.' as well).
    let (head, mode) = if let Some((h, m)) = s.rsplit_once('·') {
        (h, Some(parse_mode(m)?))
    } else if let Some((h, m)) = s.rsplit_once(").") {
        // "APP(r1).and" form: restore the ')' eaten by the split.
        (&s[..h.len() + 1], Some(parse_mode(m)?))
    } else {
        (s, None)
    };
    let open = head.find('(').ok_or_else(|| err(s, "missing '('"))?;
    let close = head.rfind(')').ok_or_else(|| err(s, "missing ')'"))?;
    if close < open {
        return Err(err(s, "mismatched parentheses"));
    }
    let mnemonic = head[..open].trim();
    let args = &head[open + 1..close];

    let two_rows = |args: &str| -> Result<(RowRef, RowRef), ParsePrmtError> {
        let inner = args.trim();
        let Some(rest) = inner.strip_prefix('[') else {
            return Err(err(args, "expected [dst],src"));
        };
        let Some((dst, src)) = rest.split_once("],") else {
            return Err(err(args, "expected [dst],src"));
        };
        Ok((parse_row(src)?, parse_row(dst)?))
    };

    let need_mode = |mode: Option<RegulateMode>| -> Result<RegulateMode, ParsePrmtError> {
        mode.ok_or_else(|| err(s, "APP-class primitives need a ·or/·and mode"))
    };

    match mnemonic {
        "AP" => {
            if mode.is_some() {
                return Err(err(s, "AP takes no regulation mode"));
            }
            Ok(Primitive::Ap { row: parse_row(args)? })
        }
        "AAP" => {
            let (src, dst) = two_rows(args)?;
            Ok(Primitive::Aap { src, dst })
        }
        "oAAP" => {
            let (src, dst) = two_rows(args)?;
            Ok(Primitive::OAap { src, dst })
        }
        "APP" => Ok(Primitive::App { row: parse_row(args)?, mode: need_mode(mode)? }),
        "oAPP" => {
            // Either oAPP(row)·m or the fused copy oAPP([dst],src)·m.
            if args.trim_start().starts_with('[') {
                let (src, dst) = two_rows(args)?;
                Ok(Primitive::OAppCopy { src, dst, mode: need_mode(mode)? })
            } else {
                Ok(Primitive::OApp { row: parse_row(args)?, mode: need_mode(mode)? })
            }
        }
        "tAPP" => Ok(Primitive::TApp { row: parse_row(args)?, mode: need_mode(mode)? }),
        "otAPP" => Ok(Primitive::OtApp { row: parse_row(args)?, mode: need_mode(mode)? }),
        other => Err(err(other, "unknown primitive mnemonic")),
    }
}

/// Parses a `;`-separated program.
///
/// # Errors
///
/// Returns the first command's [`ParsePrmtError`].
pub fn parse_program(name: &str, text: &str) -> Result<Program, ParsePrmtError> {
    let prims = text
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_primitive)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Program::new(name, prims))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{xor_sequence, Operands};

    #[test]
    fn parses_each_primitive_kind() {
        assert_eq!(parse_primitive("AP(r3)").unwrap(), Primitive::Ap { row: RowRef::Data(3) });
        assert_eq!(
            parse_primitive("AAP([r2],r1)").unwrap(),
            Primitive::Aap { src: RowRef::Data(1), dst: RowRef::Data(2) }
        );
        assert_eq!(
            parse_primitive("oAAP([R0],r7)").unwrap(),
            Primitive::OAap { src: RowRef::Data(7), dst: RowRef::DccTrue(0) }
        );
        assert_eq!(
            parse_primitive("APP(r1)·and").unwrap(),
            Primitive::App { row: RowRef::Data(1), mode: RegulateMode::And }
        );
        assert_eq!(
            parse_primitive("otAPP(!R0)·or").unwrap(),
            Primitive::OtApp { row: RowRef::DccBar(0), mode: RegulateMode::Or }
        );
        assert_eq!(
            parse_primitive("oAPP([R1],r1)·and").unwrap(),
            Primitive::OAppCopy {
                src: RowRef::Data(1),
                dst: RowRef::DccTrue(1),
                mode: RegulateMode::And
            }
        );
    }

    #[test]
    fn display_round_trips_all_sequences() {
        for n in 1..=6u8 {
            let prog = xor_sequence(n, Operands::standard(), 2).unwrap();
            let text: Vec<String> = prog.primitives().iter().map(|p| p.to_string()).collect();
            let reparsed = parse_program(prog.name(), &text.join(" ; ")).unwrap();
            assert_eq!(reparsed.primitives(), prog.primitives(), "seq{n}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_primitive("AP(r1)·or").is_err(), "AP takes no mode");
        assert!(parse_primitive("APP(r1)").is_err(), "APP needs a mode");
        assert!(parse_primitive("ZAP(r1)").is_err(), "unknown mnemonic");
        assert!(parse_primitive("AAP(r1,r2)").is_err(), "missing [dst]");
        assert!(parse_primitive("AP(x1)").is_err(), "bad row");
        assert!(parse_primitive("AP r1").is_err(), "missing parens");
        let e = parse_primitive("APP(r1)·nor").unwrap_err();
        assert!(e.to_string().contains("·or or ·and"), "{e}");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let p = parse_program("x", "  AP( r1 ) ;  oAAP([ R0 ], r2 )  ; ").unwrap();
        assert_eq!(p.len(), 2);
    }
}
