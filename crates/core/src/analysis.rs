//! Static sequence analysis: abstract interpretation and translation
//! validation.
//!
//! §5.1 assumes the configurable memory controller verifies buffered
//! primitive sequences before issue. This module is that verifier, built as
//! an **abstract interpreter** over the pseudo-precharge/sense-amplifier
//! state machine:
//!
//! * every physical row carries an abstract value — [`AbstractVal`]:
//!   undefined, destroyed, opaque (live but untracked), or an exact
//!   boolean function of the live-in rows ([`TruthTable`]);
//! * the pending bitline regulation is tracked symbolically, mirroring the
//!   engine's keep-mask semantics bit for bit;
//! * stepping a [`Program`] yields [`Diagnostic`]s with severities:
//!   errors subsume the [`Violation`] set (out-of-range rows, same-decoder
//!   overlap, destroyed/undefined reads, dangling regulation), warnings
//!   flag dead stores and clobbered live-in operands, and notes point out
//!   restores that the §4.2 trim pass could truncate.
//!
//! Because operands are *per-column booleans*, tracking one [`TruthTable`]
//! per row over the `k` live-in rows is **exact**: the abstract final state
//! enumerates all `2^k` input assignments, so two programs with equal final
//! states are semantically equivalent for every input. That is the basis of
//! [`verify_transform`], the translation-validation obligation discharged
//! for each optimizer pass (`merge_ap_app`, `trim_restores`, `overlap`).

use crate::isa::Program;
use crate::optimizer::PhysRow;
use crate::primitive::{Primitive, RegulateMode, RowRef};
use crate::validate::{SubarrayShape, Violation};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Mutex;

/// Maximum number of live-in rows tracked as truth-table variables
/// (`2^16` assignments = 1024 words per table). Beyond this the analyzer
/// still proves legality/def-use soundness but stops tracking values.
pub const MAX_VARS: usize = 16;

// ---------------------------------------------------------------------------
// Truth tables
// ---------------------------------------------------------------------------

/// An exact boolean function of `vars` ordered live-in variables.
///
/// Bit `m` of the table is the function value under assignment `m`, where
/// bit `j` of `m` is the value of variable `j`. With `vars = k` the table
/// holds all `2^k` assignments, so equality of tables is semantic
/// equivalence of the functions — exhaustive, not sampled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthTable {
    vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    fn words_for(vars: usize) -> usize {
        (1usize << vars).div_ceil(64)
    }

    fn masked(mut self) -> Self {
        let bits = 1usize << self.vars;
        if bits < 64 {
            self.words[0] &= (1u64 << bits) - 1;
        }
        self
    }

    /// The constant function over `vars` variables.
    pub fn constant(vars: usize, value: bool) -> Self {
        let fill = if value { !0u64 } else { 0 };
        TruthTable { vars, words: vec![fill; Self::words_for(vars)] }.masked()
    }

    /// The projection onto variable `j` (`j < vars`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= vars`.
    pub fn var(vars: usize, j: usize) -> Self {
        assert!(j < vars, "variable {j} out of range for {vars} vars");
        let words = if j >= 6 {
            // Whole words alternate with period 2^(j-6) words.
            (0..Self::words_for(vars))
                .map(|w| if (w >> (j - 6)) & 1 == 1 { !0u64 } else { 0 })
                .collect()
        } else {
            let mut pattern = 0u64;
            for m in 0..64usize {
                if (m >> j) & 1 == 1 {
                    pattern |= 1 << m;
                }
            }
            vec![pattern; Self::words_for(vars)]
        };
        TruthTable { vars, words }.masked()
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Pointwise complement.
    pub fn not(&self) -> Self {
        TruthTable { vars: self.vars, words: self.words.iter().map(|w| !w).collect() }.masked()
    }

    /// Pointwise conjunction.
    pub fn and(&self, other: &Self) -> Self {
        debug_assert_eq!(self.vars, other.vars);
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect();
        TruthTable { vars: self.vars, words }
    }

    /// Pointwise disjunction.
    pub fn or(&self, other: &Self) -> Self {
        debug_assert_eq!(self.vars, other.vars);
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect();
        TruthTable { vars: self.vars, words }
    }

    /// Pointwise exclusive or.
    pub fn xor(&self, other: &Self) -> Self {
        debug_assert_eq!(self.vars, other.vars);
        let words = self.words.iter().zip(&other.words).map(|(a, b)| a ^ b).collect();
        TruthTable { vars: self.vars, words }
    }

    /// The function value under assignment `m` (bit `j` of `m` = variable
    /// `j`).
    pub fn eval(&self, m: usize) -> bool {
        (self.words[m / 64] >> (m % 64)) & 1 == 1
    }

    /// First assignment where the two functions differ, if any.
    pub fn first_difference(&self, other: &Self) -> Option<usize> {
        debug_assert_eq!(self.vars, other.vars);
        for (w, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let diff = a ^ b;
            if diff != 0 {
                return Some(w * 64 + diff.trailing_zeros() as usize);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

/// Abstract value of one physical row at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractVal {
    /// Never written and not live-in: reading it is a def-use error.
    Undefined,
    /// Destroyed by the trimmed restore at primitive `at`; sticky until a
    /// copy destination write revives the row.
    Destroyed {
        /// Primitive index of the destroying trim.
        at: usize,
    },
    /// Holds valid data the analysis does not track (live rows outside the
    /// program's read set, or the [`MAX_VARS`] budget was exceeded).
    Opaque,
    /// An exact boolean function of the live-in rows, per column.
    Expr(TruthTable),
}

impl AbstractVal {
    fn kind_name(&self) -> &'static str {
        match self {
            AbstractVal::Undefined => "undefined",
            AbstractVal::Destroyed { .. } => "destroyed",
            AbstractVal::Opaque => "opaque",
            AbstractVal::Expr(_) => "defined",
        }
    }

    fn is_destroyed(&self) -> bool {
        matches!(self, AbstractVal::Destroyed { .. })
    }
}

/// Severity of a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a legal but improvable sequence.
    Note,
    /// Suspicious but executable.
    Warning,
    /// The program is statically invalid; the engine would fault (or the
    /// sequence leaks state into the next program).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// What a [`Diagnostic`] reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagnosticKind {
    /// Row index exceeds the subarray shape (error).
    RowOutOfRange {
        /// Offending row.
        row: RowRef,
    },
    /// Overlapped activation within one decoder domain (error).
    SameDecoderOverlap {
        /// First row.
        a: RowRef,
        /// Second row.
        b: RowRef,
    },
    /// A read of a row destroyed by a trimmed restore (error).
    ReadOfDestroyedRow {
        /// The destroyed row.
        row: RowRef,
        /// Primitive index of the destroying trim.
        destroyed_at: usize,
    },
    /// A read of a row that is neither live-in nor written earlier (error).
    ReadOfUndefinedRow {
        /// The undefined row.
        row: RowRef,
    },
    /// The program ends with a regulation still pending (error).
    DanglingRegulation,
    /// A copy destination overwritten before any read (warning).
    DeadStore {
        /// The row stored to.
        row: PhysRow,
        /// Primitive index of the overwriting store.
        overwritten_at: usize,
    },
    /// A live-in row ends the program destroyed (warning): the caller's
    /// operand is clobbered.
    LiveInDestroyed {
        /// The clobbered live-in row.
        row: PhysRow,
    },
    /// An APP/oAPP restores a row whose value is dead afterwards; the §4.2
    /// trim pass could truncate the restore (note).
    TrimmableRestore {
        /// The row whose restore is dead.
        row: RowRef,
    },
}

impl DiagnosticKind {
    /// Stable machine-readable identifier, used by `elp2im-lint --json`.
    pub fn slug(&self) -> &'static str {
        match self {
            DiagnosticKind::RowOutOfRange { .. } => "row-out-of-range",
            DiagnosticKind::SameDecoderOverlap { .. } => "same-decoder-overlap",
            DiagnosticKind::ReadOfDestroyedRow { .. } => "read-of-destroyed-row",
            DiagnosticKind::ReadOfUndefinedRow { .. } => "read-of-undefined-row",
            DiagnosticKind::DanglingRegulation => "dangling-regulation",
            DiagnosticKind::DeadStore { .. } => "dead-store",
            DiagnosticKind::LiveInDestroyed { .. } => "live-in-destroyed",
            DiagnosticKind::TrimmableRestore { .. } => "trimmable-restore",
        }
    }
}

/// One analyzer finding: a severity, the primitive it anchors to, and what
/// was found. For the error kinds the rendered text matches [`Violation`]
/// exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Primitive index the finding anchors to.
    pub at: usize,
    /// Severity class.
    pub severity: Severity,
    /// The finding itself.
    pub kind: DiagnosticKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = self.at;
        match &self.kind {
            DiagnosticKind::RowOutOfRange { row } => {
                write!(f, "primitive #{at}: row {row} out of range")
            }
            DiagnosticKind::SameDecoderOverlap { a, b } => {
                write!(
                    f,
                    "primitive #{at}: overlapped activation of {a} and {b} in one decoder domain"
                )
            }
            DiagnosticKind::ReadOfDestroyedRow { row, destroyed_at } => write!(
                f,
                "primitive #{at}: reads {row}, destroyed by the trimmed restore at #{destroyed_at}"
            ),
            DiagnosticKind::ReadOfUndefinedRow { row } => {
                write!(f, "primitive #{at}: reads {row}, which is neither live-in nor written")
            }
            DiagnosticKind::DanglingRegulation => {
                write!(f, "program ends with the regulation from primitive #{at} still pending")
            }
            DiagnosticKind::DeadStore { row, overwritten_at } => write!(
                f,
                "primitive #{at}: stores {row}, overwritten at #{overwritten_at} without an \
                 intervening read (dead store)"
            ),
            DiagnosticKind::LiveInDestroyed { row } => write!(
                f,
                "live-in row {row} is destroyed at #{at} and never rewritten (clobbered operand)"
            ),
            DiagnosticKind::TrimmableRestore { row } => write!(
                f,
                "primitive #{at}: restore of {row} is dead; tAPP/otAPP would save the restore"
            ),
        }
    }
}

/// Result of analyzing a program: ordered diagnostics plus the abstract
/// final state, exact when `tracked()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    diagnostics: Vec<Diagnostic>,
    variables: Vec<PhysRow>,
    tracked: bool,
    final_rows: BTreeMap<PhysRow, AbstractVal>,
    final_regulation: Option<PendingRegulation>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingRegulation {
    mode: RegulateMode,
    /// Keep-mask as a truth table; `None` when values are untracked.
    keep: Option<TruthTable>,
    at: usize,
}

impl PendingRegulation {
    /// Canonical transfer `v ↦ (v ∧ and) ∨ or` of the pending regulation.
    fn canonical(&self) -> Option<(TruthTable, TruthTable)> {
        let keep = self.keep.as_ref()?;
        let vars = keep.vars();
        let (or, and) = match self.mode {
            RegulateMode::Or => (keep.clone(), TruthTable::constant(vars, true)),
            RegulateMode::And => (TruthTable::constant(vars, false), keep.not()),
        };
        Some((or.clone(), and.or(&or)))
    }
}

impl AnalysisReport {
    /// All findings, in program order (end-of-program findings last).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Truth-table variable order: variable `j` is `variables()[j]`.
    pub fn variables(&self) -> &[PhysRow] {
        &self.variables
    }

    /// Whether row values were tracked exactly (false only past
    /// [`MAX_VARS`]). Legality/def-use diagnostics are complete either way.
    pub fn tracked(&self) -> bool {
        self.tracked
    }

    /// Whether the program passed with no error-severity findings.
    pub fn is_accepted(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Error-severity findings rendered as the legacy [`Violation`] set, in
    /// the same order `validate` reported them.
    pub fn to_violations(&self) -> Vec<Violation> {
        self.diagnostics
            .iter()
            .filter_map(|d| match &d.kind {
                DiagnosticKind::RowOutOfRange { row } => {
                    Some(Violation::RowOutOfRange { at: d.at, row: *row })
                }
                DiagnosticKind::SameDecoderOverlap { a, b } => {
                    Some(Violation::SameDecoderOverlap { at: d.at, a: *a, b: *b })
                }
                DiagnosticKind::ReadOfDestroyedRow { row, destroyed_at } => {
                    Some(Violation::ReadOfDestroyedRow {
                        at: d.at,
                        row: *row,
                        destroyed_at: *destroyed_at,
                    })
                }
                DiagnosticKind::ReadOfUndefinedRow { row } => {
                    Some(Violation::ReadOfUndefinedRow { at: d.at, row: *row })
                }
                DiagnosticKind::DanglingRegulation => {
                    Some(Violation::DanglingRegulation { at: d.at })
                }
                _ => None,
            })
            .collect()
    }

    /// Abstract value of `row` at the end of the program.
    pub fn final_row(&self, row: PhysRow) -> AbstractVal {
        self.final_rows.get(&row).cloned().unwrap_or(AbstractVal::Undefined)
    }

    /// The exact boolean function `row` ends with, if tracked and defined.
    pub fn row_value(&self, row: PhysRow) -> Option<&TruthTable> {
        match self.final_rows.get(&row) {
            Some(AbstractVal::Expr(t)) => Some(t),
            _ => None,
        }
    }

    /// Whether a regulation is still pending at the end of the program.
    pub fn has_pending_regulation(&self) -> bool {
        self.final_regulation.is_some()
    }
}

// ---------------------------------------------------------------------------
// Program-shape helpers
// ---------------------------------------------------------------------------

/// Rows a primitive reads (the stored value matters at activation).
pub fn reads_of(p: &Primitive) -> Vec<RowRef> {
    match *p {
        Primitive::Ap { row }
        | Primitive::App { row, .. }
        | Primitive::OApp { row, .. }
        | Primitive::TApp { row, .. }
        | Primitive::OtApp { row, .. } => vec![row],
        Primitive::Aap { src, .. }
        | Primitive::OAap { src, .. }
        | Primitive::OAppCopy { src, .. } => {
            vec![src]
        }
    }
}

/// Copy destinations a primitive fully overwrites.
pub fn dst_writes_of(p: &Primitive) -> Vec<RowRef> {
    match *p {
        Primitive::Aap { dst, .. }
        | Primitive::OAap { dst, .. }
        | Primitive::OAppCopy { dst, .. } => {
            vec![dst]
        }
        _ => Vec::new(),
    }
}

/// The rows a program reads before writing them — its live-in set, in
/// first-read order.
pub fn infer_live_in(prog: &Program) -> Vec<PhysRow> {
    let mut live_in: Vec<PhysRow> = Vec::new();
    let mut touched: Vec<PhysRow> = Vec::new();
    for p in prog.primitives() {
        for row in reads_of(p) {
            let phys: PhysRow = row.into();
            if !touched.contains(&phys) {
                touched.push(phys);
                live_in.push(phys);
            }
        }
        for row in dst_writes_of(p) {
            let phys: PhysRow = row.into();
            if !touched.contains(&phys) {
                touched.push(phys);
            }
        }
    }
    live_in
}

/// The smallest [`SubarrayShape`] containing every row a program names.
pub fn infer_shape(prog: &Program) -> SubarrayShape {
    let mut shape = SubarrayShape { data_rows: 0, dcc_rows: 0 };
    for p in prog.primitives() {
        for row in p.rows() {
            match row {
                RowRef::Data(i) => shape.data_rows = shape.data_rows.max(i + 1),
                RowRef::DccTrue(i) | RowRef::DccBar(i) => {
                    shape.dcc_rows = shape.dcc_rows.max(i + 1)
                }
            }
        }
    }
    shape
}

fn in_range(shape: SubarrayShape, row: RowRef) -> bool {
    match row {
        RowRef::Data(i) => i < shape.data_rows,
        RowRef::DccTrue(i) | RowRef::DccBar(i) => i < shape.dcc_rows,
    }
}

// ---------------------------------------------------------------------------
// Verdict memoization
// ---------------------------------------------------------------------------

/// Cache key: the primitive sequence, the subarray shape, and the liveness
/// of each row in the program's live-in support set (in [`infer_live_in`]
/// order).
type VerdictKey = (Vec<Primitive>, (usize, usize), Vec<bool>);

/// Memoizes the error verdict of [`analyze`] so a compiled program striped
/// across many banks and subarrays is analyzed **once per (program, shape,
/// liveness)**, not once per stripe.
///
/// Soundness of the key: every error-severity diagnostic depends only on
/// the primitive sequence, the shape, and whether each row the program
/// reads-before-writing (its [`infer_live_in`] support set) is live —
/// `RowOutOfRange`/`SameDecoderOverlap`/`ReadOfDestroyedRow`/
/// `DanglingRegulation` are functions of the program and shape alone, and
/// `ReadOfUndefinedRow` fires exactly when a support row is dead. Rows
/// outside the support set are never read before being written, so their
/// liveness cannot change the verdict. Warnings and notes are not cached;
/// callers that want full diagnostics use [`analyze`] directly.
///
/// The cache is `Sync`, so one instance can serve the bank-parallel batch
/// executor's worker threads concurrently.
#[derive(Debug, Default)]
pub struct AnalysisCache {
    verdicts: Mutex<HashMap<VerdictKey, Option<Violation>>>,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct (program, shape, liveness) verdicts cached.
    pub fn len(&self) -> usize {
        self.verdicts.lock().expect("analysis cache lock").len()
    }

    /// Whether no verdict has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The first error-severity violation of `prog` against `shape`, with
    /// `live` answering whether a physical row currently holds data.
    /// Computed via [`analyze`] on the first miss, then served from cache.
    pub fn first_violation(
        &self,
        prog: &Program,
        shape: SubarrayShape,
        live: impl Fn(PhysRow) -> bool,
    ) -> Option<Violation> {
        let support = infer_live_in(prog);
        let flags: Vec<bool> = support.iter().map(|&r| live(r)).collect();
        let key: VerdictKey =
            (prog.primitives().to_vec(), (shape.data_rows, shape.dcc_rows), flags);
        if let Some(v) = self.verdicts.lock().expect("analysis cache lock").get(&key) {
            return v.clone();
        }
        // Analyze outside the lock; two threads racing on the same key do
        // redundant (but identical) work, never a wrong answer. Feeding
        // only the live support rows as live-in is verdict-equivalent to
        // the engine's full live set (see the key-soundness note above).
        let live_in: Vec<PhysRow> =
            support.iter().zip(&key.2).filter(|&(_, &f)| f).map(|(&r, _)| r).collect();
        let verdict = analyze(prog, shape, &live_in).to_violations().into_iter().next();
        self.verdicts.lock().expect("analysis cache lock").insert(key, verdict.clone());
        verdict
    }
}

// ---------------------------------------------------------------------------
// The abstract interpreter
// ---------------------------------------------------------------------------

/// Analyzes `prog` against `shape` with `live_in` naming the physical rows
/// assumed to hold data beforehand. Never fails: legality findings come
/// back as [`Diagnostic`]s, and value tracking degrades gracefully past
/// [`MAX_VARS`] live-in variables.
pub fn analyze(prog: &Program, shape: SubarrayShape, live_in: &[PhysRow]) -> AnalysisReport {
    let mut vars: Vec<PhysRow> = Vec::new();
    for &r in live_in {
        if !vars.contains(&r) {
            vars.push(r);
        }
    }
    if vars.len() > MAX_VARS {
        // Restrict variables to the rows the program actually reads live-in;
        // the rest stay opaque (defined, never inspected).
        let support = infer_live_in(prog);
        vars.retain(|r| support.contains(r));
    }
    let tracked = vars.len() <= MAX_VARS;
    if !tracked {
        vars.clear();
    }
    analyze_with_vars(prog, shape, live_in, vars, tracked)
}

fn analyze_with_vars(
    prog: &Program,
    shape: SubarrayShape,
    live_in: &[PhysRow],
    vars: Vec<PhysRow>,
    tracked: bool,
) -> AnalysisReport {
    let mut distinct_live_in: Vec<PhysRow> = Vec::new();
    for &r in live_in {
        if !distinct_live_in.contains(&r) {
            distinct_live_in.push(r);
        }
    }
    let mut az = Analyzer {
        shape,
        tracked,
        rows: BTreeMap::new(),
        regulation: None,
        pending_store: BTreeMap::new(),
        diagnostics: Vec::new(),
    };
    for &r in &distinct_live_in {
        let val = match vars.iter().position(|&v| v == r) {
            Some(j) if tracked => AbstractVal::Expr(TruthTable::var(vars.len(), j)),
            _ => AbstractVal::Opaque,
        };
        az.rows.insert(r, val);
    }
    for (at, p) in prog.primitives().iter().enumerate() {
        az.step(at, p);
    }
    az.finish(prog, &distinct_live_in, vars)
}

struct Analyzer {
    shape: SubarrayShape,
    tracked: bool,
    rows: BTreeMap<PhysRow, AbstractVal>,
    regulation: Option<PendingRegulation>,
    /// Copy-destination writes not yet read (dead-store detection).
    pending_store: BTreeMap<PhysRow, usize>,
    diagnostics: Vec<Diagnostic>,
}

/// How a restore (re)defines a row.
enum WriteKind {
    /// The same value flows back into the row just read (AP/APP restore
    /// phase); a destroyed row is *not* revived — there is no charge left.
    Refresh,
    /// A copy destination: the wordline was raised over a full-rail bitline,
    /// so the row is (re)defined regardless of its prior state.
    Store,
}

impl Analyzer {
    fn diag(&mut self, at: usize, severity: Severity, kind: DiagnosticKind) {
        self.diagnostics.push(Diagnostic { at, severity, kind });
    }

    /// Activation: read `row` through its port, apply the pending
    /// regulation, and return the bitline value (None = untracked).
    fn activate(&mut self, at: usize, row: RowRef) -> Option<TruthTable> {
        let phys: PhysRow = row.into();
        self.pending_store.remove(&phys);
        let state = self.rows.get(&phys).cloned();
        let stored = match state {
            Some(AbstractVal::Expr(t)) => Some(t),
            Some(AbstractVal::Opaque) => None,
            Some(AbstractVal::Destroyed { at: destroyed_at }) => {
                self.diag(
                    at,
                    Severity::Error,
                    DiagnosticKind::ReadOfDestroyedRow { row, destroyed_at },
                );
                None
            }
            Some(AbstractVal::Undefined) | None => {
                self.diag(at, Severity::Error, DiagnosticKind::ReadOfUndefinedRow { row });
                // Mirror `validate`: an undefined read through a restoring
                // primitive defines the row afterwards (no re-report); the
                // value itself stays unknown.
                self.rows.insert(phys, AbstractVal::Opaque);
                None
            }
        };
        // The bar port senses the complement of the cell.
        let stored = match (stored, row) {
            (Some(t), RowRef::DccBar(_)) => Some(t.not()),
            (s, _) => s,
        };
        // Apply (and observe) the pending regulation; it is consumed at the
        // end of the step.
        match (&self.regulation, stored) {
            (None, s) => s,
            (Some(reg), Some(stored)) => {
                let keep = reg.keep.as_ref()?;
                Some(match reg.mode {
                    // Overwriting columns take the surviving full-rail value
                    // (Vdd for OR, Gnd for AND): v = (keep ∧ surviving) ∨
                    // (¬keep ∧ stored).
                    RegulateMode::Or => keep.or(&stored),
                    RegulateMode::And => keep.not().and(&stored),
                })
            }
            (Some(_), None) => None,
        }
    }

    /// Restore phase: the bitline value flows back into `row` through its
    /// port (`Refresh`), or a copy destination latches it (`Store`).
    fn write(&mut self, at: usize, row: RowRef, value: Option<TruthTable>, kind: WriteKind) {
        let phys: PhysRow = row.into();
        if !in_range(self.shape, row) {
            return; // already diagnosed; keep state maps in-shape
        }
        let stored = match (value, row) {
            (Some(t), RowRef::DccBar(_)) => AbstractVal::Expr(t.not()),
            (Some(t), _) => AbstractVal::Expr(t),
            (None, _) => AbstractVal::Opaque,
        };
        match kind {
            WriteKind::Refresh => {
                if !self.rows.get(&phys).is_some_and(AbstractVal::is_destroyed) {
                    self.rows.insert(phys, stored);
                }
            }
            WriteKind::Store => {
                if let Some(&prev_at) = self.pending_store.get(&phys) {
                    self.diag(
                        prev_at,
                        Severity::Warning,
                        DiagnosticKind::DeadStore { row: phys, overwritten_at: at },
                    );
                }
                self.pending_store.insert(phys, at);
                self.rows.insert(phys, stored);
            }
        }
    }

    fn destroy(&mut self, at: usize, row: RowRef) {
        let phys: PhysRow = row.into();
        if in_range(self.shape, row) {
            self.rows.insert(phys, AbstractVal::Destroyed { at });
        }
    }

    fn set_regulation(&mut self, at: usize, mode: RegulateMode, bitline: Option<TruthTable>) {
        let keep = match (bitline, mode) {
            (Some(v), RegulateMode::Or) => Some(v),
            (Some(v), RegulateMode::And) => Some(v.not()),
            (None, _) => None,
        };
        self.regulation = Some(PendingRegulation { mode, keep, at });
    }

    fn step(&mut self, at: usize, p: &Primitive) {
        for row in p.rows() {
            if !in_range(self.shape, row) {
                self.diag(at, Severity::Error, DiagnosticKind::RowOutOfRange { row });
            }
        }
        if p.requires_dual_decoder() {
            let rows = p.rows();
            if rows.len() == 2 && rows[0].is_reserved() == rows[1].is_reserved() {
                self.diag(
                    at,
                    Severity::Error,
                    DiagnosticKind::SameDecoderOverlap { a: rows[0], b: rows[1] },
                );
            }
        }
        match *p {
            Primitive::Ap { row } => {
                let v = self.activate(at, row);
                self.write(at, row, v, WriteKind::Refresh);
            }
            Primitive::Aap { src, dst } | Primitive::OAap { src, dst } => {
                let v = self.activate(at, src);
                self.write(at, src, v.clone(), WriteKind::Refresh);
                self.write(at, dst, v, WriteKind::Store);
            }
            Primitive::App { row, mode } | Primitive::OApp { row, mode } => {
                let v = self.activate(at, row);
                self.write(at, row, v.clone(), WriteKind::Refresh);
                self.set_regulation(at, mode, v);
            }
            Primitive::TApp { row, mode } | Primitive::OtApp { row, mode } => {
                let v = self.activate(at, row);
                self.destroy(at, row);
                self.set_regulation(at, mode, v);
            }
            Primitive::OAppCopy { src, dst, mode } => {
                let v = self.activate(at, src);
                self.write(at, src, v.clone(), WriteKind::Refresh);
                self.write(at, dst, v.clone(), WriteKind::Store);
                self.set_regulation(at, mode, v);
            }
        }
        // Every activation consumes a pending regulation; only APP-class
        // primitives leave a new one.
        if p.regulation().is_none() {
            self.regulation = None;
        }
    }

    fn finish(mut self, prog: &Program, live_in: &[PhysRow], vars: Vec<PhysRow>) -> AnalysisReport {
        if let Some(at) = self.regulation.as_ref().map(|r| r.at) {
            self.diag(at, Severity::Error, DiagnosticKind::DanglingRegulation);
        }
        let clobbered: Vec<(PhysRow, usize)> = live_in
            .iter()
            .filter_map(|&r| match self.rows.get(&r) {
                Some(AbstractVal::Destroyed { at }) => Some((r, *at)),
                _ => None,
            })
            .collect();
        for (row, at) in clobbered {
            self.diag(at, Severity::Warning, DiagnosticKind::LiveInDestroyed { row });
        }
        self.note_trimmable_restores(prog, live_in);
        AnalysisReport {
            diagnostics: self.diagnostics,
            variables: vars,
            tracked: self.tracked,
            final_rows: self.rows,
            final_regulation: self.regulation.clone(),
        }
    }

    /// Flags APP/oAPP restores that the §4.2 trim pass could truncate: the
    /// restored value is overwritten before any read, or (for rows that are
    /// not live-in, whose final content the caller cannot observe) never
    /// read again at all.
    fn note_trimmable_restores(&mut self, prog: &Program, live_in: &[PhysRow]) {
        let prims = prog.primitives();
        for (at, p) in prims.iter().enumerate() {
            let row = match *p {
                Primitive::App { row, .. } | Primitive::OApp { row, .. } => row,
                _ => continue,
            };
            let phys: PhysRow = row.into();
            let mut read_again = false;
            let mut overwritten = false;
            for later in &prims[at + 1..] {
                if reads_of(later).iter().any(|r| PhysRow::from(*r) == phys) {
                    read_again = true;
                    break;
                }
                if dst_writes_of(later).iter().any(|r| PhysRow::from(*r) == phys) {
                    overwritten = true;
                    break;
                }
            }
            if overwritten || (!read_again && !live_in.contains(&phys)) {
                self.diag(at, Severity::Note, DiagnosticKind::TrimmableRestore { row });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Translation validation
// ---------------------------------------------------------------------------

/// A concrete input assignment witnessing an inequivalence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Live-in row values of the witnessing column.
    pub assignment: Vec<(PhysRow, bool)>,
    /// Value the input program computes there.
    pub input_value: bool,
    /// Value the transformed program computes there.
    pub output_value: bool,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("with ")?;
        for (i, (row, v)) in self.assignment.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{row}={}", u8::from(*v))?;
        }
        write!(
            f,
            ": input computes {}, output computes {}",
            u8::from(self.input_value),
            u8::from(self.output_value)
        )
    }
}

/// Why [`verify_transform`] rejected a transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceError {
    /// The input program is itself statically invalid; the equivalence
    /// obligation is vacuous and nothing was proved.
    InputInvalid {
        /// First error-severity finding on the input.
        diagnostic: Diagnostic,
    },
    /// The transformed program is statically invalid — a definite
    /// miscompile (e.g. a trim destroyed a row the program still reads).
    OutputInvalid {
        /// First error-severity finding on the output.
        diagnostic: Diagnostic,
    },
    /// More live-in rows than [`MAX_VARS`]; exhaustive equivalence needs
    /// `2^k` assignments and was not attempted.
    TooManyLiveIns {
        /// Live-in variable count.
        count: usize,
    },
    /// A row's final abstract state changed class (defined / destroyed /
    /// undefined).
    StateMismatch {
        /// The disagreeing row.
        row: PhysRow,
        /// Input-side state class.
        input: &'static str,
        /// Output-side state class.
        output: &'static str,
    },
    /// A row's final value differs for at least one input assignment.
    ValueMismatch {
        /// The disagreeing row.
        row: PhysRow,
        /// A concrete witnessing assignment.
        counterexample: Counterexample,
    },
    /// The pending end-of-program regulation transfers differ.
    RegulationMismatch {
        /// Input-side description.
        input: String,
        /// Output-side description.
        output: String,
    },
}

impl fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EquivalenceError::InputInvalid { diagnostic } => {
                write!(f, "input program is statically invalid: {diagnostic}")
            }
            EquivalenceError::OutputInvalid { diagnostic } => {
                write!(f, "transformed program is statically invalid: {diagnostic}")
            }
            EquivalenceError::TooManyLiveIns { count } => {
                write!(f, "{count} live-in rows exceed the {MAX_VARS}-variable exhaustive budget")
            }
            EquivalenceError::StateMismatch { row, input, output } => {
                write!(f, "row {row} ends {input} in the input but {output} in the output")
            }
            EquivalenceError::ValueMismatch { row, counterexample } => {
                write!(f, "output disagrees on row {row}: {counterexample}")
            }
            EquivalenceError::RegulationMismatch { input, output } => {
                write!(f, "pending regulation differs: input {input}, output {output}")
            }
        }
    }
}

impl Error for EquivalenceError {}

fn describe_regulation(reg: &Option<PendingRegulation>) -> String {
    match reg {
        None => "leaves none".to_string(),
        Some(r) => format!("leaves a {:?}-mode regulation from #{}", r.mode, r.at),
    }
}

fn assignment_of(vars: &[PhysRow], m: usize) -> Vec<(PhysRow, bool)> {
    vars.iter().enumerate().map(|(j, &r)| (r, (m >> j) & 1 == 1)).collect()
}

/// Proves `output` semantically equivalent to `input` by exhaustive
/// truth-table comparison over the input's live-in rows.
///
/// Both programs are abstractly interpreted with every live-in row as a
/// truth-table variable (operands are per-column booleans, so `2^k`
/// assignments cover all inputs exactly). The final states must agree on
/// `observable` rows — or, when `None`, on every row either program touches
/// plus the live-ins — and the pending end-of-program regulation transfer
/// must match.
///
/// # Errors
///
/// See [`EquivalenceError`]; `ValueMismatch` carries a concrete
/// counterexample assignment.
pub fn verify_transform(
    input: &Program,
    output: &Program,
    observable: Option<&[PhysRow]>,
) -> Result<(), EquivalenceError> {
    let live_in = infer_live_in(input);
    if live_in.len() > MAX_VARS {
        return Err(EquivalenceError::TooManyLiveIns { count: live_in.len() });
    }
    let shape_in = infer_shape(input);
    let shape_out = infer_shape(output);
    let shape = SubarrayShape {
        data_rows: shape_in.data_rows.max(shape_out.data_rows),
        dcc_rows: shape_in.dcc_rows.max(shape_out.dcc_rows),
    };
    let ri = analyze_with_vars(input, shape, &live_in, live_in.clone(), true);
    if let Some(d) = ri.diagnostics.iter().find(|d| d.severity == Severity::Error) {
        return Err(EquivalenceError::InputInvalid { diagnostic: d.clone() });
    }
    let ro = analyze_with_vars(output, shape, &live_in, live_in.clone(), true);
    if let Some(d) = ro.diagnostics.iter().find(|d| d.severity == Severity::Error) {
        return Err(EquivalenceError::OutputInvalid { diagnostic: d.clone() });
    }

    let rows: Vec<PhysRow> = match observable {
        Some(rows) => rows.to_vec(),
        None => {
            let mut rows: Vec<PhysRow> = ri.final_rows.keys().copied().collect();
            for r in ro.final_rows.keys() {
                if !rows.contains(r) {
                    rows.push(*r);
                }
            }
            rows
        }
    };
    for row in rows {
        let a = ri.final_row(row);
        let b = ro.final_row(row);
        match (&a, &b) {
            (AbstractVal::Expr(ta), AbstractVal::Expr(tb)) => {
                if let Some(m) = ta.first_difference(tb) {
                    return Err(EquivalenceError::ValueMismatch {
                        row,
                        counterexample: Counterexample {
                            assignment: assignment_of(&live_in, m),
                            input_value: ta.eval(m),
                            output_value: tb.eval(m),
                        },
                    });
                }
            }
            (AbstractVal::Destroyed { .. }, AbstractVal::Destroyed { .. })
            | (AbstractVal::Undefined, AbstractVal::Undefined)
            | (AbstractVal::Opaque, AbstractVal::Opaque) => {}
            _ => {
                return Err(EquivalenceError::StateMismatch {
                    row,
                    input: a.kind_name(),
                    output: b.kind_name(),
                });
            }
        }
    }

    let ca = ri.final_regulation.as_ref().and_then(PendingRegulation::canonical);
    let cb = ro.final_regulation.as_ref().and_then(PendingRegulation::canonical);
    let identity = |c: &Option<(TruthTable, TruthTable)>| match c {
        None => true,
        Some((or, and)) => {
            let vars = or.vars();
            *or == TruthTable::constant(vars, false) && *and == TruthTable::constant(vars, true)
        }
    };
    if ca != cb && !(identity(&ca) && identity(&cb)) {
        return Err(EquivalenceError::RegulationMismatch {
            input: describe_regulation(&ri.final_regulation),
            output: describe_regulation(&ro.final_regulation),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, xor_sequence, CompileMode, LogicOp, Operands};

    const SHAPE: SubarrayShape = SubarrayShape { data_rows: 16, dcc_rows: 2 };

    fn live_in() -> Vec<PhysRow> {
        vec![PhysRow::Data(0), PhysRow::Data(1), PhysRow::Data(2), PhysRow::Data(3)]
    }

    fn errors(report: &AnalysisReport) -> Vec<&Diagnostic> {
        report.diagnostics().iter().filter(|d| d.severity == Severity::Error).collect()
    }

    #[test]
    fn truth_table_ops_are_exact() {
        for vars in [0usize, 1, 3, 7] {
            let t = TruthTable::constant(vars, true);
            let f = TruthTable::constant(vars, false);
            assert_eq!(t.not(), f);
            for j in 0..vars {
                let v = TruthTable::var(vars, j);
                assert_eq!(v.and(&t), v);
                assert_eq!(v.or(&f), v);
                assert_eq!(v.not().not(), v);
                for m in 0..(1usize << vars) {
                    assert_eq!(v.eval(m), (m >> j) & 1 == 1);
                }
            }
        }
        // De Morgan over two variables, checked pointwise.
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.first_difference(&b), Some(1));
    }

    /// The analyzer's final expressions match software boolean logic for
    /// every compiled operation — def-use soundness *and* value soundness.
    #[test]
    fn compiled_programs_yield_exact_truth_tables() {
        let rows = Operands::standard();
        let inputs = vec![PhysRow::Data(0), PhysRow::Data(1)];
        for op in LogicOp::ALL {
            for mode in [CompileMode::LowLatency, CompileMode::HighThroughput] {
                let prog = compile(op, mode, rows, 2).unwrap();
                let report = analyze(&prog, SHAPE, &inputs);
                assert!(report.is_accepted(), "{op} {mode:?}: {:?}", errors(&report));
                let dst = report.row_value(PhysRow::Data(2)).expect("dst defined");
                for m in 0..4usize {
                    let (a, b) = (m & 1 == 1, m >> 1 & 1 == 1);
                    assert_eq!(dst.eval(m), op.eval(a, b), "{op} {mode:?} at a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn diagnostic_texts_match_the_violation_set() {
        let cases: Vec<(Program, Vec<PhysRow>, &str)> = vec![
            (
                Program::new("oor", vec![Primitive::Ap { row: RowRef::Data(99) }]),
                vec![PhysRow::Data(99)],
                "primitive #0: row r99 out of range",
            ),
            (
                Program::new(
                    "overlap",
                    vec![Primitive::OAap { src: RowRef::Data(0), dst: RowRef::Data(1) }],
                ),
                live_in(),
                "primitive #0: overlapped activation of r0 and r1 in one decoder domain",
            ),
            (
                Program::new(
                    "destroyed",
                    vec![
                        Primitive::TApp { row: RowRef::Data(0), mode: RegulateMode::Or },
                        Primitive::Ap { row: RowRef::Data(1) },
                        Primitive::Ap { row: RowRef::Data(0) },
                    ],
                ),
                live_in(),
                "primitive #2: reads r0, destroyed by the trimmed restore at #0",
            ),
            (
                Program::new("undefined", vec![Primitive::Ap { row: RowRef::Data(7) }]),
                live_in(),
                "primitive #0: reads r7, which is neither live-in nor written",
            ),
            (
                Program::new(
                    "dangling",
                    vec![Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or }],
                ),
                live_in(),
                "program ends with the regulation from primitive #0 still pending",
            ),
        ];
        for (prog, live, text) in cases {
            let report = analyze(&prog, SHAPE, &live);
            let errs = errors(&report);
            assert!(!errs.is_empty(), "{}: expected an error", prog.name());
            assert_eq!(errs[0].to_string(), text, "{}", prog.name());
            assert!(!report.is_accepted());
        }
    }

    #[test]
    fn dead_store_warning() {
        let prog = Program::new(
            "dead-store",
            vec![
                Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(2) },
                Primitive::Aap { src: RowRef::Data(1), dst: RowRef::Data(2) },
                Primitive::Ap { row: RowRef::Data(2) },
            ],
        );
        let report = analyze(&prog, SHAPE, &live_in());
        assert!(report.is_accepted());
        let warn = report
            .diagnostics()
            .iter()
            .find(|d| d.severity == Severity::Warning)
            .expect("a dead-store warning");
        assert_eq!(
            warn.to_string(),
            "primitive #0: stores r2, overwritten at #1 without an intervening read (dead store)"
        );
        assert_eq!(warn.kind.slug(), "dead-store");
    }

    #[test]
    fn live_in_destroyed_warning() {
        let prog = Program::new(
            "clobber",
            vec![
                Primitive::TApp { row: RowRef::Data(0), mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
            ],
        );
        let report = analyze(&prog, SHAPE, &live_in());
        assert!(report.is_accepted());
        let warn = report
            .diagnostics()
            .iter()
            .find(|d| matches!(d.kind, DiagnosticKind::LiveInDestroyed { .. }))
            .expect("a clobbered-operand warning");
        assert_eq!(
            warn.to_string(),
            "live-in row r0 is destroyed at #0 and never rewritten (clobbered operand)"
        );
    }

    /// The lint rediscovers Fig. 8's sequence 2 → 3 trim: seq2's
    /// `APP(!R0)·or` restores a value nothing reads again.
    #[test]
    fn trimmable_restore_note_rediscovers_fig8_trim() {
        let prog = xor_sequence(2, Operands::standard(), 1).unwrap();
        let report = analyze(&prog, SHAPE, &[PhysRow::Data(0), PhysRow::Data(1)]);
        assert!(report.is_accepted());
        let notes: Vec<_> = report
            .diagnostics()
            .iter()
            .filter(|d| matches!(d.kind, DiagnosticKind::TrimmableRestore { .. }))
            .collect();
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert_eq!(
            notes[0].to_string(),
            "primitive #5: restore of !R0 is dead; tAPP/otAPP would save the restore"
        );
        // …and seq3 (the trimmed form) carries no such note.
        let seq3 = xor_sequence(3, Operands::standard(), 1).unwrap();
        let report = analyze(&seq3, SHAPE, &[PhysRow::Data(0), PhysRow::Data(1)]);
        assert!(report
            .diagnostics()
            .iter()
            .all(|d| !matches!(d.kind, DiagnosticKind::TrimmableRestore { .. })));
    }

    #[test]
    fn value_tracking_degrades_gracefully_past_the_var_budget() {
        let prog =
            compile(LogicOp::And, CompileMode::HighThroughput, Operands::standard(), 1).unwrap();
        // 600 live-in rows, but the program reads only r0/r1: still tracked.
        let many: Vec<PhysRow> = (0..600).map(PhysRow::Data).collect();
        let report = analyze(&prog, SubarrayShape { data_rows: 600, dcc_rows: 2 }, &many);
        assert!(report.is_accepted());
        assert!(report.tracked());
        assert_eq!(report.variables().len(), 2);
        assert!(report.row_value(PhysRow::Data(2)).is_some());
        // A program reading 17 distinct live-in rows drops value tracking
        // but keeps the legality verdict.
        let wide = Program::new(
            "wide",
            (0..17).map(|i| Primitive::Ap { row: RowRef::Data(i) }).collect::<Vec<_>>(),
        );
        let wide_live: Vec<PhysRow> = (0..17).map(PhysRow::Data).collect();
        let report = analyze(&wide, SubarrayShape { data_rows: 32, dcc_rows: 2 }, &wide_live);
        assert!(report.is_accepted());
        assert!(!report.tracked());
        assert!(report.row_value(PhysRow::Data(0)).is_none());
    }

    #[test]
    fn verify_transform_accepts_the_fig8_ladder() {
        let rows = Operands::standard();
        // seq2 → seq3 is exactly a trim of primitive #5; operands preserved.
        let seq2 = xor_sequence(2, rows, 1).unwrap();
        let seq3 = xor_sequence(3, rows, 1).unwrap();
        let preserve = [PhysRow::Data(0), PhysRow::Data(1), PhysRow::Data(2)];
        verify_transform(&seq2, &seq3, Some(&preserve)).unwrap();
        // seq4 → seq5 is the overlap substitution; all rows observable.
        let seq4 = xor_sequence(4, rows, 1).unwrap();
        let seq5 = xor_sequence(5, rows, 1).unwrap();
        verify_transform(&seq4, &seq5, None).unwrap();
    }

    #[test]
    fn verify_transform_rejects_a_dropped_restore() {
        let input = Program::new(
            "in",
            vec![
                Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
            ],
        );
        let mutated = Program::new(
            "out",
            vec![
                Primitive::TApp { row: RowRef::Data(0), mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
            ],
        );
        let err = verify_transform(&input, &mutated, None).unwrap_err();
        assert_eq!(
            err,
            EquivalenceError::StateMismatch {
                row: PhysRow::Data(0),
                input: "defined",
                output: "destroyed"
            },
            "{err}"
        );
    }

    #[test]
    fn verify_transform_rejects_swapped_operands_with_a_counterexample() {
        // dst := a & !b (first half of XOR seq) vs the operand-swapped
        // dst := b & !a — differ at a=1, b=0.
        let half = |x: RowRef, y: RowRef| {
            Program::new(
                "half",
                vec![
                    Primitive::OAap { src: y, dst: RowRef::DccTrue(0) },
                    Primitive::App { row: x, mode: RegulateMode::And },
                    Primitive::OAap { src: RowRef::DccBar(0), dst: RowRef::Data(2) },
                ],
            )
        };
        let input = half(RowRef::Data(0), RowRef::Data(1));
        let mutated = half(RowRef::Data(1), RowRef::Data(0));
        match verify_transform(&input, &mutated, None).unwrap_err() {
            EquivalenceError::ValueMismatch { row, counterexample } => {
                assert_eq!(row, PhysRow::Data(2));
                let rendered = counterexample.to_string();
                assert!(rendered.contains("input computes"), "{rendered}");
                // The witness must actually distinguish the two programs.
                assert_ne!(counterexample.input_value, counterexample.output_value);
            }
            other => panic!("expected a value mismatch, got {other}"),
        }
    }

    #[test]
    fn verify_transform_rejects_an_illegally_merged_ap() {
        // AP(R0-true) between two regulations is NOT removable: it applies
        // the pending OR into the cell before the bar port is read.
        let input = Program::new(
            "in",
            vec![
                Primitive::OAap { src: RowRef::Data(1), dst: RowRef::DccTrue(0) },
                Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::DccTrue(0) },
                Primitive::App { row: RowRef::DccBar(0), mode: RegulateMode::And },
                Primitive::Ap { row: RowRef::Data(2) },
            ],
        );
        let mutated = Program::new(
            "out",
            vec![
                Primitive::OAap { src: RowRef::Data(1), dst: RowRef::DccTrue(0) },
                Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or },
                Primitive::App { row: RowRef::DccBar(0), mode: RegulateMode::And },
                Primitive::Ap { row: RowRef::Data(2) },
            ],
        );
        let err = verify_transform(&input, &mutated, None).unwrap_err();
        assert!(
            matches!(err, EquivalenceError::ValueMismatch { .. }),
            "expected a value mismatch, got {err}"
        );
    }

    #[test]
    fn verify_transform_flags_invalid_programs() {
        let bad = Program::new("bad", vec![Primitive::Ap { row: RowRef::Data(0) }]);
        let bad2 = Program::new(
            "bad2",
            vec![
                Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(1) },
                Primitive::Ap { row: RowRef::Data(9) },
            ],
        );
        // `bad` reads r0 live-in, fine; `bad2` additionally reads r9 which
        // is NOT live-in of `bad` — output invalid.
        assert!(matches!(
            verify_transform(&bad, &bad2, None),
            Err(EquivalenceError::OutputInvalid { .. })
        ));
        // A program whose own input dangles a regulation is vacuous.
        let dangling = Program::new(
            "dangling",
            vec![Primitive::App { row: RowRef::Data(0), mode: RegulateMode::Or }],
        );
        assert!(matches!(
            verify_transform(&dangling, &dangling, None),
            Err(EquivalenceError::InputInvalid { .. })
        ));
    }

    #[test]
    fn infer_helpers() {
        let prog = Program::new(
            "p",
            vec![
                Primitive::OAap { src: RowRef::Data(3), dst: RowRef::DccTrue(1) },
                Primitive::Ap { row: RowRef::DccBar(1) },
                Primitive::Ap { row: RowRef::Data(3) },
            ],
        );
        assert_eq!(infer_live_in(&prog), vec![PhysRow::Data(3)]);
        assert_eq!(infer_shape(&prog), SubarrayShape { data_rows: 4, dcc_rows: 2 });
    }

    #[test]
    fn report_accessors() {
        let prog = Program::new(
            "copy",
            vec![Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(2) }],
        );
        let report = analyze(&prog, SHAPE, &[PhysRow::Data(0)]);
        assert!(report.is_accepted());
        assert!(!report.has_pending_regulation());
        assert_eq!(report.variables(), &[PhysRow::Data(0)]);
        assert_eq!(report.final_row(PhysRow::Data(2)), report.final_row(PhysRow::Data(0)));
        assert_eq!(report.final_row(PhysRow::Data(5)), AbstractVal::Undefined);
        assert!(report.to_violations().is_empty());
    }

    /// Pins the cache-key soundness audit: the verdict key includes the
    /// liveness of every support row, so the same (program, shape) probed
    /// under different live-in sets yields *different* verdicts from
    /// *separate* cache entries — a key on (program, shape) alone would
    /// serve the first verdict to both.
    #[test]
    fn cache_key_includes_live_in_flags() {
        let cache = AnalysisCache::new();
        let prog = Program::new("read-r0", vec![Primitive::Ap { row: RowRef::Data(0) }]);
        let dead = cache.first_violation(&prog, SHAPE, |_| false);
        assert!(
            matches!(dead, Some(Violation::ReadOfUndefinedRow { row: RowRef::Data(0), .. })),
            "{dead:?}"
        );
        let live = cache.first_violation(&prog, SHAPE, |r| r == PhysRow::Data(0));
        assert_eq!(live, None);
        assert_eq!(cache.len(), 2, "distinct liveness must occupy distinct entries");
        // Repeat probes are cache hits: the verdicts stay split and no new
        // entries appear.
        assert!(cache.first_violation(&prog, SHAPE, |_| false).is_some());
        assert!(cache.first_violation(&prog, SHAPE, |r| r == PhysRow::Data(0)).is_none());
        assert_eq!(cache.len(), 2);
        // Liveness of rows outside the support set cannot split the key:
        // r1 is never read before written, so its liveness is irrelevant.
        let copy = Program::new(
            "copy",
            vec![Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(1) }],
        );
        assert_eq!(copy.primitives().len(), 1);
        let before = cache.len();
        assert!(cache.first_violation(&copy, SHAPE, |r| r == PhysRow::Data(0)).is_none());
        assert!(cache
            .first_violation(&copy, SHAPE, |r| { r == PhysRow::Data(0) || r == PhysRow::Data(1) })
            .is_none());
        assert_eq!(cache.len(), before + 1, "non-support liveness must not split the key");
    }
}
