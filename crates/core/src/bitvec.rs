//! A bulk bit vector — the content of one DRAM row.
//!
//! Rows in the functional engine are `BitVec`s; bulk bitwise operations on
//! entire rows are the unit of work the paper accelerates. Every kernel in
//! this module works on whole 64-bit words: the allocating operations
//! (`and`, `or`, …) build their result in one pass, and the `_assign`
//! variants mutate in place so hot loops (the subarray engine, bank
//! striping) run with zero per-call heap traffic.

use std::fmt;

/// Bits per backing word.
pub const WORD_BITS: usize = 64;

/// Copies `len` bits from `src` starting at bit `src_start` into `dst`
/// starting at bit `dst_start`, treating both slices as little-endian bit
/// arrays. Word-aligned runs degrade to `copy_from_slice`; unaligned runs
/// use a shift-merge loop that writes each destination word exactly once.
///
/// Bits of `dst` outside the target range are preserved.
///
/// # Panics
///
/// Panics if either range runs past the end of its slice.
pub fn copy_bits(dst: &mut [u64], dst_start: usize, src: &[u64], src_start: usize, len: usize) {
    assert!(
        src_start + len <= src.len() * WORD_BITS,
        "source range {src_start}..{} exceeds {} bits",
        src_start + len,
        src.len() * WORD_BITS
    );
    assert!(
        dst_start + len <= dst.len() * WORD_BITS,
        "destination range {dst_start}..{} exceeds {} bits",
        dst_start + len,
        dst.len() * WORD_BITS
    );
    if len == 0 {
        return;
    }
    if src_start.is_multiple_of(WORD_BITS) && dst_start.is_multiple_of(WORD_BITS) {
        // Fast path: whole-word memcpy plus one masked tail word.
        let (sw, dw) = (src_start / WORD_BITS, dst_start / WORD_BITS);
        let full = len / WORD_BITS;
        dst[dw..dw + full].copy_from_slice(&src[sw..sw + full]);
        let tail = len % WORD_BITS;
        if tail != 0 {
            let mask = (1u64 << tail) - 1;
            dst[dw + full] = (dst[dw + full] & !mask) | (src[sw + full] & mask);
        }
        return;
    }
    // General path: gather up to one destination word's worth of source
    // bits per step (they span at most two source words).
    let mut copied = 0;
    while copied < len {
        let d = dst_start + copied;
        let (dw, db) = (d / WORD_BITS, d % WORD_BITS);
        let take = (WORD_BITS - db).min(len - copied);
        let bits = read_bits(src, src_start + copied, take);
        let mask = if take == WORD_BITS { u64::MAX } else { ((1u64 << take) - 1) << db };
        dst[dw] = (dst[dw] & !mask) | ((bits << db) & mask);
        copied += take;
    }
}

/// Reads `n <= 64` bits starting at bit `start`, right-aligned into a word.
/// Bits above `n` are unspecified (callers mask).
fn read_bits(src: &[u64], start: usize, n: usize) -> u64 {
    let (w, b) = (start / WORD_BITS, start % WORD_BITS);
    let lo = src[w] >> b;
    if b == 0 || n <= WORD_BITS - b {
        lo
    } else {
        lo | (src[w + 1] << (WORD_BITS - b))
    }
}

/// A fixed-length vector of bits stored in 64-bit words.
///
/// ```
/// use elp2im_core::bitvec::BitVec;
/// let a = BitVec::from_bools(&[true, false, true]);
/// let b = BitVec::from_bools(&[true, true, false]);
/// assert_eq!(a.and(&b).to_bools(), vec![true, false, false]);
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec { words: vec![0; len.div_ceil(WORD_BITS)], len }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec { words: vec![u64::MAX; len.div_ceil(WORD_BITS)], len };
        v.mask_tail();
        v
    }

    /// Creates a vector filled with `bit`.
    pub fn splat(bit: bool, len: usize) -> Self {
        if bit {
            BitVec::ones(len)
        } else {
            BitVec::zeros(len)
        }
    }

    /// Builds a vector from a slice of booleans, packing one word at a
    /// time.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut words = Vec::with_capacity(bits.len().div_ceil(WORD_BITS));
        for chunk in bits.chunks(WORD_BITS) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= u64::from(b) << i;
            }
            words.push(w);
        }
        BitVec { words, len: bits.len() }
    }

    /// Builds a vector of `len` bits from little-endian 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is too short for `len` bits.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(
            words.len() * WORD_BITS >= len,
            "need {} words for {len} bits, got {}",
            len.div_ceil(WORD_BITS),
            words.len()
        );
        let mut v = BitVec { words: words[..len.div_ceil(WORD_BITS)].to_vec(), len };
        v.mask_tail();
        v
    }

    /// Clears the backing bits beyond `len` in the last word, restoring the
    /// invariant every kernel relies on (tail bits are always zero).
    pub fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing little-endian words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words — the escape hatch for bulk
    /// word-level writers. Callers that may set bits beyond `len` in the
    /// last word must call [`BitVec::mask_tail`] afterwards.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Gets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        let (w, o) = (i / WORD_BITS, i % WORD_BITS);
        if bit {
            self.words[w] |= 1 << o;
        } else {
            self.words[w] &= !(1 << o);
        }
    }

    /// Converts to a vector of booleans, unpacking one word at a time.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.len);
        'words: for &w in &self.words {
            for i in 0..WORD_BITS {
                if out.len() == self.len {
                    break 'words;
                }
                out.push((w >> i) & 1 == 1);
            }
        }
        out
    }

    /// Copies `len` bits of `src` (starting at `src_start`) into `self`
    /// starting at `dst_start`; other bits are preserved.
    ///
    /// # Panics
    ///
    /// Panics if either bit range is out of bounds.
    pub fn copy_bits_from(&mut self, src: &BitVec, src_start: usize, dst_start: usize, len: usize) {
        assert!(src_start + len <= src.len, "source bit range out of bounds");
        assert!(dst_start + len <= self.len, "destination bit range out of bounds");
        copy_bits(&mut self.words, dst_start, &src.words, src_start, len);
    }

    fn zip(&self, other: &BitVec, f: impl Fn(u64, u64) -> u64) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch: {} vs {}", self.len, other.len);
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| f(a, b)).collect();
        let mut v = BitVec { words, len: self.len };
        v.mask_tail();
        v
    }

    fn zip_assign(&mut self, other: &BitVec, f: impl Fn(u64, u64) -> u64) {
        assert_eq!(self.len, other.len, "length mismatch: {} vs {}", self.len, other.len);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a = f(*a, b);
        }
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (as do the other binary operations).
    pub fn and(&self, other: &BitVec) -> BitVec {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &BitVec) -> BitVec {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        self.zip(other, |a, b| a ^ b)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> BitVec {
        let words = self.words.iter().map(|&a| !a).collect();
        let mut v = BitVec { words, len: self.len };
        v.mask_tail();
        v
    }

    /// In-place bitwise AND: `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (as do the other `_assign` kernels).
    pub fn and_assign(&mut self, other: &BitVec) {
        self.zip_assign(other, |a, b| a & b);
    }

    /// In-place bitwise OR: `self |= other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.zip_assign(other, |a, b| a | b);
    }

    /// In-place bitwise XOR: `self ^= other`.
    pub fn xor_assign(&mut self, other: &BitVec) {
        self.zip_assign(other, |a, b| a ^ b);
    }

    /// In-place bitwise NOT.
    pub fn not_assign(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Overwrites `self` with `other`'s bits without reallocating.
    pub fn copy_from(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch: {} vs {}", self.len, other.len);
        self.words.copy_from_slice(&other.words);
    }

    /// Fills every bit with `bit` without reallocating.
    pub fn fill(&mut self, bit: bool) {
        self.words.fill(if bit { u64::MAX } else { 0 });
        if bit {
            self.mask_tail();
        }
    }

    /// Per-column select: `mask[i] ? ones : self[i]`-style merge used by the
    /// engine's overwrite semantics — returns `(self & !mask) | (value &
    /// mask)`.
    pub fn merge(&self, mask: &BitVec, value: &BitVec) -> BitVec {
        let mut out = self.clone();
        out.merge_assign(mask, value);
        out
    }

    /// In-place merge: `self = (self & !mask) | (value & mask)`.
    pub fn merge_assign(&mut self, mask: &BitVec, value: &BitVec) {
        assert_eq!(self.len, mask.len);
        assert_eq!(self.len, value.len);
        for ((s, &m), &v) in self.words.iter_mut().zip(&mask.words).zip(&value.words) {
            *s = (*s & !m) | (v & m);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns true if all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

/// Formats `n` bits of `w` (LSB first) into `f`.
fn write_word_bits(f: &mut fmt::Formatter<'_>, w: u64, n: usize) -> fmt::Result {
    let mut buf = [0u8; WORD_BITS];
    for (i, slot) in buf.iter_mut().take(n).enumerate() {
        *slot = b'0' + ((w >> i) & 1) as u8;
    }
    // The buffer holds only ASCII '0'/'1' bytes.
    f.write_str(std::str::from_utf8(&buf[..n]).expect("ascii digits"))
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let show = self.len.min(WORD_BITS);
        if let Some(&w) = self.words.first() {
            write_word_bits(f, w, show)?;
        }
        if self.len > show {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut remaining = self.len;
        for &w in &self.words {
            let n = remaining.min(WORD_BITS);
            write_word_bits(f, w, n)?;
            remaining -= n;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut words = Vec::new();
        let mut pending = 0u64;
        let mut len = 0usize;
        for b in iter {
            pending |= u64::from(b) << (len % WORD_BITS);
            len += 1;
            if len.is_multiple_of(WORD_BITS) {
                words.push(pending);
                pending = 0;
            }
        }
        if !len.is_multiple_of(WORD_BITS) {
            words.push(pending);
        }
        BitVec { words, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = BitVec::from_bools(&[true, false, true, true]);
        assert_eq!(v.len(), 4);
        assert!(v.get(0) && !v.get(1) && v.get(2) && v.get(3));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn splat_and_masking() {
        let ones = BitVec::ones(70);
        assert_eq!(ones.count_ones(), 70);
        // Tail bits beyond len must be masked off.
        assert_eq!(ones.words()[1] >> 6, 0);
        assert!(BitVec::zeros(70).is_zero());
        assert_eq!(BitVec::splat(true, 3).to_bools(), vec![true; 3]);
    }

    #[test]
    fn logic_ops_match_bool_logic() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b).to_bools(), vec![true, false, false, false]);
        assert_eq!(a.or(&b).to_bools(), vec![true, true, true, false]);
        assert_eq!(a.xor(&b).to_bools(), vec![false, true, true, false]);
        assert_eq!(a.not().to_bools(), vec![false, false, true, true]);
    }

    #[test]
    fn assign_kernels_match_allocating_ops() {
        let a = BitVec::from_bools(&(0..130).map(|i| i % 3 == 0).collect::<Vec<_>>());
        let b = BitVec::from_bools(&(0..130).map(|i| i % 5 == 0).collect::<Vec<_>>());
        let mut x = a.clone();
        x.and_assign(&b);
        assert_eq!(x, a.and(&b));
        let mut x = a.clone();
        x.or_assign(&b);
        assert_eq!(x, a.or(&b));
        let mut x = a.clone();
        x.xor_assign(&b);
        assert_eq!(x, a.xor(&b));
        let mut x = a.clone();
        x.not_assign();
        assert_eq!(x, a.not());
        // Tail invariant survives not_assign on a non-word-multiple length.
        assert_eq!(x.words()[2] >> 2, 0);
        let mut x = a.clone();
        x.copy_from(&b);
        assert_eq!(x, b);
        let mut x = a.clone();
        x.fill(true);
        assert_eq!(x, BitVec::ones(130));
        x.fill(false);
        assert!(x.is_zero());
    }

    #[test]
    fn not_masks_tail() {
        let v = BitVec::zeros(65).not();
        assert_eq!(v.count_ones(), 65);
    }

    #[test]
    fn merge_selects_by_mask() {
        let base = BitVec::from_bools(&[false, false, true, true]);
        let mask = BitVec::from_bools(&[true, false, true, false]);
        let val = BitVec::from_bools(&[true, true, false, false]);
        assert_eq!(base.merge(&mask, &val).to_bools(), vec![true, false, false, true]);
        let mut m = base.clone();
        m.merge_assign(&mask, &val);
        assert_eq!(m, base.merge(&mask, &val));
    }

    #[test]
    fn from_words_roundtrip() {
        let v = BitVec::from_words(&[0b1011], 4);
        assert_eq!(v.to_bools(), vec![true, true, false, true]);
        let w = BitVec::from_words(&[u64::MAX, u64::MAX], 100);
        assert_eq!(w.count_ones(), 100);
    }

    #[test]
    fn words_mut_with_mask_tail() {
        let mut v = BitVec::zeros(68);
        v.words_mut()[1] = u64::MAX;
        v.mask_tail();
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn copy_bits_aligned_and_unaligned() {
        let src: Vec<u64> =
            vec![0xDEAD_BEEF_CAFE_F00D, 0x0123_4567_89AB_CDEF, 0xFFFF_0000_FFFF_0000];
        for &(dst_start, src_start, len) in &[
            (0usize, 0usize, 192usize),
            (0, 64, 128),
            (64, 0, 100),
            (3, 0, 64),
            (0, 5, 121),
            (7, 13, 150),
            (63, 1, 65),
            (1, 63, 64),
            (60, 60, 1),
        ] {
            let mut dst = vec![0xAAAA_AAAA_AAAA_AAAAu64; 4];
            let expect: Vec<bool> = (0..256)
                .map(|i| {
                    let was = (dst[i / 64] >> (i % 64)) & 1 == 1;
                    if i >= dst_start && i < dst_start + len {
                        let s = src_start + (i - dst_start);
                        (src[s / 64] >> (s % 64)) & 1 == 1
                    } else {
                        was
                    }
                })
                .collect();
            copy_bits(&mut dst, dst_start, &src, src_start, len);
            let got: Vec<bool> = (0..256).map(|i| (dst[i / 64] >> (i % 64)) & 1 == 1).collect();
            assert_eq!(got, expect, "dst_start={dst_start} src_start={src_start} len={len}");
        }
    }

    #[test]
    fn copy_bits_from_roundtrip() {
        let src = BitVec::from_bools(&(0..200).map(|i| i % 7 == 0).collect::<Vec<_>>());
        let mut dst = BitVec::ones(300);
        dst.copy_bits_from(&src, 3, 100, 190);
        for i in 0..300 {
            let expect = if (100..290).contains(&i) { src.get(3 + i - 100) } else { true };
            assert_eq!(dst.get(i), expect, "bit {i}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = BitVec::zeros(4).and(&BitVec::zeros(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let _ = BitVec::zeros(4).get(4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_bits_from_rejects_overrun() {
        let src = BitVec::zeros(10);
        BitVec::zeros(10).copy_bits_from(&src, 5, 0, 6);
    }

    #[test]
    fn debug_and_display() {
        let v = BitVec::from_bools(&[true, false, true]);
        assert_eq!(format!("{v}"), "101");
        assert!(format!("{v:?}").contains("101"));
        // Display crosses word boundaries correctly.
        let long: BitVec = (0..70).map(|i| i == 64).collect();
        let s = format!("{long}");
        assert_eq!(s.len(), 70);
        assert_eq!(&s[63..66], "010");
        // Debug elides past one word.
        assert!(format!("{long:?}").contains('…'));
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_bools(), vec![true, false, true]);
        // Word-boundary lengths pack correctly.
        for len in [63usize, 64, 65, 128, 130] {
            let v: BitVec = (0..len).map(|i| i % 3 == 0).collect();
            assert_eq!(v, BitVec::from_bools(&(0..len).map(|i| i % 3 == 0).collect::<Vec<_>>()));
        }
    }
}
