//! A bulk bit vector — the content of one DRAM row.
//!
//! Rows in the functional engine are `BitVec`s; bulk bitwise operations on
//! entire rows are the unit of work the paper accelerates.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length vector of bits stored in 64-bit words.
///
/// ```
/// use elp2im_core::bitvec::BitVec;
/// let a = BitVec::from_bools(&[true, false, true]);
/// let b = BitVec::from_bools(&[true, true, false]);
/// assert_eq!(a.and(&b).to_bools(), vec![true, false, false]);
/// assert_eq!(a.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        BitVec { words: vec![0; len.div_ceil(WORD_BITS)], len }
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> Self {
        let mut v = BitVec { words: vec![u64::MAX; len.div_ceil(WORD_BITS)], len };
        v.mask_tail();
        v
    }

    /// Creates a vector filled with `bit`.
    pub fn splat(bit: bool, len: usize) -> Self {
        if bit {
            BitVec::ones(len)
        } else {
            BitVec::zeros(len)
        }
    }

    /// Builds a vector from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Builds a vector of `len` bits from little-endian 64-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is too short for `len` bits.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(
            words.len() * WORD_BITS >= len,
            "need {} words for {len} bits, got {}",
            len.div_ceil(WORD_BITS),
            words.len()
        );
        let mut v = BitVec { words: words[..len.div_ceil(WORD_BITS)].to_vec(), len };
        v.mask_tail();
        v
    }

    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing little-endian words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Gets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        let (w, o) = (i / WORD_BITS, i % WORD_BITS);
        if bit {
            self.words[w] |= 1 << o;
        } else {
            self.words[w] &= !(1 << o);
        }
    }

    /// Converts to a vector of booleans.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    fn zip(&self, other: &BitVec, f: impl Fn(u64, u64) -> u64) -> BitVec {
        assert_eq!(self.len, other.len, "length mismatch: {} vs {}", self.len, other.len);
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| f(a, b)).collect();
        let mut v = BitVec { words, len: self.len };
        v.mask_tail();
        v
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ (as do the other binary operations).
    pub fn and(&self, other: &BitVec) -> BitVec {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &BitVec) -> BitVec {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        self.zip(other, |a, b| a ^ b)
    }

    /// Bitwise NOT.
    pub fn not(&self) -> BitVec {
        let words = self.words.iter().map(|&a| !a).collect();
        let mut v = BitVec { words, len: self.len };
        v.mask_tail();
        v
    }

    /// Per-column select: `mask[i] ? ones : self[i]`-style merge used by the
    /// engine's overwrite semantics — returns `(self & !mask) | (value &
    /// mask)`.
    pub fn merge(&self, mask: &BitVec, value: &BitVec) -> BitVec {
        assert_eq!(self.len, mask.len);
        assert_eq!(self.len, value.len);
        let words = self
            .words
            .iter()
            .zip(&mask.words)
            .zip(&value.words)
            .map(|((&s, &m), &v)| (s & !m) | (v & m))
            .collect();
        let mut v = BitVec { words, len: self.len };
        v.mask_tail();
        v
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns true if all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}; ", self.len)?;
        let show = self.len.min(64);
        for i in 0..show {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > show {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = BitVec::from_bools(&[true, false, true, true]);
        assert_eq!(v.len(), 4);
        assert!(v.get(0) && !v.get(1) && v.get(2) && v.get(3));
        assert_eq!(v.count_ones(), 3);
    }

    #[test]
    fn splat_and_masking() {
        let ones = BitVec::ones(70);
        assert_eq!(ones.count_ones(), 70);
        // Tail bits beyond len must be masked off.
        assert_eq!(ones.words()[1] >> 6, 0);
        assert!(BitVec::zeros(70).is_zero());
        assert_eq!(BitVec::splat(true, 3).to_bools(), vec![true; 3]);
    }

    #[test]
    fn logic_ops_match_bool_logic() {
        let a = BitVec::from_bools(&[true, true, false, false]);
        let b = BitVec::from_bools(&[true, false, true, false]);
        assert_eq!(a.and(&b).to_bools(), vec![true, false, false, false]);
        assert_eq!(a.or(&b).to_bools(), vec![true, true, true, false]);
        assert_eq!(a.xor(&b).to_bools(), vec![false, true, true, false]);
        assert_eq!(a.not().to_bools(), vec![false, false, true, true]);
    }

    #[test]
    fn not_masks_tail() {
        let v = BitVec::zeros(65).not();
        assert_eq!(v.count_ones(), 65);
    }

    #[test]
    fn merge_selects_by_mask() {
        let base = BitVec::from_bools(&[false, false, true, true]);
        let mask = BitVec::from_bools(&[true, false, true, false]);
        let val = BitVec::from_bools(&[true, true, false, false]);
        assert_eq!(base.merge(&mask, &val).to_bools(), vec![true, false, false, true]);
    }

    #[test]
    fn from_words_roundtrip() {
        let v = BitVec::from_words(&[0b1011], 4);
        assert_eq!(v.to_bools(), vec![true, true, false, true]);
        let w = BitVec::from_words(&[u64::MAX, u64::MAX], 100);
        assert_eq!(w.count_ones(), 100);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = BitVec::zeros(4).and(&BitVec::zeros(5));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let _ = BitVec::zeros(4).get(4);
    }

    #[test]
    fn debug_and_display() {
        let v = BitVec::from_bools(&[true, false, true]);
        assert_eq!(format!("{v}"), "101");
        assert!(format!("{v:?}").contains("101"));
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.to_bools(), vec![true, false, true]);
    }
}
