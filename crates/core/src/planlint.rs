//! Plan-level static verification: the borrow checker, hazard analysis,
//! and timing proofs over whole batch plans.
//!
//! PR-5's [`crate::analysis`] proves one program safe against one
//! subarray. Everything built since composes *many* programs over shared
//! rows and shared timing resources: [`crate::batch::DeviceArray`] stripes
//! an operation across banks, the hierarchical scheduler interleaves the
//! per-bank command streams under per-rank pump windows, and the
//! fault-aware executor replays whole operations. This module lifts the
//! verifier to that composition. [`certify`] takes a [`BatchPlan`] —
//! programs, their (bank, subarray) placement, the per-bank streams they
//! issue on, and the topology/budget they are scheduled under — and
//! proves three property families **without executing anything**:
//!
//! 1. **Row borrow checking.** Per (bank, subarray), physical rows are
//!    tracked through the plan's steps with the same abstract domain the
//!    program analyzer uses ([`AbstractVal`] / truth tables),
//!    interprocedurally: a step's final row states seed the next step's
//!    live-in. Cross-program clobbers of live data rows
//!    ([`PlanDiagnosticKind::RowClobber`]), reads of temps a previous step
//!    destroyed ([`PlanDiagnosticKind::RecycledTemp`]), and writes that
//!    double-book a data row the allocator still considers live
//!    ([`PlanDiagnosticKind::DoubleBooking`]) are all errors.
//! 2. **Cross-stream hazard detection.** Two steps of one (bank,
//!    subarray) whose commands issue on *different* per-bank streams have
//!    no ordering guarantee from the scheduler — any data flow between
//!    them (RAW), or overwrite against a read or write (WAR/WAW), is a
//!    bank-isolation violation. Well-formed plans place each subarray's
//!    programs on that bank's own stream, making every such pair ordered;
//!    the analyzer proves that invariant instead of sampling it.
//! 3. **Static timing verification.** The plan's command streams are
//!    either scheduled (and the schedule's own claims re-verified,
//!    including refresh obligations the scheduler does not model) or — if
//!    the plan carries explicit claims — checked directly by the
//!    integer-picosecond interval analysis in `elp2im_dram::verify`:
//!    charge-pump/tFAW windows per rank, in-order bus issue per channel,
//!    bank occupancy, refresh alignment.
//!
//! Diagnostics reuse the program analyzer's [`Severity`] ladder; program
//! findings are wrapped (with their step) rather than re-derived, so the
//! single-program and plan-level verdicts can never disagree.

use crate::analysis::{
    analyze, dst_writes_of, infer_live_in, reads_of, AnalysisReport, Diagnostic, DiagnosticKind,
    Severity,
};
use crate::isa::Program;
use crate::optimizer::PhysRow;
use crate::validate::SubarrayShape;
use elp2im_dram::constraint::PumpBudget;
use elp2im_dram::geometry::{TopoPath, Topology};
use elp2im_dram::hierarchy::HierarchicalScheduler;
use elp2im_dram::timing::Ddr3Timing;
use elp2im_dram::units::{Ns, Ps};
use elp2im_dram::verify::{verify_claims, ClaimedCommand, TimingViolation};
use elp2im_dram::CommandProfile;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// One step of a batch plan: a program bound to a subarray, issuing its
/// commands on a per-bank stream.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Flat bank-unit index the program executes on.
    pub unit: usize,
    /// Subarray within the bank.
    pub subarray: usize,
    /// The per-bank command stream the step's commands are scheduled on.
    /// Well-formed plans use the unit's own topology path; anything else
    /// breaks the bank-isolation invariant the hazard pass proves.
    pub stream: TopoPath,
    /// The primitive program.
    pub program: Arc<Program>,
}

/// A prepared batch plan: everything [`certify`] needs to prove it safe,
/// and nothing it would have to execute to find out.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Channel/rank/bank topology the streams are scheduled over.
    pub topology: Topology,
    /// Charge-pump budget enforced per rank.
    pub budget: PumpBudget,
    /// Subarray shape every program is checked against.
    pub shape: SubarrayShape,
    /// The steps, in plan (issue) order.
    pub steps: Vec<PlanStep>,
    /// Live physical rows per (unit, subarray) at the instant the plan
    /// first touches that subarray (before any of the plan's own writes).
    pub live_in: BTreeMap<(usize, usize), BTreeSet<PhysRow>>,
    /// Optional refresh blackout `(interval, duration)` the issue instants
    /// must avoid ([`elp2im_dram::controller::Controller`] semantics).
    pub refresh: Option<(Ps, Ps)>,
    /// Optional explicit claimed schedule to verify instead of
    /// constructing one (the `k`-th claim naming a path binds to the
    /// `k`-th command of that stream).
    pub claims: Option<Vec<ClaimedCommand>>,
    /// Timing parameters the programs' command profiles derive from.
    pub timing: Ddr3Timing,
}

impl BatchPlan {
    /// An empty plan over `topology` with DDR3-1600 timing, the given
    /// budget, and no refresh obligation.
    pub fn new(topology: Topology, budget: PumpBudget, shape: SubarrayShape) -> Self {
        BatchPlan {
            topology,
            budget,
            shape,
            steps: Vec::new(),
            live_in: BTreeMap::new(),
            refresh: None,
            claims: None,
            timing: Ddr3Timing::ddr3_1600(),
        }
    }
}

/// Hazard classification between two plan steps sharing rows across
/// different command streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Read-after-write: the later step consumes data the earlier one
    /// produced, with no cross-stream ordering.
    Raw,
    /// Write-after-read: the later step overwrites a row the earlier one
    /// still reads.
    War,
    /// Write-after-write: both steps write the row; the surviving value
    /// depends on issue order.
    Waw,
}

impl HazardKind {
    /// Upper-case mnemonic (`RAW`/`WAR`/`WAW`).
    pub fn name(self) -> &'static str {
        match self {
            HazardKind::Raw => "RAW",
            HazardKind::War => "WAR",
            HazardKind::Waw => "WAW",
        }
    }

    fn verbs(self) -> (&'static str, &'static str) {
        match self {
            HazardKind::Raw => ("writes", "reads"),
            HazardKind::War => ("reads", "writes"),
            HazardKind::Waw => ("writes", "writes"),
        }
    }
}

/// What a [`PlanDiagnostic`] reports.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDiagnosticKind {
    /// A step leaves a live data row destroyed: some other program's
    /// operand (or a result row a previous step produced) is gone (error).
    RowClobber {
        /// Flat bank unit.
        unit: usize,
        /// Subarray.
        subarray: usize,
        /// The clobbered row.
        row: PhysRow,
    },
    /// A step's first access to a live data row is a copy-destination
    /// write: the allocator handed out a row that already belongs to
    /// someone (error).
    DoubleBooking {
        /// Flat bank unit.
        unit: usize,
        /// Subarray.
        subarray: usize,
        /// The double-booked row.
        row: PhysRow,
    },
    /// A step reads a row a previous step destroyed and no step in between
    /// redefined (error).
    RecycledTemp {
        /// Flat bank unit.
        unit: usize,
        /// Subarray.
        subarray: usize,
        /// The recycled row.
        row: PhysRow,
        /// Plan step whose trimmed restore destroyed it.
        destroyed_by: usize,
    },
    /// Two steps of one subarray share a row across *different* command
    /// streams — no ordering guarantee, so the data flow is a race
    /// (error).
    CrossStreamHazard {
        /// Hazard class (RAW reported over WAR over WAW).
        kind: HazardKind,
        /// Flat bank unit.
        unit: usize,
        /// Subarray.
        subarray: usize,
        /// The first shared row (witness).
        row: PhysRow,
        /// Earlier step (plan order).
        first: usize,
        /// Its command stream.
        first_stream: TopoPath,
        /// Later step.
        second: usize,
        /// Its command stream.
        second_stream: TopoPath,
    },
    /// A step names a command stream outside the plan topology (error).
    InvalidStream {
        /// The offending stream path.
        stream: TopoPath,
    },
    /// A finding of the single-program analyzer, anchored to its step
    /// (severity preserved).
    Program {
        /// The wrapped program-level finding.
        diagnostic: Diagnostic,
    },
    /// A refuted timing obligation from the static schedule verifier
    /// (error).
    Timing(TimingViolation),
}

impl PlanDiagnosticKind {
    /// Stable machine-readable identifier, extending the program
    /// analyzer's slug namespace with a `plan-` prefix.
    pub fn slug(&self) -> String {
        match self {
            PlanDiagnosticKind::RowClobber { .. } => "plan-row-clobber".into(),
            PlanDiagnosticKind::DoubleBooking { .. } => "plan-double-booking".into(),
            PlanDiagnosticKind::RecycledTemp { .. } => "plan-recycled-temp".into(),
            PlanDiagnosticKind::CrossStreamHazard { .. } => "plan-cross-stream-hazard".into(),
            PlanDiagnosticKind::InvalidStream { .. } => "plan-invalid-stream".into(),
            PlanDiagnosticKind::Program { diagnostic } => {
                format!("plan-{}", diagnostic.kind.slug())
            }
            PlanDiagnosticKind::Timing(v) => format!("plan-{}", v.slug()),
        }
    }
}

/// One plan-level finding.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanDiagnostic {
    /// Plan step the finding anchors to (`None` for whole-plan timing
    /// findings).
    pub step: Option<usize>,
    /// Severity class (same ladder as the program analyzer).
    pub severity: Severity,
    /// The finding itself.
    pub kind: PlanDiagnosticKind,
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let step = self.step.unwrap_or(0);
        match &self.kind {
            PlanDiagnosticKind::RowClobber { unit, subarray, row } => write!(
                f,
                "step #{step} (b{unit}.s{subarray}): destroys live row {row} \
                 (cross-program operand clobber)"
            ),
            PlanDiagnosticKind::DoubleBooking { unit, subarray, row } => write!(
                f,
                "step #{step} (b{unit}.s{subarray}): first write to {row} double-books a \
                 live row"
            ),
            PlanDiagnosticKind::RecycledTemp { unit, subarray, row, destroyed_by } => write!(
                f,
                "step #{step} (b{unit}.s{subarray}): reads {row}, destroyed by step \
                 #{destroyed_by} and never redefined (recycled temp)"
            ),
            PlanDiagnosticKind::CrossStreamHazard {
                kind,
                unit,
                subarray,
                row,
                first,
                first_stream,
                second,
                second_stream,
            } => {
                let (v1, v2) = kind.verbs();
                write!(
                    f,
                    "step #{second}: {} hazard on {row} (b{unit}.s{subarray}): step #{first} \
                     {v1} it on stream {first_stream}, step #{second} {v2} it on stream \
                     {second_stream} (bank isolation violated)",
                    kind.name()
                )
            }
            PlanDiagnosticKind::InvalidStream { stream } => {
                write!(f, "step #{step}: stream {stream} is outside the plan topology")
            }
            PlanDiagnosticKind::Program { diagnostic } => {
                write!(f, "step #{step}: {diagnostic}")
            }
            PlanDiagnosticKind::Timing(v) => write!(f, "timing: {v}"),
        }
    }
}

/// The verdict of [`certify`]: ordered diagnostics (borrow checker first,
/// then hazards, then timing) plus the proven makespan when the timing
/// obligations all discharged.
#[derive(Debug, Clone)]
pub struct PlanReport {
    diagnostics: Vec<PlanDiagnostic>,
    makespan: Option<Ns>,
}

impl PlanReport {
    /// All findings, in analysis order.
    pub fn diagnostics(&self) -> &[PlanDiagnostic] {
        &self.diagnostics
    }

    /// Whether the plan passed with no error-severity findings.
    pub fn is_accepted(&self) -> bool {
        !self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The first error-severity finding, if any — the plan's concrete
    /// counterexample.
    pub fn first_error(&self) -> Option<&PlanDiagnostic> {
        self.diagnostics.iter().find(|d| d.severity == Severity::Error)
    }

    /// The statically proven wall-clock makespan, when every timing
    /// obligation discharged (absent on rejection or claim mismatch).
    pub fn makespan(&self) -> Option<Ns> {
        self.makespan
    }
}

/// Rows a step reads anywhere in its program (syntactic).
fn step_reads(prog: &Program) -> BTreeSet<PhysRow> {
    prog.primitives().iter().flat_map(reads_of).map(PhysRow::from).collect()
}

/// Rows a step writes: copy destinations plus trimmed (destroyed) rows.
/// Pure restores write back the value just read, so they are not writes
/// for hazard purposes.
fn step_writes(prog: &Program) -> BTreeSet<PhysRow> {
    use crate::primitive::Primitive;
    let mut out: BTreeSet<PhysRow> =
        prog.primitives().iter().flat_map(dst_writes_of).map(PhysRow::from).collect();
    for p in prog.primitives() {
        if let Primitive::TApp { row, .. } | Primitive::OtApp { row, .. } = *p {
            out.insert(PhysRow::from(row));
        }
    }
    out
}

/// Congruence-class key for subarray groups: the per-step (program
/// identity, first-seen stream index) signature plus the live-in rows.
type GroupClass = (Vec<(usize, u32)>, Vec<PhysRow>);

/// State-independent syntactic facts about one program, computed once per
/// distinct [`Arc<Program>`]. Batch plans run a single compiled program
/// over dozens of stripes, so caching these turns every per-step (and
/// per-pair, in the hazard pass) set construction into a lookup.
struct ProgFacts {
    /// Every row the program names.
    named: BTreeSet<PhysRow>,
    /// Rows read before any write ([`infer_live_in`]).
    live_in: Vec<PhysRow>,
    /// [`step_reads`].
    reads: BTreeSet<PhysRow>,
    /// [`step_writes`].
    writes: BTreeSet<PhysRow>,
    /// Rows whose first access is a copy-destination write, in program
    /// order — the double-booking candidates (state decides per step).
    first_dst_writes: Vec<PhysRow>,
}

impl ProgFacts {
    fn of(prog: &Program) -> Self {
        let named = prog.primitives().iter().flat_map(|p| p.rows()).map(PhysRow::from).collect();
        let mut seen: BTreeSet<PhysRow> = BTreeSet::new();
        let mut first_dst_writes = Vec::new();
        for p in prog.primitives() {
            for r in reads_of(p) {
                seen.insert(PhysRow::from(r));
            }
            for r in dst_writes_of(p) {
                let phys = PhysRow::from(r);
                if seen.insert(phys) {
                    first_dst_writes.push(phys);
                }
            }
        }
        ProgFacts {
            named,
            live_in: infer_live_in(prog).into_iter().collect(),
            reads: step_reads(prog),
            writes: step_writes(prog),
            first_dst_writes,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowState {
    Live,
    Destroyed { by: usize },
}

/// Statically certifies `plan`: row borrow checking and cross-stream
/// hazard analysis per subarray, then timing verification of the plan's
/// command streams. Never executes a primitive or touches an engine.
pub fn certify(plan: &BatchPlan) -> PlanReport {
    let mut diagnostics = Vec::new();

    // ---- Passes 1 and 2: borrow checking and hazards, per subarray. ----
    // Steps are grouped by (unit, subarray) preserving plan order; each
    // group is an independent interprocedural analysis because subarrays
    // share no rows.
    let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (k, step) in plan.steps.iter().enumerate() {
        groups.entry((step.unit, step.subarray)).or_default().push(k);
    }
    // Memoized program analyses: batch plans run one compiled program over
    // many equivalent subarray states, so the (program, live-rows) pair
    // recurs constantly.
    let mut memo: HashMap<(usize, Vec<PhysRow>), AnalysisReport> = HashMap::new();
    // Per-program syntactic facts, shared by the borrow-check and hazard
    // passes (see [`ProgFacts`]).
    let mut facts: HashMap<usize, ProgFacts> = HashMap::new();
    for step in &plan.steps {
        facts
            .entry(Arc::as_ptr(&step.program) as usize)
            .or_insert_with(|| ProgFacts::of(&step.program));
    }

    // Congruent-group memoization. A batch plan stripes one operation
    // across many subarrays, so most groups run the same program sequence
    // from the same live-in rows with the same stream-sharing pattern —
    // and such groups provably produce structurally identical findings
    // (programs are shared `Arc`s, so even the concrete row numbers
    // coincide). Each congruence class — keyed by the per-step (program
    // identity, first-seen stream index) signature plus the live-in set —
    // is analyzed once; its findings are cached with group-local step
    // indices and rebound to every member group.
    let mut classes: HashMap<GroupClass, Vec<PlanDiagnostic>> = HashMap::new();
    for (&(unit, subarray), step_ids) in &groups {
        let live: Vec<PhysRow> = plan
            .live_in
            .get(&(unit, subarray))
            .map(|rows| rows.iter().copied().collect())
            .unwrap_or_default();
        let mut streams_seen: Vec<TopoPath> = Vec::new();
        let sig: Vec<(usize, u32)> = step_ids
            .iter()
            .map(|&k| {
                let stream = plan.steps[k].stream;
                let sid = streams_seen.iter().position(|p| *p == stream).unwrap_or_else(|| {
                    streams_seen.push(stream);
                    streams_seen.len() - 1
                });
                (Arc::as_ptr(&plan.steps[k].program) as usize, sid as u32)
            })
            .collect();
        let local = classes
            .entry((sig, live))
            .or_insert_with(|| check_group(plan, step_ids, &facts, &mut memo));
        for d in local.iter() {
            diagnostics.push(rebind(d, unit, subarray, step_ids, plan));
        }
    }

    // ---- Pass 3: static timing verification. ---------------------------
    let makespan = verify_timing(plan, &mut diagnostics);

    PlanReport { diagnostics, makespan }
}

/// Runs the borrow-check and hazard passes over one subarray group.
/// Diagnostics come back with *group-local* step indices (positions in
/// `step_ids`) everywhere a step is named, ready for [`rebind`].
fn check_group(
    plan: &BatchPlan,
    step_ids: &[usize],
    facts: &HashMap<usize, ProgFacts>,
    memo: &mut HashMap<(usize, Vec<PhysRow>), AnalysisReport>,
) -> Vec<PlanDiagnostic> {
    let mut out = Vec::new();
    let (unit, subarray) =
        step_ids.first().map(|&k| (plan.steps[k].unit, plan.steps[k].subarray)).unwrap_or_default();

    // ---- Pass 1: row borrow checker. -----------------------------------
    let mut state: BTreeMap<PhysRow, RowState> = plan
        .live_in
        .get(&(unit, subarray))
        .map(|rows| rows.iter().map(|&r| (r, RowState::Live)).collect())
        .unwrap_or_default();
    for (li, &k) in step_ids.iter().enumerate() {
        let prog = &plan.steps[k].program;
        let pf = &facts[&(Arc::as_ptr(prog) as usize)];

        // (a) Recycled temps: reads-before-write of a row some earlier
        // step destroyed. Reported here with the destroying step; the
        // program-level read-of-undefined finding it shadows is
        // suppressed below.
        let mut recycled: BTreeSet<PhysRow> = BTreeSet::new();
        for &r in &pf.live_in {
            if let Some(RowState::Destroyed { by }) = state.get(&r) {
                out.push(PlanDiagnostic {
                    step: Some(li),
                    severity: Severity::Error,
                    kind: PlanDiagnosticKind::RecycledTemp {
                        unit,
                        subarray,
                        row: r,
                        destroyed_by: *by,
                    },
                });
                recycled.insert(r);
            }
        }

        // (b) Double booking: the step's first access to a live *data*
        // row is a copy-destination write. Data rows are the
        // allocator's domain — a fresh destination must not be live.
        // Reserved rows are scratch; overwriting their residue is the
        // normal idiom.
        for &phys in &pf.first_dst_writes {
            if matches!(phys, PhysRow::Data(_)) && state.get(&phys) == Some(&RowState::Live) {
                out.push(PlanDiagnostic {
                    step: Some(li),
                    severity: Severity::Error,
                    kind: PlanDiagnosticKind::DoubleBooking { unit, subarray, row: phys },
                });
            }
        }

        // (c) Program-level analysis under the subarray's current live
        // set, memoized. Restricting the live-in to the rows the
        // program names is verdict- and state-equivalent: rows it
        // never names keep their entry state.
        let live_named: Vec<PhysRow> =
            pf.named.iter().copied().filter(|r| state.get(r) == Some(&RowState::Live)).collect();
        let key = (Arc::as_ptr(prog) as usize, live_named.clone());
        let report = &*memo.entry(key).or_insert_with(|| analyze(prog, plan.shape, &live_named));
        for d in report.diagnostics() {
            match &d.kind {
                // A clobbered live-in *data* row is a plan-level error:
                // another program's operand (or a produced result row)
                // is gone. Destroyed reserved-row residue is the
                // normal trim idiom — not a finding at plan level.
                DiagnosticKind::LiveInDestroyed { row } => {
                    if matches!(row, PhysRow::Data(_)) {
                        out.push(PlanDiagnostic {
                            step: Some(li),
                            severity: Severity::Error,
                            kind: PlanDiagnosticKind::RowClobber { unit, subarray, row: *row },
                        });
                    }
                }
                // Shadowed by the recycled-temp finding above, which
                // carries the destroying step.
                DiagnosticKind::ReadOfUndefinedRow { row }
                    if recycled.contains(&PhysRow::from(*row)) => {}
                _ => out.push(PlanDiagnostic {
                    step: Some(li),
                    severity: d.severity,
                    kind: PlanDiagnosticKind::Program { diagnostic: d.clone() },
                }),
            }
        }

        // (d) Thread the final row states into the next step's entry
        // state (the interprocedural part).
        for &r in &pf.named {
            match report.final_row(r) {
                crate::analysis::AbstractVal::Destroyed { .. } => {
                    state.insert(r, RowState::Destroyed { by: li });
                }
                crate::analysis::AbstractVal::Undefined => {
                    state.remove(&r);
                }
                _ => {
                    state.insert(r, RowState::Live);
                }
            }
        }
    }

    // ---- Pass 2: cross-stream hazards within this subarray. ------------
    // Two steps on the same stream are ordered by construction (their
    // commands append to one bank stream in plan order); different
    // streams have no ordering, so any shared row is a race.
    for (i_pos, &i) in step_ids.iter().enumerate() {
        let pi = &facts[&(Arc::as_ptr(&plan.steps[i].program) as usize)];
        let (ri, wi) = (&pi.reads, &pi.writes);
        for (j_off, &j) in step_ids[i_pos + 1..].iter().enumerate() {
            let j_pos = i_pos + 1 + j_off;
            if plan.steps[i].stream == plan.steps[j].stream {
                continue;
            }
            let pj = &facts[&(Arc::as_ptr(&plan.steps[j].program) as usize)];
            let (rj, wj) = (&pj.reads, &pj.writes);
            let hazard = [
                (HazardKind::Raw, wi.intersection(rj).next()),
                (HazardKind::War, ri.intersection(wj).next()),
                (HazardKind::Waw, wi.intersection(wj).next()),
            ]
            .into_iter()
            .find_map(|(kind, row)| row.map(|&row| (kind, row)));
            if let Some((kind, row)) = hazard {
                out.push(PlanDiagnostic {
                    step: Some(j_pos),
                    severity: Severity::Error,
                    kind: PlanDiagnosticKind::CrossStreamHazard {
                        kind,
                        unit,
                        subarray,
                        row,
                        first: i_pos,
                        first_stream: plan.steps[i].stream,
                        second: j_pos,
                        second_stream: plan.steps[j].stream,
                    },
                });
            }
        }
    }
    out
}

/// Rebinds a [`check_group`] diagnostic (group-local step indices,
/// evaluating group's coordinates) to a congruent member group.
fn rebind(
    d: &PlanDiagnostic,
    unit: usize,
    subarray: usize,
    step_ids: &[usize],
    plan: &BatchPlan,
) -> PlanDiagnostic {
    let g = |local: usize| step_ids[local];
    let kind = match &d.kind {
        PlanDiagnosticKind::RowClobber { row, .. } => {
            PlanDiagnosticKind::RowClobber { unit, subarray, row: *row }
        }
        PlanDiagnosticKind::DoubleBooking { row, .. } => {
            PlanDiagnosticKind::DoubleBooking { unit, subarray, row: *row }
        }
        PlanDiagnosticKind::RecycledTemp { row, destroyed_by, .. } => {
            PlanDiagnosticKind::RecycledTemp {
                unit,
                subarray,
                row: *row,
                destroyed_by: g(*destroyed_by),
            }
        }
        PlanDiagnosticKind::CrossStreamHazard { kind, row, first, second, .. } => {
            PlanDiagnosticKind::CrossStreamHazard {
                kind: *kind,
                unit,
                subarray,
                row: *row,
                first: g(*first),
                first_stream: plan.steps[g(*first)].stream,
                second: g(*second),
                second_stream: plan.steps[g(*second)].stream,
            }
        }
        other => other.clone(),
    };
    PlanDiagnostic { step: d.step.map(g), severity: d.severity, kind }
}

/// Builds the plan's per-stream command profiles and discharges the
/// timing obligations; returns the proven makespan on success.
fn verify_timing(plan: &BatchPlan, diagnostics: &mut Vec<PlanDiagnostic>) -> Option<Ns> {
    let mut bad_stream = false;
    for (k, step) in plan.steps.iter().enumerate() {
        if !plan.topology.contains(step.stream) {
            diagnostics.push(PlanDiagnostic {
                step: Some(k),
                severity: Severity::Error,
                kind: PlanDiagnosticKind::InvalidStream { stream: step.stream },
            });
            bad_stream = true;
        }
    }
    if bad_stream {
        return None;
    }
    // Profiles are pure in (program, timing); share them across the many
    // steps of a batch plan that run one compiled program.
    let mut prof_memo: HashMap<usize, Vec<CommandProfile>> = HashMap::new();
    let mut by_stream: BTreeMap<TopoPath, Vec<CommandProfile>> = BTreeMap::new();
    for step in &plan.steps {
        let profiles = prof_memo
            .entry(Arc::as_ptr(&step.program) as usize)
            .or_insert_with(|| step.program.profiles(&plan.timing));
        by_stream.entry(step.stream).or_default().extend(profiles.iter().cloned());
    }
    let streams: Vec<(TopoPath, Vec<CommandProfile>)> = by_stream.into_iter().collect();
    if streams.is_empty() {
        return Some(Ns::ZERO);
    }

    let claims: Vec<ClaimedCommand> = match &plan.claims {
        Some(claims) => claims.clone(),
        None => {
            match HierarchicalScheduler::new(plan.budget.clone())
                .schedule_for(&plan.topology, &streams)
            {
                Ok(schedule) => schedule.claims(),
                Err(_) => {
                    // Paths were validated above; scheduling a validated
                    // stream set cannot fail, but degrade gracefully.
                    return None;
                }
            }
        }
    };
    let violations = verify_claims(&plan.budget, plan.refresh, &streams, &claims);
    let accepted = violations.is_empty();
    for v in violations {
        diagnostics.push(PlanDiagnostic {
            step: None,
            severity: Severity::Error,
            kind: PlanDiagnosticKind::Timing(v),
        });
    }
    if !accepted {
        return None;
    }
    // Makespan of the verified claims: latest completion instant.
    let merged: BTreeMap<TopoPath, &Vec<CommandProfile>> =
        streams.iter().map(|(p, v)| (*p, v)).collect();
    let mut cursors: BTreeMap<TopoPath, usize> = BTreeMap::new();
    let mut end = Ps::ZERO;
    for c in &claims {
        let idx = {
            let e = cursors.entry(c.path).or_insert(0);
            let i = *e;
            *e += 1;
            i
        };
        let done = c.start + merged[&c.path][idx].duration.to_ps();
        end = end.max(done);
    }
    Some(end.to_ns())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileMode, LogicOp, Operands};
    use crate::primitive::{Primitive, RegulateMode, RowRef};
    use elp2im_dram::geometry::Geometry;

    fn shape() -> SubarrayShape {
        SubarrayShape { data_rows: 16, dcc_rows: 2 }
    }

    fn topo(banks: usize) -> Topology {
        Topology::module(Geometry {
            banks,
            subarrays_per_bank: 2,
            rows_per_subarray: 16,
            row_bytes: 8,
        })
    }

    fn plan_with(steps: Vec<PlanStep>, live: &[(usize, usize, Vec<PhysRow>)]) -> BatchPlan {
        let mut plan = BatchPlan::new(topo(4), PumpBudget::unconstrained(), shape());
        plan.steps = steps;
        for (unit, sub, rows) in live {
            plan.live_in.insert((*unit, *sub), rows.iter().copied().collect());
        }
        plan
    }

    fn step(unit: usize, subarray: usize, prog: Program) -> PlanStep {
        PlanStep { unit, subarray, stream: topo(4).path(unit), program: Arc::new(prog) }
    }

    fn compiled(op: LogicOp, rows: Operands) -> Program {
        compile(op, CompileMode::LowLatency, rows, 2).unwrap()
    }

    #[test]
    fn clean_single_op_plan_is_certified_with_makespan() {
        let rows = Operands { a: 0, b: 1, dst: 2, scratch: None };
        let steps = (0..4).map(|u| step(u, 0, compiled(LogicOp::And, rows))).collect();
        let plan = plan_with(
            steps,
            &[
                (0, 0, vec![PhysRow::Data(0), PhysRow::Data(1)]),
                (1, 0, vec![PhysRow::Data(0), PhysRow::Data(1)]),
                (2, 0, vec![PhysRow::Data(0), PhysRow::Data(1)]),
                (3, 0, vec![PhysRow::Data(0), PhysRow::Data(1)]),
            ],
        );
        let report = certify(&plan);
        assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));
        assert!(report.makespan().unwrap().as_f64() > 0.0);
    }

    #[test]
    fn sequential_ops_over_one_subarray_thread_state() {
        // op1: dst r2 = r0 AND r1; op2 consumes r2: dst r3 = r2 OR r0.
        let s1 = step(0, 0, compiled(LogicOp::And, Operands { a: 0, b: 1, dst: 2, scratch: None }));
        let s2 = step(0, 0, compiled(LogicOp::Or, Operands { a: 2, b: 0, dst: 3, scratch: None }));
        let plan = plan_with(vec![s1, s2], &[(0, 0, vec![PhysRow::Data(0), PhysRow::Data(1)])]);
        let report = certify(&plan);
        assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));
    }

    #[test]
    fn cross_program_clobber_is_rejected() {
        // Step 0 trims r0 away; r0 is a live operand.
        let prog = Program::new(
            "clobber",
            vec![
                Primitive::TApp { row: RowRef::Data(0), mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
            ],
        );
        let plan =
            plan_with(vec![step(0, 0, prog)], &[(0, 0, vec![PhysRow::Data(0), PhysRow::Data(1)])]);
        let report = certify(&plan);
        assert!(!report.is_accepted());
        let e = report.first_error().unwrap();
        assert_eq!(e.kind.slug(), "plan-row-clobber");
        assert_eq!(
            e.to_string(),
            "step #0 (b0.s0): destroys live row r0 (cross-program operand clobber)"
        );
    }

    #[test]
    fn recycled_temp_is_rejected_with_destroying_step() {
        // Step 0 destroys R0; step 1 reads it before redefining.
        let p0 = Program::new(
            "spend",
            vec![
                Primitive::Aap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) },
                Primitive::TApp { row: RowRef::DccTrue(0), mode: RegulateMode::Or },
                Primitive::Ap { row: RowRef::Data(1) },
            ],
        );
        let p1 = Program::new(
            "reuse",
            vec![Primitive::Aap { src: RowRef::DccTrue(0), dst: RowRef::Data(2) }],
        );
        let plan = plan_with(
            vec![step(0, 0, p0), step(0, 0, p1)],
            &[(0, 0, vec![PhysRow::Data(0), PhysRow::Data(1)])],
        );
        let report = certify(&plan);
        assert!(!report.is_accepted());
        let e = report.first_error().unwrap();
        assert_eq!(e.kind.slug(), "plan-recycled-temp");
        assert_eq!(
            e.to_string(),
            "step #1 (b0.s0): reads R0, destroyed by step #0 and never redefined (recycled temp)"
        );
        // The shadowed program-level read-of-undefined finding is absent.
        assert!(!report
            .diagnostics()
            .iter()
            .any(|d| d.kind.slug() == "plan-read-of-undefined-row"));
    }

    #[test]
    fn double_booking_is_rejected() {
        // r2 is live (someone's data), but the step copies into it first.
        let prog = Program::new(
            "book",
            vec![Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(2) }],
        );
        let plan =
            plan_with(vec![step(0, 0, prog)], &[(0, 0, vec![PhysRow::Data(0), PhysRow::Data(2)])]);
        let report = certify(&plan);
        assert!(!report.is_accepted());
        let e = report.first_error().unwrap();
        assert_eq!(e.kind.slug(), "plan-double-booking");
        assert_eq!(e.to_string(), "step #0 (b0.s0): first write to r2 double-books a live row");
    }

    #[test]
    fn scratch_residue_reuse_is_not_double_booking() {
        // Step 0 leaves residue in R0; step 1 overwrites it first thing —
        // the normal scratch idiom, not a finding.
        let p = |name: &str, dst: usize| {
            Program::new(
                name,
                vec![
                    Primitive::Aap { src: RowRef::Data(0), dst: RowRef::DccTrue(0) },
                    Primitive::Aap { src: RowRef::DccTrue(0), dst: RowRef::Data(dst) },
                ],
            )
        };
        let plan = plan_with(
            vec![step(0, 0, p("first", 2)), step(0, 0, p("second", 3))],
            &[(0, 0, vec![PhysRow::Data(0)])],
        );
        let report = certify(&plan);
        assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));
    }

    #[test]
    fn cross_stream_raw_hazard_is_rejected() {
        let t = topo(4);
        // Both steps claim subarray (0, 0) but issue on different bank
        // streams; step 1 reads the row step 0 wrote.
        let s0 = PlanStep {
            unit: 0,
            subarray: 0,
            stream: t.path(0),
            program: Arc::new(Program::new(
                "produce",
                vec![Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(1) }],
            )),
        };
        let s1 = PlanStep {
            unit: 0,
            subarray: 0,
            stream: t.path(1),
            program: Arc::new(Program::new(
                "consume",
                vec![Primitive::Aap { src: RowRef::Data(1), dst: RowRef::Data(2) }],
            )),
        };
        let plan = plan_with(vec![s0, s1], &[(0, 0, vec![PhysRow::Data(0)])]);
        let report = certify(&plan);
        assert!(!report.is_accepted());
        let e = report.first_error().unwrap();
        assert_eq!(e.kind.slug(), "plan-cross-stream-hazard");
        assert_eq!(
            e.to_string(),
            "step #1: RAW hazard on r1 (b0.s0): step #0 writes it on stream c0.r0.b0, \
             step #1 reads it on stream c0.r0.b1 (bank isolation violated)"
        );
    }

    #[test]
    fn same_stream_sharing_is_ordered_and_clean() {
        // Same sharing pattern as the RAW test, but both steps issue on
        // bank 0's own stream: ordered by construction, no hazard.
        let s0 = step(
            0,
            0,
            Program::new(
                "produce",
                vec![Primitive::Aap { src: RowRef::Data(0), dst: RowRef::Data(1) }],
            ),
        );
        let s1 = step(
            0,
            0,
            Program::new(
                "consume",
                vec![Primitive::Aap { src: RowRef::Data(1), dst: RowRef::Data(2) }],
            ),
        );
        let plan = plan_with(vec![s0, s1], &[(0, 0, vec![PhysRow::Data(0)])]);
        let report = certify(&plan);
        assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));
    }

    #[test]
    fn pump_overrun_claims_are_rejected() {
        // Five banks claim t=0..4ns under the 4-token JEDEC window.
        let mut plan = BatchPlan::new(topo(5), PumpBudget::jedec_ddr3_1600(), shape());
        let t = topo(5);
        for u in 0..5 {
            plan.steps.push(PlanStep {
                unit: u,
                subarray: 0,
                stream: t.path(u),
                program: Arc::new(Program::new("ap", vec![Primitive::Ap { row: RowRef::Data(0) }])),
            });
            plan.live_in.insert((u, 0), [PhysRow::Data(0)].into_iter().collect());
        }
        plan.claims = Some(
            (0..5)
                .map(|u| ClaimedCommand { path: t.path(u), start: Ps(u as u64 * 1000) })
                .collect(),
        );
        let report = certify(&plan);
        assert!(!report.is_accepted());
        assert_eq!(report.first_error().unwrap().kind.slug(), "plan-pump-overrun");
        assert!(report.makespan().is_none());
        // The same plan without explicit claims schedules (and stalls)
        // legally.
        plan.claims = None;
        let report = certify(&plan);
        assert!(report.is_accepted(), "{:?}", report.first_error().map(|d| d.to_string()));
    }

    #[test]
    fn refresh_misalignment_is_rejected() {
        let mut plan = BatchPlan::new(topo(1), PumpBudget::unconstrained(), shape());
        plan.steps.push(step(
            0,
            0,
            Program::new("ap", vec![Primitive::Ap { row: RowRef::Data(0) }]),
        ));
        plan.live_in.insert((0, 0), [PhysRow::Data(0)].into_iter().collect());
        plan.refresh = Some((Ps(7_800_000), Ps(350_000)));
        // The scheduler starts at t = 0 — inside the blackout.
        let report = certify(&plan);
        assert!(!report.is_accepted());
        assert_eq!(report.first_error().unwrap().kind.slug(), "plan-refresh-misalignment");
    }

    #[test]
    fn invalid_stream_is_rejected() {
        let mut plan = BatchPlan::new(topo(2), PumpBudget::unconstrained(), shape());
        plan.steps.push(PlanStep {
            unit: 0,
            subarray: 0,
            stream: TopoPath::new(0, 0, 9),
            program: Arc::new(Program::new("ap", vec![Primitive::Ap { row: RowRef::Data(0) }])),
        });
        plan.live_in.insert((0, 0), [PhysRow::Data(0)].into_iter().collect());
        let report = certify(&plan);
        assert!(!report.is_accepted());
        assert_eq!(report.first_error().unwrap().kind.slug(), "plan-invalid-stream");
    }

    #[test]
    fn program_findings_are_wrapped_with_their_step() {
        // Step 1's program reads a row nobody defined (and nobody
        // destroyed): the program-level finding passes through.
        let plan = plan_with(
            vec![step(0, 0, Program::new("undef", vec![Primitive::Ap { row: RowRef::Data(7) }]))],
            &[(0, 0, vec![PhysRow::Data(0)])],
        );
        let report = certify(&plan);
        assert!(!report.is_accepted());
        let e = report.first_error().unwrap();
        assert_eq!(e.kind.slug(), "plan-read-of-undefined-row");
        assert_eq!(
            e.to_string(),
            "step #0: primitive #0: reads r7, which is neither live-in nor written"
        );
    }
}
